#!/bin/sh
# Golden smoke test for parabb_serve: pipes the 50-request JSONL batch
# through the service (single worker, so cache-hit flags and response
# sets are deterministic) and diffs against the checked-in golden file.
#
# Normalization: the "seconds" field is wall-clock and is zeroed before
# the diff; both sides are sorted because responses may legitimately
# interleave with error lines emitted by the reader thread.
#
# Usage: serve_smoke.sh <parabb_serve-binary> <dir-with-requests+golden>
set -eu
bin=$1
src=$2
tmp="${TMPDIR:-/tmp}/serve_smoke.$$"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp"

"$bin" --workers 1 --quiet "$src/serve_smoke_requests.jsonl" \
  | sed -E 's/"seconds":[0-9eE.+-]+/"seconds":0/' \
  | LC_ALL=C sort > "$tmp/got"
LC_ALL=C sort "$src/serve_smoke_golden.jsonl" > "$tmp/want"
diff -u "$tmp/want" "$tmp/got"
echo "serve smoke: $(wc -l < "$tmp/got") responses match golden"
