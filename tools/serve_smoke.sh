#!/bin/sh
# Golden smoke test for parabb_serve: pipes the 50-request JSONL batch
# through the service (single worker, so cache-hit flags and response
# sets are deterministic) and diffs against the checked-in golden file.
#
# Normalization: the "seconds" field is wall-clock and is zeroed before
# the diff; both sides are sorted because responses may legitimately
# interleave with error lines emitted by the reader thread.
#
# Usage: serve_smoke.sh <parabb_serve-binary> <dir-with-requests+golden>
set -eu
bin=$1
src=$2
tmp="${TMPDIR:-/tmp}/serve_smoke.$$"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp"

"$bin" --workers 1 --quiet "$src/serve_smoke_requests.jsonl" \
  | sed -E 's/"seconds":[0-9eE.+-]+/"seconds":0/' \
  | LC_ALL=C sort > "$tmp/got"
LC_ALL=C sort "$src/serve_smoke_golden.jsonl" > "$tmp/want"
diff -u "$tmp/want" "$tmp/got"
echo "serve smoke: $(wc -l < "$tmp/got") responses match golden"

# Closed-stdout regression: a client that goes away must not kill the
# server with SIGPIPE. Writing responses to /dev/full makes every stdout
# flush fail; the server must drain its in-flight jobs and exit with the
# distinct broken-stream code 6 (docs/robustness.md).
rc=0
"$bin" --workers 1 --quiet "$src/serve_smoke_requests.jsonl" \
  > /dev/full 2> "$tmp/broken.err" || rc=$?
if [ "$rc" -ne 6 ]; then
  echo "expected exit 6 on closed stdout, got $rc" >&2
  cat "$tmp/broken.err" >&2
  exit 1
fi
grep -q "output stream closed" "$tmp/broken.err"
echo "serve smoke: closed stdout drained with exit 6"
