#!/bin/sh
# Golden smoke test for parabb_serve: pipes the 50-request JSONL batch
# through the service (single worker, so cache-hit flags and response
# sets are deterministic) and diffs against the checked-in golden file.
#
# Normalization: the "seconds" field is wall-clock and is zeroed before
# the diff; both sides are sorted because responses may legitimately
# interleave with error lines emitted by the reader thread.
#
# Usage: serve_smoke.sh <parabb_serve-binary> <dir-with-requests+golden>
set -eu
bin=$1
src=$2
tmp="${TMPDIR:-/tmp}/serve_smoke.$$"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp"

"$bin" --workers 1 --quiet "$src/serve_smoke_requests.jsonl" \
  | sed -E 's/"seconds":[0-9eE.+-]+/"seconds":0/' \
  | LC_ALL=C sort > "$tmp/got"
LC_ALL=C sort "$src/serve_smoke_golden.jsonl" > "$tmp/want"
diff -u "$tmp/want" "$tmp/got"
echo "serve smoke: $(wc -l < "$tmp/got") responses match golden"

# Closed-stdout regression: a client that goes away must not kill the
# server with SIGPIPE. Writing responses to /dev/full makes every stdout
# flush fail; the server must drain its in-flight jobs and exit with the
# distinct broken-stream code 6 (docs/robustness.md).
rc=0
"$bin" --workers 1 --quiet "$src/serve_smoke_requests.jsonl" \
  > /dev/full 2> "$tmp/broken.err" || rc=$?
if [ "$rc" -ne 6 ]; then
  echo "expected exit 6 on closed stdout, got $rc" >&2
  cat "$tmp/broken.err" >&2
  exit 1
fi
grep -q "output stream closed" "$tmp/broken.err"
echo "serve smoke: closed stdout drained with exit 6"

# SIGTERM drain regression (docs/robustness.md, "Recovery"): a terminated
# server must answer every job it already accepted, flush its journal,
# and exit with the same drained-early code 6 — never drop accepted work
# on the floor. The requests arrive through a FIFO held open so the
# server is genuinely parked in its read loop when the signal lands.
mkfifo "$tmp/pipe"
"$bin" --workers 1 --quiet --journal "$tmp/wal" \
  < "$tmp/pipe" > "$tmp/term.out" 2> "$tmp/term.err" &
spid=$!
exec 3> "$tmp/pipe"
head -2 "$src/serve_smoke_requests.jsonl" >&3
sleep 1  # let both jobs complete; the server is now blocked reading
kill -TERM "$spid"
rc=0
wait "$spid" || rc=$?
exec 3>&-
if [ "$rc" -ne 6 ]; then
  echo "expected exit 6 on SIGTERM, got $rc" >&2
  cat "$tmp/term.err" >&2
  exit 1
fi
grep -q "SIGTERM" "$tmp/term.err"
[ "$(wc -l < "$tmp/term.out")" -eq 2 ]
[ "$(grep -c '"t":"accept"' "$tmp/wal/journal.log")" -eq 2 ]
[ "$(grep -c '"t":"complete"' "$tmp/wal/journal.log")" -eq 2 ]
echo "serve smoke: SIGTERM drained 2 jobs, journal flushed, exit 6"

# Journal duplicate suppression: a restarted server answers resubmitted
# ids from the completed log — byte-identical responses, no re-solve, no
# new journal records.
head -2 "$src/serve_smoke_requests.jsonl" \
  | "$bin" --workers 1 --quiet --journal "$tmp/wal" > "$tmp/dup.out"
LC_ALL=C sort "$tmp/term.out" > "$tmp/term.sorted"
LC_ALL=C sort "$tmp/dup.out" > "$tmp/dup.sorted"
diff -u "$tmp/term.sorted" "$tmp/dup.sorted"
[ "$(grep -c '"t":"accept"' "$tmp/wal/journal.log")" -eq 2 ]
echo "serve smoke: restart answered 2 duplicates from the journal"
