// parabb_verify — independent optimality-certificate checker.
//
// Loads a TGF task graph and a certificate written by `parabb_solve
// --certify` (or the service's "certify" request flag) and re-validates
// the engine's claims without trusting the engine: the incumbent goes
// through the schedule validator, every logged cut is re-bounded with the
// from-scratch reference lower bound, and an exhaustive budgeted replay
// confirms no cheaper schedule exists (see verify/verifier.hpp).
//
//   $ parabb_solve graph.tgf --procs 2 --certify run.cert
//   $ parabb_verify graph.tgf run.cert --procs 2
//
// Exit status: 0 = certified, 1 = rejected (or replay budget exhausted
// without confirmation), 2 = usage or input error.
#include <cstdio>
#include <string>

#include "parabb/service/protocol.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/taskgraph/io.hpp"
#include "parabb/verify/certificate_io.hpp"
#include "parabb/verify/verifier.hpp"

int main(int argc, char** argv) {
  using namespace parabb;

  ArgParser parser("parabb_verify",
                   "Independently check a B&B optimality certificate");
  parser.add_option("procs", "number of identical processors", "2");
  parser.add_option("comm", "nominal delay per data item per hop", "1");
  parser.add_option("topology",
                    "interconnect: bus | ring | line | mesh<RxC> "
                    "(e.g. mesh2x2)",
                    "bus");
  parser.add_option("max-replayed",
                    "optimality-replay state budget (0 = audit only)",
                    "1000000");
  parser.add_flag("quiet", "print only the verdict line");

  try {
    if (!parser.parse(argc, argv)) return 0;
    if (parser.positional().size() != 2) {
      std::fprintf(stderr,
                   "usage: parabb_verify <graph.tgf> <certificate> "
                   "[options]\n");
      return 2;
    }

    const TaskGraph graph = load_tgf(parser.positional()[0]);
    const Machine machine =
        machine_from_spec(static_cast<int>(parser.get_int("procs")),
                          parser.get_int("comm"),
                          parser.get_string("topology"));
    const Certificate cert =
        load_certificate(parser.positional()[1], graph);

    VerifyOptions options;
    const auto budget = parser.get_int("max-replayed");
    if (budget <= 0) {
      options.audit_only = true;
    } else {
      options.max_replayed = static_cast<std::uint64_t>(budget);
    }

    const VerifyReport report = verify_certificate(graph, machine, cert,
                                                   options);
    if (!parser.has_flag("quiet")) {
      std::printf("%s\n", report.summary().c_str());
    }
    std::printf("verdict: %s\n", report.certified ? "CERTIFIED"
                                : report.exhausted ? "UNDECIDED (budget)"
                                                   : "REJECTED");
    if (!report.error.empty()) {
      std::fprintf(stderr, "parabb_verify: %s\n", report.error.c_str());
    }
    return report.certified ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parabb_verify: %s\n", e.what());
    return 2;
  }
}
