// parabb_serve — JSONL solver service front end.
//
// Reads one JSON request per line from stdin (or a file given as the
// positional argument), admits each onto a SolverService, and writes one
// JSON response line per request to stdout. Responses are emitted as jobs
// finish, so they may appear out of submission order; clients correlate
// by the request `id`. Lines that fail to parse produce an error response
// instead of killing the stream. On shutdown a service counters summary
// is printed to stderr (suppress with --quiet).
//
//   $ parabb_serve < requests.jsonl > responses.jsonl
//   $ parabb_serve --workers 4 --cache 512 requests.jsonl
//
// Protocol schema: docs/formats.md, "Solver service protocol".
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "parabb/service/protocol.hpp"
#include "parabb/service/service.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/json.hpp"
#include "parabb/support/table.hpp"

namespace {

using namespace parabb;

/// Best-effort id recovery from a line whose request failed validation:
/// the error response should still correlate when the JSON itself was
/// well-formed and carried an id.
std::string salvage_id(const std::string& line) {
  try {
    const JsonValue doc = JsonValue::parse(line);
    if (const JsonValue* id = doc.find("id"); id && id->is_string()) {
      return id->as_string();
    }
  } catch (const std::exception&) {
  }
  return "";
}

void print_summary(const SolverService& service, std::uint64_t rejected) {
  TextTable table;
  table.set_header({"counter", "value"});
  for (const auto& [label, value] : service.counters().rows()) {
    table.add_row({label, std::to_string(value)});
  }
  const CacheCounters cc = service.cache_counters();
  table.add_row({"cache insertions", std::to_string(cc.insertions)});
  table.add_row({"cache evictions", std::to_string(cc.evictions)});
  table.add_row({"cache collisions", std::to_string(cc.collisions)});
  table.add_row({"rejected requests", std::to_string(rejected)});
  std::fprintf(stderr, "%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("parabb_serve",
                   "JSONL multi-tenant solver service (one request per "
                   "line on stdin, one response per line on stdout)");
  parser.add_option("workers", "concurrent solve cap (0 = hardware)", "0");
  parser.add_option("cache", "result-cache entries (0 = disabled)", "256");
  parser.add_flag("quiet", "suppress the shutdown counters summary");

  try {
    if (!parser.parse(argc, argv)) return 0;
    if (parser.positional().size() > 1) {
      std::fprintf(stderr, "usage: parabb_serve [requests.jsonl]\n");
      return 2;
    }

    std::ifstream file;
    if (!parser.positional().empty()) {
      file.open(parser.positional()[0]);
      if (!file) {
        std::fprintf(stderr, "parabb_serve: cannot open %s\n",
                     parser.positional()[0].c_str());
        return 2;
      }
    }
    std::istream& in = file.is_open() ? file : std::cin;

    ServiceConfig config;
    config.workers = static_cast<int>(parser.get_int("workers"));
    config.cache_entries =
        static_cast<std::size_t>(parser.get_int("cache"));
    SolverService service(config);

    std::mutex out_mutex;
    const auto emit = [&out_mutex](const std::string& json_line) {
      std::lock_guard lock(out_mutex);
      std::fputs(json_line.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    };

    std::uint64_t rejected = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      JobRequest request;
      try {
        request = request_from_json(line);
      } catch (const std::exception& e) {
        ++rejected;
        emit(error_response_json(salvage_id(line), e.what()));
        continue;
      }
      // The request is moved into the service; the responder needs the
      // graph for task names, so it keeps its own copy.
      auto graph = std::make_shared<const TaskGraph>(request.graph);
      service.submit(std::move(request),
                     [&emit, graph](const JobResult& result) {
                       emit(response_to_json(result, *graph));
                     });
    }

    service.wait_all();
    if (!parser.has_flag("quiet")) print_summary(service, rejected);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parabb_serve: %s\n", e.what());
    return 2;
  }
}
