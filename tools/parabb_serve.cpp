// parabb_serve — JSONL solver service front end.
//
// Reads one JSON request per line from stdin (or a file given as the
// positional argument), admits each onto a SolverService, and writes one
// JSON response line per request to stdout. Responses are emitted as jobs
// finish, so they may appear out of submission order; clients correlate
// by the request `id`. Lines that fail to parse produce an error response
// instead of killing the stream. On shutdown a counters summary, sourced
// from the metrics registry, is printed to stderr (suppress with --quiet).
//
// Observability (docs/observability.md):
//   * {"id":"m1","metrics":true} on the input stream is answered in-band
//     with a full registry snapshot (live queue/cache/engine counters).
//   * --metrics-interval S streams a snapshot line to stderr every S
//     seconds while the service runs.
//   * --metrics-prom PATH writes a Prometheus text dump at shutdown.
//   * --spans PATH writes the per-job phase spans as JSONL at shutdown.
//   * a request carrying "flight":true gets a flight-recorder dump
//     attached to its response if it times out or is cancelled.
//
// Durability (docs/robustness.md, "Recovery"):
//   * --journal DIR arms a write-ahead job journal: every request is
//     journaled before it is admitted and every response before it is
//     emitted, and running jobs checkpoint their engine state into DIR.
//     A restarted server replays the journal — still-pending jobs are
//     re-enqueued (resuming mid-search from their checkpoint) and a
//     resubmitted id that already completed is answered straight from
//     the log, never solved twice.
//   * SIGTERM drains: in-flight jobs finish, their responses are emitted
//     and journaled, and the process exits 6 (same as a closed stdout).
//
//   $ parabb_serve < requests.jsonl > responses.jsonl
//   $ parabb_serve --workers 4 --cache 512 requests.jsonl
//   $ parabb_serve --journal /var/lib/parabb/jobs < requests.jsonl
//
// Protocol schema: docs/formats.md, "Solver service protocol".
#include <signal.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "parabb/ckpt/journal.hpp"
#include "parabb/obs/metrics.hpp"
#include "parabb/obs/span.hpp"
#include "parabb/robust/fault.hpp"
#include "parabb/service/backoff.hpp"
#include "parabb/service/protocol.hpp"
#include "parabb/service/service.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/json.hpp"
#include "parabb/support/table.hpp"

namespace {

using namespace parabb;

/// SIGTERM = drain-and-exit. The handler only sets a flag; the read loop
/// checks it per line and — because the handler is installed without
/// SA_RESTART — a getline blocked on stdin is interrupted (EINTR) instead
/// of resuming, so the loop falls through to the normal drain path.
std::atomic<bool> g_terminate{false};

extern "C" void handle_serve_sigterm(int) {
  g_terminate.store(true, std::memory_order_relaxed);
}

/// Best-effort id recovery from a line whose request failed validation:
/// the error response should still correlate when the JSON itself was
/// well-formed and carried an id.
std::string salvage_id(const std::string& line) {
  try {
    const JsonValue doc = JsonValue::parse(line);
    if (const JsonValue* id = doc.find("id"); id && id->is_string()) {
      return id->as_string();
    }
  } catch (const std::exception&) {
  }
  return "";
}

/// Shutdown summary, sourced from the registry (the ServiceCounters twin
/// is kept for API clients; this table proves the registry carries the
/// same truth). Labels are stable for scripts that scrape stderr.
void print_summary(const MetricsSnapshot& snap, const CacheCounters& cc,
                   std::uint64_t rejected) {
  const auto counter = [&snap](const char* name) {
    const auto* c = snap.find_counter(name);
    return c ? c->value : 0;
  };
  const auto gauge = [&snap](const char* name) -> std::int64_t {
    const auto* g = snap.find_gauge(name);
    return g ? g->value : 0;
  };
  TextTable table;
  table.set_header({"counter", "value"});
  const std::pair<const char*, const char*> rows[] = {
      {"jobs admitted", "parabb_service_jobs_admitted_total"},
      {"jobs completed", "parabb_service_jobs_completed_total"},
      {"  optimal", "parabb_service_jobs_optimal_total"},
      {"  feasible_timeout", "parabb_service_jobs_feasible_timeout_total"},
      {"  cancelled", "parabb_service_jobs_cancelled_total"},
      {"  infeasible", "parabb_service_jobs_infeasible_total"},
      {"  errors", "parabb_service_jobs_error_total"},
      {"cache hits", "parabb_service_cache_hits_total"},
      {"cache misses", "parabb_service_cache_misses_total"},
      {"vertices expanded", "parabb_search_expanded_total"},
      {"vertices generated", "parabb_search_generated_total"},
  };
  for (const auto& [label, metric] : rows) {
    table.add_row({label, std::to_string(counter(metric))});
  }
  table.add_row({"queue depth peak",
                 std::to_string(gauge("parabb_service_queue_depth_peak"))});
  table.add_row({"cache insertions", std::to_string(cc.insertions)});
  table.add_row({"cache evictions", std::to_string(cc.evictions)});
  table.add_row({"cache collisions", std::to_string(cc.collisions)});
  table.add_row({"rejected requests", std::to_string(rejected)});
  std::fprintf(stderr, "%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("parabb_serve",
                   "JSONL multi-tenant solver service (one request per "
                   "line on stdin, one response per line on stdout)");
  parser.add_option("workers", "concurrent solve cap (0 = hardware)", "0");
  parser.add_option("cache", "result-cache entries (0 = disabled)", "256");
  parser.add_option("metrics-interval",
                    "stream a metrics snapshot to stderr every N seconds "
                    "(0 = off)",
                    "0");
  parser.add_option("metrics-prom",
                    "write a Prometheus text dump here at shutdown", "");
  parser.add_option("spans", "write phase spans (JSONL) here at shutdown",
                    "");
  parser.add_option("max-queue",
                    "admission control: shed submissions past this many "
                    "pending jobs (0 = unbounded)",
                    "0");
  parser.add_option("watchdog-ms",
                    "cancel a running job after this long without search "
                    "progress (0 = off)",
                    "0");
  parser.add_option("resubmit",
                    "max exponential-backoff resubmits after an "
                    "overloaded rejection",
                    "3");
  parser.add_option("backoff-seed",
                    "seed for the full-jitter resubmit backoff", "1");
  parser.add_option("journal",
                    "durable job journal directory: write-ahead "
                    "accept/complete log plus per-job engine checkpoints, "
                    "replayed on restart (empty = off)",
                    "");
  parser.add_option("checkpoint-interval",
                    "per-job engine snapshot cadence in ms (with "
                    "--journal)",
                    "1000");
  parser.add_option("inject-faults",
                    "run every job under a seeded fault plan (robustness "
                    "testing; empty = off)",
                    "");
  parser.add_flag("quiet", "suppress the shutdown counters summary");

#ifdef SIGPIPE
  // A client closing the response stream must not kill the server with
  // SIGPIPE; writes fail with EPIPE instead, which emit() detects and
  // turns into a clean drain + exit 6 (docs/robustness.md).
  std::signal(SIGPIPE, SIG_IGN);
#endif

  // sigaction, not std::signal: SA_RESTART must stay OFF so a read
  // blocked on stdin is interrupted when the drain flag is raised.
  struct sigaction term_action = {};
  term_action.sa_handler = handle_serve_sigterm;
  sigemptyset(&term_action.sa_mask);
  term_action.sa_flags = 0;
  sigaction(SIGTERM, &term_action, nullptr);

  try {
    if (!parser.parse(argc, argv)) return 0;
    if (parser.positional().size() > 1) {
      std::fprintf(stderr, "usage: parabb_serve [requests.jsonl]\n");
      return 2;
    }

    std::ifstream file;
    if (!parser.positional().empty()) {
      file.open(parser.positional()[0]);
      if (!file) {
        std::fprintf(stderr, "parabb_serve: cannot open %s\n",
                     parser.positional()[0].c_str());
        return 2;
      }
    }
    std::istream& in = file.is_open() ? file : std::cin;

    // Declared before the service so they outlive it: the service's
    // destructor detaches its registry collector.
    MetricsRegistry registry;
    SpanLog span_log;

    std::optional<FaultInjector> injector;
    if (const std::string fs = parser.get_string("inject-faults");
        !fs.empty()) {
      injector.emplace(
          FaultPlan::random(static_cast<std::uint64_t>(std::stoull(fs))));
      std::fprintf(stderr, "fault plan: %s\n",
                   injector->plan().describe().c_str());
    }

    // Declared before the service: running jobs checkpoint through the
    // journal pointer until the service drains.
    std::optional<JobJournal> journal;
    std::map<std::string, std::string> completed;
    std::vector<JobJournal::PendingJob> recovered;
    if (const std::string jd = parser.get_string("journal"); !jd.empty()) {
      JobJournal::Replay replayed = JobJournal::replay(jd);
      completed = std::move(replayed.completed);
      recovered = std::move(replayed.pending);
      if (replayed.malformed > 0) {
        std::fprintf(stderr,
                     "parabb_serve: journal: ignored %zu malformed "
                     "record(s) (torn tail write)\n",
                     replayed.malformed);
      }
      journal.emplace(jd);
    }

    ServiceConfig config;
    config.workers = static_cast<int>(parser.get_int("workers"));
    config.cache_entries =
        static_cast<std::size_t>(parser.get_int("cache"));
    config.metrics = &registry;
    config.spans = &span_log;
    config.max_queue_depth =
        static_cast<std::size_t>(parser.get_int("max-queue"));
    config.watchdog_stall_ms = parser.get_double("watchdog-ms");
    if (injector) config.faults = &*injector;
    if (journal) {
      config.journal = &*journal;
      config.checkpoint_interval_ms =
          parser.get_double("checkpoint-interval");
    }
    SolverService service(config);

    // A closed/broken stdout (client went away) stops the read loop; the
    // in-flight jobs still drain so the service shuts down cleanly.
    std::atomic<bool> out_broken{false};
    std::mutex out_mutex;
    const auto emit = [&out_mutex, &out_broken](const std::string& json_line) {
      std::lock_guard lock(out_mutex);
      if (out_broken.load(std::memory_order_relaxed)) return;
      if (std::fputs(json_line.c_str(), stdout) < 0 ||
          std::fputc('\n', stdout) < 0 || std::fflush(stdout) != 0) {
        std::clearerr(stdout);
        out_broken.store(true, std::memory_order_relaxed);
      }
    };

    // Periodic snapshot streamer (stderr, so stdout stays pure protocol).
    const double interval_s = parser.get_double("metrics-interval");
    std::atomic<bool> stop_streamer{false};
    std::thread streamer;
    if (interval_s > 0) {
      streamer = std::thread([&registry, &stop_streamer, interval_s] {
        const auto step = std::chrono::milliseconds(20);
        auto next = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(interval_s);
        while (!stop_streamer.load()) {
          if (std::chrono::steady_clock::now() >= next) {
            const std::string line =
                metrics_response_json("metrics-interval",
                                      registry.snapshot());
            std::fprintf(stderr, "%s\n", line.c_str());
            next += std::chrono::duration<double>(interval_s);
          }
          std::this_thread::sleep_for(step);
        }
      });
    }

    const int max_resubmits =
        static_cast<int>(parser.get_int("resubmit"));
    BackoffPolicy backoff(
        static_cast<std::uint64_t>(parser.get_int("backoff-seed")));
    std::uint64_t rejected = 0;

    // Submission path shared by journal-recovered and fresh requests.
    // The terminal response is journaled before it is emitted, so a
    // response the client may have seen is always answerable again from
    // the completed log after a restart. Overloaded rejections retry
    // under seeded full jitter (service/backoff.hpp) so shed clients
    // don't re-stampede in lock-step.
    const auto submit_request = [&](JobRequest request) {
      // The responder needs the graph for task names, so it keeps its
      // own copy (the request itself is copied per submission attempt).
      auto graph = std::make_shared<const TaskGraph>(request.graph);
      JobJournal* const wal = journal ? &*journal : nullptr;
      const auto on_done = [&emit, graph, wal](const JobResult& result) {
        const std::string json_line = response_to_json(result, *graph);
        if (wal != nullptr) wal->record_complete(result.id, json_line);
        emit(json_line);
      };
      for (int attempt = 0;; ++attempt) {
        try {
          service.submit(request, on_done);
          break;
        } catch (const OverloadedError& e) {
          if (attempt >= max_resubmits) {
            ++rejected;
            // Shed past the retry budget: void the accept record so a
            // restart does not replay a job the client was told to
            // resubmit themselves.
            if (wal != nullptr) wal->record_cancel(request.id);
            emit(overloaded_response_json(request.id, e.retry_after_ms));
            break;
          }
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(
                  backoff.delay_ms(e.retry_after_ms, attempt)));
        }
      }
    };

    // Journal replay: jobs accepted by a previous incarnation that never
    // completed are re-enqueued; each resumes mid-search from its per-job
    // checkpoint when one survived.
    if (!recovered.empty()) {
      std::fprintf(stderr,
                   "parabb_serve: journal: re-enqueueing %zu in-flight "
                   "job(s)\n",
                   recovered.size());
      for (const auto& p : recovered) {
        try {
          submit_request(request_from_json(p.request_json));
        } catch (const std::exception& e) {
          ++rejected;
          const std::string resp = error_response_json(p.id, e.what());
          if (journal) journal->record_complete(p.id, resp);
          emit(resp);
        }
      }
    }

    std::size_t line_no = 0;
    std::string line;
    while (!out_broken.load(std::memory_order_relaxed) &&
           !g_terminate.load(std::memory_order_relaxed) &&
           std::getline(in, line)) {
      ++line_no;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

      // In-band metrics requests are answered synchronously: the snapshot
      // reflects everything admitted before this line.
      try {
        if (const auto mreq = parse_metrics_request(line, line_no)) {
          emit(metrics_response_json(mreq->id, registry.snapshot()));
          continue;
        }
      } catch (const std::exception& e) {
        ++rejected;
        emit(error_response_json(salvage_id(line), e.what()));
        continue;
      }

      JobRequest request;
      try {
        request = request_from_json(line);
      } catch (const std::exception& e) {
        ++rejected;
        emit(error_response_json(salvage_id(line), e.what()));
        continue;
      }
      if (journal) {
        // Duplicate resubmission of a journaled job: answer from the
        // completed log without solving twice (at-most-once execution
        // across restarts).
        if (const auto it = completed.find(request.id);
            it != completed.end()) {
          emit(it->second);
          continue;
        }
        // Write-ahead accept: once this record is durable, a crash
        // before the response leads to replay-and-resume on restart.
        journal->record_accept(request.id, line);
      }
      submit_request(std::move(request));
    }

    service.wait_all();
    if (streamer.joinable()) {
      stop_streamer.store(true);
      streamer.join();
    }

    const std::string prom_path = parser.get_string("metrics-prom");
    if (!prom_path.empty()) {
      write_text_file(prom_path, registry.snapshot().to_prometheus());
    }
    const std::string spans_path = parser.get_string("spans");
    if (!spans_path.empty()) {
      write_text_file(spans_path, span_log.to_jsonl());
    }
    if (!parser.has_flag("quiet")) {
      print_summary(registry.snapshot(), service.cache_counters(),
                    rejected);
    }
    if (out_broken.load()) {
      std::fprintf(stderr,
                   "parabb_serve: output stream closed; drained in-flight "
                   "jobs and stopped\n");
      return 6;
    }
    if (g_terminate.load(std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "parabb_serve: SIGTERM: drained in-flight jobs, "
                   "flushed the journal, and stopped\n");
      return 6;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parabb_serve: %s\n", e.what());
    return 2;
  }
}
