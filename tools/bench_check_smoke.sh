#!/bin/sh
# bench_check_smoke.sh <bench-binary> <baseline.json> <scratch.json>
#
# Runs one tiny iteration of a benchmark binary with JSON output and checks
# the result against its checked-in baseline with bench_check.py
# --structure-only. Structure-only keeps container timing noise out of the
# ctest gate while still failing the moment a benchmark is added, removed,
# or renamed without regenerating bench/baselines/ (docs/testing.md).
#
# The output flavor is picked from the binary's CLI: google-benchmark
# binaries take --benchmark_out, the repo's own harnesses take --json.
set -eu

bench=$1
baseline=$2
scratch=$3
tools_dir=$(dirname "$0")

case $baseline in
  *micro_lower_bound*|*micro_obs*|*micro_parallel*|*micro_degrade*|*micro_checkpoint*)
    "$bench" --quick --json "$scratch" > /dev/null
    ;;
  *)
    "$bench" --benchmark_min_time=0.001 \
             --benchmark_out="$scratch" \
             --benchmark_out_format=json > /dev/null
    ;;
esac

exec python3 "$tools_dir/bench_check.py" --structure-only \
    "$scratch" "$baseline"
