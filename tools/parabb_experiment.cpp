// parabb_experiment — run a spec-file-described experiment.
//
//   $ parabb_experiment my_experiment.spec [--csv out.csv] [--no-figure]
//
// See docs/formats.md and experiments/spec.hpp for the spec grammar; the
// shipped specs/ directory contains the paper's Figure 3 experiments as
// editable files.
#include <cstdio>

#include "parabb/experiments/plot.hpp"
#include "parabb/experiments/report.hpp"
#include "parabb/experiments/spec.hpp"
#include "parabb/support/cli.hpp"

int main(int argc, char** argv) {
  using namespace parabb;

  ArgParser parser("parabb_experiment",
                   "Run an experiment described by a spec file");
  parser.add_option("csv", "write the report table as CSV here", "");
  parser.add_flag("no-figure", "skip the ASCII figure panels");
  try {
    if (!parser.parse(argc, argv)) return 0;
    if (parser.positional().size() != 1) {
      std::fprintf(stderr,
                   "usage: parabb_experiment <file.spec> [options]\n");
      return 2;
    }
    const ExperimentConfig cfg =
        load_experiment_spec(parser.positional()[0]);

    std::printf("spec: %s\nvariants: %zu; machines:",
                parser.positional()[0].c_str(), cfg.variants.size());
    for (const int m : cfg.machine_sizes) std::printf(" %d", m);
    std::printf("; reps %d..%d; seed %llu\n", cfg.min_reps, cfg.max_reps,
                static_cast<unsigned long long>(cfg.seed));
    std::fflush(stdout);

    const ExperimentResult result = run_experiment(cfg);
    emit("results", make_report_table(cfg, result),
         parser.get_string("csv"));
    if (cfg.variants.size() > 1) {
      emit("ratios vs " + cfg.variants[0].label,
           make_ratio_table(cfg, result, 0));
    }
    if (!parser.has_flag("no-figure") && cfg.machine_sizes.size() > 1) {
      std::printf("\n%s",
                  render_paper_figure(cfg, result,
                                      parser.positional()[0])
                      .c_str());
    }
    std::printf("replications used: %d (%s)\n", result.reps_used,
                result.converged ? "CI targets met"
                                 : "replication cap reached first");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parabb_experiment: %s\n", e.what());
    return 2;
  }
}
