#!/bin/sh
# Observability smoke test, end to end through both CLIs:
#
#  * parabb_serve answers an in-band {"metrics":true} request with live
#    registry counters, rejects a malformed metrics request with a
#    line-numbered error, attaches a flight-recorder dump to a job that
#    exhausts its vertex budget, and writes a Prometheus text dump at
#    shutdown with nonzero engine counters.
#  * parabb_solve --stats-json emits a parabb-bench-v1 record whose
#    "solve" table carries the search stats.
#
# Requests are submitted with --workers 1 and the metrics line follows
# the admissions it asserts on, so every checked counter is
# deterministic.
#
# Usage: obs_smoke.sh <parabb_serve> <parabb_solve> <graph.tgf>
set -eu
serve=$1
solve=$2
graph=$3
tmp="${TMPDIR:-/tmp}/obs_smoke.$$"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp"

# Line 1: a quick optimal job. Line 2: a 14-task instance (deterministic
# generator below) budgeted so it times out with an incumbent, flight
# recording on. Line 3: a metrics probe. Line 4: a malformed metrics
# request that must be rejected with its line number.
python3 - "$tmp/requests.jsonl" <<'EOF'
import json, random, sys
random.seed(7)
lines = [f"task t{i} exec={random.randint(1,9)}" for i in range(14)]
for i in range(14):
    for j in range(i + 1, 14):
        if random.random() < 0.18:
            lines.append(f"arc t{i} t{j}")
big = "\n".join(lines) + "\n"
small = "task a exec=3\ntask b exec=4\narc a b\n"
reqs = [
    {"id": "job-small", "graph": small, "procs": 2},
    {"id": "job-flight", "graph": big, "procs": 3,
     "budget": {"max_generated": 400}, "flight": True},
    {"id": "m1", "metrics": True},
    {"id": "m-bad", "metrics": True, "bogus": 1},
]
with open(sys.argv[1], "w") as f:
    for r in reqs:
        f.write(json.dumps(r) + "\n")
EOF

"$serve" --workers 1 --quiet --metrics-prom "$tmp/prom.txt" \
    "$tmp/requests.jsonl" > "$tmp/responses.jsonl"

python3 - "$tmp/responses.jsonl" "$tmp/prom.txt" <<'EOF'
import json, sys
by_id = {}
for line in open(sys.argv[1]):
    r = json.loads(line)
    by_id[r.get("id", "")] = r

m1 = by_id["m1"]
admitted = m1["metrics"]["counters"]["parabb_service_jobs_admitted_total"]
assert admitted == 2, f"metrics response saw {admitted} admissions, want 2"

bad = by_id["m-bad"]
assert "line 4" in bad["error"] and "unknown field" in bad["error"], \
    f"bad metrics error not line-numbered: {bad['error']!r}"

fl = by_id["job-flight"]
assert fl["outcome"] == "feasible_timeout", fl["outcome"]
dump = fl["flight"]
events = dump["workers"][0]["events"]
assert events, "flight dump carries no events"
seqs = [e["seq"] for e in events]
assert seqs == sorted(seqs), "flight events out of order"
kinds = {e["event"] for e in events}
assert "expand" in kinds, f"no expand events in {kinds}"

assert by_id["job-small"]["outcome"] == "optimal"
assert "flight" not in by_id["job-small"], "flight attached without flag"

prom = open(sys.argv[2]).read()
for line in prom.splitlines():
    if line.startswith("parabb_search_expanded_total "):
        assert int(line.split()[1]) > 0, "engine counters absent from prom"
        break
else:
    raise AssertionError("parabb_search_expanded_total missing from prom")
print("obs smoke: serve metrics, flight dump, and prom dump OK")
EOF

"$solve" "$graph" --procs 2 --quiet --stats-json "$tmp/stats.json"
python3 - "$tmp/stats.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "parabb-bench-v1", doc["schema"]
table = doc["tables"]["solve"]
rows = {r[0]: r[1] for r in table["rows"]}
assert int(rows["expanded"]) > 0
assert rows["outcome"] == "optimal"
assert rows["proved"] == "1"
print("obs smoke: --stats-json record OK")
EOF
