#!/usr/bin/env python3
"""Compare a fresh benchmark --json run against a checked-in baseline.

Two formats are auto-detected:

* parabb-bench-v1 (the repo's own harnesses, e.g. micro_lower_bound
  --json): named tables of header + string rows, numeric cells carrying
  k/M/G magnitude suffixes and "x" speedup suffixes.
* google-benchmark JSON (micro_bench / micro_service --benchmark_out):
  a "benchmarks" array with per-benchmark real_time/cpu_time.

Modes:

* default     -- structure must match AND every numeric quantity must lie
                 within --tolerance (relative) of the baseline. For use on
                 a quiet machine when hunting perf regressions.
* --structure-only -- timing-free: the fresh run must contain the same
                 benchmarks / tables / headers as the baseline. This is
                 what the bench_check_* ctest entries run, so baselines
                 cannot drift from the binaries without failing CI while
                 noisy container timings stay out of the gate.

Exit status: 0 = match, 1 = mismatch/regression, 2 = usage or I/O error.

Regenerate baselines (docs/testing.md "Baseline regeneration"):

  build/bench/micro_bench --benchmark_out=bench/baselines/BENCH_micro_bench.json \
      --benchmark_out_format=json
  build/bench/micro_service --benchmark_out=bench/baselines/BENCH_micro_service.json \
      --benchmark_out_format=json
"""

import argparse
import json
import re
import sys

# "15.31M" -> 15.31e6, "995.8k" -> 995.8e3, "0.88x" -> 0.88, "1.37" -> 1.37
_NUMBER = re.compile(r"^(-?\d+(?:\.\d+)?)([kMG]?)x?$")
_MAGNITUDE = {"": 1.0, "k": 1e3, "M": 1e6, "G": 1e9}


def parse_cell(cell):
    """Numeric value of a table cell, or None for a label cell."""
    m = _NUMBER.match(str(cell).strip())
    if not m:
        return None
    return float(m.group(1)) * _MAGNITUDE[m.group(2)]


def within(fresh, base, tolerance):
    if base == 0:
        return fresh == 0
    return abs(fresh - base) <= tolerance * abs(base)


class Mismatch(Exception):
    pass


def check_parabb(fresh, base, tolerance, structure_only):
    if fresh.get("bench") != base.get("bench"):
        raise Mismatch(
            f"bench name differs: {fresh.get('bench')!r} vs "
            f"{base.get('bench')!r}")
    fresh_tables = fresh.get("tables", {})
    base_tables = base.get("tables", {})
    if set(fresh_tables) != set(base_tables):
        raise Mismatch(
            f"table sets differ: {sorted(fresh_tables)} vs "
            f"{sorted(base_tables)}")
    for name, bt in base_tables.items():
        ft = fresh_tables[name]
        if ft.get("header") != bt.get("header"):
            raise Mismatch(f"table {name!r}: header changed: "
                           f"{ft.get('header')} vs {bt.get('header')}")
        if structure_only:
            continue
        if len(ft.get("rows", [])) != len(bt.get("rows", [])):
            raise Mismatch(f"table {name!r}: row count "
                           f"{len(ft.get('rows', []))} vs "
                           f"{len(bt.get('rows', []))}")
        for fr, br in zip(ft["rows"], bt["rows"]):
            for col, (fc, bc) in enumerate(zip(fr, br)):
                bn = parse_cell(bc)
                if bn is None:  # label cell: exact match
                    if str(fc) != str(bc):
                        raise Mismatch(
                            f"table {name!r} col {col}: label {fc!r} vs "
                            f"{bc!r}")
                    continue
                fn = parse_cell(fc)
                if fn is None or not within(fn, bn, tolerance):
                    raise Mismatch(
                        f"table {name!r} col "
                        f"{ft['header'][col]!r}: {fc!r} outside "
                        f"{tolerance:.0%} of baseline {bc!r}")


def check_google(fresh, base, tolerance, structure_only):
    def rows(doc):
        return {
            b["name"]: b
            for b in doc.get("benchmarks", [])
            # aggregate rows (mean/median/stddev) depend on repetition
            # flags, not on the benchmark set
            if b.get("run_type", "iteration") == "iteration"
        }

    fresh_rows, base_rows = rows(fresh), rows(base)
    if set(fresh_rows) != set(base_rows):
        missing = sorted(set(base_rows) - set(fresh_rows))
        extra = sorted(set(fresh_rows) - set(base_rows))
        raise Mismatch(f"benchmark sets differ: missing {missing}, "
                       f"unexpected {extra}")
    if structure_only:
        return
    for name, br in base_rows.items():
        fr = fresh_rows[name]
        if fr.get("time_unit") != br.get("time_unit"):
            raise Mismatch(f"{name}: time unit changed")
        for field in ("real_time", "cpu_time"):
            if field not in br:
                continue
            if not within(fr.get(field, 0.0), br[field], tolerance):
                raise Mismatch(
                    f"{name}: {field} {fr.get(field):.1f} outside "
                    f"{tolerance:.0%} of baseline {br[field]:.1f} "
                    f"{br.get('time_unit', '')}")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("fresh", help="JSON from a fresh benchmark run")
    parser.add_argument("baseline",
                        help="checked-in bench/baselines/BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="relative tolerance band (default 0.5 = ±50%%)")
    parser.add_argument("--structure-only", action="store_true",
                        help="skip timing comparison (CI-safe)")
    args = parser.parse_args()

    fresh, base = load(args.fresh), load(args.baseline)
    try:
        if base.get("schema") == "parabb-bench-v1":
            check_parabb(fresh, base, args.tolerance, args.structure_only)
        elif "benchmarks" in base:
            check_google(fresh, base, args.tolerance, args.structure_only)
        else:
            print("bench_check: unrecognized baseline format",
                  file=sys.stderr)
            sys.exit(2)
    except Mismatch as m:
        print(f"bench_check: MISMATCH: {m}", file=sys.stderr)
        sys.exit(1)
    mode = "structure" if args.structure_only else \
        f"structure + timings within {args.tolerance:.0%}"
    print(f"bench_check: OK ({mode}) {args.fresh} vs {args.baseline}")


if __name__ == "__main__":
    main()
