#!/bin/sh
# Certificate round-trip smoke test: solve the demo instance with
# certificate emission, check the certificate with the independent
# verifier, then tamper with the incumbent and confirm the verifier
# rejects the corrupted file.
#
# The tamper prefixes a "9" to the first schedule line's start= value, so
# the recorded finish no longer matches start + exec — a deterministic
# structural failure regardless of the instance.
#
# Usage: certify_smoke.sh <parabb_solve> <parabb_verify> <graph.tgf>
set -eu
solve=$1
verify=$2
graph=$3
tmp="${TMPDIR:-/tmp}/certify_smoke.$$"
trap 'rm -rf "$tmp"' EXIT
mkdir -p "$tmp"

"$solve" "$graph" --procs 2 --certify "$tmp/run.cert" --quiet
"$verify" "$graph" "$tmp/run.cert" --procs 2

sed 's/start=/start=9/' "$tmp/run.cert" > "$tmp/tampered.cert"
if "$verify" "$graph" "$tmp/tampered.cert" --procs 2 --quiet; then
  echo "certify smoke: FAILED — tampered certificate accepted" >&2
  exit 1
fi
echo "certify smoke: genuine certificate accepted, tampered rejected"
