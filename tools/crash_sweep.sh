#!/bin/sh
# Crash-recovery sweep (docs/robustness.md, "Recovery"): a run SIGKILLed
# at a random point and resumed from its --checkpoint snapshot must reach
# the same optimal lateness — and a CERTIFIED certificate — as the
# uninterrupted run. No warning, no flush, no handler: SIGKILL is the
# harshest crash the kernel can deliver, so surviving it certifies the
# atomic-write discipline (temp file + fsync + rename) end to end.
#
# quick mode (default; wired into ctest as cli_crash_smoke, label
# "recover"): solves the reference instance once uninterrupted, then for
# each seeded trial starts a fresh solve with periodic snapshots, kills
# it dead after a seed-varied delay, resumes from the snapshot with
# --certify, and asserts the resumed cost equals the reference and
# parabb_verify certifies the certificate. Trials rotate across the
# sequential engine and both parallel schedulers (work-stealing at 4
# threads, central queue at 8). A trial that finishes before the kill
# lands just checks its cost — with a fast machine that is a legitimate
# outcome, not a failure.
#
#   crash_sweep.sh quick <parabb_solve> <parabb_verify> <graph.tgf>
#
#   CRASH_SWEEP_SEEDS  trials to run (default 50; ctest uses 6)
#
# full mode (manual / CI, not a ctest — it builds two extra trees):
# configures address- and thread-sanitized builds of the current source
# and re-runs the whole "recover" ctest label under each, covering the
# snapshot codec, the resume grid, and the journal replay with
# instrumented memory / synchronization checking.
#
#   crash_sweep.sh full [source-dir [build-root]]
set -eu

mode=${1:-quick}

case "$mode" in
  quick)
    solve=${2:?usage: crash_sweep.sh quick <parabb_solve> <parabb_verify> <graph.tgf>}
    verify=${3:?usage: crash_sweep.sh quick <parabb_solve> <parabb_verify> <graph.tgf>}
    graph=${4:?usage: crash_sweep.sh quick <parabb_solve> <parabb_verify> <graph.tgf>}
    seeds=${CRASH_SWEEP_SEEDS:-50}
    procs=3
    work=$(mktemp -d "${TMPDIR:-/tmp}/parabb_crash_sweep.XXXXXX")
    trap 'rm -rf "$work"' EXIT INT TERM

    # The uninterrupted reference cost (engine-independent).
    ref=$("$solve" "$graph" --procs $procs --quiet)
    echo "crash_sweep: reference cost $ref"

    resumed=0
    finished=0
    seed=0
    while [ "$seed" -lt "$seeds" ]; do
      case $((seed % 3)) in
        0) engine="--algo bnb" ;;
        1) engine="--algo bnb-parallel --threads 4 --scheduler ws" ;;
        2) engine="--algo bnb-parallel --threads 8 --scheduler central" ;;
      esac
      # Kill delay varied per seed across 0.10 .. 1.00 s of a ~1 s solve.
      delay=$(awk "BEGIN { printf \"%.2f\", 0.10 + ($seed % 10) * 0.10 }")
      ckpt="$work/run$seed.ckpt"
      cert="$work/run$seed.cert"
      out="$work/run$seed.out"
      rm -f "$ckpt" "$cert" "$out"

      # shellcheck disable=SC2086  # $engine is a flag list on purpose
      "$solve" "$graph" --procs $procs $engine --quiet \
               --checkpoint "$ckpt" --checkpoint-interval 50 \
               > "$out" 2>/dev/null &
      pid=$!
      sleep "$delay"
      if kill -KILL "$pid" 2>/dev/null; then
        wait "$pid" 2>/dev/null || :
        if [ ! -f "$ckpt" ]; then
          # Killed before the first snapshot landed (or mid-write, leaving
          # only the temp file): recovery is a fresh start, which the
          # reference run already covers. Still a defined outcome.
          seed=$((seed + 1))
          continue
        fi
        # shellcheck disable=SC2086
        cost=$("$solve" "$graph" --procs $procs $engine --quiet \
                        --resume "$ckpt" --certify "$cert") || {
          echo "crash_sweep: seed $seed ($engine) resume failed" >&2
          exit 1
        }
        if [ "$cost" != "$ref" ]; then
          echo "crash_sweep: seed $seed ($engine) resumed to $cost," \
               "expected $ref" >&2
          exit 1
        fi
        "$verify" "$graph" "$cert" --procs $procs --quiet >/dev/null || {
          echo "crash_sweep: seed $seed ($engine) certificate rejected" >&2
          exit 1
        }
        resumed=$((resumed + 1))
      else
        # The run beat the kill. Its cost must still be the reference.
        wait "$pid" || {
          echo "crash_sweep: seed $seed ($engine) uninterrupted run" \
               "failed" >&2
          exit 1
        }
        cost=$(cat "$out")
        if [ "$cost" != "$ref" ]; then
          echo "crash_sweep: seed $seed ($engine) solved to $cost," \
               "expected $ref" >&2
          exit 1
        fi
        finished=$((finished + 1))
      fi
      seed=$((seed + 1))
    done
    echo "crash_sweep: $seeds trials — $resumed killed+resumed to cost" \
         "$ref with CERTIFIED certificates, $finished finished unkilled"
    ;;

  full)
    src=${2:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
    root=${3:-$src}
    for san in address thread; do
      build="$root/build-$(echo "$san" | cut -c1)san"
      echo "=== PARABB_SANITIZE=$san -> $build ==="
      cmake -B "$build" -S "$src" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DPARABB_SANITIZE="$san" >/dev/null
      cmake --build "$build" -j >/dev/null
      (cd "$build" && ctest -L recover --output-on-failure -j 2)
    done
    echo "crash_sweep: recover label clean under ASan+UBSan and TSan"
    ;;

  *)
    echo "usage: crash_sweep.sh quick <parabb_solve> <parabb_verify> <graph.tgf>" >&2
    echo "       crash_sweep.sh full [source-dir [build-root]]" >&2
    exit 2
    ;;
esac
