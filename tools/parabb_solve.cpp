// parabb_solve — command-line front end to the ParaBB scheduler.
//
// Reads a task graph in TGF format (see taskgraph/io.hpp), optionally
// assigns deadlines by slicing, runs the configured algorithm, and prints
// the schedule (with optional Gantt chart and DOT export).
//
// A budget-limited or Ctrl-C'd B&B run is *anytime*: it reports the best
// incumbent found so far with outcome `feasible_timeout` / `cancelled`
// instead of dying empty-handed.
//
//   $ parabb_solve graph.tgf --procs 3 --select lifo --branch bfn
//   $ parabb_solve graph.tgf --algo edf --gantt
//   $ parabb_solve graph.tgf --slice 1.5 --br 0.1 --time-limit 10
//   $ parabb_solve graph.tgf --max-generated 100000
//   $ parabb_solve graph.tgf --checkpoint run.ckpt --checkpoint-interval 1000
//   $ parabb_solve graph.tgf --resume run.ckpt --checkpoint run.ckpt
#include <csignal>
#include <cstdio>
#include <optional>
#include <string>

#include "parabb/bnb/cancel.hpp"
#include "parabb/bnb/engine.hpp"
#include "parabb/ckpt/checkpoint.hpp"
#include "parabb/ckpt/snapshot.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/bnb/search_obs.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/robust/fault.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/sched/etf.hpp"
#include "parabb/sched/improve.hpp"
#include "parabb/sched/list.hpp"
#include "parabb/sched/schedule_io.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/service/job.hpp"
#include "parabb/service/protocol.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/json.hpp"
#include "parabb/support/table.hpp"
#include "parabb/taskgraph/io.hpp"
#include "parabb/verify/certificate.hpp"
#include "parabb/verify/certificate_io.hpp"

namespace {

using namespace parabb;

// SIGINT trips the cooperative cancellation token; the engine unwinds at
// its next poll and the run finishes normally with its best incumbent.
// CancelToken::cancel() is a relaxed atomic store: async-signal-safe.
CancelToken g_interrupt;

// SIGTERM, with --checkpoint armed, means "snapshot, then die": the
// handler demands an immediate write and the engine winds down (outcome
// `cancelled`) only after the state is durably on disk. Without a
// checkpoint it degrades to plain cancellation. Both paths are relaxed
// atomic stores: async-signal-safe.
CheckpointController* g_ckpt = nullptr;

extern "C" void handle_sigint(int) { g_interrupt.cancel(); }
extern "C" void handle_sigterm(int) {
  if (g_ckpt != nullptr) {
    g_ckpt->request_now(/*stop_after=*/true);
  } else {
    g_interrupt.cancel();
  }
}

JsonValue table_to_json(const TextTable& table) {
  JsonValue out = JsonValue::object();
  JsonValue header = JsonValue::array();
  for (const std::string& cell : table.header()) header.push_back(cell);
  out.set("header", std::move(header));
  JsonValue rows = JsonValue::array();
  for (const auto& row : table.rows()) {
    if (row.empty()) continue;
    JsonValue r = JsonValue::array();
    for (const std::string& cell : row) r.push_back(cell);
    rows.push_back(std::move(r));
  }
  out.set("rows", std::move(rows));
  return out;
}

/// parabb-bench-v1 record for --stats-json: one metric/value table with
/// every SearchStats counter (driven by the bnb/search_obs field table,
/// so new counters show up here automatically) plus the run verdict.
/// Consumable by tools/bench_check.py --structure-only.
void write_stats_json(const std::string& path, const std::string& algo,
                      const SearchStats& stats, JobOutcome outcome,
                      Time cost, bool proved) {
  TextTable t;
  t.set_header({"metric", "value"});
  for (const SearchStatsField& f : kSearchStatsFields) {
    t.add_row({f.name, std::to_string(stats.*(f.member))});
  }
  t.add_row({"peak_active", std::to_string(stats.peak_active)});
  t.add_row({"peak_memory_bytes", std::to_string(stats.peak_memory_bytes)});
  t.add_row({"seconds", fmt_double(stats.seconds, 6)});
  t.add_row({"cost", std::to_string(cost)});
  t.add_row({"outcome", to_string(outcome)});
  t.add_row({"proved", proved ? "1" : "0"});
  t.add_row({"algo", algo});

  JsonValue doc = JsonValue::object();
  doc.set("schema", "parabb-bench-v1");
  doc.set("bench", "parabb_solve");
  JsonValue tables = JsonValue::object();
  tables.set("solve", table_to_json(t));
  doc.set("tables", std::move(tables));
  write_text_file(path, doc.dump() + "\n");
}

void print_schedule(const Schedule& schedule, const TaskGraph& graph) {
  TextTable table;
  table.set_header({"task", "proc", "start", "finish", "deadline",
                    "lateness"});
  for (TaskId t = 0; t < schedule.task_count(); ++t) {
    const ScheduledTask& e = schedule.entry(t);
    const Time deadline = graph.task(t).abs_deadline();
    table.add_row({graph.task(t).name, std::to_string(e.proc),
                   std::to_string(e.start), std::to_string(e.finish),
                   std::to_string(deadline),
                   std::to_string(e.finish - deadline)});
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("parabb_solve",
                   "Minimize maximum task lateness of a TGF task graph");
  parser.add_option("procs", "number of identical processors", "2");
  parser.add_option("comm", "nominal delay per data item per hop", "1");
  parser.add_option("topology",
                    "interconnect: bus | ring | line | mesh<RxC> "
                    "(e.g. mesh2x2)",
                    "bus");
  parser.add_option("algo",
                    "bnb | bnb-parallel | edf | etf | hlfet | edf+improve",
                    "bnb");
  parser.add_option("select", "B&B selection rule: lifo | llb | fifo",
                    "lifo");
  parser.add_option("branch", "B&B branching rule: bfn | bf1 | df", "bfn");
  parser.add_option("lb", "lower bound: lb0 | lb1 | lb2", "lb1");
  parser.add_option("br", "inaccuracy limit BR (0 = exact)", "0");
  parser.add_option("ub", "initial upper bound: edf | inf | <number>",
                    "edf");
  parser.add_option("time-limit", "TIMELIMIT seconds (0 = unlimited)", "0");
  parser.add_option("max-active", "MAXSZAS (0 = unlimited)", "0");
  parser.add_option("max-generated",
                    "budget: generated-vertex cap (0 = unlimited)", "0");
  parser.add_option("max-memory",
                    "budget: active-set pool bytes (0 = unlimited)", "0");
  parser.add_option("threads", "workers for bnb-parallel (0 = hw)", "0");
  parser.add_option("workers",
                    "alias for --threads; takes precedence when nonzero",
                    "0");
  parser.add_option("scheduler",
                    "bnb-parallel work distribution: ws | central", "ws");
  parser.add_option("steal-batch",
                    "ws scheduler: max vertices per steal "
                    "(0 = half the victim's deque)",
                    "0");
  parser.add_option("slice",
                    "assign deadlines by slicing with this laxity ratio "
                    "before solving (0 = keep the file's windows)",
                    "0");
  parser.add_option("slice-base", "laxity base: path | total", "path");
  parser.add_option("dot", "write Graphviz DOT of the graph here", "");
  parser.add_option("out", "write the schedule (text format) here", "");
  parser.add_option("certify",
                    "write an optimality certificate here (bnb algos only; "
                    "check it with parabb_verify)",
                    "");
  parser.add_option("stats-json",
                    "write search stats as a parabb-bench-v1 record here "
                    "(bnb algos only)",
                    "");
  parser.add_option("checkpoint",
                    "write crash-safe search snapshots here (bnb algos; "
                    "SIGTERM = snapshot then exit)",
                    "");
  parser.add_option("checkpoint-interval",
                    "snapshot cadence in ms (0 = only on SIGTERM)", "1000");
  parser.add_option("resume",
                    "seed the search from this snapshot (same graph and "
                    "parameters required)",
                    "");
  parser.add_option("inject-faults",
                    "run under a seeded fault plan (robustness testing; "
                    "empty = off)",
                    "");
  parser.add_flag("degrade",
                  "enable the graceful-degradation ladder (effective with "
                  "--max-memory)");
  parser.add_flag("gantt", "print an ASCII Gantt chart");
  parser.add_flag("quiet", "print only the final cost");

  try {
    if (!parser.parse(argc, argv)) return 0;
    if (parser.positional().size() != 1) {
      std::fprintf(stderr, "usage: parabb_solve <graph.tgf> [options]\n");
      return 2;
    }

    TaskGraph graph = load_tgf(parser.positional()[0]);
    if (const double laxity = parser.get_double("slice"); laxity > 0) {
      SlicingConfig cfg;
      cfg.laxity = laxity;
      cfg.base = parser.get_string("slice-base") == "total"
                     ? LaxityBase::kTotalWork
                     : LaxityBase::kPathWork;
      const SlicingReport rep = assign_deadlines_slicing(graph, cfg);
      if (!parser.has_flag("quiet")) {
        std::printf("sliced deadlines: e2e %lld, scale %.3f\n",
                    static_cast<long long>(rep.e2e_deadline), rep.scale);
      }
    }
    if (const std::string dot = parser.get_string("dot"); !dot.empty()) {
      write_text_file(dot, to_dot(graph));
    }

    const Machine machine =
        machine_from_spec(static_cast<int>(parser.get_int("procs")),
                          parser.get_int("comm"),
                          parser.get_string("topology"));
    const SchedContext ctx(graph, machine);

    Schedule schedule;
    Time cost = 0;
    int exit_code = 0;  // bnb algos: exit_code_for(outcome)
    std::string status;
    const std::string algo = parser.get_string("algo");
    if (!parser.get_string("stats-json").empty() && algo != "bnb" &&
        algo != "bnb-parallel") {
      std::fprintf(stderr,
                   "--stats-json requires --algo bnb or bnb-parallel\n");
      return 2;
    }
    if (algo == "edf") {
      const EdfResult r = schedule_edf(ctx);
      schedule = r.schedule;
      cost = r.max_lateness;
      status = "greedy EDF";
    } else if (algo == "etf") {
      const EtfResult r = schedule_etf(ctx);
      schedule = r.schedule;
      cost = r.max_lateness;
      status = "greedy ETF";
    } else if (algo == "hlfet") {
      const ListResult r = schedule_hlfet(ctx);
      schedule = r.schedule;
      cost = r.max_lateness;
      status = "HLFET list";
    } else if (algo == "edf+improve") {
      const ImproveResult r =
          improve_schedule(ctx, schedule_edf(ctx).schedule);
      schedule = r.schedule;
      cost = r.max_lateness;
      status = "EDF + local search (" + std::to_string(r.moves_applied) +
               " moves)";
    } else if (algo == "bnb" || algo == "bnb-parallel") {
      Params params;
      params.select = parse_select_rule(parser.get_string("select"));
      params.branch = parse_branch_rule(parser.get_string("branch"));
      params.lb = parse_lower_bound(parser.get_string("lb"));
      params.br = parser.get_double("br");
      if (const std::string ub = parser.get_string("ub"); ub == "inf") {
        params.ub = UpperBoundInit::kInfinite;
      } else if (ub != "edf") {
        params.ub = UpperBoundInit::kExplicit;
        params.explicit_ub = static_cast<Time>(std::stoll(ub));
      }
      if (const auto ma = parser.get_int("max-active"); ma > 0)
        params.rb.max_active = static_cast<std::size_t>(ma);

      // The budget rides the same path the solver service uses: resource
      // bounds plus a cancellation token, so an expired or interrupted
      // run still reports its best incumbent.
      Budget budget;
      budget.wall_ms = parser.get_double("time-limit") * 1000.0;
      budget.max_generated =
          static_cast<std::uint64_t>(parser.get_int("max-generated"));
      budget.max_active_bytes =
          static_cast<std::size_t>(parser.get_int("max-memory"));
      apply_budget(params, budget, &g_interrupt);
      params.degrade.enabled = parser.has_flag("degrade");
      std::optional<FaultInjector> injector;
      if (const std::string fs = parser.get_string("inject-faults");
          !fs.empty()) {
        injector.emplace(
            FaultPlan::random(static_cast<std::uint64_t>(std::stoull(fs))));
        params.faults = &*injector;
        if (!parser.has_flag("quiet")) {
          std::fprintf(stderr, "fault plan: %s\n",
                       injector->plan().describe().c_str());
        }
      }
      const std::string cert_path = parser.get_string("certify");
      CertificateBuilder builder;
      if (!cert_path.empty()) params.certify = &builder;
      std::optional<CheckpointController> ckpt;
      if (const std::string cp = parser.get_string("checkpoint");
          !cp.empty()) {
        ckpt.emplace(cp, parser.get_double("checkpoint-interval"));
        params.ckpt = &*ckpt;
        g_ckpt = &*ckpt;
      }
      SearchSnapshot resume_snap;
      if (const std::string rp = parser.get_string("resume"); !rp.empty()) {
        resume_snap = load_snapshot(rp);  // SnapshotError -> exit 2
        params.resume = &resume_snap;
      }
      std::signal(SIGINT, handle_sigint);
      std::signal(SIGTERM, handle_sigterm);

      bool found = false;
      bool proved = false;
      TerminationReason reason = TerminationReason::kExhausted;
      std::string engine_info;
      SearchStats stats;
      if (algo == "bnb") {
        const SearchResult r = solve_bnb(ctx, params);
        found = r.found_solution;
        proved = r.proved;
        reason = r.reason;
        schedule = r.best;
        cost = r.best_cost;
        stats = r.stats;
        engine_info = std::to_string(r.stats.generated) + " vertices";
      } else {
        ParallelParams pp;
        pp.base = params;
        const auto workers = parser.get_int("workers");
        pp.threads = static_cast<int>(workers != 0 ? workers
                                                   : parser.get_int("threads"));
        const std::string sched = parser.get_string("scheduler");
        if (sched == "central") {
          pp.scheduler = ParallelScheduler::kCentralQueue;
        } else if (sched == "ws") {
          pp.scheduler = ParallelScheduler::kWorkStealing;
        } else {
          std::fprintf(stderr, "--scheduler must be ws or central\n");
          return 2;
        }
        pp.steal_batch = static_cast<int>(parser.get_int("steal-batch"));
        const ParallelResult r = solve_bnb_parallel(ctx, pp);
        found = r.found_solution;
        proved = r.proved;
        reason = r.reason;
        schedule = r.best;
        cost = r.best_cost;
        stats = r.stats;
        engine_info = std::to_string(r.threads_used) + " threads";
      }
      std::signal(SIGINT, SIG_DFL);
      std::signal(SIGTERM, SIG_DFL);
      g_ckpt = nullptr;

      // Saved before the found check: an infeasible run's certificate is
      // still meaningful (it records why the search came up empty).
      if (!cert_path.empty()) {
        save_certificate(builder.take(), graph, cert_path);
      }

      const JobOutcome outcome = outcome_of(reason, found);
      // Stable exit-code taxonomy (docs/robustness.md): 0 optimal,
      // 3 feasible_timeout, 4 cancelled, 5 infeasible; 2 stays the
      // usage/runtime-error code. Scripts branch on the outcome without
      // parsing output.
      exit_code = exit_code_for(outcome);
      // Written before the found check so an infeasible or interrupted
      // run still leaves its effort record behind.
      if (const std::string sp = parser.get_string("stats-json");
          !sp.empty()) {
        write_stats_json(sp, algo, stats, outcome, cost, proved);
      }
      if (!found) {
        std::fprintf(stderr, "no solution found (outcome: %s)\n",
                     to_string(outcome).c_str());
        return exit_code;
      }
      status = describe(params) + (proved ? " [proved]" : " [heuristic]") +
               ", " + engine_info + ", outcome: " + to_string(outcome);
    } else {
      std::fprintf(stderr, "unknown --algo: %s\n", algo.c_str());
      return 2;
    }

    if (const std::string out = parser.get_string("out"); !out.empty()) {
      save_schedule(schedule, graph, out);
    }
    if (parser.has_flag("quiet")) {
      std::printf("%lld\n", static_cast<long long>(cost));
      return exit_code;
    }
    std::printf("algorithm: %s\nmachine:   %s\nmax task lateness: %lld\n\n",
                status.c_str(), machine.describe().c_str(),
                static_cast<long long>(cost));
    print_schedule(schedule, graph);
    const ValidationReport rep = validate_schedule(schedule, graph, machine);
    std::printf("\nstructurally sound: %s; deadlines met: %s\n",
                rep.structurally_sound ? "yes" : "no",
                rep.deadlines_met ? "yes" : "no");
    if (parser.has_flag("gantt")) {
      std::printf("\n%s", to_gantt(schedule, graph, machine.procs).c_str());
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parabb_solve: %s\n", e.what());
    return 2;
  }
}
