// parabb_solve — command-line front end to the ParaBB scheduler.
//
// Reads a task graph in TGF format (see taskgraph/io.hpp), optionally
// assigns deadlines by slicing, runs the configured algorithm, and prints
// the schedule (with optional Gantt chart and DOT export).
//
//   $ parabb_solve graph.tgf --procs 3 --select lifo --branch bfn
//   $ parabb_solve graph.tgf --algo edf --gantt
//   $ parabb_solve graph.tgf --slice 1.5 --br 0.1 --time-limit 10
#include <cstdio>
#include <string>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/sched/etf.hpp"
#include "parabb/sched/improve.hpp"
#include "parabb/sched/list.hpp"
#include "parabb/sched/schedule_io.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/table.hpp"
#include "parabb/taskgraph/io.hpp"

namespace {

using namespace parabb;

SelectRule parse_select(const std::string& s) {
  if (s == "lifo") return SelectRule::kLIFO;
  if (s == "llb") return SelectRule::kLLB;
  if (s == "fifo") return SelectRule::kFIFO;
  throw std::runtime_error("--select must be lifo, llb or fifo");
}

BranchRule parse_branch(const std::string& s) {
  if (s == "bfn") return BranchRule::kBFn;
  if (s == "bf1") return BranchRule::kBF1;
  if (s == "df") return BranchRule::kDF;
  throw std::runtime_error("--branch must be bfn, bf1 or df");
}

LowerBound parse_lb(const std::string& s) {
  if (s == "lb0") return LowerBound::kLB0;
  if (s == "lb1") return LowerBound::kLB1;
  if (s == "lb2") return LowerBound::kLB2;
  throw std::runtime_error("--lb must be lb0, lb1 or lb2");
}

void print_schedule(const Schedule& schedule, const TaskGraph& graph) {
  TextTable table;
  table.set_header({"task", "proc", "start", "finish", "deadline",
                    "lateness"});
  for (TaskId t = 0; t < schedule.task_count(); ++t) {
    const ScheduledTask& e = schedule.entry(t);
    const Time deadline = graph.task(t).abs_deadline();
    table.add_row({graph.task(t).name, std::to_string(e.proc),
                   std::to_string(e.start), std::to_string(e.finish),
                   std::to_string(deadline),
                   std::to_string(e.finish - deadline)});
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("parabb_solve",
                   "Minimize maximum task lateness of a TGF task graph");
  parser.add_option("procs", "number of identical processors", "2");
  parser.add_option("comm", "nominal delay per data item per hop", "1");
  parser.add_option("topology",
                    "interconnect: bus | ring | line | mesh<RxC> "
                    "(e.g. mesh2x2)",
                    "bus");
  parser.add_option("algo",
                    "bnb | bnb-parallel | edf | etf | hlfet | edf+improve",
                    "bnb");
  parser.add_option("select", "B&B selection rule: lifo | llb | fifo",
                    "lifo");
  parser.add_option("branch", "B&B branching rule: bfn | bf1 | df", "bfn");
  parser.add_option("lb", "lower bound: lb0 | lb1 | lb2", "lb1");
  parser.add_option("br", "inaccuracy limit BR (0 = exact)", "0");
  parser.add_option("time-limit", "TIMELIMIT seconds (0 = unlimited)", "0");
  parser.add_option("max-active", "MAXSZAS (0 = unlimited)", "0");
  parser.add_option("threads", "workers for bnb-parallel (0 = hw)", "0");
  parser.add_option("slice",
                    "assign deadlines by slicing with this laxity ratio "
                    "before solving (0 = keep the file's windows)",
                    "0");
  parser.add_option("slice-base", "laxity base: path | total", "path");
  parser.add_option("dot", "write Graphviz DOT of the graph here", "");
  parser.add_option("out", "write the schedule (text format) here", "");
  parser.add_flag("gantt", "print an ASCII Gantt chart");
  parser.add_flag("quiet", "print only the final cost");

  try {
    if (!parser.parse(argc, argv)) return 0;
    if (parser.positional().size() != 1) {
      std::fprintf(stderr, "usage: parabb_solve <graph.tgf> [options]\n");
      return 2;
    }

    TaskGraph graph = load_tgf(parser.positional()[0]);
    if (const double laxity = parser.get_double("slice"); laxity > 0) {
      SlicingConfig cfg;
      cfg.laxity = laxity;
      cfg.base = parser.get_string("slice-base") == "total"
                     ? LaxityBase::kTotalWork
                     : LaxityBase::kPathWork;
      const SlicingReport rep = assign_deadlines_slicing(graph, cfg);
      if (!parser.has_flag("quiet")) {
        std::printf("sliced deadlines: e2e %lld, scale %.3f\n",
                    static_cast<long long>(rep.e2e_deadline), rep.scale);
      }
    }
    if (const std::string dot = parser.get_string("dot"); !dot.empty()) {
      write_text_file(dot, to_dot(graph));
    }

    Machine machine;
    machine.procs = static_cast<int>(parser.get_int("procs"));
    machine.comm = CommModel::per_item(parser.get_int("comm"));
    if (const std::string topo = parser.get_string("topology");
        topo != "bus") {
      if (topo == "ring") {
        machine.topology = NetworkTopology::ring(machine.procs);
      } else if (topo == "line") {
        machine.topology = NetworkTopology::line(machine.procs);
      } else if (topo.rfind("mesh", 0) == 0) {
        const auto x = topo.find('x');
        if (x == std::string::npos)
          throw std::runtime_error("mesh topology needs RxC, e.g. mesh2x2");
        const int rows = std::stoi(topo.substr(4, x - 4));
        const int cols = std::stoi(topo.substr(x + 1));
        machine.topology = NetworkTopology::mesh(rows, cols);
        machine.procs = rows * cols;
      } else {
        throw std::runtime_error("unknown --topology: " + topo);
      }
    }
    const SchedContext ctx(graph, machine);

    Schedule schedule;
    Time cost = 0;
    std::string status;
    const std::string algo = parser.get_string("algo");
    if (algo == "edf") {
      const EdfResult r = schedule_edf(ctx);
      schedule = r.schedule;
      cost = r.max_lateness;
      status = "greedy EDF";
    } else if (algo == "etf") {
      const EtfResult r = schedule_etf(ctx);
      schedule = r.schedule;
      cost = r.max_lateness;
      status = "greedy ETF";
    } else if (algo == "hlfet") {
      const ListResult r = schedule_hlfet(ctx);
      schedule = r.schedule;
      cost = r.max_lateness;
      status = "HLFET list";
    } else if (algo == "edf+improve") {
      const ImproveResult r =
          improve_schedule(ctx, schedule_edf(ctx).schedule);
      schedule = r.schedule;
      cost = r.max_lateness;
      status = "EDF + local search (" + std::to_string(r.moves_applied) +
               " moves)";
    } else if (algo == "bnb" || algo == "bnb-parallel") {
      Params params;
      params.select = parse_select(parser.get_string("select"));
      params.branch = parse_branch(parser.get_string("branch"));
      params.lb = parse_lb(parser.get_string("lb"));
      params.br = parser.get_double("br");
      if (const double tl = parser.get_double("time-limit"); tl > 0)
        params.rb.time_limit_s = tl;
      if (const auto ma = parser.get_int("max-active"); ma > 0)
        params.rb.max_active = static_cast<std::size_t>(ma);
      if (algo == "bnb") {
        const SearchResult r = solve_bnb(ctx, params);
        if (!r.found_solution) {
          std::fprintf(stderr, "no solution found\n");
          return 1;
        }
        schedule = r.best;
        cost = r.best_cost;
        status = describe(params) + (r.proved ? " [proved]" : " [heuristic]") +
                 ", " + std::to_string(r.stats.generated) + " vertices";
      } else {
        ParallelParams pp;
        pp.base = params;
        pp.threads = static_cast<int>(parser.get_int("threads"));
        const ParallelResult r = solve_bnb_parallel(ctx, pp);
        if (!r.found_solution) {
          std::fprintf(stderr, "no solution found\n");
          return 1;
        }
        schedule = r.best;
        cost = r.best_cost;
        status = describe(params) + (r.proved ? " [proved]" : " [heuristic]") +
                 ", " + std::to_string(r.threads_used) + " threads";
      }
    } else {
      std::fprintf(stderr, "unknown --algo: %s\n", algo.c_str());
      return 2;
    }

    if (const std::string out = parser.get_string("out"); !out.empty()) {
      save_schedule(schedule, graph, out);
    }
    if (parser.has_flag("quiet")) {
      std::printf("%lld\n", static_cast<long long>(cost));
      return 0;
    }
    std::printf("algorithm: %s\nmachine:   %s\nmax task lateness: %lld\n\n",
                status.c_str(), machine.describe().c_str(),
                static_cast<long long>(cost));
    print_schedule(schedule, graph);
    const ValidationReport rep = validate_schedule(schedule, graph, machine);
    std::printf("\nstructurally sound: %s; deadlines met: %s\n",
                rep.structurally_sound ? "yes" : "no",
                rep.deadlines_met ? "yes" : "no");
    if (parser.has_flag("gantt")) {
      std::printf("\n%s", to_gantt(schedule, graph, machine.procs).c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parabb_solve: %s\n", e.what());
    return 2;
  }
}
