#!/bin/sh
# Seeded fault-injection sweep (docs/robustness.md): every injected
# fault must resolve to a *defined* outcome — an exit code from the
# documented taxonomy — never a crash, a hang, or an unknown code.
#
# quick mode (default; wired into ctest as cli_fault_sweep, label
# "robust"): drives `parabb_solve --inject-faults <seed>` over 200
# seeded plans, spreading the seeds across the sequential engine and
# both parallel schedulers (work-stealing at 4 threads, central queue
# at 8) the same way the in-process FaultMatrix test does, and asserts
# every run exits 0 (optimal), 3 (feasible_timeout), 4 (cancelled), or
# 5 (infeasible).
#
#   fault_sweep.sh quick <parabb_solve> <graph.tgf>
#
# full mode (manual / CI, not a ctest — it builds two extra trees):
# configures address- and thread-sanitized builds of the current source
# and re-runs the whole "robust" ctest label under each, which includes
# the 200-plan in-process fault matrix and the degradation-ladder
# suite. Zero sanitizer findings is the acceptance gate.
#
#   fault_sweep.sh full [source-dir [build-root]]
set -eu

mode=${1:-quick}

case "$mode" in
  quick)
    solve=${2:?usage: fault_sweep.sh quick <parabb_solve> <graph.tgf>}
    graph=${3:?usage: fault_sweep.sh quick <parabb_solve> <graph.tgf>}
    seeds=${FAULT_SWEEP_SEEDS:-200}
    seed=0
    while [ "$seed" -lt "$seeds" ]; do
      case $((seed % 3)) in
        0) engine="--algo bnb" ;;
        1) engine="--algo bnb-parallel --threads 4 --scheduler ws" ;;
        2) engine="--algo bnb-parallel --threads 8 --scheduler central" ;;
      esac
      rc=0
      # shellcheck disable=SC2086  # $engine is a flag list on purpose
      "$solve" "$graph" --procs 2 --max-generated 20000 \
               --inject-faults "$seed" $engine --quiet || rc=$?
      case "$rc" in
        0|3|4|5) ;;
        *)
          echo "fault_sweep: seed $seed ($engine) exited $rc —" \
               "not a defined outcome" >&2
          exit 1
          ;;
      esac
      seed=$((seed + 1))
    done
    echo "fault_sweep: $seeds seeded plans, all defined outcomes"
    ;;

  full)
    src=${2:-$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)}
    root=${3:-$src}
    for san in address thread; do
      build="$root/build-$(echo "$san" | cut -c1)san"
      echo "=== PARABB_SANITIZE=$san -> $build ==="
      cmake -B "$build" -S "$src" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
            -DPARABB_SANITIZE="$san" >/dev/null
      cmake --build "$build" -j >/dev/null
      (cd "$build" && ctest -L robust --output-on-failure -j 2)
    done
    echo "fault_sweep: robust label clean under ASan+UBSan and TSan"
    ;;

  *)
    echo "usage: fault_sweep.sh quick <parabb_solve> <graph.tgf>" >&2
    echo "       fault_sweep.sh full [source-dir [build-root]]" >&2
    exit 2
    ;;
esac
