// Parallel search: speeding up one hard optimal search with threads.
//
// Generates paper-style instances with tight deadlines until it finds one
// whose sequential optimal search takes meaningful time, then solves the
// same instance with increasing worker counts. The optimal cost is
// identical at every thread count (same bounds, same pruning rule); only
// the wall time and the exploration order change.
//
//   $ ./parallel_search [--seed 1] [--procs 3]
#include <cstdio>
#include <thread>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/table.hpp"
#include "parabb/workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace parabb;

  ArgParser parser("parallel_search", "Multithreaded optimal B&B");
  parser.add_option("seed", "base seed for the instance hunt", "1");
  parser.add_option("procs", "processor count", "3");
  if (!parser.parse(argc, argv)) return 0;

  const int procs = static_cast<int>(parser.get_int("procs"));
  const auto base_seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  SlicingConfig tight;
  tight.base = LaxityBase::kPathWork;
  tight.laxity = 1.1;

  // Hunt for an instance whose sequential search is substantial.
  for (std::uint64_t s = 0; s < 256; ++s) {
    GeneratedGraph gen =
        generate_graph(paper_config(), derive_seed(base_seed, s));
    assign_deadlines_slicing(gen.graph, tight);
    const SchedContext ctx(gen.graph, make_shared_bus_machine(procs));

    Params params;
    params.rb.time_limit_s = 15.0;
    const SearchResult seq = solve_bnb(ctx, params);
    if (!seq.proved || seq.stats.generated < 100'000) continue;

    std::printf("instance found (seed stream %llu): %d tasks, optimal "
                "lateness %lld, sequential search %llu vertices in %.2fs\n\n",
                static_cast<unsigned long long>(s),
                ctx.task_count(), static_cast<long long>(seq.best_cost),
                static_cast<unsigned long long>(seq.stats.generated),
                seq.stats.seconds);

    TextTable table;
    table.set_header({"threads", "cost", "vertices", "time s", "speedup"});
    table.add_row({"1 (seq)", std::to_string(seq.best_cost),
                   std::to_string(seq.stats.generated),
                   fmt_double(seq.stats.seconds, 3), "1x"});
    // Run 2 and 4 workers even on single-core machines: the point is that
    // the cost is identical; the speedup column only means something when
    // hardware_concurrency() > 1.
    const auto hw = std::max(4u, std::thread::hardware_concurrency());
    for (unsigned t = 2; t <= hw; t *= 2) {
      ParallelParams pp;
      pp.base = params;
      pp.threads = static_cast<int>(t);
      const ParallelResult par = solve_bnb_parallel(ctx, pp);
      table.add_row({std::to_string(t), std::to_string(par.best_cost),
                     std::to_string(par.stats.generated),
                     fmt_double(par.stats.seconds, 3),
                     fmt_double(seq.stats.seconds / par.stats.seconds, 2) +
                         "x"});
      if (par.best_cost != seq.best_cost) {
        std::printf("ERROR: parallel cost diverged!\n");
        return 1;
      }
    }
    std::printf("%s\nAll thread counts proved the same optimal cost.\n",
                table.to_string().c_str());
    return 0;
  }
  std::printf("no sufficiently hard instance found; try another --seed\n");
  return 0;
}
