// Approximate search on a larger instance (paper §5.3 in practice).
//
// For graphs beyond ~16 tasks the optimal search explodes; the paper's
// answer is the approximation dial: BFn with a BR inaccuracy limit for
// guaranteed near-optimality, or the DF/BF1 branching rules for fast
// approximate answers. This example walks that trade-off on a 24-task
// Gaussian-elimination DAG under a hard per-search time budget.
//
//   $ ./approximate [--budget 2.0] [--procs 3]
#include <cstdio>

#include "parabb/bnb/engine.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/table.hpp"
#include "parabb/workload/presets.hpp"

int main(int argc, char** argv) {
  using namespace parabb;

  ArgParser parser("approximate",
                   "The optimality/effort dial on a 24-task instance");
  parser.add_option("budget", "per-search time budget in seconds", "2.0");
  parser.add_option("procs", "processor count", "3");
  if (!parser.parse(argc, argv)) return 0;

  // Gaussian elimination on a 7x7 system: 6 pivots + 21 updates = 27
  // tasks... too many for kMaxTasks? No: (7-1) + 7*6/2 = 27 <= 32. Use a
  // tight laxity so the search has real work to do.
  TaskGraph graph = preset_gaussian_elimination(7, 8, 16, 12);
  SlicingConfig slicing;
  slicing.base = LaxityBase::kPathWork;
  slicing.laxity = 1.15;
  assign_deadlines_slicing(graph, slicing);

  const int procs = static_cast<int>(parser.get_int("procs"));
  const SchedContext ctx(graph, make_shared_bus_machine(procs));
  const double budget = parser.get_double("budget");

  std::printf("Gaussian-elimination DAG: %d tasks on %d processors, "
              "per-search budget %.1fs\n\n",
              graph.task_count(), procs, budget);

  const EdfResult edf = schedule_edf(ctx);

  struct Row {
    const char* label;
    Params params;
  };
  Params base;
  base.rb.time_limit_s = budget;
  base.rb.max_active = 2'000'000;

  Params br0 = base;
  Params br10 = base;
  br10.br = 0.10;
  Params br25 = base;
  br25.br = 0.25;
  Params bf1 = base;
  bf1.branch = BranchRule::kBF1;
  Params df = base;
  df.branch = BranchRule::kDF;

  const Row rows[] = {
      {"BFn BR=0% (optimal)", br0}, {"BFn BR=10% (guaranteed)", br10},
      {"BFn BR=25% (guaranteed)", br25}, {"BF1 (approximate)", bf1},
      {"DF (approximate)", df},
  };

  TextTable table;
  table.set_header({"strategy", "lateness", "vertices", "time ms",
                    "status"});
  table.add_row({"EDF (greedy)", std::to_string(edf.max_lateness), "-", "-",
                 "heuristic"});
  for (const Row& row : rows) {
    const SearchResult r = solve_bnb(ctx, row.params);
    const char* status =
        r.reason == TerminationReason::kTimeLimit
            ? "budget hit (best-so-far)"
            : (r.proved ? "guarantee holds" : "no guarantee");
    table.add_row({row.label, std::to_string(r.best_cost),
                   std::to_string(r.stats.generated),
                   fmt_double(r.stats.seconds * 1e3, 1), status});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nReading: BR trades a bounded slice of optimality for "
              "search effort; DF/BF1 drop the guarantee entirely but "
              "answer in milliseconds.\n");
  return 0;
}
