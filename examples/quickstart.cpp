// Quickstart: minimize maximum task lateness with the parametrized B&B.
//
// The instance is a classic greedy trap. Two "urgent" tasks (tight own
// deadlines, no successors) compete with a cheap "root" task that feeds a
// deadline-critical chain. Greedy EDF runs the urgent tasks first and
// pushes the whole chain late; the branch-and-bound search discovers that
// sacrificing one time unit on an urgent task saves five on the chain.
//
//   $ ./quickstart
#include <cstdio>

#include "parabb/bnb/engine.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/taskgraph/builder.hpp"
#include "parabb/taskgraph/io.hpp"

int main() {
  using namespace parabb;

  // 1. The task set <c, phi, d, T>: explicit execution windows.
  //    (Windows can also be derived from end-to-end deadlines with
  //    assign_deadlines_slicing — see the dsp_pipeline example.)
  const TaskGraph graph = GraphBuilder()
                              .task("urgent1", 10, /*rel_deadline=*/12)
                              .task("urgent2", 10, 14)
                              .task("root", 5, 30)
                              .task("chainA", 15, 25)
                              .task("chainB", 15, 40)
                              .chain({"root", "chainA", "chainB"})
                              .build();

  // 2. The platform: two identical processors on a shared bus.
  const Machine machine = make_shared_bus_machine(2);
  const SchedContext ctx(graph, machine);

  // 3. Greedy EDF baseline (§4.4): closest deadline first, earliest-start
  //    processor. It also seeds the B&B's initial upper bound U.
  const EdfResult edf = schedule_edf(ctx);
  std::printf("EDF max lateness: %+lld\n%s\n",
              static_cast<long long>(edf.max_lateness),
              to_gantt(edf.schedule, graph, machine.procs).c_str());

  // 4. Optimal search: the paper's best configuration
  //    <B=BFn, S=LIFO, E=U/DBAS, L=LB1, U=EDF, BR=0>.
  const SearchResult best = solve_bnb(ctx, Params{});
  std::printf("B&B max lateness: %+lld (%s; %llu vertices searched)\n%s\n",
              static_cast<long long>(best.best_cost),
              best.proved ? "proved optimal" : "not proved",
              static_cast<unsigned long long>(best.stats.generated),
              to_gantt(best.best, graph, machine.procs).c_str());

  // 5. Independent validation. A positive optimal lateness means the task
  //    set is infeasible — the value quantifies by exactly how much the
  //    workload overruns its deadlines (the paper's scalability measure).
  const ValidationReport report =
      validate_schedule(best.best, graph, machine);
  std::printf("structurally sound: %s; all deadlines met: %s\n",
              report.structurally_sound ? "yes" : "no",
              report.deadlines_met ? "yes" : "no");
  if (best.best_cost > 0) {
    std::printf("-> infeasible by %lld time unit(s): that is the minimum "
                "deadline extension that makes the set schedulable\n",
                static_cast<long long>(best.best_cost));
  }

  // 6. Export the task graph for external tooling.
  std::printf("\nGraphviz DOT:\n%s", to_dot(graph).c_str());
  return report.structurally_sound ? 0 : 1;
}
