// DSP pipeline: the application domain that motivated multiprocessor B&B
// schedulers (Konstantinides et al., the paper's [2]).
//
// Schedules a two-sensor signal-processing pipeline (filters, a split FFT,
// feature extraction, fusion, actuation) on 2..4 processors, comparing the
// greedy EDF, the HLFET list heuristic, the optimal B&B, and the explicit
// shared-bus re-timing of the optimal schedule.
//
//   $ ./dsp_pipeline [--procs 3] [--laxity 1.3]
#include <cstdio>

#include "parabb/bnb/engine.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/sched/bus_aware.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/sched/list.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/table.hpp"
#include "parabb/workload/presets.hpp"

int main(int argc, char** argv) {
  using namespace parabb;

  ArgParser parser("dsp_pipeline",
                   "Optimal vs heuristic scheduling of a DSP pipeline");
  parser.add_option("laxity", "end-to-end laxity ratio", "1.3");
  parser.add_option("machines", "processor counts", "2,3,4");
  if (!parser.parse(argc, argv)) return 0;

  TaskGraph graph = preset_dsp_pipeline();
  SlicingConfig slicing;
  slicing.laxity = parser.get_double("laxity");
  slicing.base = LaxityBase::kPathWork;
  const SlicingReport rep = assign_deadlines_slicing(graph, slicing);
  std::printf("DSP pipeline: %d tasks, critical path %lld, e2e deadline "
              "%lld\n\n",
              graph.task_count(),
              static_cast<long long>(rep.critical_path),
              static_cast<long long>(rep.e2e_deadline));

  TextTable table;
  table.set_header({"m", "EDF", "HLFET", "B&B optimal", "B&B vertices",
                    "bus-contended optimal"});
  for (const auto m64 : parser.get_int_list("machines")) {
    const int m = static_cast<int>(m64);
    const Machine machine = make_shared_bus_machine(m);
    const SchedContext ctx(graph, machine);

    const EdfResult edf = schedule_edf(ctx);
    const ListResult hlfet = schedule_hlfet(ctx);
    const SearchResult opt = solve_bnb(ctx, Params{});
    const BusAwareResult bus = retime_with_bus(ctx, opt.best);

    table.add_row({std::to_string(m), std::to_string(edf.max_lateness),
                   std::to_string(hlfet.max_lateness),
                   std::to_string(opt.best_cost),
                   std::to_string(opt.stats.generated),
                   std::to_string(bus.max_lateness)});

    if (m == 2) {
      std::printf("optimal 2-processor schedule:\n%s\n",
                  to_gantt(opt.best, graph, m).c_str());
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n(lower lateness is better; negative means the pipeline "
              "meets every window with slack)\n");
  return 0;
}
