// Scheduling a periodic workload over one hyperperiod.
//
// The paper's task model is periodic <c, phi, d, T>; its experiments
// schedule one frame. This example shows the general case: a 25 Hz
// control pipeline and a 50 Hz safety monitor are unrolled over their
// 40-time-unit hyperperiod (taskgraph/periodic.hpp), and the resulting
// job DAG is scheduled optimally — invocation chaining and per-invocation
// windows all fall out of the single-frame machinery.
//
//   $ ./periodic_pipeline [--procs 2]
#include <cstdio>

#include "parabb/bnb/engine.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/taskgraph/builder.hpp"
#include "parabb/taskgraph/periodic.hpp"

int main(int argc, char** argv) {
  using namespace parabb;

  ArgParser parser("periodic_pipeline",
                   "Hyperperiod scheduling of a two-rate workload");
  parser.add_option("procs", "processor count", "2");
  if (!parser.parse(argc, argv)) return 0;

  // Control pipeline at period 40 (25 Hz on a 1 ms = 1 unit clock):
  // sample -> control -> actuate, each with a slice of the period.
  // Safety monitor at period 20 (50 Hz): watch -> alarm.
  const TaskGraph periodic =
      GraphBuilder()
          .task("sample", 6, /*d=*/10, /*phase=*/0, /*T=*/40)
          .task("control", 14, 18, 10, 40)
          .task("actuate", 6, 10, 29, 40)
          .task("watch", 5, 9, 0, 20)
          .task("alarm", 3, 8, 10, 20)
          .arc("sample", "control", 4)
          .arc("control", "actuate", 4)
          .arc("watch", "alarm", 2)
          .build();

  const HyperperiodExpansion exp = expand_hyperperiod(periodic);
  std::printf("hyperperiod %lld; %d periodic tasks -> %d jobs, %d arcs\n\n",
              static_cast<long long>(exp.hyperperiod),
              periodic.task_count(), exp.jobs.task_count(),
              exp.jobs.arc_count());

  const int procs = static_cast<int>(parser.get_int("procs"));
  const Machine machine = make_shared_bus_machine(procs);
  const SchedContext ctx(exp.jobs, machine);

  const EdfResult edf = schedule_edf(ctx);
  const SearchResult best = solve_bnb(ctx, Params{});
  std::printf("EDF max job lateness: %+lld\n",
              static_cast<long long>(edf.max_lateness));
  std::printf("B&B max job lateness: %+lld (%s, %llu vertices)\n\n",
              static_cast<long long>(best.best_cost),
              best.proved ? "proved optimal" : "unproved",
              static_cast<unsigned long long>(best.stats.generated));
  std::printf("%s", to_gantt(best.best, exp.jobs, procs).c_str());

  const ValidationReport rep =
      validate_schedule(best.best, exp.jobs, machine);
  std::printf("\nstructurally sound: %s; every invocation meets its "
              "window: %s\n",
              rep.structurally_sound ? "yes" : "no",
              rep.deadlines_met ? "yes" : "no");
  return rep.structurally_sound ? 0 : 1;
}
