// Runtime robustness of WCET plans.
//
// The scheduler plans with worst-case execution times; real executions
// are shorter. This example plans a tight instance three ways (EDF,
// EDF + local search, optimal B&B) and Monte-Carlo-simulates each plan
// under a work-conserving dispatcher with actual execution times drawn
// from [50 %, 100 %] of WCET. Planned lateness is a certified upper
// envelope; the simulated distribution shows the pessimism margin.
//
//   $ ./robustness [--seed 3] [--procs 3] [--runs 200]
#include <cstdio>

#include "parabb/bnb/engine.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/sched/improve.hpp"
#include "parabb/sim/simulate.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/table.hpp"
#include "parabb/workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace parabb;

  ArgParser parser("robustness", "Monte-Carlo simulation of WCET plans");
  parser.add_option("seed", "workload seed", "3");
  parser.add_option("procs", "processor count", "3");
  parser.add_option("runs", "simulation runs per plan", "200");
  parser.add_option("lo", "min actual/WCET fraction", "0.5");
  parser.add_option("hi", "max actual/WCET fraction", "1.0");
  if (!parser.parse(argc, argv)) return 0;

  GeneratedGraph gen = generate_graph(
      paper_config(), static_cast<std::uint64_t>(parser.get_int("seed")));
  SlicingConfig tight;
  tight.base = LaxityBase::kPathWork;
  tight.laxity = 1.2;
  assign_deadlines_slicing(gen.graph, tight);
  const SchedContext ctx(
      gen.graph,
      make_shared_bus_machine(static_cast<int>(parser.get_int("procs"))));

  SimulationConfig sim;
  sim.runs = static_cast<int>(parser.get_int("runs"));
  sim.lo_fraction = parser.get_double("lo");
  sim.hi_fraction = parser.get_double("hi");
  sim.seed = static_cast<std::uint64_t>(parser.get_int("seed")) + 1;

  std::printf("instance: %d tasks on %d processors; actual exec ~ U[%.0f%%,"
              " %.0f%%] of WCET, %d runs per plan\n\n",
              ctx.task_count(), ctx.proc_count(), sim.lo_fraction * 100,
              sim.hi_fraction * 100, sim.runs);

  const EdfResult edf = schedule_edf(ctx);
  const ImproveResult imp = improve_schedule(ctx, edf.schedule);
  Params p;
  p.rb.time_limit_s = 10.0;
  const SearchResult opt = solve_bnb(ctx, p);

  struct Plan {
    const char* label;
    const Schedule* schedule;
  };
  const Plan plans[] = {
      {"EDF", &edf.schedule},
      {"EDF+improve", &imp.schedule},
      {opt.proved ? "optimal (proved)" : "B&B best", &opt.best},
  };

  TextTable table;
  table.set_header({"plan", "planned L", "sim mean", "sim min", "sim max",
                    "misses", "mean makespan"});
  for (const Plan& plan : plans) {
    const SimulationReport rep = simulate_schedule(ctx, *plan.schedule, sim);
    table.add_row({plan.label,
                   std::to_string(rep.planned_lateness),
                   fmt_double(rep.lateness.mean(), 2),
                   fmt_double(rep.lateness.min(), 0),
                   fmt_double(rep.lateness.max(), 0),
                   std::to_string(rep.deadline_miss_runs) + "/" +
                       std::to_string(sim.runs),
                   fmt_double(rep.makespan.mean(), 1)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nReading: simulated lateness never exceeds the planned "
              "value (WCET is an upper envelope); better plans keep their "
              "advantage at run time.\n");
  return 0;
}
