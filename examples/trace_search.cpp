// Watching the branch-and-bound search unfold.
//
// Attaches a SearchTrace to a small optimal search and summarizes the
// event stream: the dive profile (expansions per level), the incumbent
// trajectory, and where pruning concentrated. A compact way to *see* why
// LIFO works: goals appear almost immediately and the incumbent rachets
// down within the first few hundred events.
//
//   $ ./trace_search [--procs 2] [--tail 25]
#include <array>
#include <cstdio>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/trace.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/support/cli.hpp"
#include "parabb/support/table.hpp"
#include "parabb/workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace parabb;

  ArgParser parser("trace_search", "Visualize a B&B search event stream");
  parser.add_option("procs", "processor count", "2");
  parser.add_option("seed", "workload seed", "7");
  parser.add_option("tail", "final trace events to print verbatim", "25");
  if (!parser.parse(argc, argv)) return 0;

  GeneratedGraph gen = generate_graph(
      paper_config(), static_cast<std::uint64_t>(parser.get_int("seed")));
  SlicingConfig tight;
  tight.base = LaxityBase::kPathWork;
  tight.laxity = 1.2;
  assign_deadlines_slicing(gen.graph, tight);
  const SchedContext ctx(
      gen.graph,
      make_shared_bus_machine(static_cast<int>(parser.get_int("procs"))));

  SearchTrace trace(1u << 22);
  Params params;
  params.trace = &trace;
  const SearchResult r = solve_bnb(ctx, params);

  std::printf("instance: %d tasks on %d processors; optimal lateness %lld "
              "(%s), %llu events recorded\n\n",
              ctx.task_count(), ctx.proc_count(),
              static_cast<long long>(r.best_cost),
              r.proved ? "proved" : "unproved",
              static_cast<unsigned long long>(trace.total_events()));

  // Dive profile: expansions per level.
  std::array<std::uint64_t, kMaxTasks + 1> expands_per_level{};
  std::vector<std::pair<std::uint64_t, Time>> incumbents;
  std::uint64_t prunes = 0;
  for (const TraceRecord& rec : trace.chronological()) {
    switch (rec.event) {
      case TraceEvent::kExpand:
        ++expands_per_level[static_cast<std::size_t>(rec.level)];
        break;
      case TraceEvent::kIncumbent:
        incumbents.emplace_back(rec.index, rec.value);
        break;
      case TraceEvent::kPruneChild:
        ++prunes;
        break;
      default:
        break;
    }
  }

  std::printf("expansions by search-tree level (dive profile):\n");
  for (int lvl = 0; lvl <= ctx.task_count(); ++lvl) {
    const std::uint64_t c = expands_per_level[static_cast<std::size_t>(lvl)];
    if (c == 0) continue;
    std::printf("  level %2d  %8llu  ", lvl,
                static_cast<unsigned long long>(c));
    const int bar = static_cast<int>(
        std::min<std::uint64_t>(50, c * 50 /
                                        std::max<std::uint64_t>(
                                            1, r.stats.expanded)));
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }

  std::printf("\nincumbent trajectory (event index -> cost):\n");
  if (incumbents.empty()) {
    std::printf("  (the EDF seed was already optimal)\n");
  }
  for (const auto& [idx, cost] : incumbents) {
    std::printf("  @%-10llu %lld\n", static_cast<unsigned long long>(idx),
                static_cast<long long>(cost));
  }
  std::printf("\nchildren pruned before activation: %llu of %llu generated "
              "(%.1f%%)\n",
              static_cast<unsigned long long>(prunes),
              static_cast<unsigned long long>(r.stats.generated),
              r.stats.generated
                  ? 100.0 * static_cast<double>(prunes) /
                        static_cast<double>(r.stats.generated)
                  : 0.0);

  const auto tail = static_cast<std::size_t>(parser.get_int("tail"));
  const auto log = trace.chronological();
  std::printf("\nlast %zu events:\n", std::min(tail, log.size()));
  for (std::size_t i = log.size() > tail ? log.size() - tail : 0;
       i < log.size(); ++i) {
    std::printf("  #%-8llu %-12s level=%-3d value=%lld\n",
                static_cast<unsigned long long>(log[i].index),
                to_string(log[i].event).c_str(), log[i].level,
                static_cast<long long>(log[i].value));
  }
  return 0;
}
