// Greedy Earliest-Deadline-First baseline (paper §4.4).
//
// At each step, among all *schedulable* (ready) tasks pick the one with the
// closest absolute deadline and place it on the processor that yields the
// earliest start time. Ties: smaller deadline, then earlier achievable
// start, then smaller task id / processor id — fully deterministic.
//
// Polynomial time; used both as the reference algorithm in every plot and
// as the initial upper-bound solution U for the B&B (§6 reports a >200 %
// speedup over a naive positive initial bound).
#pragma once

#include "parabb/sched/schedule.hpp"

namespace parabb {

struct EdfResult {
  Schedule schedule;
  Time max_lateness = 0;
};

/// Runs greedy EDF to completion (always succeeds: the task set is
/// precedence-consistent, so a ready task always exists).
EdfResult schedule_edf(const SchedContext& ctx);

}  // namespace parabb
