#include "parabb/sched/schedule_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace parabb {
namespace {

[[noreturn]] void parse_fail(int line, const std::string& msg) {
  throw std::runtime_error("schedule parse error at line " +
                           std::to_string(line) + ": " + msg);
}

Time parse_attr(const std::string& token, const char* key, int line) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0)
    parse_fail(line, "expected " + prefix + "<int>, got " + token);
  try {
    std::size_t pos = 0;
    const std::string value = token.substr(prefix.size());
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) parse_fail(line, "bad integer: " + value);
    return v;
  } catch (const std::invalid_argument&) {
    parse_fail(line, "bad integer in " + token);
  } catch (const std::out_of_range&) {
    parse_fail(line, "integer out of range in " + token);
  }
}

}  // namespace

std::string schedule_to_text(const Schedule& schedule,
                             const TaskGraph& graph) {
  PARABB_REQUIRE(schedule.task_count() == graph.task_count(),
                 "schedule/graph task count mismatch");
  std::ostringstream os;
  os << "# parabb schedule: " << schedule.task_count() << " tasks\n";
  for (TaskId t = 0; t < schedule.task_count(); ++t) {
    const ScheduledTask& e = schedule.entry(t);
    os << "sched " << graph.task(t).name << " proc=" << e.proc
       << " start=" << e.start << " finish=" << e.finish << '\n';
  }
  return os.str();
}

Schedule schedule_from_text(const std::string& text,
                            const TaskGraph& graph) {
  std::map<std::string, TaskId> by_name;
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    by_name[graph.task(t).name] = t;
  }

  std::vector<ScheduledTask> entries;
  std::vector<char> seen(static_cast<std::size_t>(graph.task_count()), 0);
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    if (kind != "sched") parse_fail(lineno, "unknown record: " + kind);
    std::string name, proc_tok, start_tok, finish_tok;
    if (!(ls >> name >> proc_tok >> start_tok >> finish_tok))
      parse_fail(lineno, "sched needs: name proc= start= finish=");
    const auto it = by_name.find(name);
    if (it == by_name.end()) parse_fail(lineno, "unknown task: " + name);
    const auto ut = static_cast<std::size_t>(it->second);
    if (seen[ut]) parse_fail(lineno, "duplicate task: " + name);
    seen[ut] = 1;
    ScheduledTask e;
    e.task = it->second;
    e.proc = static_cast<ProcId>(parse_attr(proc_tok, "proc", lineno));
    e.start = parse_attr(start_tok, "start", lineno);
    e.finish = parse_attr(finish_tok, "finish", lineno);
    entries.push_back(e);
  }
  if (static_cast<int>(entries.size()) != graph.task_count()) {
    throw std::runtime_error(
        "schedule covers " + std::to_string(entries.size()) + " of " +
        std::to_string(graph.task_count()) + " tasks");
  }
  return Schedule::from_entries(graph.task_count(), std::move(entries));
}

void save_schedule(const Schedule& schedule, const TaskGraph& graph,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << schedule_to_text(schedule, graph);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Schedule load_schedule(const std::string& path, const TaskGraph& graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return schedule_from_text(buf.str(), graph);
}

}  // namespace parabb
