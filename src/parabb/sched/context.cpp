#include "parabb/sched/context.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

CTime narrow_time(Time v, const char* what) {
  PARABB_REQUIRE(v >= -kMaxCompactTime && v <= kMaxCompactTime,
                 std::string(what) + " exceeds the compact time range");
  return static_cast<CTime>(v);
}

}  // namespace

SchedContext::SchedContext(const TaskGraph& graph, const Machine& machine)
    : graph_(graph), machine_(machine), topo_(analyze(graph)) {
  n_ = graph.task_count();
  m_ = machine.procs;
  PARABB_REQUIRE(n_ >= 1, "graph must contain at least one task");
  PARABB_REQUIRE(n_ <= kMaxTasks,
                 "graph exceeds kMaxTasks (" + std::to_string(kMaxTasks) +
                     ") tasks");
  PARABB_REQUIRE(m_ >= 1 && m_ <= kMaxProcs,
                 "machine processor count out of supported range");
  const std::string err = graph.validate();
  PARABB_REQUIRE(err.empty(), "invalid graph: " + err);

  const auto un = static_cast<std::size_t>(n_);
  exec_.resize(un);
  arrival_.resize(un);
  deadline_.resize(un);
  pred_off_.assign(un + 1, 0);
  succ_off_.assign(un + 1, 0);

  for (TaskId t = 0; t < n_; ++t) {
    const Task& task = graph.task(t);
    exec_[idx(t)] = narrow_time(task.exec, "execution time");
    arrival_[idx(t)] = narrow_time(task.arrival(), "arrival time");
    deadline_[idx(t)] = narrow_time(task.abs_deadline(), "deadline");
    pred_off_[idx(t) + 1] = pred_off_[idx(t)] + graph.preds(t).size();
    succ_off_[idx(t) + 1] = succ_off_[idx(t)] + graph.succs(t).size();
  }

  pred_task_.resize(pred_off_[un]);
  pred_comm_.resize(pred_off_[un]);
  succ_task_.resize(succ_off_[un]);
  succ_comm_.resize(succ_off_[un]);

  for (TaskId t = 0; t < n_; ++t) {
    std::size_t p = pred_off_[idx(t)];
    for (const Arc& a : graph.preds(t)) {
      pred_task_[p] = a.other;
      pred_comm_[p] = narrow_time(machine.comm.delay(a.items),
                                  "communication delay");
      ++p;
    }
    std::size_t s = succ_off_[idx(t)];
    for (const Arc& a : graph.succs(t)) {
      succ_task_[s] = a.other;
      succ_comm_[s] = narrow_time(machine.comm.delay(a.items),
                                  "communication delay");
      ++s;
    }
    if (graph.preds(t).empty()) initial_ready_.insert(t);
  }

  if (machine.topology) {
    PARABB_REQUIRE(machine.topology->procs() == m_,
                   "topology/processor count mismatch");
  }
  for (ProcId p = 0; p < m_; ++p) {
    for (ProcId q = 0; q < m_; ++q) {
      hop_[static_cast<std::size_t>(p) * kMaxProcs +
           static_cast<std::size_t>(q)] =
          static_cast<CTime>(machine.hops(p, q));
    }
  }

  // Static bound-evaluation aids: the deadline-sorted order (ties broken by
  // id so the order is deterministic; the packing bound's value is
  // tie-order independent), its inverse, per-rank exec/deadline arrays,
  // workload prefix sums, slacks, and the static lateness floor.
  topo_rank_.assign(un, 0);
  for (int r = 0; r < n_; ++r) {
    topo_rank_[idx(topo_.topo_order[static_cast<std::size_t>(r)])] = r;
  }
  deadline_order_.resize(un);
  std::iota(deadline_order_.begin(), deadline_order_.end(), TaskId{0});
  std::sort(deadline_order_.begin(), deadline_order_.end(),
            [&](TaskId a, TaskId b) {
              if (deadline_[idx(a)] != deadline_[idx(b)])
                return deadline_[idx(a)] < deadline_[idx(b)];
              return a < b;
            });
  deadline_rank_.assign(un, 0);
  dl_exec_.resize(un);
  dl_deadline_.resize(un);
  dl_prefix_work_.assign(un + 1, 0);
  slack_.resize(un);
  for (int r = 0; r < n_; ++r) {
    const TaskId t = deadline_order_[static_cast<std::size_t>(r)];
    deadline_rank_[idx(t)] = r;
    dl_exec_[static_cast<std::size_t>(r)] = exec_[idx(t)];
    dl_deadline_[static_cast<std::size_t>(r)] = deadline_[idx(t)];
    dl_prefix_work_[static_cast<std::size_t>(r) + 1] =
        dl_prefix_work_[static_cast<std::size_t>(r)] + Time{exec_[idx(t)]};
  }
  for (TaskId t = 0; t < n_; ++t) {
    slack_[idx(t)] = Time{deadline_[idx(t)]} - Time{arrival_[idx(t)]} -
                     Time{exec_[idx(t)]};
    static_floor_ = std::max(static_floor_, -slack_[idx(t)]);
  }
}

}  // namespace parabb
