// Schedule serialization: a line-oriented text format for persisting and
// exchanging schedules (pairs with the TGF task-graph format).
//
//   # comments and blank lines ignored
//   sched <task-name> proc=<int> start=<int> finish=<int>
//
// Reading resolves task names against a graph and validates coverage.
#pragma once

#include <string>

#include "parabb/sched/schedule.hpp"
#include "parabb/taskgraph/graph.hpp"

namespace parabb {

/// Serializes `schedule` using `graph`'s task names.
std::string schedule_to_text(const Schedule& schedule,
                             const TaskGraph& graph);

/// Parses a schedule document against `graph`. Throws std::runtime_error
/// with a line-numbered message on malformed input, unknown or duplicate
/// task names, or incomplete coverage.
Schedule schedule_from_text(const std::string& text, const TaskGraph& graph);

/// Convenience file wrappers.
void save_schedule(const Schedule& schedule, const TaskGraph& graph,
                   const std::string& path);
Schedule load_schedule(const std::string& path, const TaskGraph& graph);

}  // namespace parabb
