#include "parabb/sched/etf.hpp"

#include "parabb/support/assert.hpp"

namespace parabb {

EtfResult schedule_etf(const SchedContext& ctx) {
  PartialSchedule ps = PartialSchedule::empty(ctx);
  while (!ps.complete(ctx)) {
    PARABB_ASSERT(!ps.ready().empty());
    TaskId best_task = kNoTask;
    ProcId best_proc = 0;
    CTime best_start = 0;
    for (const TaskId t : ps.ready()) {
      for (ProcId p = 0; p < ctx.proc_count(); ++p) {
        const CTime s = ps.earliest_start(ctx, t, p);
        if (best_task == kNoTask || s < best_start) {
          best_task = t;
          best_proc = p;
          best_start = s;
        }
      }
    }
    ps.place(ctx, best_task, best_proc);
  }
  EtfResult out;
  out.schedule = Schedule::from_partial(ctx, ps);
  out.max_lateness = ps.max_lateness_scheduled(ctx);
  return out;
}

}  // namespace parabb
