#include "parabb/sched/bus_aware.hpp"

#include <algorithm>
#include <vector>

#include "parabb/support/assert.hpp"

namespace parabb {

BusAwareResult retime_with_bus(const SchedContext& ctx,
                               const Schedule& nominal) {
  const TaskGraph& graph = ctx.graph();
  const int n = ctx.task_count();
  PARABB_REQUIRE(nominal.task_count() == n, "schedule/context mismatch");
  PARABB_REQUIRE(!ctx.machine().topology ||
                     ctx.machine().topology->diameter() <= 1,
                 "bus re-timing models a single shared medium; use 1-hop "
                 "topologies");

  // Fixed assignment + per-processor order from the nominal schedule.
  std::vector<std::vector<TaskId>> order(
      static_cast<std::size_t>(ctx.proc_count()));
  for (ProcId p = 0; p < ctx.proc_count(); ++p) {
    for (const ScheduledTask& e : nominal.proc_sequence(p)) {
      order[static_cast<std::size_t>(p)].push_back(e.task);
    }
  }

  SharedBus bus(ctx.machine().comm.per_item_delay());
  std::vector<Time> start(static_cast<std::size_t>(n), -1);
  std::vector<Time> finish(static_cast<std::size_t>(n), -1);
  std::vector<std::size_t> next(static_cast<std::size_t>(ctx.proc_count()), 0);
  std::vector<Time> avail(static_cast<std::size_t>(ctx.proc_count()), 0);
  BusAwareResult out;

  // Re-time tasks in a precedence-consistent sweep: repeatedly pick, among
  // each processor's next-unstarted task, one whose predecessors are all
  // timed; grant its inbound messages bus slots in producer-finish order.
  int placed = 0;
  while (placed < n) {
    bool progressed = false;
    for (ProcId p = 0; p < ctx.proc_count(); ++p) {
      const auto up = static_cast<std::size_t>(p);
      if (next[up] >= order[up].size()) continue;
      const TaskId t = order[up][next[up]];
      const auto preds = ctx.pred_ids(t);
      const bool ready = std::all_of(
          preds.begin(), preds.end(), [&](TaskId j) {
            return finish[static_cast<std::size_t>(j)] >= 0;
          });
      if (!ready) continue;

      // Serialize inbound cross-processor messages, earliest producer first.
      std::vector<TaskId> sorted_preds(preds.begin(), preds.end());
      std::sort(sorted_preds.begin(), sorted_preds.end(),
                [&](TaskId a, TaskId b) {
                  return finish[static_cast<std::size_t>(a)] <
                         finish[static_cast<std::size_t>(b)];
                });
      Time data_ready = 0;
      for (const TaskId j : sorted_preds) {
        const auto uj = static_cast<std::size_t>(j);
        if (nominal.entry(j).proc == p) {
          data_ready = std::max(data_ready, finish[uj]);
          continue;
        }
        const Time items = graph.items_on_arc(j, t);
        PARABB_ASSERT(items >= 0);
        const Time arrived = bus.reserve(finish[uj], items);
        if (items > 0) ++out.messages;
        data_ready = std::max(data_ready, arrived);
      }
      const Time s = std::max({Time{ctx.arrival(t)}, avail[up], data_ready});
      start[static_cast<std::size_t>(t)] = s;
      finish[static_cast<std::size_t>(t)] = s + ctx.exec(t);
      avail[up] = finish[static_cast<std::size_t>(t)];
      ++next[up];
      ++placed;
      progressed = true;
    }
    PARABB_REQUIRE(progressed,
                   "nominal schedule's per-processor order deadlocks under "
                   "bus re-timing (cyclic wait)");
  }

  std::vector<ScheduledTask> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    entries.push_back(ScheduledTask{t, nominal.entry(t).proc, start[ut],
                                    finish[ut]});
  }
  out.schedule = Schedule::from_entries(n, std::move(entries));
  out.max_lateness = max_lateness(out.schedule, graph);
  out.bus_busy = bus.utilization();
  return out;
}

}  // namespace parabb
