#include "parabb/sched/list.hpp"

#include "parabb/support/assert.hpp"

namespace parabb {

ListResult schedule_by_priority(const SchedContext& ctx,
                                std::span<const TaskId> priority) {
  PARABB_REQUIRE(static_cast<int>(priority.size()) == ctx.task_count(),
                 "priority list must cover every task exactly once");
  PartialSchedule ps = PartialSchedule::empty(ctx);
  while (!ps.complete(ctx)) {
    // Highest-priority ready task.
    TaskId chosen = kNoTask;
    for (const TaskId t : priority) {
      if (ps.ready().contains(t)) {
        chosen = t;
        break;
      }
    }
    PARABB_ASSERT(chosen != kNoTask);
    ProcId best_proc = 0;
    CTime best_start = ps.earliest_start(ctx, chosen, 0);
    for (ProcId p = 1; p < ctx.proc_count(); ++p) {
      const CTime s = ps.earliest_start(ctx, chosen, p);
      if (s < best_start) {
        best_start = s;
        best_proc = p;
      }
    }
    ps.place(ctx, chosen, best_proc);
  }
  ListResult out;
  out.schedule = Schedule::from_partial(ctx, ps);
  out.max_lateness = ps.max_lateness_scheduled(ctx);
  return out;
}

ListResult schedule_hlfet(const SchedContext& ctx) {
  return schedule_by_priority(ctx, ctx.level_order());
}

ListResult schedule_df_list(const SchedContext& ctx) {
  return schedule_by_priority(ctx, ctx.dfs_order());
}

}  // namespace parabb
