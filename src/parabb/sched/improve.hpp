// Local-search schedule improvement, after Abdelzaher & Shin (the paper's
// reference [5]): start from a complete solution and improve it while the
// task-to-processor assignment structure stays explicit.
//
// Neighbourhood moves:
//  * swap two adjacent tasks in one processor's sequence;
//  * relocate one task to any position on any processor.
// After a move, start times are recomputed by a precedence-consistent
// sweep (same operation as the B&B scheduler: arrival, predecessor finish
// + cross-processor communication, append order). A move that deadlocks
// (order contradicts precedence) is rejected. First-improvement hill
// climbing until a local optimum or the iteration budget.
//
// This is a heuristic: it cannot certify optimality, but it upgrades any
// greedy baseline cheaply and gives the benches a stronger non-search
// comparison point.
#pragma once

#include <optional>
#include <vector>

#include "parabb/sched/schedule.hpp"

namespace parabb {

struct ImproveResult {
  Schedule schedule;
  Time max_lateness = 0;
  int moves_applied = 0;    ///< accepted (improving) moves
  int moves_evaluated = 0;  ///< neighbourhood positions examined
  bool local_optimum = false;  ///< true if search ended with no move left
};

/// Improves `initial` on `ctx`. `max_moves` bounds accepted moves (each
/// triggers a fresh neighbourhood scan).
ImproveResult improve_schedule(const SchedContext& ctx,
                               const Schedule& initial, int max_moves = 256);

/// Re-times explicit per-processor task orders with the non-preemptive
/// scheduling operation. Returns std::nullopt when the orders deadlock
/// against the precedence relation. Exposed for tests.
std::optional<Schedule> retime_orders(
    const SchedContext& ctx, const std::vector<std::vector<TaskId>>& orders);

}  // namespace parabb
