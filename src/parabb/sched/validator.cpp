#include "parabb/sched/validator.hpp"

#include <sstream>

namespace parabb {
namespace {

std::string describe(const TaskGraph& g, TaskId t) {
  const std::string& n = g.task(t).name;
  return n.empty() ? "task#" + std::to_string(t) : n;
}

}  // namespace

ValidationReport validate_schedule(const Schedule& s, const TaskGraph& graph,
                                   const Machine& machine) {
  ValidationReport report;
  std::ostringstream err;

  if (s.task_count() != graph.task_count()) {
    report.error = "schedule/graph task count mismatch";
    return report;
  }

  // Structure: durations, processor range, arrival times.
  for (TaskId t = 0; t < s.task_count(); ++t) {
    const ScheduledTask& e = s.entry(t);
    if (e.proc < 0 || e.proc >= machine.procs) {
      err << describe(graph, t) << ": processor " << e.proc
          << " out of range";
      report.error = err.str();
      return report;
    }
    if (e.finish != e.start + graph.task(t).exec) {
      err << describe(graph, t) << ": finish != start + exec";
      report.error = err.str();
      return report;
    }
    if (e.start < graph.task(t).arrival()) {
      err << describe(graph, t) << ": starts before its arrival time";
      report.error = err.str();
      return report;
    }
  }

  // No overlap on any processor (non-preemptive exclusive execution).
  for (ProcId p = 0; p < machine.procs; ++p) {
    const auto seq = s.proc_sequence(p);
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (seq[i].start < seq[i - 1].finish) {
        err << describe(graph, seq[i].task) << " overlaps "
            << describe(graph, seq[i - 1].task) << " on P" << p;
        report.error = err.str();
        return report;
      }
    }
  }

  // Precedence + nominal communication delay (hop-scaled on topologies).
  for (const Channel& c : graph.arcs()) {
    const ScheduledTask& from = s.entry(c.from);
    const ScheduledTask& to = s.entry(c.to);
    const Time comm = machine.comm_delay(from.proc, to.proc, c.items);
    if (to.start < from.finish + comm) {
      err << describe(graph, c.to) << " starts before "
          << describe(graph, c.from) << " finishes (+comm " << comm << ")";
      report.error = err.str();
      return report;
    }
  }

  report.structurally_sound = true;

  // Deadlines (condition (i) second half).
  for (TaskId t = 0; t < s.task_count(); ++t) {
    if (s.entry(t).finish > graph.task(t).abs_deadline()) {
      err << describe(graph, t) << " misses its deadline";
      report.error = err.str();
      report.deadlines_met = false;
      return report;
    }
  }
  report.deadlines_met = true;
  return report;
}

}  // namespace parabb
