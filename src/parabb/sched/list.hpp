// Static-priority list scheduling baselines (extensions beyond the paper's
// EDF reference; useful comparison points in benches and examples).
//
// `schedule_by_priority` consumes a fixed priority permutation of all tasks:
// at each step it places the highest-priority *ready* task on the processor
// giving the earliest start time. With the topology's `level_order` this is
// classic HLFET ("highest level first"); with `dfs_order` it mirrors the
// DF branching rule's fixed traversal.
#pragma once

#include <span>

#include "parabb/sched/schedule.hpp"

namespace parabb {

struct ListResult {
  Schedule schedule;
  Time max_lateness = 0;
};

/// Schedules all tasks following the fixed `priority` permutation (every
/// task id exactly once; highest priority first).
ListResult schedule_by_priority(const SchedContext& ctx,
                                std::span<const TaskId> priority);

/// HLFET: priority = decreasing bottom level.
ListResult schedule_hlfet(const SchedContext& ctx);

/// Fixed depth-first order (the DF rule run as a plain heuristic, without
/// any search).
ListResult schedule_df_list(const SchedContext& ctx);

}  // namespace parabb
