#include "parabb/sched/improve.hpp"

#include <algorithm>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

using Orders = std::vector<std::vector<TaskId>>;

Orders orders_of(const SchedContext& ctx, const Schedule& s) {
  Orders orders(static_cast<std::size_t>(ctx.proc_count()));
  for (ProcId p = 0; p < ctx.proc_count(); ++p) {
    for (const ScheduledTask& e : s.proc_sequence(p)) {
      orders[static_cast<std::size_t>(p)].push_back(e.task);
    }
  }
  return orders;
}

}  // namespace

std::optional<Schedule> retime_orders(const SchedContext& ctx,
                                      const Orders& orders) {
  const int n = ctx.task_count();
  PARABB_REQUIRE(static_cast<int>(orders.size()) == ctx.proc_count(),
                 "one order per processor required");

  std::vector<Time> finish(static_cast<std::size_t>(n), -1);
  std::vector<ProcId> proc_of(static_cast<std::size_t>(n), kNoProc);
  std::vector<Time> start(static_cast<std::size_t>(n), -1);
  std::vector<std::size_t> next(orders.size(), 0);
  std::vector<Time> avail(orders.size(), 0);

  int covered = 0;
  for (std::size_t p = 0; p < orders.size(); ++p) {
    for (const TaskId t : orders[p]) {
      PARABB_REQUIRE(t >= 0 && t < n, "order references unknown task");
      PARABB_REQUIRE(proc_of[static_cast<std::size_t>(t)] == kNoProc,
                     "task appears twice in the orders");
      proc_of[static_cast<std::size_t>(t)] = static_cast<ProcId>(p);
      ++covered;
    }
  }
  PARABB_REQUIRE(covered == n, "orders must cover every task exactly once");

  int placed = 0;
  while (placed < n) {
    bool progressed = false;
    for (std::size_t p = 0; p < orders.size(); ++p) {
      if (next[p] >= orders[p].size()) continue;
      const TaskId t = orders[p][next[p]];
      const auto preds = ctx.pred_ids(t);
      const auto comm = ctx.pred_comm(t);
      Time s = std::max(Time{ctx.arrival(t)}, avail[p]);
      bool ready = true;
      for (std::size_t k = 0; k < preds.size(); ++k) {
        const auto uj = static_cast<std::size_t>(preds[k]);
        if (finish[uj] < 0) {
          ready = false;
          break;
        }
        const Time data =
            finish[uj] + Time{comm[k]} *
                             ctx.hop(proc_of[uj], static_cast<ProcId>(p));
        s = std::max(s, data);
      }
      if (!ready) continue;
      const auto ut = static_cast<std::size_t>(t);
      start[ut] = s;
      finish[ut] = s + ctx.exec(t);
      avail[p] = finish[ut];
      ++next[p];
      ++placed;
      progressed = true;
    }
    if (!progressed) return std::nullopt;  // deadlock
  }

  std::vector<ScheduledTask> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    entries.push_back(
        ScheduledTask{t, proc_of[ut], start[ut], finish[ut]});
  }
  return Schedule::from_entries(n, std::move(entries));
}

ImproveResult improve_schedule(const SchedContext& ctx,
                               const Schedule& initial, int max_moves) {
  PARABB_REQUIRE(max_moves >= 0, "max_moves must be >= 0");
  Orders orders = orders_of(ctx, initial);
  ImproveResult out;
  out.schedule = initial;
  out.max_lateness = max_lateness(initial, ctx.graph());

  auto try_orders = [&](const Orders& candidate) -> bool {
    ++out.moves_evaluated;
    const std::optional<Schedule> retimed = retime_orders(ctx, candidate);
    if (!retimed) return false;
    const Time cost = max_lateness(*retimed, ctx.graph());
    if (cost >= out.max_lateness) return false;
    out.schedule = *retimed;
    out.max_lateness = cost;
    orders = candidate;
    ++out.moves_applied;
    return true;
  };

  while (out.moves_applied < max_moves) {
    bool improved = false;

    // Move 1: adjacent swaps within a processor.
    for (std::size_t p = 0; p < orders.size() && !improved; ++p) {
      for (std::size_t i = 0; i + 1 < orders[p].size() && !improved; ++i) {
        Orders candidate = orders;
        std::swap(candidate[p][i], candidate[p][i + 1]);
        improved = try_orders(candidate);
      }
    }
    // Move 2: relocate one task to any position on any processor.
    for (std::size_t p = 0; p < orders.size() && !improved; ++p) {
      for (std::size_t i = 0; i < orders[p].size() && !improved; ++i) {
        const TaskId t = orders[p][i];
        for (std::size_t q = 0; q < orders.size() && !improved; ++q) {
          const std::size_t limit = orders[q].size() + (q == p ? 0 : 1);
          for (std::size_t j = 0; j < limit && !improved; ++j) {
            if (q == p && (j == i || j == i + 1)) continue;
            Orders candidate = orders;
            candidate[p].erase(candidate[p].begin() +
                               static_cast<std::ptrdiff_t>(i));
            std::size_t jj = j;
            if (q == p && j > i) --jj;
            candidate[q].insert(candidate[q].begin() +
                                    static_cast<std::ptrdiff_t>(jj),
                                t);
            improved = try_orders(candidate);
          }
        }
      }
    }
    if (!improved) {
      out.local_optimum = true;
      break;
    }
  }
  return out;
}

}  // namespace parabb
