#include "parabb/sched/partial_schedule.hpp"

#include <algorithm>

namespace parabb {

PartialSchedule PartialSchedule::empty(const SchedContext& ctx) {
  PartialSchedule ps;
  ps.ready_ = ctx.initial_ready();
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    ps.missing_preds_[static_cast<std::size_t>(t)] =
        static_cast<std::int8_t>(ctx.pred_count(t));
  }
  return ps;
}

CTime PartialSchedule::min_proc_avail(const SchedContext& ctx) const noexcept {
  CTime lo = avail_[0];
  for (ProcId p = 1; p < ctx.proc_count(); ++p) {
    lo = std::min(lo, avail_[static_cast<std::size_t>(p)]);
  }
  return lo;
}

CTime PartialSchedule::earliest_start(const SchedContext& ctx, TaskId t,
                                      ProcId p) const noexcept {
  PARABB_ASSERT(p >= 0 && p < ctx.proc_count());
  CTime est = std::max(ctx.arrival(t), avail_[static_cast<std::size_t>(p)]);
  const auto preds = ctx.pred_ids(t);
  const auto comm = ctx.pred_comm(t);
  for (std::size_t k = 0; k < preds.size(); ++k) {
    const TaskId j = preds[k];
    PARABB_ASSERT(scheduled_.contains(j));
    const auto uj = static_cast<std::size_t>(j);
    // hop(p, p) == 0, so co-located predecessors add no delay.
    const CTime avail_time = start_[uj] + ctx.exec(j) +
                             comm[k] * ctx.hop(proc_[uj], p);
    est = std::max(est, avail_time);
  }
  return est;
}

CTime PartialSchedule::place(const SchedContext& ctx, TaskId t,
                             ProcId p) noexcept {
  PARABB_ASSERT(ready_.contains(t));
  const CTime s = earliest_start(ctx, t, p);
  const auto ut = static_cast<std::size_t>(t);
  start_[ut] = s;
  proc_[ut] = static_cast<std::int8_t>(p);
  avail_[static_cast<std::size_t>(p)] = s + ctx.exec(t);
  scheduled_.insert(t);
  ready_.erase(t);
  ++count_;
  for (const TaskId succ : ctx.succ_ids(t)) {
    const auto us = static_cast<std::size_t>(succ);
    if (--missing_preds_[us] == 0) ready_.insert(succ);
  }
  return s;
}

Time PartialSchedule::max_lateness_scheduled(
    const SchedContext& ctx) const noexcept {
  Time worst = kTimeNegInf;
  for (const TaskId t : scheduled_) {
    const Time lateness = Time{finish(ctx, t)} - Time{ctx.deadline(t)};
    worst = std::max(worst, lateness);
  }
  return worst;
}

bool operator==(const PartialSchedule& a, const PartialSchedule& b) noexcept {
  if (a.scheduled_ != b.scheduled_ || a.count_ != b.count_) return false;
  for (const TaskId t : a.scheduled_) {
    const auto ut = static_cast<std::size_t>(t);
    if (a.start_[ut] != b.start_[ut] || a.proc_[ut] != b.proc_[ut])
      return false;
  }
  return a.avail_ == b.avail_;
}

}  // namespace parabb
