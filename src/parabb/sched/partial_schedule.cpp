#include "parabb/sched/partial_schedule.hpp"

#include <algorithm>

#include "parabb/support/hash.hpp"

namespace parabb {
namespace {

// One key per (task, processor) cell; the dynamic start time is folded in
// through mix64 so equal (task, proc) placements at different times get
// unrelated keys.
constexpr auto kPlacementKeys =
    zobrist_keys<static_cast<std::size_t>(kMaxTasks) * kMaxProcs>(
        0x7ab5a1c0ffee5eedULL);

}  // namespace

PartialSchedule PartialSchedule::empty(const SchedContext& ctx) {
  PartialSchedule ps;
  ps.ready_ = ctx.initial_ready();
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    ps.missing_preds_[static_cast<std::size_t>(t)] =
        static_cast<std::int8_t>(ctx.pred_count(t));
  }
  return ps;
}

CTime PartialSchedule::min_proc_avail(const SchedContext& ctx) const noexcept {
  CTime lo = avail_[0];
  for (ProcId p = 1; p < ctx.proc_count(); ++p) {
    lo = std::min(lo, avail_[static_cast<std::size_t>(p)]);
  }
  return lo;
}

CTime PartialSchedule::earliest_start(const SchedContext& ctx, TaskId t,
                                      ProcId p) const noexcept {
  PARABB_ASSERT(p >= 0 && p < ctx.proc_count());
  CTime est = std::max(ctx.arrival(t), avail_[static_cast<std::size_t>(p)]);
  const auto preds = ctx.pred_ids(t);
  const auto comm = ctx.pred_comm(t);
  for (std::size_t k = 0; k < preds.size(); ++k) {
    const TaskId j = preds[k];
    PARABB_ASSERT(scheduled_.contains(j));
    const auto uj = static_cast<std::size_t>(j);
    // hop(p, p) == 0, so co-located predecessors add no delay.
    const CTime avail_time = start_[uj] + ctx.exec(j) +
                             comm[k] * ctx.hop(proc_[uj], p);
    est = std::max(est, avail_time);
  }
  return est;
}

CTime PartialSchedule::place(const SchedContext& ctx, TaskId t,
                             ProcId p) noexcept {
  PARABB_ASSERT(ready_.contains(t));
  const CTime s = earliest_start(ctx, t, p);
  const auto ut = static_cast<std::size_t>(t);
  start_[ut] = s;
  proc_[ut] = static_cast<std::int8_t>(p);
  avail_[static_cast<std::size_t>(p)] = s + ctx.exec(t);
  scheduled_.insert(t);
  ready_.erase(t);
  ++count_;
  for (const TaskId succ : ctx.succ_ids(t)) {
    const auto us = static_cast<std::size_t>(succ);
    if (--missing_preds_[us] == 0) ready_.insert(succ);
  }
  hash_ ^= placement_key(t, p, s);
  return s;
}

CTime PartialSchedule::unplace(const SchedContext& ctx, TaskId t) noexcept {
  PARABB_ASSERT(scheduled_.contains(t));
  const auto ut = static_cast<std::size_t>(t);
  const ProcId p = proc_[ut];
  const auto up = static_cast<std::size_t>(p);
  // Reversibility: t is the frontier task of its processor (append-only
  // operation, so only the last appended task can be peeled off) and none
  // of its successors has been scheduled on the strength of it.
  PARABB_ASSERT(avail_[up] == start_[ut] + ctx.exec(t));
  hash_ ^= placement_key(t, p, start_[ut]);
  scheduled_.erase(t);
  ready_.insert(t);
  --count_;
  for (const TaskId succ : ctx.succ_ids(t)) {
    PARABB_ASSERT(!scheduled_.contains(succ));
    const auto us = static_cast<std::size_t>(succ);
    if (missing_preds_[us]++ == 0) ready_.erase(succ);
  }
  // The frontier reverts to the latest remaining finish on p (0 when the
  // processor becomes empty again, matching the empty-schedule state).
  CTime frontier = 0;
  for (const TaskId other : scheduled_) {
    const auto uo = static_cast<std::size_t>(other);
    if (proc_[uo] == p) {
      frontier = std::max(frontier, start_[uo] + ctx.exec(other));
    }
  }
  avail_[up] = frontier;
  return frontier;
}

std::uint64_t PartialSchedule::fingerprint_from_scratch() const noexcept {
  std::uint64_t h = 0;
  for (const TaskId t : scheduled_) {
    const auto ut = static_cast<std::size_t>(t);
    h ^= placement_key(t, proc_[ut], start_[ut]);
  }
  return h;
}

std::uint64_t PartialSchedule::placement_key(TaskId t, ProcId p,
                                             CTime start) noexcept {
  const std::size_t cell = static_cast<std::size_t>(t) *
                               static_cast<std::size_t>(kMaxProcs) +
                           static_cast<std::size_t>(p);
  return mix64(kPlacementKeys[cell] ^
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(start)));
}

Time PartialSchedule::max_lateness_scheduled(
    const SchedContext& ctx) const noexcept {
  Time worst = kTimeNegInf;
  for (const TaskId t : scheduled_) {
    const Time lateness = Time{finish(ctx, t)} - Time{ctx.deadline(t)};
    worst = std::max(worst, lateness);
  }
  return worst;
}

bool operator==(const PartialSchedule& a, const PartialSchedule& b) noexcept {
  if (a.scheduled_ != b.scheduled_ || a.count_ != b.count_) return false;
  for (const TaskId t : a.scheduled_) {
    const auto ut = static_cast<std::size_t>(t);
    if (a.start_[ut] != b.start_[ut] || a.proc_[ut] != b.proc_[ut])
      return false;
  }
  return a.avail_ == b.avail_;
}

}  // namespace parabb
