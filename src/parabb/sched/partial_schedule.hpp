// PartialSchedule: the branch-and-bound search state — a prefix of a
// schedule built by the paper's non-preemptive scheduling operation (§4.3).
//
// The scheduling operation: a new task starts at the earliest time that is
//  * >= its arrival time a_i,
//  * >= the finish of every already-scheduled direct predecessor, plus the
//    nominal communication delay when the predecessor sits on a different
//    processor, and
//  * >= the finish of every task previously scheduled on the chosen
//    processor (append-only; idle gaps are never back-filled, which is what
//    makes the operation non-commutative and the full permutation search
//    necessary).
//
// The type is a trivially-copyable fixed-capacity value (~250 bytes) so that
// millions of search vertices stay pool-friendly and memcpy-cheap.
#pragma once

#include <array>
#include <cstdint>

#include "parabb/sched/context.hpp"
#include "parabb/support/bitset64.hpp"

namespace parabb {

class PartialSchedule {
 public:
  PartialSchedule() = default;

  /// The empty schedule for `ctx` (level 0: nothing placed, inputs ready).
  static PartialSchedule empty(const SchedContext& ctx);

  int count() const noexcept { return count_; }
  TaskSet scheduled() const noexcept { return scheduled_; }
  /// Tasks whose predecessors are all scheduled but which are not yet
  /// scheduled themselves.
  TaskSet ready() const noexcept { return ready_; }
  bool complete(const SchedContext& ctx) const noexcept {
    return count_ == ctx.task_count();
  }

  CTime start(TaskId t) const noexcept {
    PARABB_ASSERT(scheduled_.contains(t));
    return start_[static_cast<std::size_t>(t)];
  }
  CTime finish(const SchedContext& ctx, TaskId t) const noexcept {
    return start(t) + ctx.exec(t);
  }
  ProcId proc(TaskId t) const noexcept {
    PARABB_ASSERT(scheduled_.contains(t));
    return proc_[static_cast<std::size_t>(t)];
  }

  /// First idle time of processor p (finish of its last appended task).
  CTime proc_avail(ProcId p) const noexcept {
    PARABB_ASSERT(p >= 0 && p < kMaxProcs);
    return avail_[static_cast<std::size_t>(p)];
  }

  /// l_min: the earliest time at which any new task could start on any
  /// processor — the adaptive term of the LB1 lower bound.
  CTime min_proc_avail(const SchedContext& ctx) const noexcept;

  /// Start time the scheduling operation would give task t on processor p.
  /// Requires every direct predecessor of t to be scheduled.
  CTime earliest_start(const SchedContext& ctx, TaskId t,
                       ProcId p) const noexcept;

  /// Applies the scheduling operation: places ready task t on processor p.
  /// Returns the assigned start time. Updates the ready set.
  CTime place(const SchedContext& ctx, TaskId t, ProcId p) noexcept;

  /// Undoes a placement. Only legal when the scheduling operation is still
  /// reversible: t must be the last task appended to its processor and no
  /// successor of t may be scheduled (both asserted). Restores the ready
  /// set, the processor frontier, and the incremental fingerprint.
  /// Returns the restored frontier of t's processor, so incremental
  /// evaluators can update availability sums without a second lookup.
  CTime unplace(const SchedContext& ctx, TaskId t) noexcept;

  /// Canonical 64-bit state fingerprint: XOR over every scheduled task of
  /// a Zobrist-style key derived from (task, processor, start time).
  /// Maintained incrementally by place()/unplace(); equal states always
  /// have equal fingerprints, and because the scheduling operation fully
  /// determines the frontier from the placement set, unequal fingerprints
  /// only collide with ~2^-64 probability (the transposition table falls
  /// back to operator== on fingerprint matches regardless).
  std::uint64_t fingerprint() const noexcept { return hash_; }

  /// Fingerprint recomputed from scratch over the scheduled set; must
  /// always equal fingerprint() (property-tested).
  std::uint64_t fingerprint_from_scratch() const noexcept;

  /// The Zobrist-style key one placement contributes to the fingerprint.
  static std::uint64_t placement_key(TaskId t, ProcId p,
                                     CTime start) noexcept;

  /// Max lateness over the *scheduled* prefix (kTimeNegInf when empty).
  Time max_lateness_scheduled(const SchedContext& ctx) const noexcept;

  friend bool operator==(const PartialSchedule& a,
                         const PartialSchedule& b) noexcept;

 private:
  TaskSet scheduled_{};
  TaskSet ready_{};
  std::array<CTime, kMaxTasks> start_{};
  std::array<CTime, kMaxProcs> avail_{};
  std::array<std::int8_t, kMaxTasks> proc_{};
  std::array<std::int8_t, kMaxTasks> missing_preds_{};
  std::int16_t count_ = 0;
  std::uint64_t hash_ = 0;  ///< incremental Zobrist fingerprint
};

}  // namespace parabb
