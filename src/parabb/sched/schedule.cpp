#include "parabb/sched/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "parabb/support/assert.hpp"

namespace parabb {

Schedule Schedule::from_partial(const SchedContext& ctx,
                                const PartialSchedule& ps) {
  PARABB_REQUIRE(ps.complete(ctx),
                 "from_partial requires a complete schedule");
  Schedule s;
  s.byid_.resize(static_cast<std::size_t>(ctx.task_count()));
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    s.byid_[static_cast<std::size_t>(t)] =
        ScheduledTask{t, ps.proc(t), Time{ps.start(t)},
                      Time{ps.finish(ctx, t)}};
  }
  return s;
}

Schedule Schedule::from_entries(int task_count,
                                std::vector<ScheduledTask> entries) {
  PARABB_REQUIRE(static_cast<int>(entries.size()) == task_count,
                 "entry count must equal task count");
  Schedule s;
  s.byid_.resize(static_cast<std::size_t>(task_count));
  std::vector<char> seen(static_cast<std::size_t>(task_count), 0);
  for (const ScheduledTask& e : entries) {
    PARABB_REQUIRE(e.task >= 0 && e.task < task_count,
                   "entry task id out of range");
    const auto ut = static_cast<std::size_t>(e.task);
    PARABB_REQUIRE(!seen[ut], "duplicate entry for a task");
    seen[ut] = 1;
    s.byid_[ut] = e;
  }
  return s;
}

const ScheduledTask& Schedule::entry(TaskId t) const {
  PARABB_REQUIRE(t >= 0 && t < task_count(), "task id out of range");
  return byid_[static_cast<std::size_t>(t)];
}

std::vector<ScheduledTask> Schedule::proc_sequence(ProcId p) const {
  std::vector<ScheduledTask> seq;
  for (const ScheduledTask& e : byid_) {
    if (e.proc == p) seq.push_back(e);
  }
  std::sort(seq.begin(), seq.end(),
            [](const ScheduledTask& a, const ScheduledTask& b) {
              return a.start < b.start;
            });
  return seq;
}

int Schedule::used_proc_span() const noexcept {
  int span = 0;
  for (const ScheduledTask& e : byid_) span = std::max(span, e.proc + 1);
  return span;
}

Time max_lateness(const Schedule& s, const TaskGraph& graph) {
  PARABB_REQUIRE(s.task_count() == graph.task_count(),
                 "schedule/graph task count mismatch");
  Time worst = kTimeNegInf;
  for (TaskId t = 0; t < s.task_count(); ++t) {
    worst = std::max(worst, s.entry(t).finish - graph.task(t).abs_deadline());
  }
  return worst;
}

Time makespan(const Schedule& s) {
  Time end = 0;
  for (TaskId t = 0; t < s.task_count(); ++t)
    end = std::max(end, s.entry(t).finish);
  return end;
}

Time total_idle(const Schedule& s, int procs) {
  const Time end = makespan(s);
  Time busy = 0;
  for (TaskId t = 0; t < s.task_count(); ++t)
    busy += s.entry(t).finish - s.entry(t).start;
  return end * procs - busy;
}

std::string to_gantt(const Schedule& s, const TaskGraph& graph, int procs,
                     int width) {
  PARABB_REQUIRE(width >= 16, "gantt width too small");
  const Time end = std::max<Time>(1, makespan(s));
  const double scale = static_cast<double>(width) / static_cast<double>(end);
  std::ostringstream os;
  for (ProcId p = 0; p < procs; ++p) {
    os << "P" << p << " |";
    std::string row(static_cast<std::size_t>(width), '.');
    for (const ScheduledTask& e : s.proc_sequence(p)) {
      const auto a = static_cast<std::size_t>(
          static_cast<double>(e.start) * scale);
      auto b = static_cast<std::size_t>(static_cast<double>(e.finish) * scale);
      b = std::min<std::size_t>(std::max(b, a + 1),
                                static_cast<std::size_t>(width));
      const std::string& name = graph.task(e.task).name;
      for (std::size_t i = a; i < b; ++i) {
        const std::size_t rel = i - a;
        row[i] = rel < name.size() ? name[rel] : '#';
      }
    }
    os << row << "|\n";
  }
  os << "    0" << std::string(static_cast<std::size_t>(width) - 1, ' ')
     << end << "\n";
  return os.str();
}

}  // namespace parabb
