// Bus-aware schedule re-timing (extension; see platform/bus.hpp).
//
// Takes a schedule produced under the paper's *nominal* communication model
// and re-times it with messages explicitly serialized on one shared bus:
// task-to-processor assignment and per-processor task order are preserved;
// start times are recomputed so each cross-processor message holds an
// exclusive bus slot. Quantifies the lateness the nominal model hides when
// the bus saturates (`bench/ablation_bus`).
#pragma once

#include "parabb/platform/bus.hpp"
#include "parabb/sched/schedule.hpp"

namespace parabb {

struct BusAwareResult {
  Schedule schedule;        ///< re-timed schedule
  Time max_lateness = 0;    ///< lateness under explicit bus contention
  Time bus_busy = 0;        ///< total reserved bus time
  std::size_t messages = 0; ///< cross-processor transfers serialized
};

/// Re-times `nominal` on `machine` with an explicit shared bus whose
/// per-item delay equals the machine's nominal per-item delay. Messages are
/// granted bus slots in increasing producer-finish order (deterministic).
BusAwareResult retime_with_bus(const SchedContext& ctx,
                               const Schedule& nominal);

}  // namespace parabb
