#include "parabb/sched/edf.hpp"

#include "parabb/support/assert.hpp"

namespace parabb {

EdfResult schedule_edf(const SchedContext& ctx) {
  PartialSchedule ps = PartialSchedule::empty(ctx);
  while (!ps.complete(ctx)) {
    PARABB_ASSERT(!ps.ready().empty());
    // Pick the ready task with the closest absolute deadline.
    TaskId best_task = kNoTask;
    for (const TaskId t : ps.ready()) {
      if (best_task == kNoTask || ctx.deadline(t) < ctx.deadline(best_task)) {
        best_task = t;
      }
    }
    // Place it on the processor that yields the earliest start time.
    ProcId best_proc = 0;
    CTime best_start = ps.earliest_start(ctx, best_task, 0);
    for (ProcId p = 1; p < ctx.proc_count(); ++p) {
      const CTime s = ps.earliest_start(ctx, best_task, p);
      if (s < best_start) {
        best_start = s;
        best_proc = p;
      }
    }
    ps.place(ctx, best_task, best_proc);
  }
  EdfResult out;
  out.schedule = Schedule::from_partial(ctx, ps);
  out.max_lateness = ps.max_lateness_scheduled(ctx);
  return out;
}

}  // namespace parabb
