// Schedule: a complete time-driven non-preemptive multiprocessor schedule —
// the mapping of every task to (processor, start, finish) — plus metrics
// and rendering.
#pragma once

#include <string>
#include <vector>

#include "parabb/sched/context.hpp"
#include "parabb/sched/partial_schedule.hpp"
#include "parabb/support/types.hpp"

namespace parabb {

struct ScheduledTask {
  TaskId task = kNoTask;
  ProcId proc = kNoProc;
  Time start = 0;
  Time finish = 0;
};

class Schedule {
 public:
  Schedule() = default;

  /// Converts a *complete* PartialSchedule into its public form.
  static Schedule from_partial(const SchedContext& ctx,
                               const PartialSchedule& ps);

  /// Builds from explicit entries (used by tests and deserialization).
  /// Entries must cover tasks 0..n-1 exactly once.
  static Schedule from_entries(int task_count,
                               std::vector<ScheduledTask> entries);

  int task_count() const noexcept { return static_cast<int>(byid_.size()); }
  bool empty() const noexcept { return byid_.empty(); }

  const ScheduledTask& entry(TaskId t) const;

  /// Tasks on processor p ordered by start time.
  std::vector<ScheduledTask> proc_sequence(ProcId p) const;

  /// Processors that appear in the schedule (max proc id + 1).
  int used_proc_span() const noexcept;

 private:
  std::vector<ScheduledTask> byid_;  // indexed by TaskId
};

/// L_max = max_i (f_i - D_i) against the graph's absolute deadlines.
Time max_lateness(const Schedule& s, const TaskGraph& graph);

/// Completion time of the last task.
Time makespan(const Schedule& s);

/// Sum of idle gaps on processors 0..procs-1 between time 0 and makespan.
Time total_idle(const Schedule& s, int procs);

/// ASCII Gantt chart (one row per processor), for examples and debugging.
/// `width` is the target character width of the time axis.
std::string to_gantt(const Schedule& s, const TaskGraph& graph, int procs,
                     int width = 72);

}  // namespace parabb
