// ETF (Earliest Task First) baseline: a dynamic list scheduler that, at
// each step, places the (ready task, processor) pair achieving the
// globally earliest start time. Classic makespan heuristic (Hwang et al.);
// included as an extension baseline alongside EDF and HLFET — it is
// deadline-blind, so its lateness shows what deadline awareness buys.
#pragma once

#include "parabb/sched/schedule.hpp"

namespace parabb {

struct EtfResult {
  Schedule schedule;
  Time max_lateness = 0;
};

/// Runs ETF to completion. Ties: earlier start, then smaller task id,
/// then smaller processor id — fully deterministic.
EtfResult schedule_etf(const SchedContext& ctx);

}  // namespace parabb
