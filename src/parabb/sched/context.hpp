// SchedContext: a flattened, cache-friendly view of (task graph × machine)
// shared by the scheduling operation, the EDF baseline, the lower-bound
// functions, and the B&B engine.
//
// All times are pre-narrowed to int32 (checked) and all adjacency is CSR so
// the per-vertex hot path touches contiguous arrays only.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "parabb/platform/machine.hpp"
#include "parabb/support/bitset64.hpp"
#include "parabb/support/types.hpp"
#include "parabb/taskgraph/graph.hpp"
#include "parabb/taskgraph/topology.hpp"

namespace parabb {

/// Compact time type used inside search vertices.
using CTime = std::int32_t;

class SchedContext {
 public:
  /// Builds the context; validates n <= kMaxTasks, m <= kMaxProcs,
  /// acyclicity, and that every time value fits the compact range.
  /// The graph is copied: the context is self-contained and safe to keep
  /// past the source graph's lifetime.
  SchedContext(const TaskGraph& graph, const Machine& machine);

  int task_count() const noexcept { return n_; }
  int proc_count() const noexcept { return m_; }
  const Machine& machine() const noexcept { return machine_; }
  const TaskGraph& graph() const noexcept { return graph_; }
  const Topology& topology() const noexcept { return topo_; }

  CTime exec(TaskId t) const noexcept { return exec_[idx(t)]; }
  CTime arrival(TaskId t) const noexcept { return arrival_[idx(t)]; }
  /// Absolute deadline D_i of the (single-frame) invocation.
  CTime deadline(TaskId t) const noexcept { return deadline_[idx(t)]; }

  /// Predecessors of t as parallel spans: ids and precomputed nominal
  /// cross-processor communication delays (items × per-item delay).
  std::span<const TaskId> pred_ids(TaskId t) const noexcept {
    return {pred_task_.data() + pred_off_[idx(t)],
            pred_off_[idx(t) + 1] - pred_off_[idx(t)]};
  }
  std::span<const CTime> pred_comm(TaskId t) const noexcept {
    return {pred_comm_.data() + pred_off_[idx(t)],
            pred_off_[idx(t) + 1] - pred_off_[idx(t)]};
  }
  std::span<const TaskId> succ_ids(TaskId t) const noexcept {
    return {succ_task_.data() + succ_off_[idx(t)],
            succ_off_[idx(t) + 1] - succ_off_[idx(t)]};
  }
  std::span<const CTime> succ_comm(TaskId t) const noexcept {
    return {succ_comm_.data() + succ_off_[idx(t)],
            succ_off_[idx(t) + 1] - succ_off_[idx(t)]};
  }

  int pred_count(TaskId t) const noexcept {
    return static_cast<int>(pred_ids(t).size());
  }

  /// Hop multiplier between two processors (0 on the diagonal): the
  /// nominal delay of a message is pred_comm[k] × hop(p, q).
  CTime hop(ProcId p, ProcId q) const noexcept {
    return hop_[static_cast<std::size_t>(p) * kMaxProcs +
                static_cast<std::size_t>(q)];
  }

  /// Tasks with no predecessors (ready in the empty schedule).
  TaskSet initial_ready() const noexcept { return initial_ready_; }

  /// All n tasks as a set.
  TaskSet all_tasks() const noexcept { return TaskSet::first_n(n_); }

  /// Deterministic forward topological order (shared with Topology).
  std::span<const TaskId> topo_order() const noexcept {
    return topo_.topo_order;
  }
  /// Position of t within topo_order() (inverse permutation).
  int topo_rank(TaskId t) const noexcept { return topo_rank_[idx(t)]; }
  /// Tasks sorted by (absolute deadline, id): the static order the LB2
  /// packing bound walks. Membership changes between bound evaluations,
  /// the order never does, so it is computed once here instead of per
  /// evaluation (see bnb/lower_bound.hpp, IncrementalLB).
  std::span<const TaskId> deadline_order() const noexcept {
    return deadline_order_;
  }
  /// Position of t within deadline_order() (inverse permutation).
  int deadline_rank(TaskId t) const noexcept { return deadline_rank_[idx(t)]; }
  /// exec / deadline of the task at deadline rank r, as contiguous arrays
  /// so the packing loop touches no indirection.
  CTime exec_at_deadline_rank(int r) const noexcept {
    return dl_exec_[static_cast<std::size_t>(r)];
  }
  CTime deadline_at_rank(int r) const noexcept {
    return dl_deadline_[static_cast<std::size_t>(r)];
  }
  /// Prefix sums over deadline_order(): sum of exec of ranks [0, r).
  /// deadline_prefix_work(n) is the total workload of the graph.
  Time deadline_prefix_work(int r) const noexcept {
    return dl_prefix_work_[static_cast<std::size_t>(r)];
  }
  Time total_work() const noexcept {
    return dl_prefix_work_[static_cast<std::size_t>(n_)];
  }
  /// Static slack D_t − (a_t + c_t): how late t's window is relative to an
  /// unobstructed run. Negative slack means t is late in *every* schedule.
  Time slack(TaskId t) const noexcept { return slack_[idx(t)]; }
  /// max_t (a_t + c_t − D_t) = −min slack: an exact static floor on every
  /// bound function (f̂_t >= a_t + c_t always), so evaluators may seed
  /// their running maximum with it and short-circuit earlier.
  Time static_lateness_floor() const noexcept { return static_floor_; }
  /// DF branching priority (see Topology::dfs_order).
  std::span<const TaskId> dfs_order() const noexcept {
    return topo_.dfs_order;
  }
  /// BF1 branching priority (see Topology::level_order).
  std::span<const TaskId> level_order() const noexcept {
    return topo_.level_order;
  }

 private:
  static std::size_t idx(TaskId t) noexcept {
    return static_cast<std::size_t>(t);
  }

  TaskGraph graph_;
  Machine machine_;
  Topology topo_;
  int n_ = 0;
  int m_ = 0;
  std::vector<CTime> exec_, arrival_, deadline_;
  std::vector<int> topo_rank_, deadline_rank_;
  std::vector<TaskId> deadline_order_;
  std::vector<CTime> dl_exec_, dl_deadline_;
  std::vector<Time> dl_prefix_work_, slack_;
  Time static_floor_ = kTimeNegInf;
  std::vector<std::size_t> pred_off_, succ_off_;
  std::vector<TaskId> pred_task_, succ_task_;
  std::vector<CTime> pred_comm_, succ_comm_;
  std::array<CTime, static_cast<std::size_t>(kMaxProcs) * kMaxProcs> hop_{};
  TaskSet initial_ready_;
};

}  // namespace parabb
