// Schedule validity checking (paper §2.2): a schedule is *valid* iff
//  (i)  s_i >= a_i and f_i <= D_i for every task, and
//  (ii) every precedence constraint is met, including the nominal
//       cross-processor communication delay.
// We additionally check the structural properties any output of the
// scheduling operation must have: f_i = s_i + c_i, no overlap on a
// processor, and processor ids within range.
//
// Deadline satisfaction can be toggled off (`require_deadlines = false`)
// because the B&B minimizes lateness even when the task set is infeasible —
// a best schedule may be structurally sound yet miss deadlines.
#pragma once

#include <string>

#include "parabb/platform/machine.hpp"
#include "parabb/sched/schedule.hpp"
#include "parabb/taskgraph/graph.hpp"

namespace parabb {

struct ValidationReport {
  bool structurally_sound = false;  ///< (ii) + structure, ignoring deadlines
  bool deadlines_met = false;       ///< (i) second half
  std::string error;                ///< first violation found, empty if none

  /// Paper's "valid schedule": both of the above.
  bool valid() const noexcept { return structurally_sound && deadlines_met; }
};

/// Checks `s` against `graph` on `machine`.
ValidationReport validate_schedule(const Schedule& s, const TaskGraph& graph,
                                   const Machine& machine);

}  // namespace parabb
