// Experiment harness reproducing the paper's methodology (§5):
//
//  * every reported value is an average over replications, one random task
//    graph per replication (the same graph is reused across all algorithm
//    variants and machine sizes — paired comparisons);
//  * replications are added until Student-t confidence intervals meet the
//    paper's targets: 90 % confidence within ±10 % of the mean for searched
//    vertices, 95 % within ±0.5 % for maximum lateness (or a replication
//    cap is hit, which the report flags);
//  * runs that exceed the per-run time limit are excluded from the
//    averages and counted (the paper reports < 1 % excluded).
//
// Replications execute in parallel on a thread pool; aggregation is
// performed serially in replication order, so results are bit-identical
// regardless of thread count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "parabb/bnb/engine.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/support/stats.hpp"
#include "parabb/workload/generator.hpp"

namespace parabb {

/// One algorithm under test.
struct AlgorithmVariant {
  enum class Kind {
    kBnB,       ///< the parametrized B&B with `params`
    kEdf,       ///< greedy EDF reference (§4.4)
    kHlfet,     ///< static HLFET list heuristic (extension baseline)
  };
  std::string label;
  Kind kind = Kind::kBnB;
  Params params;  ///< used when kind == kBnB
};

struct ExperimentConfig {
  GeneratorConfig workload;                ///< task-graph distribution
  SlicingConfig slicing;                   ///< deadline assignment
  std::vector<int> machine_sizes{2, 3, 4}; ///< processor counts (x-axis)
  std::vector<AlgorithmVariant> variants;

  int min_reps = 8;      ///< replications in the first batch
  int batch_reps = 8;    ///< added per round until converged
  int max_reps = 64;     ///< hard cap (report flags non-convergence)

  double vertices_confidence = 0.90;
  double vertices_rel_err = 0.10;
  double lateness_confidence = 0.95;
  double lateness_rel_err = 0.005;

  std::uint64_t seed = 0x5eed;
  std::size_t threads = 0;  ///< instance-level parallelism; 0 = hardware
};

/// Aggregated measurements for one (variant, machine size) cell.
struct CellStats {
  OnlineStats vertices;   ///< searched (cost-evaluated) vertices
  OnlineStats lateness;   ///< maximum task lateness of the best solution
  OnlineStats seconds;    ///< per-run wall time
  OnlineStats peak_active;///< peak |AS|
  OnlineStats tt_hit_rate;  ///< transposition hits / probes (0 when off)
  OnlineStats tt_evictions; ///< entries evicted or rejected per run
  OnlineStats tt_collisions;///< equal-fingerprint/unequal-state per run
  std::uint64_t excluded = 0;  ///< runs dropped for exceeding TIMELIMIT
  std::uint64_t unproved = 0;  ///< runs that lost the optimality guarantee
};

struct ExperimentResult {
  /// cells[v][mi] for variants[v] × machine_sizes[mi].
  std::vector<std::vector<CellStats>> cells;
  int reps_used = 0;
  bool converged = false;  ///< CI targets met before the replication cap
};

ExperimentResult run_experiment(const ExperimentConfig& config);

/// EDF "searched vertices" equivalent plotted by the paper: the greedy
/// algorithm walks a single root-to-goal path, one vertex per task.
double edf_vertex_equivalent(int task_count);

}  // namespace parabb
