// ASCII rendering of the paper's two-panel figures: a log-scale panel of
// searched vertices and a linear panel of maximum task lateness, both as
// series over the machine size (or any other swept parameter).
#pragma once

#include <string>
#include <vector>

#include "parabb/experiments/experiment.hpp"

namespace parabb {

struct PlotSeries {
  std::string label;
  std::vector<double> values;  ///< one per x position; NaN = missing
};

struct PlotConfig {
  std::string title;
  std::string y_label;
  bool log_y = false;
  int height = 12;  ///< chart rows (excluding axes/legend)
  int width = 56;   ///< chart columns
};

/// Renders series sampled at `x_labels` positions as an ASCII chart with
/// one mark character per series ('a', 'b', ...) and a legend.
std::string render_plot(const PlotConfig& config,
                        const std::vector<std::string>& x_labels,
                        const std::vector<PlotSeries>& series);

/// Convenience: the paper's figure layout for an experiment result —
/// upper panel log-vertices, lower panel lateness, x = machine sizes.
std::string render_paper_figure(const ExperimentConfig& config,
                                const ExperimentResult& result,
                                const std::string& title);

}  // namespace parabb
