#include "parabb/experiments/plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "parabb/support/assert.hpp"
#include "parabb/support/table.hpp"

namespace parabb {
namespace {

double transform(double v, bool log_y) {
  if (!log_y) return v;
  return std::log10(std::max(v, 0.5));  // clamp: 0 plots at the bottom
}

}  // namespace

std::string render_plot(const PlotConfig& config,
                        const std::vector<std::string>& x_labels,
                        const std::vector<PlotSeries>& series) {
  PARABB_REQUIRE(!x_labels.empty(), "plot needs at least one x position");
  PARABB_REQUIRE(!series.empty(), "plot needs at least one series");
  PARABB_REQUIRE(config.height >= 3 && config.width >= 16,
                 "plot too small");
  for (const PlotSeries& s : series) {
    PARABB_REQUIRE(s.values.size() == x_labels.size(),
                   "series length must match x positions");
  }

  // Value range over finite points.
  double lo = 0, hi = 0;
  bool any = false;
  for (const PlotSeries& s : series) {
    for (const double v : s.values) {
      if (!std::isfinite(v)) continue;
      const double t = transform(v, config.log_y);
      if (!any) {
        lo = hi = t;
        any = true;
      } else {
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
    }
  }
  if (!any) return config.title + ": (no data)\n";
  if (hi - lo < 1e-12) {
    hi = lo + 1.0;
    lo -= (config.log_y ? 0.0 : 1.0);
  }

  const auto rows = static_cast<std::size_t>(config.height);
  const auto cols = static_cast<std::size_t>(config.width);
  std::vector<std::string> canvas(rows, std::string(cols, ' '));

  const std::size_t nx = x_labels.size();
  auto x_pos = [&](std::size_t i) {
    return nx == 1 ? cols / 2 : i * (cols - 1) / (nx - 1);
  };
  auto y_row = [&](double t) {
    const double frac = (t - lo) / (hi - lo);
    const auto r = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(rows - 1)));
    return rows - 1 - std::min(r, rows - 1);  // row 0 = top
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = static_cast<char>('a' + static_cast<char>(si % 26));
    for (std::size_t i = 0; i < nx; ++i) {
      const double v = series[si].values[i];
      if (!std::isfinite(v)) continue;
      const std::size_t r = y_row(transform(v, config.log_y));
      std::size_t c = x_pos(i);
      // Nudge right if another series already owns the cell.
      while (c < cols && canvas[r][c] != ' ') ++c;
      if (c < cols) canvas[r][c] = mark;
    }
  }

  std::ostringstream os;
  os << config.title << "  (y: " << config.y_label
     << (config.log_y ? ", log scale" : "") << ")\n";
  // y-axis tick labels at top/bottom.
  auto tick = [&](double t) {
    const double v = config.log_y ? std::pow(10.0, t) : t;
    return fmt_double(v, config.log_y ? 0 : 2);
  };
  const std::string top = tick(hi);
  const std::string bottom = tick(lo);
  const std::size_t label_w = std::max(top.size(), bottom.size());
  for (std::size_t r = 0; r < rows; ++r) {
    std::string label(label_w, ' ');
    if (r == 0) label = std::string(label_w - top.size(), ' ') + top;
    if (r == rows - 1)
      label = std::string(label_w - bottom.size(), ' ') + bottom;
    os << label << " |" << canvas[r] << "\n";
  }
  os << std::string(label_w, ' ') << " +" << std::string(cols, '-') << "\n";
  // x labels.
  std::string xrow(cols, ' ');
  for (std::size_t i = 0; i < nx; ++i) {
    const std::string& xl = x_labels[i];
    std::size_t c = x_pos(i);
    if (c + xl.size() > cols && xl.size() <= cols) c = cols - xl.size();
    for (std::size_t k = 0; k < xl.size() && c + k < cols; ++k)
      xrow[c + k] = xl[k];
  }
  os << std::string(label_w, ' ') << "  " << xrow << "\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << static_cast<char>('a' + static_cast<char>(si % 26))
       << " = " << series[si].label << "\n";
  }
  return os.str();
}

std::string render_paper_figure(const ExperimentConfig& config,
                                const ExperimentResult& result,
                                const std::string& title) {
  std::vector<std::string> x_labels;
  for (const int m : config.machine_sizes)
    x_labels.push_back(std::to_string(m));

  std::vector<PlotSeries> vertices, lateness;
  for (std::size_t v = 0; v < config.variants.size(); ++v) {
    PlotSeries sv{config.variants[v].label, {}};
    PlotSeries sl{config.variants[v].label, {}};
    for (std::size_t mi = 0; mi < config.machine_sizes.size(); ++mi) {
      const CellStats& cell = result.cells[v][mi];
      const bool has = cell.vertices.count() > 0;
      sv.values.push_back(has ? cell.vertices.mean()
                              : std::nan(""));
      sl.values.push_back(has ? cell.lateness.mean()
                              : std::nan(""));
    }
    vertices.push_back(std::move(sv));
    lateness.push_back(std::move(sl));
  }

  PlotConfig upper;
  upper.title = title + " — searched vertices vs machine size";
  upper.y_label = "vertices";
  upper.log_y = true;
  PlotConfig lower;
  lower.title = title + " — max task lateness vs machine size";
  lower.y_label = "lateness";
  lower.log_y = false;

  return render_plot(upper, x_labels, vertices) + "\n" +
         render_plot(lower, x_labels, lateness);
}

}  // namespace parabb
