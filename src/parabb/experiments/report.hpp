// Rendering of experiment results as paper-style tables and CSV.
#pragma once

#include <string>

#include "parabb/experiments/experiment.hpp"
#include "parabb/support/table.hpp"

namespace parabb {

/// One row per (variant, machine size): searched vertices and maximum
/// lateness as mean ± CI half-width, per-run time, exclusions.
TextTable make_report_table(const ExperimentConfig& config,
                            const ExperimentResult& result);

/// Ratio summary against a reference variant (e.g. "LLB / LIFO vertices"):
/// one row per machine size with vertices and lateness ratios.
TextTable make_ratio_table(const ExperimentConfig& config,
                           const ExperimentResult& result,
                           std::size_t reference_variant);

/// Prints `table` to stdout with a heading; optionally writes CSV to
/// `csv_path` (empty = skip).
void emit(const std::string& heading, const TextTable& table,
          const std::string& csv_path = {});

}  // namespace parabb
