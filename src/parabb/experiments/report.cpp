#include "parabb/experiments/report.hpp"

#include <cstdio>

#include "parabb/support/assert.hpp"

namespace parabb {

TextTable make_report_table(const ExperimentConfig& config,
                            const ExperimentResult& result) {
  // Transposition-table columns appear only when some variant uses the
  // table, so the paper-reproduction reports keep their original shape.
  bool any_tt = false;
  for (const AlgorithmVariant& v : config.variants) {
    any_tt |= v.kind == AlgorithmVariant::Kind::kBnB &&
              v.params.transposition.enabled;
  }

  TextTable table;
  std::vector<std::string> header{"variant", "m",    "vertices",
                                  "lateness", "ms/run", "peak |AS|"};
  if (any_tt) {
    header.insert(header.end(), {"TT hit%", "TT evict", "TT coll"});
  }
  header.insert(header.end(), {"excl", "unprov", "runs"});
  table.set_header(std::move(header));
  for (std::size_t v = 0; v < config.variants.size(); ++v) {
    if (v > 0) table.add_rule();
    for (std::size_t mi = 0; mi < config.machine_sizes.size(); ++mi) {
      const CellStats& cell = result.cells[v][mi];
      std::vector<std::string> row{
          config.variants[v].label,
          std::to_string(config.machine_sizes[mi]),
          fmt_ci(cell.vertices.mean(),
                 ci_halfwidth(cell.vertices, config.vertices_confidence), 1),
          fmt_ci(cell.lateness.mean(),
                 ci_halfwidth(cell.lateness, config.lateness_confidence), 2),
          fmt_double(cell.seconds.mean() * 1e3, 3),
          fmt_double(cell.peak_active.mean(), 1),
      };
      if (any_tt) {
        row.push_back(fmt_double(cell.tt_hit_rate.mean() * 100.0, 1));
        row.push_back(fmt_double(cell.tt_evictions.mean(), 1));
        row.push_back(fmt_double(cell.tt_collisions.mean(), 1));
      }
      row.insert(row.end(), {std::to_string(cell.excluded),
                             std::to_string(cell.unproved),
                             std::to_string(cell.vertices.count())});
      table.add_row(std::move(row));
    }
  }
  return table;
}

TextTable make_ratio_table(const ExperimentConfig& config,
                           const ExperimentResult& result,
                           std::size_t reference_variant) {
  PARABB_REQUIRE(reference_variant < config.variants.size(),
                 "reference variant index out of range");
  TextTable table;
  std::vector<std::string> header{"m"};
  for (std::size_t v = 0; v < config.variants.size(); ++v) {
    if (v == reference_variant) continue;
    header.push_back(config.variants[v].label + " vtx/ref");
    header.push_back(config.variants[v].label + " lat-ref");
  }
  table.set_header(std::move(header));
  for (std::size_t mi = 0; mi < config.machine_sizes.size(); ++mi) {
    std::vector<std::string> row{
        std::to_string(config.machine_sizes[mi])};
    const CellStats& ref = result.cells[reference_variant][mi];
    for (std::size_t v = 0; v < config.variants.size(); ++v) {
      if (v == reference_variant) continue;
      const CellStats& cell = result.cells[v][mi];
      const double vr = ref.vertices.mean() > 0
                            ? cell.vertices.mean() / ref.vertices.mean()
                            : 0.0;
      row.push_back(fmt_double(vr, 2) + "x");
      row.push_back(fmt_double(cell.lateness.mean() - ref.lateness.mean(),
                               2));
    }
    table.add_row(std::move(row));
  }
  return table;
}

void emit(const std::string& heading, const TextTable& table,
          const std::string& csv_path) {
  std::printf("\n== %s ==\n%s", heading.c_str(), table.to_string().c_str());
  if (!csv_path.empty()) {
    write_text_file(csv_path, table.to_csv());
    std::printf("(csv written to %s)\n", csv_path.c_str());
  }
  std::fflush(stdout);
}

}  // namespace parabb
