// Text-file experiment specifications (FEAST-style front end; the paper's
// experiments were driven by such a framework, see its footnote 1).
//
// An experiment spec is line-oriented ('#' comments, blank lines ignored):
//
//   workload n=12..16 depth=8..12 degree=3 exec-mean=20 exec-dev=0.99
//            ccr=1.0 width=0     (one line in the file)
//   slicing laxity=1.5 base=path|total
//   machines 2,3,4
//   reps min=8 batch=8 max=24
//   seed 42
//   limit time=1.0 max-active=250000
//   threads 0
//   variant edf
//   variant hlfet
//   variant bnb label=LIFO select=lifo branch=bfn lb=lb1 ub=edf br=0
//
// Every directive is optional except at least one `variant`; unspecified
// knobs keep the paper's defaults. Ranges use `lo..hi`; single values
// mean lo == hi. `variant bnb` accepts select=lifo|llb|fifo,
// branch=bfn|bf1|df, lb=lb0|lb1|lb2, ub=edf|inf|<integer>, br=<float>,
// sort=0|1, llb-ties=oldest|newest.
#pragma once

#include <string>

#include "parabb/experiments/experiment.hpp"

namespace parabb {

/// Parses a spec document into an ExperimentConfig. Throws
/// std::runtime_error with a line-numbered message on malformed input or
/// if no variant is declared. The per-run resource bounds from `limit`
/// are applied to every B&B variant.
ExperimentConfig parse_experiment_spec(const std::string& text);

/// Reads and parses a spec file.
ExperimentConfig load_experiment_spec(const std::string& path);

}  // namespace parabb
