#include "parabb/experiments/experiment.hpp"

#include <mutex>

#include "parabb/sched/edf.hpp"
#include "parabb/sched/list.hpp"
#include "parabb/support/assert.hpp"
#include "parabb/support/threadpool.hpp"
#include "parabb/support/timer.hpp"

namespace parabb {
namespace {

/// Raw measurements of one run (one variant on one instance/machine).
struct RunSample {
  double vertices = 0;
  double lateness = 0;
  double seconds = 0;
  double peak_active = 0;
  double tt_hit_rate = 0;
  double tt_evictions = 0;
  double tt_collisions = 0;
  bool excluded = false;
  bool unproved = false;
};

RunSample run_variant(const AlgorithmVariant& variant, const SchedContext& ctx) {
  RunSample s;
  switch (variant.kind) {
    case AlgorithmVariant::Kind::kEdf: {
      Stopwatch w;
      const EdfResult r = schedule_edf(ctx);
      s.seconds = w.seconds();
      s.vertices = edf_vertex_equivalent(ctx.task_count());
      s.lateness = static_cast<double>(r.max_lateness);
      s.peak_active = 1;
      break;
    }
    case AlgorithmVariant::Kind::kHlfet: {
      Stopwatch w;
      const ListResult r = schedule_hlfet(ctx);
      s.seconds = w.seconds();
      s.vertices = edf_vertex_equivalent(ctx.task_count());
      s.lateness = static_cast<double>(r.max_lateness);
      s.peak_active = 1;
      break;
    }
    case AlgorithmVariant::Kind::kBnB: {
      const SearchResult r = solve_bnb(ctx, variant.params);
      s.seconds = r.stats.seconds;
      s.vertices = static_cast<double>(r.stats.generated);
      s.lateness = static_cast<double>(r.best_cost);
      s.peak_active = static_cast<double>(r.stats.peak_active);
      const double probes =
          static_cast<double>(r.stats.tt_hits + r.stats.tt_misses);
      s.tt_hit_rate =
          probes > 0 ? static_cast<double>(r.stats.tt_hits) / probes : 0.0;
      s.tt_evictions = static_cast<double>(r.stats.tt_evictions);
      s.tt_collisions = static_cast<double>(r.stats.tt_collisions);
      s.excluded = r.reason == TerminationReason::kTimeLimit;
      s.unproved = !r.proved;
      break;
    }
  }
  return s;
}

}  // namespace

double edf_vertex_equivalent(int task_count) {
  return static_cast<double>(task_count);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  PARABB_REQUIRE(!config.variants.empty(), "no variants configured");
  PARABB_REQUIRE(!config.machine_sizes.empty(), "no machine sizes configured");
  PARABB_REQUIRE(config.min_reps >= 2 && config.batch_reps >= 1 &&
                     config.max_reps >= config.min_reps,
                 "bad replication plan");

  const std::size_t nv = config.variants.size();
  const std::size_t nm = config.machine_sizes.size();

  // samples[rep][v][mi], filled by the pool, aggregated serially.
  std::vector<std::vector<std::vector<RunSample>>> samples;
  std::mutex samples_mutex;

  ThreadPool pool(config.threads);

  auto run_rep = [&](std::size_t rep) {
    // One random instance per replication, shared by all cells.
    GeneratedGraph gen =
        generate_graph(config.workload, derive_seed(config.seed, rep));
    assign_deadlines_slicing(gen.graph, config.slicing);

    std::vector<std::vector<RunSample>> rep_samples(
        nv, std::vector<RunSample>(nm));
    for (std::size_t mi = 0; mi < nm; ++mi) {
      const Machine machine =
          make_shared_bus_machine(config.machine_sizes[mi]);
      const SchedContext ctx(gen.graph, machine);
      for (std::size_t v = 0; v < nv; ++v) {
        rep_samples[v][mi] = run_variant(config.variants[v], ctx);
      }
    }
    const std::lock_guard lock(samples_mutex);
    samples[rep] = std::move(rep_samples);
  };

  ExperimentResult result;
  result.cells.assign(nv, std::vector<CellStats>(nm));

  int target = config.min_reps;
  int completed = 0;
  while (true) {
    samples.resize(static_cast<std::size_t>(target));
    pool.parallel_for(static_cast<std::size_t>(target - completed),
                      [&](std::size_t i) {
                        run_rep(static_cast<std::size_t>(completed) + i);
                      });
    completed = target;

    // Serial, order-deterministic aggregation from scratch. Exclusion is
    // *paired*: a replication whose TIMELIMIT tripped for any variant at a
    // machine size is dropped from every variant's average at that machine
    // size, so capped runs cannot bias cross-variant ratios.
    result.cells.assign(nv, std::vector<CellStats>(nm));
    for (int rep = 0; rep < completed; ++rep) {
      for (std::size_t mi = 0; mi < nm; ++mi) {
        bool any_excluded = false;
        for (std::size_t v = 0; v < nv; ++v) {
          any_excluded |=
              samples[static_cast<std::size_t>(rep)][v][mi].excluded;
        }
        for (std::size_t v = 0; v < nv; ++v) {
          const RunSample& s =
              samples[static_cast<std::size_t>(rep)][v][mi];
          CellStats& cell = result.cells[v][mi];
          if (any_excluded) {
            ++cell.excluded;
            continue;
          }
          if (s.unproved) ++cell.unproved;
          cell.vertices.add(s.vertices);
          cell.lateness.add(s.lateness);
          cell.seconds.add(s.seconds);
          cell.peak_active.add(s.peak_active);
          cell.tt_hit_rate.add(s.tt_hit_rate);
          cell.tt_evictions.add(s.tt_evictions);
          cell.tt_collisions.add(s.tt_collisions);
        }
      }
    }

    // Paper's stopping rule, applied to every cell.
    bool converged = true;
    for (std::size_t v = 0; v < nv && converged; ++v) {
      for (std::size_t mi = 0; mi < nm && converged; ++mi) {
        const CellStats& cell = result.cells[v][mi];
        converged =
            ci_converged(cell.vertices, config.vertices_confidence,
                         config.vertices_rel_err, /*abs_floor=*/1.0) &&
            ci_converged(cell.lateness, config.lateness_confidence,
                         config.lateness_rel_err, /*abs_floor=*/1.0);
      }
    }
    result.reps_used = completed;
    result.converged = converged;
    if (converged || completed >= config.max_reps) break;
    target = std::min(config.max_reps, completed + config.batch_reps);
  }
  return result;
}

}  // namespace parabb
