#include "parabb/experiments/spec.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace parabb {
namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("spec error at line " + std::to_string(line) +
                           ": " + msg);
}

/// key=value tokens of one directive line.
std::map<std::string, std::string> attrs_of(std::istringstream& ls,
                                            int line) {
  std::map<std::string, std::string> out;
  std::string token;
  while (ls >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos)
      fail(line, "expected key=value, got '" + token + "'");
    const std::string key = token.substr(0, eq);
    if (out.contains(key)) fail(line, "duplicate attribute " + key);
    out[key] = token.substr(eq + 1);
  }
  return out;
}

double to_double(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    fail(line, "not a number: " + v);
  }
}

long long to_int(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const long long out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    fail(line, "not an integer: " + v);
  }
}

/// "lo..hi" or a single value.
std::pair<int, int> to_range(const std::string& v, int line) {
  const auto dots = v.find("..");
  if (dots == std::string::npos) {
    const int x = static_cast<int>(to_int(v, line));
    return {x, x};
  }
  return {static_cast<int>(to_int(v.substr(0, dots), line)),
          static_cast<int>(to_int(v.substr(dots + 2), line))};
}

void apply_workload(GeneratorConfig& wl,
                    const std::map<std::string, std::string>& attrs,
                    int line) {
  for (const auto& [key, value] : attrs) {
    if (key == "n") {
      std::tie(wl.n_min, wl.n_max) = to_range(value, line);
    } else if (key == "depth") {
      std::tie(wl.depth_min, wl.depth_max) = to_range(value, line);
    } else if (key == "degree") {
      wl.degree_max = static_cast<int>(to_int(value, line));
    } else if (key == "exec-mean") {
      wl.exec_mean = to_double(value, line);
    } else if (key == "exec-dev") {
      wl.exec_dev = to_double(value, line);
    } else if (key == "ccr") {
      wl.ccr = to_double(value, line);
    } else if (key == "width") {
      wl.fixed_width = static_cast<int>(to_int(value, line));
    } else {
      fail(line, "unknown workload attribute: " + key);
    }
  }
}

AlgorithmVariant parse_bnb_variant(
    const std::map<std::string, std::string>& attrs, int line) {
  AlgorithmVariant v;
  v.kind = AlgorithmVariant::Kind::kBnB;
  v.label = "B&B";
  for (const auto& [key, value] : attrs) {
    if (key == "label") {
      v.label = value;
    } else if (key == "select") {
      if (value == "lifo") v.params.select = SelectRule::kLIFO;
      else if (value == "llb") v.params.select = SelectRule::kLLB;
      else if (value == "fifo") v.params.select = SelectRule::kFIFO;
      else fail(line, "bad select: " + value);
    } else if (key == "branch") {
      if (value == "bfn") v.params.branch = BranchRule::kBFn;
      else if (value == "bf1") v.params.branch = BranchRule::kBF1;
      else if (value == "df") v.params.branch = BranchRule::kDF;
      else fail(line, "bad branch: " + value);
    } else if (key == "lb") {
      if (value == "lb0") v.params.lb = LowerBound::kLB0;
      else if (value == "lb1") v.params.lb = LowerBound::kLB1;
      else if (value == "lb2") v.params.lb = LowerBound::kLB2;
      else fail(line, "bad lb: " + value);
    } else if (key == "ub") {
      if (value == "edf") {
        v.params.ub = UpperBoundInit::kFromEDF;
      } else if (value == "inf") {
        v.params.ub = UpperBoundInit::kInfinite;
      } else {
        v.params.ub = UpperBoundInit::kExplicit;
        v.params.explicit_ub = to_int(value, line);
      }
    } else if (key == "br") {
      v.params.br = to_double(value, line);
    } else if (key == "sort") {
      v.params.sort_children = to_int(value, line) != 0;
    } else if (key == "llb-ties") {
      if (value == "oldest") v.params.llb_tie_newest = false;
      else if (value == "newest") v.params.llb_tie_newest = true;
      else fail(line, "bad llb-ties: " + value);
    } else {
      fail(line, "unknown bnb attribute: " + key);
    }
  }
  return v;
}

}  // namespace

ExperimentConfig parse_experiment_spec(const std::string& text) {
  ExperimentConfig cfg;
  ResourceBounds limits;  // applied to every B&B variant at the end
  limits.time_limit_s = 1.0;
  limits.max_active = 250'000;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive) || directive[0] == '#') continue;

    if (directive == "workload") {
      apply_workload(cfg.workload, attrs_of(ls, lineno), lineno);
    } else if (directive == "slicing") {
      for (const auto& [key, value] : attrs_of(ls, lineno)) {
        if (key == "laxity") {
          cfg.slicing.laxity = to_double(value, lineno);
        } else if (key == "base") {
          if (value == "path") cfg.slicing.base = LaxityBase::kPathWork;
          else if (value == "total")
            cfg.slicing.base = LaxityBase::kTotalWork;
          else fail(lineno, "bad slicing base: " + value);
        } else {
          fail(lineno, "unknown slicing attribute: " + key);
        }
      }
    } else if (directive == "machines") {
      cfg.machine_sizes.clear();
      std::string list;
      ls >> list;
      std::stringstream ss(list);
      std::string item;
      while (std::getline(ss, item, ',')) {
        cfg.machine_sizes.push_back(
            static_cast<int>(to_int(item, lineno)));
      }
      if (cfg.machine_sizes.empty()) fail(lineno, "machines needs a list");
    } else if (directive == "reps") {
      for (const auto& [key, value] : attrs_of(ls, lineno)) {
        if (key == "min") cfg.min_reps = static_cast<int>(to_int(value, lineno));
        else if (key == "batch")
          cfg.batch_reps = static_cast<int>(to_int(value, lineno));
        else if (key == "max")
          cfg.max_reps = static_cast<int>(to_int(value, lineno));
        else fail(lineno, "unknown reps attribute: " + key);
      }
    } else if (directive == "seed") {
      std::string v;
      if (!(ls >> v)) fail(lineno, "seed needs a value");
      cfg.seed = static_cast<std::uint64_t>(to_int(v, lineno));
    } else if (directive == "threads") {
      std::string v;
      if (!(ls >> v)) fail(lineno, "threads needs a value");
      cfg.threads = static_cast<std::size_t>(to_int(v, lineno));
    } else if (directive == "limit") {
      for (const auto& [key, value] : attrs_of(ls, lineno)) {
        if (key == "time") limits.time_limit_s = to_double(value, lineno);
        else if (key == "max-active")
          limits.max_active =
              static_cast<std::size_t>(to_int(value, lineno));
        else if (key == "max-children")
          limits.max_children = static_cast<int>(to_int(value, lineno));
        else fail(lineno, "unknown limit attribute: " + key);
      }
    } else if (directive == "variant") {
      std::string kind;
      if (!(ls >> kind)) fail(lineno, "variant needs a kind");
      if (kind == "edf") {
        AlgorithmVariant v;
        v.kind = AlgorithmVariant::Kind::kEdf;
        v.label = "EDF";
        cfg.variants.push_back(v);
      } else if (kind == "hlfet") {
        AlgorithmVariant v;
        v.kind = AlgorithmVariant::Kind::kHlfet;
        v.label = "HLFET";
        cfg.variants.push_back(v);
      } else if (kind == "bnb") {
        cfg.variants.push_back(
            parse_bnb_variant(attrs_of(ls, lineno), lineno));
      } else {
        fail(lineno, "unknown variant kind: " + kind);
      }
    } else {
      fail(lineno, "unknown directive: " + directive);
    }
  }

  if (cfg.variants.empty()) {
    throw std::runtime_error("spec declares no variants");
  }
  for (AlgorithmVariant& v : cfg.variants) {
    if (v.kind == AlgorithmVariant::Kind::kBnB) v.params.rb = limits;
  }
  return cfg;
}

ExperimentConfig load_experiment_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open spec: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_experiment_spec(buf.str());
}

}  // namespace parabb
