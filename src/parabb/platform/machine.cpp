#include "parabb/platform/machine.hpp"

#include "parabb/support/assert.hpp"

namespace parabb {

int Machine::hops(ProcId p, ProcId q) const {
  if (p == q) return 0;
  if (!topology) return 1;
  return topology->hops(p, q);
}

Time Machine::comm_delay(ProcId p, ProcId q, Time items) const {
  if (p == q) return 0;
  return comm.delay(items) * hops(p, q);
}

std::string Machine::describe() const {
  std::string out = std::to_string(procs) + " identical processors, ";
  if (comm.per_item_delay() == 0) return out + "zero-cost interconnect";
  out += topology ? topology->name() : std::string("shared bus");
  out += " @ " + std::to_string(comm.per_item_delay()) +
         " time unit(s)/item/hop";
  return out;
}

Machine make_shared_bus_machine(int procs) {
  PARABB_REQUIRE(procs >= 1 && procs <= kMaxProcs,
                 "processor count out of supported range");
  return Machine{procs, CommModel::per_item(1), std::nullopt};
}

Machine make_network_machine(NetworkTopology topology, Time per_item) {
  Machine m;
  m.procs = topology.procs();
  m.comm = CommModel::per_item(per_item);
  m.topology = std::move(topology);
  return m;
}

}  // namespace parabb
