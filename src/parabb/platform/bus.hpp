// SharedBus: a contention-aware serializing bus timeline (extension).
//
// The paper charges a *nominal* per-item delay and assumes the interconnect's
// own scheduler absorbs contention. This class models the bus explicitly:
// messages reserve exclusive, non-preemptive slots on a single shared medium.
// The bus-aware placement path in parabb_sched uses it to quantify how much
// lateness the nominal model hides (bench `ablation` material; see DESIGN.md).
#pragma once

#include <vector>

#include "parabb/support/types.hpp"

namespace parabb {

class SharedBus {
 public:
  explicit SharedBus(Time per_item = 1);

  Time per_item_delay() const noexcept { return per_item_; }

  /// Earliest start >= `earliest` at which a `duration`-long exclusive slot
  /// fits, without reserving it.
  Time probe(Time earliest, Time duration) const;

  /// Reserves the earliest feasible slot >= `earliest` for a message of
  /// `items` data items; returns the transfer's [start, finish) interval
  /// finish. Zero-item messages cost nothing and return `earliest`.
  Time reserve(Time earliest, Time items);

  /// Number of reserved transfer slots.
  std::size_t reservation_count() const noexcept { return busy_.size(); }

  /// Total reserved bus time.
  Time utilization() const noexcept;

  void clear() noexcept { busy_.clear(); }

 private:
  struct Interval {
    Time start, finish;  // [start, finish)
  };

  Time per_item_;
  std::vector<Interval> busy_;  // sorted by start, non-overlapping
};

}  // namespace parabb
