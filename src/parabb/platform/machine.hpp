// Machine model (paper §2.1, §4): m identical processors communicating over
// an interconnect characterized by a *nominal* per-message delay.
//
// The nominal delay is the worst-case communication cost the scheduler
// charges for a cross-processor message: message items × delay-per-item.
// Same-processor communication costs nothing (shared memory). Network
// transfers overlap with computation (no processor involvement).
#pragma once

#include <optional>
#include <string>

#include "parabb/platform/topology.hpp"
#include "parabb/support/types.hpp"

namespace parabb {

/// Stateless nominal communication-cost model.
class CommModel {
 public:
  /// Zero-cost interconnect (ideal shared memory between processors).
  static constexpr CommModel zero() noexcept { return CommModel(0); }

  /// The paper's shared time-multiplexed bus: `per_item` time units per
  /// transmitted data item (paper uses 1).
  static constexpr CommModel per_item(Time per_item = 1) noexcept {
    return CommModel(per_item);
  }

  /// Nominal delay of a message of `items` data items between two *distinct*
  /// processors. Callers are responsible for charging 0 on-processor.
  constexpr Time delay(Time items) const noexcept {
    return items * per_item_;
  }

  constexpr Time per_item_delay() const noexcept { return per_item_; }

  friend constexpr bool operator==(CommModel, CommModel) noexcept = default;

 private:
  explicit constexpr CommModel(Time per_item) noexcept
      : per_item_(per_item) {}

  Time per_item_;
};

/// A homogeneous multiprocessor: `procs` identical processors plus the
/// interconnect's nominal cost model and (optionally) its topology.
/// Without a topology every distinct pair is one hop — the paper's
/// shared bus.
struct Machine {
  int procs = 1;
  CommModel comm = CommModel::per_item(1);
  std::optional<NetworkTopology> topology;

  /// Store-and-forward hops between two processors (0 iff equal).
  int hops(ProcId p, ProcId q) const;

  /// Nominal delay of a message of `items` between p and q:
  /// items × per-item delay × hops(p, q). Zero on the same processor.
  Time comm_delay(ProcId p, ProcId q, Time items) const;

  std::string describe() const;
};

/// Convenience factory matching the paper's experimental platform
/// (shared bus, 1 time unit per data item).
Machine make_shared_bus_machine(int procs);

/// A machine whose interconnect follows `topology` with the given
/// per-item, per-hop delay.
Machine make_network_machine(NetworkTopology topology, Time per_item = 1);

}  // namespace parabb
