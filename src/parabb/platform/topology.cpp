#include "parabb/platform/topology.hpp"

#include <algorithm>
#include <cmath>

#include "parabb/support/assert.hpp"

namespace parabb {

NetworkTopology::NetworkTopology(int procs, std::string name)
    : procs_(procs),
      name_(std::move(name)),
      hop_(static_cast<std::size_t>(procs) * static_cast<std::size_t>(procs),
           0) {
  PARABB_REQUIRE(procs >= 1 && procs <= kMaxProcs,
                 "topology processor count out of range");
}

int& NetworkTopology::at(ProcId p, ProcId q) {
  return hop_[static_cast<std::size_t>(p) *
                  static_cast<std::size_t>(procs_) +
              static_cast<std::size_t>(q)];
}

int NetworkTopology::at(ProcId p, ProcId q) const {
  return hop_[static_cast<std::size_t>(p) *
                  static_cast<std::size_t>(procs_) +
              static_cast<std::size_t>(q)];
}

int NetworkTopology::hops(ProcId p, ProcId q) const {
  PARABB_REQUIRE(p >= 0 && p < procs_ && q >= 0 && q < procs_,
                 "processor id out of range");
  return at(p, q);
}

int NetworkTopology::diameter() const noexcept {
  int d = 0;
  for (const int h : hop_) d = std::max(d, h);
  return d;
}

NetworkTopology NetworkTopology::fully_connected(int procs) {
  NetworkTopology t(procs, "fully-connected");
  for (ProcId p = 0; p < procs; ++p)
    for (ProcId q = 0; q < procs; ++q) t.at(p, q) = p == q ? 0 : 1;
  return t;
}

NetworkTopology NetworkTopology::ring(int procs) {
  NetworkTopology t(procs, "ring");
  for (ProcId p = 0; p < procs; ++p) {
    for (ProcId q = 0; q < procs; ++q) {
      const int fwd = std::abs(p - q);
      t.at(p, q) = std::min(fwd, procs - fwd);
    }
  }
  return t;
}

NetworkTopology NetworkTopology::line(int procs) {
  NetworkTopology t(procs, "line");
  for (ProcId p = 0; p < procs; ++p)
    for (ProcId q = 0; q < procs; ++q) t.at(p, q) = std::abs(p - q);
  return t;
}

NetworkTopology NetworkTopology::mesh(int rows, int cols) {
  PARABB_REQUIRE(rows >= 1 && cols >= 1, "mesh dimensions must be >= 1");
  NetworkTopology t(rows * cols, "mesh " + std::to_string(rows) + "x" +
                                     std::to_string(cols));
  const int procs = rows * cols;
  for (ProcId p = 0; p < procs; ++p) {
    for (ProcId q = 0; q < procs; ++q) {
      const int pr = p / cols, pc = p % cols;
      const int qr = q / cols, qc = q % cols;
      t.at(p, q) = std::abs(pr - qr) + std::abs(pc - qc);
    }
  }
  return t;
}

NetworkTopology NetworkTopology::custom(
    std::vector<std::vector<int>> hops, std::string name) {
  const auto n = static_cast<int>(hops.size());
  NetworkTopology t(n, std::move(name));
  for (ProcId p = 0; p < n; ++p) {
    PARABB_REQUIRE(static_cast<int>(hops[static_cast<std::size_t>(p)]
                                        .size()) == n,
                   "hop matrix must be square");
    for (ProcId q = 0; q < n; ++q) {
      const int h = hops[static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(q)];
      if (p == q) {
        PARABB_REQUIRE(h == 0, "diagonal hops must be 0");
      } else {
        PARABB_REQUIRE(h >= 1, "off-diagonal hops must be >= 1");
        PARABB_REQUIRE(hops[static_cast<std::size_t>(q)]
                           [static_cast<std::size_t>(p)] == h,
                       "hop matrix must be symmetric");
      }
      t.at(p, q) = h;
    }
  }
  return t;
}

}  // namespace parabb
