// Interconnection-network topologies (paper §2.1: "an arbitrary topology
// that could include dedicated as well as shared links"; the nominal
// communication delay "reflects the scheduling strategy used by the
// underlying interconnection network").
//
// We model the topology's effect on the nominal delay as a hop count:
// a message between processors p and q costs items × per-item-delay ×
// hops(p, q) (store-and-forward over shortest routes; same-processor
// communication stays free). The paper's shared bus is the 1-hop special
// case. Because the machine model is part of SchedContext, the B&B then
// searches with placement-dependent communication costs — schedules on a
// ring genuinely differ from schedules on a bus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parabb/support/types.hpp"

namespace parabb {

class NetworkTopology {
 public:
  /// Shared bus / crossbar / fully connected: every distinct pair is one
  /// hop (the paper's platform).
  static NetworkTopology fully_connected(int procs);

  /// Bidirectional ring: hops = min ring distance.
  static NetworkTopology ring(int procs);

  /// Linear array: hops = |p - q|.
  static NetworkTopology line(int procs);

  /// 2D mesh (row-major processor ids): hops = Manhattan distance.
  static NetworkTopology mesh(int rows, int cols);

  /// Custom symmetric hop matrix (hops[p][q] >= 1 for p != q, 0 on the
  /// diagonal). Throws precondition_error if malformed.
  static NetworkTopology custom(std::vector<std::vector<int>> hops,
                                std::string name = "custom");

  int procs() const noexcept { return procs_; }

  /// Number of store-and-forward hops between p and q (0 iff p == q).
  int hops(ProcId p, ProcId q) const;

  /// Largest hop count between any pair (the network diameter).
  int diameter() const noexcept;

  const std::string& name() const noexcept { return name_; }

 private:
  NetworkTopology(int procs, std::string name);

  int& at(ProcId p, ProcId q);
  int at(ProcId p, ProcId q) const;

  int procs_;
  std::string name_;
  std::vector<int> hop_;  // row-major procs_ x procs_
};

}  // namespace parabb
