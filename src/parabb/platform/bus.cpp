#include "parabb/platform/bus.hpp"

#include <algorithm>

#include "parabb/support/assert.hpp"

namespace parabb {

SharedBus::SharedBus(Time per_item) : per_item_(per_item) {
  PARABB_REQUIRE(per_item >= 0, "per-item delay must be >= 0");
}

Time SharedBus::probe(Time earliest, Time duration) const {
  PARABB_REQUIRE(duration >= 0, "duration must be >= 0");
  if (duration == 0) return earliest;
  Time candidate = earliest;
  for (const Interval& iv : busy_) {
    if (iv.finish <= candidate) continue;      // entirely before candidate
    if (iv.start >= candidate + duration) break;  // gap fits
    candidate = iv.finish;                     // push past this reservation
  }
  return candidate;
}

Time SharedBus::reserve(Time earliest, Time items) {
  PARABB_REQUIRE(items >= 0, "message size must be >= 0");
  const Time duration = items * per_item_;
  if (duration == 0) return earliest;
  const Time start = probe(earliest, duration);
  const Interval iv{start, start + duration};
  const auto pos = std::lower_bound(
      busy_.begin(), busy_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.start < b.start; });
  busy_.insert(pos, iv);
  return iv.finish;
}

Time SharedBus::utilization() const noexcept {
  Time total = 0;
  for (const Interval& iv : busy_) total += iv.finish - iv.start;
  return total;
}

}  // namespace parabb
