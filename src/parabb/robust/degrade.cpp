#include "parabb/robust/degrade.hpp"

#include <algorithm>
#include <sstream>

namespace parabb {

std::string to_string(DegradeAction a) {
  switch (a) {
    case DegradeAction::kShedTT: return "shed_tt";
    case DegradeAction::kTightenDB: return "tighten_db";
    case DegradeAction::kBF1: return "bf1";
    case DegradeAction::kDF: return "df";
  }
  return "?";
}

bool parse_degrade_action(std::string_view text, DegradeAction& out) {
  if (text == "shed_tt") { out = DegradeAction::kShedTT; return true; }
  if (text == "tighten_db") { out = DegradeAction::kTightenDB; return true; }
  if (text == "bf1") { out = DegradeAction::kBF1; return true; }
  if (text == "df") { out = DegradeAction::kDF; return true; }
  return false;
}

std::string DegradeConfig::describe() const {
  if (!enabled) return "degrade=off";
  std::ostringstream out;
  out << "degrade=on shed_tt=" << shed_tt_frac
      << " tighten_db=" << tighten_db_frac << " bf1=" << bf1_frac
      << " df=" << df_frac << " db_per_proc=" << tightened_children_per_proc;
  return out.str();
}

DegradeSchedule DegradeSchedule::from(const DegradeConfig& cfg) {
  DegradeSchedule sched;
  if (!cfg.enabled) return sched;
  const std::pair<double, DegradeAction> raw[] = {
      {cfg.shed_tt_frac, DegradeAction::kShedTT},
      {cfg.tighten_db_frac, DegradeAction::kTightenDB},
      {cfg.bf1_frac, DegradeAction::kBF1},
      {cfg.df_frac, DegradeAction::kDF},
  };
  for (const auto& [frac, action] : raw) {
    if (frac <= 0.0 || frac > 1.0) continue;  // rung disabled
    sched.rungs[static_cast<std::size_t>(sched.count++)] = {frac, action};
  }
  std::stable_sort(sched.rungs.begin(),
                   sched.rungs.begin() + sched.count,
                   [](const Rung& a, const Rung& b) { return a.frac < b.frac; });
  return sched;
}

int DegradeSchedule::target_level(std::size_t used_bytes,
                                  std::size_t budget_bytes) const {
  if (budget_bytes == 0) return 0;
  const double frac =
      static_cast<double>(used_bytes) / static_cast<double>(budget_bytes);
  int level = 0;
  while (level < count && frac >= rungs[static_cast<std::size_t>(level)].frac) {
    ++level;
  }
  return level;
}

}  // namespace parabb
