// Stagnation watchdog: detects registered jobs whose progress counter has
// stopped advancing and escalates by invoking a caller-supplied stall
// action (the solver service cancels the job's CancelToken, turning a hung
// search into a defined kCancelled JobOutcome — docs/robustness.md).
//
// The watchdog owns one background thread that wakes every `interval_ms`
// and scans the registered entries. A progress source is any
// atomic<uint64_t> the watched code stores into (the engines publish
// stats.generated at their poll cadence via Params::progress). The stall
// action fires at most once per registration.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "parabb/support/timer.hpp"

namespace parabb {

class Watchdog {
 public:
  struct Config {
    double interval_ms = 20.0;  // scan cadence
    double stall_ms = 200.0;    // no progress for this long => stalled
  };

  using StallFn = std::function<void()>;

  explicit Watchdog(Config cfg);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Register a progress source. `progress` must outlive the registration;
  /// `on_stall` must be safe to call from the watchdog thread.
  std::uint64_t watch(const std::atomic<std::uint64_t>* progress,
                      StallFn on_stall);
  void unwatch(std::uint64_t id);

  /// Number of stall actions fired since construction.
  std::uint64_t stalls_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    const std::atomic<std::uint64_t>* progress = nullptr;
    StallFn on_stall;
    std::uint64_t last = 0;
    Stopwatch since_change;
    bool fired = false;
  };

  void run();

  Config cfg_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> fired_{0};
  std::thread thread_;
};

}  // namespace parabb
