// Deterministic fault injection for the B&B engines and the solver service.
//
// A FaultPlan is a small, seeded list of faults to fire at well-defined
// points of a run: allocation failure once the generated-node counter
// reaches N, a worker stall (park for X ms) at the next poll point, a
// cancel storm (behave as if an external cancel arrived), clock skew on
// the time-limit path, and queue-full rejection on service submission.
// FaultPlan::random(seed) expands one 64-bit seed into a reproducible
// plan so the fault matrix in tests/test_robust.cpp and
// tools/fault_sweep.sh can sweep hundreds of plans byte-for-byte
// identically across runs and sanitizer configs.
//
// The engines see faults through `Params::faults` (a FaultInjector
// pointer, default nullptr). Every hook below is safe to call from any
// worker thread; "once" faults use an atomic claim so exactly one thread
// fires them. The off path costs a single null check at each hook site.
//
// Contract (docs/robustness.md): every injected fault must resolve to a
// defined JobOutcome — never a crash, deadlock, or silent wrong answer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parabb {

enum class FaultKind : std::uint8_t {
  kAllocFail,    // throw std::bad_alloc at the next vertex allocation
  kStall,        // park the polling thread for `param` ms, once
  kCancelStorm,  // behave as if an external cancel arrived (sticky)
  kClockSkew,    // add `param` ms to the clock seen by the time-limit check
  kQueueFull,    // service admission: reject the next `param` submissions
};

std::string to_string(FaultKind k);

struct FaultSpec {
  FaultKind kind = FaultKind::kStall;
  // Fire once the generated-node counter reaches this value (engine-side
  // faults). Service-side kQueueFull ignores it.
  std::uint64_t at_generated = 0;
  // kStall / kClockSkew: milliseconds; kQueueFull: rejection count.
  std::int64_t param = 0;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  /// Expand one seed into a reproducible 1..3-fault plan covering the
  /// engine-side taxonomy (the seeded fault matrix).
  static FaultPlan random(std::uint64_t seed);

  /// Human-readable one-liner, e.g. "seed=7 alloc_fail@120 stall@64(5ms)".
  std::string describe() const;
};

/// Thread-safe runtime for one FaultPlan. Stateless hooks are pure
/// threshold checks; stateful ones (alloc failure, stall, queue-full)
/// claim their budget atomically so each fires a bounded number of times.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // --- engine hooks ----------------------------------------------------
  /// Call before allocating a search vertex. Throws std::bad_alloc when an
  /// armed kAllocFail spec triggers (once per spec).
  void on_alloc(std::uint64_t generated);
  /// Call at the amortized poll point. Parks the calling thread when an
  /// armed kStall spec triggers (once per spec).
  void at_poll(std::uint64_t generated);
  /// kCancelStorm: true once any storm spec's threshold has been crossed.
  bool cancel_requested(std::uint64_t generated) const;
  /// kClockSkew: seconds to add to the elapsed time seen by the
  /// time-limit check (sum over triggered skew specs; may be negative).
  double clock_skew_s(std::uint64_t generated) const;

  // --- service hooks ---------------------------------------------------
  /// kQueueFull: true while the rejection budget remains; each call that
  /// returns true consumes one rejection.
  bool submit_rejected();

  /// Total number of faults that have fired so far.
  std::uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

  const FaultPlan& plan() const { return plan_; }

 private:
  struct Armed {
    FaultSpec spec;
    std::atomic<std::int64_t> remaining{1};
    std::atomic<bool> latched{false};  // fired-counter latch for sticky kinds
  };

  bool claim(Armed& a);      // one-shot budget claim; bumps fired_
  void latch(Armed& a) const;  // sticky first-observation latch; bumps fired_

  FaultPlan plan_;
  // unique_ptr keeps atomic members at stable addresses.
  std::vector<std::unique_ptr<Armed>> armed_;
  mutable std::atomic<std::uint64_t> fired_{0};
};

}  // namespace parabb
