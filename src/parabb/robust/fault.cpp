#include "parabb/robust/fault.hpp"

#include <chrono>
#include <new>
#include <sstream>
#include <thread>

#include "parabb/support/rng.hpp"

namespace parabb {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kAllocFail: return "alloc_fail";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCancelStorm: return "cancel_storm";
    case FaultKind::kClockSkew: return "clock_skew";
    case FaultKind::kQueueFull: return "queue_full";
  }
  return "?";
}

FaultPlan FaultPlan::random(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(derive_seed(seed, /*stream=*/0x0fa17u));
  const int count = static_cast<int>(rng.uniform_int(1, 3));
  plan.faults.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FaultSpec spec;
    // Engine-side kinds only: queue-full is a service-admission fault and
    // is exercised by the service tests with hand-written plans.
    switch (rng.uniform_int(0, 3)) {
      case 0: spec.kind = FaultKind::kAllocFail; break;
      case 1: spec.kind = FaultKind::kStall; break;
      case 2: spec.kind = FaultKind::kCancelStorm; break;
      default: spec.kind = FaultKind::kClockSkew; break;
    }
    spec.at_generated =
        static_cast<std::uint64_t>(rng.uniform_int(1, 2000));
    switch (spec.kind) {
      case FaultKind::kStall:
        spec.param = rng.uniform_int(1, 10);  // ms
        break;
      case FaultKind::kClockSkew:
        // Mix of forward skew (forces the time-limit path) and backward
        // skew (time limit never fires; the run completes some other way).
        spec.param = rng.uniform_int(-5'000, 3'600'000);  // ms
        break;
      default:
        spec.param = 0;
        break;
    }
    plan.faults.push_back(spec);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (const FaultSpec& f : faults) {
    out << ' ' << to_string(f.kind) << '@' << f.at_generated;
    if (f.kind == FaultKind::kStall || f.kind == FaultKind::kClockSkew) {
      out << '(' << f.param << "ms)";
    } else if (f.kind == FaultKind::kQueueFull) {
      out << "(x" << f.param << ')';
    }
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  armed_.reserve(plan_.faults.size());
  for (const FaultSpec& spec : plan_.faults) {
    auto a = std::make_unique<Armed>();
    a->spec = spec;
    if (spec.kind == FaultKind::kQueueFull) {
      a->remaining.store(spec.param > 0 ? spec.param : 1,
                         std::memory_order_relaxed);
    }
    armed_.push_back(std::move(a));
  }
}

bool FaultInjector::claim(Armed& a) {
  if (a.remaining.load(std::memory_order_relaxed) <= 0) return false;
  if (a.remaining.fetch_sub(1, std::memory_order_relaxed) <= 0) return false;
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void FaultInjector::latch(Armed& a) const {
  if (!a.latched.exchange(true, std::memory_order_relaxed)) {
    fired_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FaultInjector::on_alloc(std::uint64_t generated) {
  for (auto& a : armed_) {
    if (a->spec.kind != FaultKind::kAllocFail) continue;
    if (generated < a->spec.at_generated) continue;
    if (claim(*a)) throw std::bad_alloc();
  }
}

void FaultInjector::at_poll(std::uint64_t generated) {
  for (auto& a : armed_) {
    if (a->spec.kind != FaultKind::kStall) continue;
    if (generated < a->spec.at_generated) continue;
    if (claim(*a)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(a->spec.param));
    }
  }
}

bool FaultInjector::cancel_requested(std::uint64_t generated) const {
  for (const auto& a : armed_) {
    if (a->spec.kind != FaultKind::kCancelStorm) continue;
    if (a->latched.load(std::memory_order_relaxed)) return true;
    if (generated < a->spec.at_generated) continue;
    latch(*a);
    return true;
  }
  return false;
}

double FaultInjector::clock_skew_s(std::uint64_t generated) const {
  double skew_ms = 0.0;
  for (const auto& a : armed_) {
    if (a->spec.kind != FaultKind::kClockSkew) continue;
    if (generated < a->spec.at_generated) continue;
    latch(*a);
    skew_ms += static_cast<double>(a->spec.param);
  }
  return skew_ms / 1000.0;
}

bool FaultInjector::submit_rejected() {
  for (auto& a : armed_) {
    if (a->spec.kind != FaultKind::kQueueFull) continue;
    if (claim(*a)) return true;
  }
  return false;
}

}  // namespace parabb
