#include "parabb/robust/watchdog.hpp"

#include <chrono>

#include "parabb/support/assert.hpp"

namespace parabb {

Watchdog::Watchdog(Config cfg) : cfg_(cfg) {
  PARABB_REQUIRE(cfg_.interval_ms > 0.0, "watchdog interval must be > 0");
  PARABB_REQUIRE(cfg_.stall_ms > 0.0, "watchdog stall threshold must be > 0");
  thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::uint64_t Watchdog::watch(const std::atomic<std::uint64_t>* progress,
                              StallFn on_stall) {
  PARABB_REQUIRE(progress != nullptr, "watchdog progress source is null");
  const std::lock_guard lock(mutex_);
  const std::uint64_t id = next_id_++;
  Entry entry;
  entry.progress = progress;
  entry.on_stall = std::move(on_stall);
  entry.last = progress->load(std::memory_order_relaxed);
  entries_.emplace(id, std::move(entry));
  return id;
}

void Watchdog::unwatch(std::uint64_t id) {
  const std::lock_guard lock(mutex_);
  entries_.erase(id);
}

void Watchdog::run() {
  std::unique_lock lock(mutex_);
  const auto interval =
      std::chrono::duration<double, std::milli>(cfg_.interval_ms);
  while (!stop_) {
    cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) break;
    for (auto& [id, entry] : entries_) {
      const std::uint64_t cur =
          entry.progress->load(std::memory_order_relaxed);
      if (cur != entry.last) {
        entry.last = cur;
        entry.since_change.restart();
        continue;
      }
      if (!entry.fired &&
          entry.since_change.seconds() * 1000.0 >= cfg_.stall_ms) {
        entry.fired = true;
        fired_.fetch_add(1, std::memory_order_relaxed);
        if (entry.on_stall) entry.on_stall();
      }
    }
  }
}

}  // namespace parabb
