// Graceful-degradation ladder for search under memory pressure.
//
// The paper's RB resource bounds stop the search with a cliff: once the
// active-set memory budget (MAXSZAS / rb.max_memory_bytes) is exhausted
// the engines dispose work, mark the result compromised, and stop.
// Following Orr & Sinnen's memory-limited B&B results (PAPERS.md),
// degrading the *strategy* under pressure preserves far more solution
// quality than truncating the search: as memory usage crosses
// configurable high-water fractions of the budget, the engines step down
//
//   shed the transposition table  ->  tighten MAXSZDB  ->  BFn -> BF1  ->  DF
//
// before resorting to disposal. Each rung fires once per run
// (monotone), is counted in SearchStats::degrade_steps / the
// parabb_degrade_steps_total metric, emitted as a kDegrade flight event,
// and recorded in the optimality certificate so parabb_verify can audit
// a degraded run. With `enabled == false` (the default) no ladder state
// is consulted anywhere and the search is byte-identical to a build
// without this header.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace parabb {

enum class DegradeAction : std::uint8_t {
  kShedTT,     // clear + disable the transposition table
  kTightenDB,  // tighten the effective MAXSZDB child cap
  kBF1,        // BFn -> BF1 branching (one task, all processors)
  kDF,         // BF1 -> DF branching (depth-first dive)
};

std::string to_string(DegradeAction a);
bool parse_degrade_action(std::string_view text, DegradeAction& out);

/// Ladder configuration: each fraction is a high-water mark of the memory
/// budget at which the corresponding action fires. Fractions outside
/// (0, 1] disable that rung.
struct DegradeConfig {
  bool enabled = false;
  double shed_tt_frac = 0.55;
  double tighten_db_frac = 0.70;
  double bf1_frac = 0.80;
  double df_frac = 0.90;
  /// Effective MAXSZDB after kTightenDB = processors * this.
  int tightened_children_per_proc = 2;

  std::string describe() const;
};

/// The config compiled into an ordered rung list. Pure value type: both
/// engines share it — the sequential engine tracks its level in a local
/// int, the parallel engine in a shared atomic.
struct DegradeSchedule {
  struct Rung {
    double frac = 0.0;
    DegradeAction action = DegradeAction::kShedTT;
  };

  std::array<Rung, 4> rungs{};
  int count = 0;

  static DegradeSchedule from(const DegradeConfig& cfg);

  /// How many rungs should have fired at this usage level (clamped to
  /// count). Monotone in `used_bytes`; 0 when budget is 0/unbounded.
  int target_level(std::size_t used_bytes, std::size_t budget_bytes) const;
};

}  // namespace parabb
