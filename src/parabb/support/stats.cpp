#include "parabb/support/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace parabb {
namespace {

struct TRow {
  std::size_t df;
  double t90, t95, t99;
};

// Two-sided critical values (alpha/2 upper quantiles).
constexpr std::array<TRow, 18> kTTable{{
    {1, 6.314, 12.706, 63.657},
    {2, 2.920, 4.303, 9.925},
    {3, 2.353, 3.182, 5.841},
    {4, 2.132, 2.776, 4.604},
    {5, 2.015, 2.571, 4.032},
    {6, 1.943, 2.447, 3.707},
    {7, 1.895, 2.365, 3.499},
    {8, 1.860, 2.306, 3.355},
    {9, 1.833, 2.262, 3.250},
    {10, 1.812, 2.228, 3.169},
    {12, 1.782, 2.179, 3.055},
    {15, 1.753, 2.131, 2.947},
    {20, 1.725, 2.086, 2.845},
    {25, 1.708, 2.060, 2.787},
    {30, 1.697, 2.042, 2.750},
    {40, 1.684, 2.021, 2.704},
    {60, 1.671, 2.000, 2.660},
    {120, 1.658, 1.980, 2.617},
}};

double pick(const TRow& row, double confidence) {
  if (confidence == 0.90) return row.t90;
  if (confidence == 0.95) return row.t95;
  return row.t99;
}

double asymptote(double confidence) {
  if (confidence == 0.90) return 1.645;
  if (confidence == 0.95) return 1.960;
  return 2.576;
}

}  // namespace

double t_critical(double confidence, std::size_t df) {
  PARABB_REQUIRE(confidence == 0.90 || confidence == 0.95 ||
                     confidence == 0.99,
                 "supported confidence levels: 0.90, 0.95, 0.99");
  PARABB_REQUIRE(df >= 1, "t distribution needs df >= 1");
  if (df > kTTable.back().df) return asymptote(confidence);
  // Exact row or linear interpolation in 1/df between bracketing rows.
  for (std::size_t i = 0; i < kTTable.size(); ++i) {
    if (kTTable[i].df == df) return pick(kTTable[i], confidence);
    if (kTTable[i].df > df) {
      const TRow& lo = kTTable[i - 1];
      const TRow& hi = kTTable[i];
      const double x = 1.0 / static_cast<double>(df);
      const double xl = 1.0 / static_cast<double>(lo.df);
      const double xh = 1.0 / static_cast<double>(hi.df);
      const double w = (x - xh) / (xl - xh);
      return pick(hi, confidence) +
             w * (pick(lo, confidence) - pick(hi, confidence));
    }
  }
  return asymptote(confidence);
}

double ci_halfwidth(const OnlineStats& s, double confidence) {
  if (s.count() < 2) return std::numeric_limits<double>::infinity();
  return t_critical(confidence, s.count() - 1) * s.sem();
}

bool ci_converged(const OnlineStats& s, double confidence, double rel_err,
                  double abs_floor) {
  if (s.count() < 2) return false;
  const double hw = ci_halfwidth(s, confidence);
  const double scale = std::max(std::abs(s.mean()), abs_floor);
  return hw <= rel_err * scale;
}

double geometric_mean(const std::vector<double>& xs) {
  PARABB_REQUIRE(!xs.empty(), "geometric_mean of empty set");
  double log_sum = 0.0;
  for (double x : xs) {
    PARABB_REQUIRE(x > 0.0, "geometric_mean requires positive samples");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::vector<double> xs, double p) {
  PARABB_REQUIRE(!xs.empty(), "percentile of empty set");
  PARABB_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p in [0,100]");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace parabb
