// Minimal command-line option parser for benches and examples.
//
// Supports:  --name value   --name=value   --flag   (plus -h/--help)
// Unknown options are an error; positional arguments are collected.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace parabb {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare a value option. `help` is shown by --help.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);
  /// Declare a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text printed
  /// to stdout); throws std::runtime_error on malformed input.
  bool parse(int argc, const char* const* argv);

  bool has_flag(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  /// Comma-separated list of integers, e.g. "2,3,4".
  std::vector<std::int64_t> get_int_list(const std::string& name) const;
  /// Comma-separated list of doubles.
  std::vector<double> get_double_list(const std::string& name) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  std::string help_text() const;

 private:
  struct Opt {
    std::string help;
    std::string default_value;
    bool is_flag = false;
    bool present = false;
    std::string value;
  };

  const Opt& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> positional_;
};

}  // namespace parabb
