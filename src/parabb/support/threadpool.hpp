// Fixed-size thread pool used to run independent experiment replications in
// parallel. Deliberately simple: a mutex-guarded FIFO of std::function jobs
// plus a wait-for-idle barrier; replication throughput is bounded by the B&B
// searches themselves, not by queue contention.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parabb {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a job. Jobs must not throw; exceptions escaping a job abort.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait_idle();

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace parabb
