// Fixed-size thread pool used to run independent experiment replications
// and solver-service jobs in parallel. Deliberately simple: a mutex-guarded
// FIFO of std::function jobs plus a wait-for-idle barrier; throughput is
// bounded by the B&B searches themselves, not by queue contention.
//
// Shutdown semantics are deterministic: shutdown(kDrain) — and the
// destructor, which calls it — runs every job that was ever accepted by
// submit() before the workers exit; shutdown(kDiscard) drops the jobs
// still queued (reporting how many) but always finishes the jobs already
// running. Work is never dropped silently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parabb {

class ThreadPool {
 public:
  /// What shutdown() does with jobs still queued (not yet running).
  enum class DrainPolicy : std::uint8_t {
    kDrain,    ///< run every queued job to completion, then stop
    kDiscard,  ///< drop queued jobs (counted); running jobs still finish
  };

  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Equivalent to shutdown(DrainPolicy::kDrain): every accepted job runs.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a job. Jobs must not throw; exceptions escaping a job abort.
  /// Throws precondition_error after shutdown() has begun.
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait_idle();

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Stops the pool and joins the workers. Returns the number of queued
  /// jobs discarded (always 0 under kDrain). Idempotent: the second and
  /// later calls return 0 without touching anything. After shutdown,
  /// submit() throws and wait_idle() returns immediately.
  std::size_t shutdown(DrainPolicy policy = DrainPolicy::kDrain);

  /// True once shutdown() has begun (no further submissions accepted).
  bool stopped() const;

  /// Jobs queued but not yet claimed by a worker (point-in-time snapshot;
  /// for observability gauges, not for control flow).
  std::size_t queue_depth() const {
    const std::lock_guard lock(mutex_);
    return queue_.size();
  }

  /// Total jobs ever accepted by submit().
  std::uint64_t submitted_total() const {
    const std::lock_guard lock(mutex_);
    return submitted_;
  }

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  std::uint64_t submitted_ = 0;
  bool stop_ = false;
};

}  // namespace parabb
