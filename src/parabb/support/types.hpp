// Fundamental scalar types shared by every ParaBB subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace parabb {

/// Discrete model time, in "time units" (the paper's unit; one bus slot
/// transmits one data item per time unit). Signed: lateness values are
/// negative when tasks finish before their deadlines.
using Time = std::int64_t;

/// Index of a task within its TaskGraph (dense, 0-based).
using TaskId = std::int32_t;

/// Index of a processor within the machine (dense, 0-based).
using ProcId = std::int32_t;

/// Sentinel for "no task".
inline constexpr TaskId kNoTask = -1;
/// Sentinel for "no processor" (task not yet assigned).
inline constexpr ProcId kNoProc = -1;

/// +infinity surrogate for Time. Large enough that adding any realistic
/// execution/communication cost does not overflow int64.
inline constexpr Time kTimeInf = std::numeric_limits<Time>::max() / 4;
/// -infinity surrogate for Time.
inline constexpr Time kTimeNegInf = -kTimeInf;

/// Hard compile-time ceilings used by the fixed-capacity structures on the
/// branch-and-bound hot path. The paper's experiments use n <= 16, m <= 4;
/// these leave headroom while keeping a search vertex ~200 bytes (active
/// sets can hold millions of vertices, so per-vertex size is what bounds
/// the biggest solvable instances — the paper hit exactly this wall on a
/// 64 MB SPARCstation).
inline constexpr int kMaxTasks = 32;
inline constexpr int kMaxProcs = 8;

/// Times inside a packed search vertex are stored as 32-bit; scheduling
/// horizons must fit. Checked when a search context is built.
inline constexpr Time kMaxCompactTime = (Time{1} << 30);

}  // namespace parabb
