#include "parabb/support/threadpool.hpp"

#include <algorithm>

#include "parabb/support/assert.hpp"

namespace parabb {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(DrainPolicy::kDrain); }

std::size_t ThreadPool::shutdown(DrainPolicy policy) {
  std::size_t discarded = 0;
  {
    std::lock_guard lock(mutex_);
    if (stop_) return 0;  // idempotent: a prior shutdown already joined
    stop_ = true;
    if (policy == DrainPolicy::kDiscard) {
      discarded = queue_.size();
      queue_.clear();
    }
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Discarded jobs never run, so wait_idle callers must be released here.
  cv_idle_.notify_all();
  return discarded;
}

bool ThreadPool::stopped() const {
  std::lock_guard lock(mutex_);
  return stop_;
}

void ThreadPool::submit(std::function<void()> job) {
  PARABB_REQUIRE(static_cast<bool>(job), "submitted job must be callable");
  {
    std::lock_guard lock(mutex_);
    PARABB_REQUIRE(!stop_, "submit after shutdown");
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([i, &fn] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();  // noexcept by contract; a throw terminates (fail fast)
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

}  // namespace parabb
