#include "parabb/support/table.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  // Heuristic: right-align cells that are mostly digits/number punctuation.
  return digits * 2 >= s.size();
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  PARABB_REQUIRE(!header.empty(), "header must be non-empty");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  PARABB_REQUIRE(header_.empty() || row.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  const std::size_t cols =
      header_.empty() ? (rows_.empty() ? 0 : rows_.front().size())
                      : header_.size();
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_)
    if (!row.empty()) widen(row);

  std::size_t total = cols == 0 ? 0 : 2 * (cols - 1);
  for (std::size_t w : width) total += w;

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row, bool force_left) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = !force_left && looks_numeric(row[c]);
      const std::size_t pad = width[c] - row[c].size();
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_, /*force_left=*/true);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    if (row.empty()) os << std::string(total, '-') << '\n';
    else emit(row, /*force_left=*/false);
  }
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_)
    if (!row.empty()) emit(row);
  return os.str();
}

std::string fmt_double(double v, int digits) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string fmt_ci(double mean, double halfwidth, int digits) {
  return fmt_double(mean, digits) + " ±" + fmt_double(halfwidth, digits);
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace parabb
