#include "parabb/support/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "parabb/support/assert.hpp"

namespace parabb {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  PARABB_REQUIRE(!opts_.contains(name), "duplicate option: " + name);
  opts_[name] = Opt{help, default_value, false, false, default_value};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  PARABB_REQUIRE(!opts_.contains(name), "duplicate flag: " + name);
  opts_[name] = Opt{help, "", true, false, ""};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = opts_.find(name);
    if (it == opts_.end())
      throw std::runtime_error("unknown option: --" + name);
    Opt& opt = it->second;
    opt.present = true;
    if (opt.is_flag) {
      if (has_value)
        throw std::runtime_error("flag --" + name + " takes no value");
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw std::runtime_error("option --" + name + " needs a value");
      value = argv[++i];
    }
    opt.value = std::move(value);
  }
  return true;
}

const ArgParser::Opt& ArgParser::find(const std::string& name) const {
  auto it = opts_.find(name);
  PARABB_REQUIRE(it != opts_.end(), "undeclared option queried: " + name);
  return it->second;
}

bool ArgParser::has_flag(const std::string& name) const {
  const Opt& o = find(name);
  PARABB_REQUIRE(o.is_flag, "--" + name + " is not a flag");
  return o.present;
}

std::string ArgParser::get_string(const std::string& name) const {
  const Opt& o = find(name);
  PARABB_REQUIRE(!o.is_flag, "--" + name + " is a flag");
  return o.value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + name + ": not an integer: " + v);
  }
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("option --" + name + ": not a number: " + v);
  }
}

namespace {
std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}
}  // namespace

std::vector<std::int64_t> ArgParser::get_int_list(
    const std::string& name) const {
  std::vector<std::int64_t> out;
  for (const auto& part : split_commas(get_string(name))) {
    try {
      out.push_back(std::stoll(part));
    } catch (const std::exception&) {
      throw std::runtime_error("option --" + name +
                               ": bad integer list element: " + part);
    }
  }
  return out;
}

std::vector<double> ArgParser::get_double_list(const std::string& name) const {
  std::vector<double> out;
  for (const auto& part : split_commas(get_string(name))) {
    try {
      out.push_back(std::stod(part));
    } catch (const std::exception&) {
      throw std::runtime_error("option --" + name +
                               ": bad number list element: " + part);
    }
  }
  return out;
}

std::string ArgParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Opt& o = opts_.at(name);
    os << "  --" << name;
    if (!o.is_flag) os << " <value>";
    os << "\n      " << o.help;
    if (!o.is_flag && !o.default_value.empty())
      os << " (default: " << o.default_value << ")";
    os << '\n';
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace parabb
