// Always-on checked assertions.
//
// ParaBB is a research library whose correctness claims (optimality,
// lower-bound admissibility) rest on internal invariants; silent invariant
// violations would invalidate experiment output, so the checks stay enabled
// in Release builds. The hot-path cost is negligible next to search cost.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace parabb {

/// Thrown by PARABB_REQUIRE on precondition violations (recoverable,
/// caller-facing API misuse).
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "parabb: internal invariant violated: %s (%s:%d)\n",
               expr, file, line);
  std::abort();
}
[[noreturn]] inline void require_fail(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw precondition_error("parabb: precondition failed: " + msg + " [" +
                           expr + "] at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace parabb

/// Internal invariant; violation is a library bug -> abort.
#define PARABB_ASSERT(expr)                                   \
  ((expr) ? static_cast<void>(0)                              \
          : ::parabb::detail::assert_fail(#expr, __FILE__, __LINE__))

/// API precondition; violation is caller misuse -> throws precondition_error.
#define PARABB_REQUIRE(expr, msg)                             \
  ((expr) ? static_cast<void>(0)                              \
          : ::parabb::detail::require_fail(#expr, __FILE__, __LINE__, (msg)))
