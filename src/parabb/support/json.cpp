#include "parabb/support/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace parabb {
namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& msg) {
  throw std::runtime_error("json: " + msg + " at offset " +
                           std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage");
    return v;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) fail(pos_ - 1, std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t i = 0;
    while (lit[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != lit[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue(string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail(pos_, "bad literal");
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.set(std::move(key), value());
      skip_ws();
      const char c = take();
      if (c == '}') return out;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') return out;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "bad \\u escape");
          }
          // Surrogates (non-BMP escapes) collapse to U+FFFD; the protocol
          // never needs them and a replacement beats an unsound decode.
          if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
          append_utf8(out, cp);
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    bool digits = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) fail(start, "bad number");
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue(static_cast<std::int64_t>(v));
      }
      // fall through to double on int64 overflow
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      fail(start, "bad number");
    }
    return JsonValue(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_fail(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}

void escape_to(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

JsonValue::JsonValue(std::uint64_t v) {
  if (v <= static_cast<std::uint64_t>(
               std::numeric_limits<std::int64_t>::max())) {
    kind_ = Kind::kInt;
    int_ = static_cast<std::int64_t>(v);
  } else {
    kind_ = Kind::kDouble;
    double_ = static_cast<double>(v);
  }
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).run();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_fail("a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble && std::nearbyint(double_) == double_ &&
      std::abs(double_) <= 9.2e18) {
    return static_cast<std::int64_t>(double_);
  }
  kind_fail("an integer");
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ == Kind::kDouble) return double_;
  kind_fail("a number");
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_fail("a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) kind_fail("an array");
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (kind_ != Kind::kObject) kind_fail("an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) kind_fail("an array");
  array_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  if (kind_ != Kind::kObject) kind_fail("an object");
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        out += "null";
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", double_);
      // Prefer the shortest representation that round-trips.
      for (int prec = 1; prec <= 16; ++prec) {
        char probe[32];
        std::snprintf(probe, sizeof probe, "%.*g", prec, double_);
        if (std::strtod(probe, nullptr) == double_) {
          std::snprintf(buf, sizeof buf, "%.*g", prec, double_);
          break;
        }
      }
      out += buf;
      break;
    }
    case Kind::kString: escape_to(string_, out); break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        array_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        escape_to(object_[i].first, out);
        out += ':';
        object_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace parabb
