// Deterministic pseudo-random number generation.
//
// Experiments must be exactly reproducible from a single 64-bit seed across
// platforms, so we implement xoshiro256** (Blackman & Vigna) seeded through
// SplitMix64 rather than relying on implementation-defined std::
// distributions. All distribution helpers below are specified exactly.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "parabb/support/assert.hpp"

namespace parabb {

/// SplitMix64: used to expand a single seed into xoshiro state, and as a
/// cheap stateless mixer for deriving per-instance seeds from (base, index).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Mix (base_seed, stream_index) into an independent-looking 64-bit seed.
/// Used to give every replication of every experiment cell its own stream.
constexpr std::uint64_t derive_seed(std::uint64_t base,
                                    std::uint64_t stream) noexcept {
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return sm.next();
}

/// xoshiro256**: fast, high-quality, 256-bit state general-purpose PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive, unbiased (Lemire rejection).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    PARABB_ASSERT(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
    return lo + static_cast<std::int64_t>(bounded(range));
  }

  /// Uniform real in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    PARABB_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Pick a uniformly random element index for a container of size n >= 1.
  std::size_t index(std::size_t n) noexcept {
    PARABB_ASSERT(n >= 1);
    return static_cast<std::size_t>(bounded(n));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased uniform in [0, bound), bound >= 1.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift with rejection.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace parabb
