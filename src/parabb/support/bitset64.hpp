// TaskSet: a set of task ids over a single 64-bit word.
//
// The branch-and-bound hot path manipulates "scheduled" and "ready" sets on
// every vertex expansion; a machine word with bit tricks keeps those
// operations branch-free and allocation-free (kMaxTasks == 64).
#pragma once

#include <bit>
#include <cstdint>

#include "parabb/support/assert.hpp"
#include "parabb/support/types.hpp"

namespace parabb {

class TaskSet {
 public:
  constexpr TaskSet() noexcept = default;
  explicit constexpr TaskSet(std::uint64_t bits) noexcept : bits_(bits) {}

  /// The set {0, 1, ..., n-1}.
  static constexpr TaskSet first_n(int n) noexcept {
    return TaskSet(n >= 64 ? ~0ULL : ((1ULL << n) - 1));
  }

  constexpr bool contains(TaskId t) const noexcept {
    return (bits_ >> check(t)) & 1ULL;
  }
  constexpr void insert(TaskId t) noexcept { bits_ |= 1ULL << check(t); }
  constexpr void erase(TaskId t) noexcept { bits_ &= ~(1ULL << check(t)); }

  constexpr bool empty() const noexcept { return bits_ == 0; }
  constexpr int size() const noexcept { return std::popcount(bits_); }
  constexpr std::uint64_t bits() const noexcept { return bits_; }

  constexpr bool is_subset_of(TaskSet other) const noexcept {
    return (bits_ & ~other.bits_) == 0;
  }
  constexpr bool intersects(TaskSet other) const noexcept {
    return (bits_ & other.bits_) != 0;
  }

  friend constexpr TaskSet operator|(TaskSet a, TaskSet b) noexcept {
    return TaskSet(a.bits_ | b.bits_);
  }
  friend constexpr TaskSet operator&(TaskSet a, TaskSet b) noexcept {
    return TaskSet(a.bits_ & b.bits_);
  }
  friend constexpr TaskSet operator-(TaskSet a, TaskSet b) noexcept {
    return TaskSet(a.bits_ & ~b.bits_);
  }
  friend constexpr bool operator==(TaskSet a, TaskSet b) noexcept = default;

  /// Iterates set members in increasing id order.
  class iterator {
   public:
    explicit constexpr iterator(std::uint64_t bits) noexcept : bits_(bits) {}
    constexpr TaskId operator*() const noexcept {
      return static_cast<TaskId>(std::countr_zero(bits_));
    }
    constexpr iterator& operator++() noexcept {
      bits_ &= bits_ - 1;  // clear lowest set bit
      return *this;
    }
    friend constexpr bool operator==(iterator, iterator) noexcept = default;

   private:
    std::uint64_t bits_;
  };

  constexpr iterator begin() const noexcept { return iterator(bits_); }
  constexpr iterator end() const noexcept { return iterator(0); }

 private:
  // The set spans the full 64-bit word regardless of kMaxTasks (which only
  // bounds the fixed arrays of the search hot path).
  static constexpr TaskId check(TaskId t) noexcept {
    PARABB_ASSERT(t >= 0 && t < 64);
    return t;
  }

  std::uint64_t bits_ = 0;
};

}  // namespace parabb
