#include "parabb/support/rng.hpp"

// Header-only today; this TU pins the library target and provides a home for
// any future out-of-line additions (e.g. jump functions for parallel streams).
namespace parabb {
namespace {
[[maybe_unused]] constexpr std::uint64_t kSelfTest = derive_seed(1, 2);
static_assert(kSelfTest != 0, "derive_seed must mix to a nonzero value");
}  // namespace
}  // namespace parabb
