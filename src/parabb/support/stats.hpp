// Online statistics and Student-t confidence intervals.
//
// The paper's stopping rule: replications were added until a 90 % (95 %)
// confidence interval had half-width within 10 % (0.5 %) of the mean for the
// searched-vertices (lateness) metric. OnlineStats + ci_halfwidth implement
// exactly that machinery.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "parabb/support/assert.hpp"

namespace parabb {

/// Welford single-pass accumulator for mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
    sum_ += x;
  }

  void merge(const OnlineStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * other.mean_) / nt;
    n_ += other.n_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Unbiased sample variance (0 when n < 2).
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Standard error of the mean.
  double sem() const noexcept {
    return n_ < 1 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value t_{alpha/2, df} for confidence level
/// `confidence` in {0.90, 0.95, 0.99}; other levels are rejected.
/// Implemented by table + asymptotic interpolation (no external deps).
double t_critical(double confidence, std::size_t df);

/// Half-width of the `confidence` CI for the mean of `s`.
/// Returns +inf when fewer than 2 samples.
double ci_halfwidth(const OnlineStats& s, double confidence);

/// True once the CI half-width is within `rel_err` * |mean| (the paper's
/// stopping criterion). A mean of exactly zero is handled with an absolute
/// floor `abs_floor`.
bool ci_converged(const OnlineStats& s, double confidence, double rel_err,
                  double abs_floor = 1e-9);

/// Geometric mean of strictly positive samples (used for vertex-count
/// summaries across heterogeneous instances, reported alongside the paper's
/// arithmetic means).
double geometric_mean(const std::vector<double>& xs);

/// p-th percentile (0 <= p <= 100) with linear interpolation; copies input.
double percentile(std::vector<double> xs, double p);

}  // namespace parabb
