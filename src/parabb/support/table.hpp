// Aligned text tables and CSV output for experiment reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace parabb {

/// Column-aligned monospace table (paper-style report rows).
class TextTable {
 public:
  /// Sets the header row and fixes the column count.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Structured access for machine-readable emitters (bench JSON).
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders with 2-space column gaps; numeric-looking cells right-aligned.
  std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing , " or newline).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = rule
};

/// Formats a double with `digits` significant decimals, trimming zeros.
std::string fmt_double(double v, int digits = 2);

/// Formats "mean ± halfwidth".
std::string fmt_ci(double mean, double halfwidth, int digits = 2);

/// Writes `text` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace parabb
