// Monotonic wall-clock stopwatch used for RB.TIMELIMIT enforcement and
// informational timing in benches.
#pragma once

#include <chrono>

namespace parabb {

class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction / last restart.
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::chrono::nanoseconds elapsed() const noexcept {
    return clock::now() - start_;
  }

 private:
  clock::time_point start_;
};

}  // namespace parabb
