// Minimal JSON value, parser, and writer for the solver-service JSONL
// protocol (service/protocol.hpp) and other line-oriented tooling.
//
// Deliberately small and dependency-free: the full JSON grammar (RFC 8259)
// minus only \uXXXX surrogate pairs outside the BMP (non-BMP escapes parse
// to U+FFFD). Integers that fit int64 are kept exact (not routed through
// double), because the protocol carries 64-bit vertex counts and byte
// budgets. Object member order is preserved, so a value round-trips
// byte-stably through parse() ∘ dump() — the serve smoke test relies on
// deterministic field order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace parabb {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,     ///< integral number, exact int64
    kDouble,  ///< non-integral (or out-of-int64-range) number
    kString,
    kArray,
    kObject,
  };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  JsonValue(int v) : JsonValue(static_cast<std::int64_t>(v)) {}
  JsonValue(std::uint64_t v);
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). Throws std::runtime_error with a byte
  /// offset on malformed input.
  static JsonValue parse(const std::string& text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Checked accessors; throw std::runtime_error on a kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;  ///< kInt, or kDouble with integral value
  double as_double() const;     ///< any number
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;   ///< array elements
  const std::vector<Member>& members() const;    ///< object members, ordered

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Append to an array / object under construction.
  JsonValue& push_back(JsonValue v);
  JsonValue& set(std::string key, JsonValue v);

  /// Serializes compactly (no whitespace). Doubles use shortest-round-trip
  /// formatting; non-finite doubles serialize as null (JSON has no inf).
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

}  // namespace parabb
