// 64-bit mixing and Zobrist-style key material for incremental state
// fingerprints.
//
// The transposition table (bnb/transposition.hpp) identifies duplicate
// search states by a 64-bit fingerprint that PartialSchedule maintains
// incrementally: each placement XORs one key into the running hash, so the
// fingerprint is independent of the order in which commuting placements
// were made and is undone by XORing the same key out again. Keys are
// derived deterministically at compile time from a fixed seed — identical
// across runs, platforms, and threads, which the differential and
// determinism tests rely on.
#pragma once

#include <array>
#include <cstdint>

namespace parabb {

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// N statistically independent 64-bit keys from the SplitMix64 stream.
template <std::size_t N>
constexpr std::array<std::uint64_t, N> zobrist_keys(
    std::uint64_t seed) noexcept {
  std::array<std::uint64_t, N> keys{};
  std::uint64_t s = seed;
  for (auto& k : keys) {
    k = mix64(s);
    s = k;
  }
  return keys;
}

}  // namespace parabb
