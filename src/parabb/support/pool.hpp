// SlotPool: chunked fixed-size-slot allocator with free-list recycling and
// per-slot generation counters.
//
// Branch-and-bound vertices are allocated and pruned at very high rates and
// are referenced lazily from active-set containers (a heap may hold handles
// to vertices that U/DBAS already pruned). The generation counter lets a
// container detect stale handles in O(1) instead of the engine eagerly
// deleting heap entries (which would be O(n) per prune).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "parabb/support/assert.hpp"

namespace parabb {

/// Handle to a pool slot: index + generation stamp captured at allocation.
struct SlotRef {
  std::uint32_t index = 0;
  std::uint32_t generation = 0;

  friend bool operator==(SlotRef, SlotRef) = default;
};

class SlotPool {
 public:
  /// `slot_bytes` is the payload size; `slots_per_chunk` tunes allocation
  /// granularity (chunks are never freed until the pool is destroyed or
  /// reset, so handles stay stable).
  explicit SlotPool(std::size_t slot_bytes, std::size_t slots_per_chunk = 4096)
      : payload_bytes_(align_up(slot_bytes)),
        slots_per_chunk_(slots_per_chunk) {
    PARABB_REQUIRE(slot_bytes > 0, "slot size must be positive");
    PARABB_REQUIRE(slots_per_chunk > 0, "chunk size must be positive");
  }

  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  /// Allocate a slot; payload contents are uninitialized.
  SlotRef allocate() {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      if (next_fresh_ == capacity_) grow();
      idx = next_fresh_++;
    }
    ++live_;
    return SlotRef{idx, generation(idx)};
  }

  /// Release a slot; bumps its generation so stale handles become invalid.
  void release(SlotRef ref) {
    PARABB_ASSERT(is_live(ref));
    ++generation(ref.index);
    free_.push_back(ref.index);
    PARABB_ASSERT(live_ > 0);
    --live_;
  }

  /// True iff `ref` still refers to the allocation it was created by.
  bool is_live(SlotRef ref) const noexcept {
    return ref.index < next_fresh_ && generation(ref.index) == ref.generation;
  }

  /// Payload pointer. Asserts the handle is live.
  void* get(SlotRef ref) noexcept {
    PARABB_ASSERT(is_live(ref));
    return payload(ref.index);
  }
  const void* get(SlotRef ref) const noexcept {
    PARABB_ASSERT(is_live(ref));
    return payload(ref.index);
  }

  std::size_t live_count() const noexcept { return live_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t slot_bytes() const noexcept { return payload_bytes_; }

  /// Approximate resident bytes (payload chunks + bookkeeping).
  std::size_t memory_bytes() const noexcept {
    return capacity_ * payload_bytes_ + generations_.capacity() * 4 +
           free_.capacity() * 4;
  }

  /// Drop every allocation but keep the chunks (invalidates all handles;
  /// fresh allocation restarts from slot 0).
  void reset() noexcept {
    for (auto& g : generations_) ++g;
    free_.clear();
    next_fresh_ = 0;
    live_ = 0;
  }

 private:
  static constexpr std::size_t align_up(std::size_t n) noexcept {
    constexpr std::size_t a = alignof(std::max_align_t);
    return (n + a - 1) / a * a;
  }

  void grow() {
    auto chunk = std::make_unique<std::byte[]>(payload_bytes_ *
                                               slots_per_chunk_);
    chunks_.push_back(std::move(chunk));
    capacity_ += slots_per_chunk_;
    generations_.resize(capacity_, 0);
  }

  std::byte* payload(std::uint32_t idx) noexcept {
    return chunks_[idx / slots_per_chunk_].get() +
           payload_bytes_ * (idx % slots_per_chunk_);
  }
  const std::byte* payload(std::uint32_t idx) const noexcept {
    return chunks_[idx / slots_per_chunk_].get() +
           payload_bytes_ * (idx % slots_per_chunk_);
  }

  std::uint32_t& generation(std::uint32_t idx) noexcept {
    return generations_[idx];
  }
  std::uint32_t generation(std::uint32_t idx) const noexcept {
    return generations_[idx];
  }

  std::size_t payload_bytes_;
  std::size_t slots_per_chunk_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<std::uint32_t> generations_;
  std::vector<std::uint32_t> free_;
  std::uint32_t next_fresh_ = 0;
  std::size_t capacity_ = 0;
  std::size_t live_ = 0;
};

}  // namespace parabb
