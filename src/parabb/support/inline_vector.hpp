// InlineVector: fixed-capacity vector with inline storage.
//
// Used for per-vertex child lists and per-processor task chains on the
// search hot path, where heap allocation per vertex would dominate runtime.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>

#include "parabb/support/assert.hpp"

namespace parabb {

template <typename T, std::size_t N>
class InlineVector {
  static_assert(N > 0);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVector() noexcept = default;

  InlineVector(std::initializer_list<T> init) {
    PARABB_ASSERT(init.size() <= N);
    for (const T& v : init) push_back(v);
  }

  InlineVector(const InlineVector& other) {
    for (const T& v : other) push_back(v);
  }

  InlineVector(InlineVector&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    for (T& v : other) push_back(std::move(v));
    other.clear();
  }

  InlineVector& operator=(const InlineVector& other) {
    if (this != &other) {
      clear();
      for (const T& v : other) push_back(v);
    }
    return *this;
  }

  InlineVector& operator=(InlineVector&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      clear();
      for (T& v : other) push_back(std::move(v));
      other.clear();
    }
    return *this;
  }

  ~InlineVector() { clear(); }

  static constexpr std::size_t capacity() noexcept { return N; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == N; }

  T& operator[](std::size_t i) noexcept {
    PARABB_ASSERT(i < size_);
    return *ptr(i);
  }
  const T& operator[](std::size_t i) const noexcept {
    PARABB_ASSERT(i < size_);
    return *ptr(i);
  }

  T& front() noexcept { return (*this)[0]; }
  const T& front() const noexcept { return (*this)[0]; }
  T& back() noexcept { return (*this)[size_ - 1]; }
  const T& back() const noexcept { return (*this)[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    PARABB_ASSERT(size_ < N);
    T* slot = ptr(size_);
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() noexcept {
    PARABB_ASSERT(size_ > 0);
    --size_;
    ptr(size_)->~T();
  }

  void clear() noexcept {
    while (size_ > 0) pop_back();
  }

  void resize(std::size_t n)
    requires std::is_default_constructible_v<T>
  {
    PARABB_ASSERT(n <= N);
    while (size_ > n) pop_back();
    while (size_ < n) emplace_back();
  }

  iterator begin() noexcept { return ptr(0); }
  iterator end() noexcept { return ptr(size_); }
  const_iterator begin() const noexcept { return ptr(0); }
  const_iterator end() const noexcept { return ptr(size_); }

  friend bool operator==(const InlineVector& a, const InlineVector& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i)
      if (!(a[i] == b[i])) return false;
    return true;
  }

 private:
  T* ptr(std::size_t i) noexcept {
    return std::launder(reinterpret_cast<T*>(storage_.data())) + i;
  }
  const T* ptr(std::size_t i) const noexcept {
    return std::launder(reinterpret_cast<const T*>(storage_.data())) + i;
  }

  alignas(T) std::array<std::byte, N * sizeof(T)> storage_;
  std::size_t size_ = 0;
};

}  // namespace parabb
