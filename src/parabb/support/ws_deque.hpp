// WsDeque: a growable Chase-Lev work-stealing deque.
//
// One owner thread pushes and pops at the *bottom* (LIFO, which keeps the
// B&B dive depth-first and cache-hot); any number of thief threads steal
// from the *top* (FIFO, so thieves take the oldest — shallowest — vertices,
// whose subtrees are the largest and amortize the steal best).
//
// The algorithm is the classic Chase-Lev deque [Chase & Lev, SPAA'05] with
// the C11 memory orders of Lê, Pop, Cohen & Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" [PPoPP'13]:
//
//  * `top_` only ever increases, so an index compare-exchange can never
//    ABA; `bottom_` is owner-private except for the thieves' acquire load.
//  * push_bottom publishes the cell with a release store of `bottom_`;
//    a thief's acquire load of `bottom_` therefore sees the cell contents.
//  * pop_bottom decrements `bottom_` and *then* reads `top_` behind a
//    seq_cst fence, so owner and thief cannot both miss each other's claim
//    on the last element; the single-element case is arbitrated by a CAS
//    on `top_` that at most one of them wins.
//  * steal_top reads `top_`, fences, reads `bottom_`, reads the cell, and
//    only then claims it by CAS on `top_`. A failed CAS means the element
//    was won by the owner or another thief; the stale value read from the
//    cell is discarded unread-by-anyone.
//
// Batched stealing ("steal half") is deliberately a *loop of single-item
// CAS claims* (see steal_batch) rather than one CAS that advances `top_`
// by k. A range claim computes k from a bottom_ value that may already be
// stale: the owner can plain-pop (no CAS — that is the whole point of
// Chase-Lev) an element inside the thief's intended [top, top+k) range
// before the thief's CAS lands, and the CAS would still succeed because
// only `top_` is compared — double-claiming the element. Single-item
// claims never extend past the arbitration that the algorithm proves
// correct; what the batch amortizes is victim selection, the top/bottom
// cache-line transfer (consecutive CASes hit an already-exclusive line),
// and the idle/termination bookkeeping in the scheduler above.
//
// Cells hold a trivially-copyable T (the engine stores WsNode pointers) in
// std::atomic<T> with relaxed accesses: thieves may read a cell racily and
// discard the value when their CAS fails, which is benign for the
// algorithm but must be a *data-race-free* read for TSan and the standard.
//
// The buffer grows by doubling (owner-only, in push_bottom); retired
// buffers are kept alive until the deque dies because a thief may still
// hold a pointer to one mid-steal. Elements in flight during a grow are
// copied index-stable: cell i lives at `i & mask` in every generation, and
// a cell is never rewritten until `bottom_` laps it, which requires `top_`
// to have passed it first — making any thief CAS on the old index fail.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "parabb/support/assert.hpp"

// ThreadSanitizer has no model for standalone atomic_thread_fence (GCC
// promotes its use to an error under -fsanitize=thread -Werror), so
// sanitizer builds run the classical all-seq_cst formulation of the
// algorithm instead: the fence-adjacent top_/bottom_ accesses are
// strengthened to seq_cst, which subsumes the fence's store-load ordering
// and which TSan models exactly. Release builds keep the PPoPP'13 orders.
#if defined(__SANITIZE_THREAD__)
#define PARABB_WS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARABB_WS_TSAN 1
#endif
#endif

namespace parabb {

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WsDeque cells are read racily; T must be memcpy-safe");

 public:
  /// `initial_capacity` is rounded up to a power of two (min 8).
  explicit WsDeque(std::size_t initial_capacity = 64) {
    std::size_t cap = 8;
    while (cap < initial_capacity) cap *= 2;
    buffers_.push_back(std::make_unique<Buffer>(cap));
    buffer_.store(buffers_.back().get(), std::memory_order_relaxed);
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  // --- owner operations -------------------------------------------------

  /// Appends `v` at the bottom. Owner thread only.
  void push_bottom(T v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    buf->cells[static_cast<std::size_t>(b) & buf->mask].store(
        v, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Removes the bottom element into `out`; false when the deque is empty
  /// (or the last element was lost to a thief). Owner thread only.
  bool pop_bottom(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* const buf = buffer_.load(std::memory_order_relaxed);
#ifdef PARABB_WS_TSAN
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
#else
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
#endif
    if (t > b) {  // was empty: undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buf->cells[static_cast<std::size_t>(b) & buf->mask].load(
        std::memory_order_relaxed);
    if (t < b) return true;  // more than one element: no race possible
    // Single element: race the thieves for it with one CAS on top_.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won;
  }

  // --- thief operations -------------------------------------------------

  /// Steals the top element into `out`; false when empty or the claim
  /// lost a race (callers treat both as "try elsewhere").
  bool steal_top(T& out) {
#ifdef PARABB_WS_TSAN
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
#else
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
#endif
    if (t >= b) return false;
    Buffer* const buf = buffer_.load(std::memory_order_acquire);
    const T v = buf->cells[static_cast<std::size_t>(t) & buf->mask].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    out = v;
    return true;
  }

  /// Steals up to `max_items` elements (oldest first) into `out`, stopping
  /// at the first failed claim. Returns the number stolen. See the header
  /// comment for why this is a loop of single claims, not a range CAS.
  std::size_t steal_batch(T* out, std::size_t max_items) {
    std::size_t got = 0;
    while (got < max_items && steal_top(out[got])) ++got;
    return got;
  }

  // --- introspection (any thread; approximate under concurrency) --------

  /// bottom - top clamped at 0. Exact when no operation is in flight.
  std::size_t size_hint() const noexcept {
    const std::int64_t t = top_.load(std::memory_order_acquire);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_hint() const noexcept { return size_hint() == 0; }

  std::size_t capacity() const noexcept {
    return buffer_.load(std::memory_order_acquire)->capacity;
  }

  /// Resident bytes across the live buffer and retired generations.
  std::size_t memory_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& buf : buffers_) total += buf->capacity * sizeof(T);
    return total;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          cells(std::make_unique<std::atomic<T>[]>(cap)) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
  };

  /// Doubles the buffer (owner only, called from push_bottom). The old
  /// buffer is retired, not freed: thieves may still read through it.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->cells[static_cast<std::size_t>(i) & bigger->mask].store(
          old->cells[static_cast<std::size_t>(i) & old->mask].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    Buffer* const fresh = bigger.get();
    buffers_.push_back(std::move(bigger));
    buffer_.store(fresh, std::memory_order_release);
    return fresh;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  ///< all generations (owner)
};

}  // namespace parabb
