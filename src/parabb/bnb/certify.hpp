// Certificate-emission helpers shared by the sequential and parallel
// engines. Only consulted on the certify path (Params::certify != null),
// which is cold by definition — the extra from-scratch LB1 evaluation per
// LB2 cut is deliberate, not an oversight.
#pragma once

#include "parabb/bnb/lower_bound.hpp"
#include "parabb/bnb/params.hpp"
#include "parabb/verify/certificate.hpp"

namespace parabb {

/// Classifies a bound cut for the audit log. For LB0/LB1 runs the rule is
/// the configured bound. For LB2 runs, a cut where the LB1 component
/// alone would NOT have dominated the incumbent was decided by the
/// workload-packing term — recorded as kPackingSuffix so the verifier can
/// hold the packing claim itself to account.
inline CutRule bound_cut_rule(const SchedContext& ctx,
                              const PartialSchedule& state, LowerBound kind,
                              Time threshold) {
  switch (kind) {
    case LowerBound::kLB0: return CutRule::kLB0;
    case LowerBound::kLB1: return CutRule::kLB1;
    case LowerBound::kLB2:
      return lower_bound_cost(ctx, state, LowerBound::kLB1) < threshold
                 ? CutRule::kPackingSuffix
                 : CutRule::kLB2;
  }
  return CutRule::kLB1;
}

}  // namespace parabb
