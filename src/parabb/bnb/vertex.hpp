// Search-tree vertex: a partial (or complete) schedule plus its bound.
//
// Vertices live in a SlotPool (support/pool.hpp): they are created and
// pruned at very high rates, and the active set stores only small handles.
#pragma once

#include <cstdint>
#include <type_traits>

#include "parabb/sched/partial_schedule.hpp"
#include "parabb/support/pool.hpp"
#include "parabb/support/types.hpp"

namespace parabb {

struct Vertex {
  PartialSchedule state;
  Time lb = 0;             ///< lower-bound cost L(v)
  std::uint32_t seq = 0;   ///< generation counter (LIFO/FIFO order, LLB ties)
};

// The pool copies vertices as raw bytes.
static_assert(std::is_trivially_copyable_v<Vertex>);

/// Handle stored in active-set containers: the bound and order key are
/// duplicated here so selection rules never touch pool memory.
struct VertexEntry {
  Time lb = 0;
  std::uint32_t seq = 0;
  SlotRef ref;
};

}  // namespace parabb
