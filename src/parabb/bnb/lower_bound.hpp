// Lower-bound cost functions L (paper §3.5).
//
// Each returns a provable lower bound L̂ on the maximum task lateness of any
// complete schedule reachable from the given partial schedule under the
// scheduling operation of §4.3:
//
//  * LB0 — recursive estimated finish times driven only by arrival times and
//    predecessor estimates (communication costs are optimistically zero,
//    which keeps the bound admissible since co-located tasks pay none):
//        f̂_i = f_i                                    if scheduled
//        f̂_i = max(a_i + c_i,
//                   max_{j ≺· i} (max(f̂_j, a_i) + c_i)) otherwise
//
//  * LB1 — LB0 with the adaptive processor-contention term l_min, the
//    earliest time any processor becomes free; no unscheduled task can
//    start before it under the append-only operation:
//        f̂_i = max(max(a_i, l_min) + c_i,
//                   max_{j ≺· i} (max(f̂_j, a_i, l_min) + c_i))
//
//  * LB2 (extension) — max(LB1, workload packing bound): for each absolute
//    deadline D, the unscheduled work W_D with deadlines <= D cannot finish
//    before ceil((Σ_q avail_q + W_D)/m), so some task is at least that far
//    past D.
//
// In all cases  L̂ = max_i (f̂_i − D_i).  On a complete schedule every f̂
// equals the real finish time, so L̂ is the exact cost of a goal vertex.
#pragma once

#include "parabb/bnb/params.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/sched/partial_schedule.hpp"

namespace parabb {

/// Evaluates lower bound `kind` for `ps`. O(n + e) for LB0/LB1;
/// O(n log n + e) for LB2.
Time lower_bound_cost(const SchedContext& ctx, const PartialSchedule& ps,
                      LowerBound kind);

/// The exact maximum lateness of a complete schedule (all f̂ = f).
/// Convenience wrapper asserting completeness.
Time exact_cost(const SchedContext& ctx, const PartialSchedule& ps);

}  // namespace parabb
