// Lower-bound cost functions L (paper §3.5).
//
// Each returns a provable lower bound L̂ on the maximum task lateness of any
// complete schedule reachable from the given partial schedule under the
// scheduling operation of §4.3:
//
//  * LB0 — recursive estimated finish times driven only by arrival times and
//    predecessor estimates (communication costs are optimistically zero,
//    which keeps the bound admissible since co-located tasks pay none):
//        f̂_i = f_i                                    if scheduled
//        f̂_i = max(a_i + c_i,
//                   max_{j ≺· i} (max(f̂_j, a_i) + c_i)) otherwise
//
//  * LB1 — LB0 with the adaptive processor-contention term l_min, the
//    earliest time any processor becomes free; no unscheduled task can
//    start before it under the append-only operation:
//        f̂_i = max(max(a_i, l_min) + c_i,
//                   max_{j ≺· i} (max(f̂_j, a_i, l_min) + c_i))
//
//  * LB2 (extension) — max(LB1, workload packing bound): for each absolute
//    deadline D, the unscheduled work W_D with deadlines <= D cannot finish
//    before ceil((Σ_q avail_q + W_D)/m), so some task is at least that far
//    past D.
//
// In all cases  L̂ = max_i (f̂_i − D_i).  On a complete schedule every f̂
// equals the real finish time, so L̂ is the exact cost of a goal vertex.
#pragma once

#include <array>
#include <cstdint>

#include "parabb/bnb/params.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/sched/partial_schedule.hpp"

namespace parabb {

/// Evaluates lower bound `kind` for `ps` from scratch. O(n + e) for
/// LB0/LB1; O(n log n + e) for LB2. This is the reference implementation:
/// the engines evaluate children through IncrementalLB below, and the
/// differential suite (tests/test_lower_bound_incremental.cpp) pins the two
/// to each other on every state it can generate.
Time lower_bound_cost(const SchedContext& ctx, const PartialSchedule& ps,
                      LowerBound kind);

/// The exact maximum lateness of a complete schedule (all f̂ = f).
/// Convenience wrapper asserting completeness.
Time exact_cost(const SchedContext& ctx, const PartialSchedule& ps);

/// Incremental bound evaluator: a scratch context that rides along a
/// place()/unplace() walk so per-child evaluation touches only what the
/// placement changed instead of re-deriving everything from scratch.
///
/// What it maintains across place()/unplace() (invariants, each restored
/// exactly by unplace because the scheduling operation is reversible):
///  * `avail_sum`   = Σ_q proc_avail(q)   — LB2's packing numerator;
///  * `unsched_work`= Σ exec over unscheduled tasks;
///  * `worst_sched` = max lateness over the scheduled prefix (monotone
///    under place, so one saved value per nesting level undoes it);
///  * unscheduled-membership bitmasks in topo-rank and deadline-rank
///    space, so both evaluation loops visit unscheduled tasks only, in
///    the right order, with no sort and no branch per skipped task;
///  * f̂ of every *scheduled* task (its exact finish time).
///
/// evaluate() then costs O(U + E_U) for LB0/LB1 and O(U + E_U + U) for LB2
/// — U = unscheduled tasks, E_U = their incoming arcs — instead of the
/// from-scratch O(n + e + n log n), and it short-circuits as soon as its
/// running maximum proves the final bound cannot stay below `cutoff`.
class IncrementalLB {
 public:
  explicit IncrementalLB(const SchedContext& ctx) noexcept : ctx_(&ctx) {}

  /// Rebinds the scratch to `ps` in O(n + m). Call once per expanded
  /// parent; subsequent place()/unplace() keep the terms synchronized.
  void attach(const PartialSchedule& ps) noexcept;

  /// Applies ps.place(t, p) and updates every incremental term.
  /// Returns the assigned start time.
  CTime place(PartialSchedule& ps, TaskId t, ProcId p) noexcept;

  /// Reverts the most recent not-yet-reverted place() (LIFO nesting, same
  /// discipline PartialSchedule::unplace already requires).
  void unplace(PartialSchedule& ps, TaskId t) noexcept;

  /// Lower bound of the attached state. When the result is < cutoff it is
  /// the exact bound (== lower_bound_cost). Otherwise it is some value v
  /// with cutoff <= v <= exact bound — enough to decide every
  /// `bound >= threshold` prune identically to the exact evaluation, which
  /// is the only way the engines consume bounds at or above the threshold.
  Time evaluate(const PartialSchedule& ps, LowerBound kind,
                Time cutoff = kTimeInf) noexcept;

 private:
  static_assert(kMaxTasks <= 64, "rank bitmasks are one 64-bit word");

  const SchedContext* ctx_;
  Time avail_sum_ = 0;              ///< Σ_q proc_avail(q)
  Time unsched_work_ = 0;           ///< Σ exec over unscheduled tasks
  Time worst_sched_ = kTimeNegInf;  ///< max lateness of the scheduled prefix
  std::uint64_t unsched_topo_ = 0;  ///< unscheduled set, bit = topo rank
  std::uint64_t unsched_dl_ = 0;    ///< unscheduled set, bit = deadline rank
  int depth_ = 0;                   ///< place() nesting level
  std::array<Time, kMaxTasks> fhat_{};  ///< f̂; exact finish when scheduled
  /// worst_sched_ undo stack: the one term place() cannot invert itself.
  std::array<Time, kMaxTasks + 1> saved_worst_{};
};

}  // namespace parabb
