#include "parabb/bnb/search_obs.hpp"

#include <span>
#include <string>

#include "parabb/obs/metrics.hpp"

namespace parabb {

const std::array<SearchStatsField, kSearchStatsFieldCount>
    kSearchStatsFields = {{
        {"expanded", &SearchStats::expanded},
        {"generated", &SearchStats::generated},
        {"activated", &SearchStats::activated},
        {"goals", &SearchStats::goals},
        {"goal_updates", &SearchStats::goal_updates},
        {"pruned_children", &SearchStats::pruned_children},
        {"pruned_active", &SearchStats::pruned_active},
        {"disposed", &SearchStats::disposed},
        {"tt_hits", &SearchStats::tt_hits},
        {"tt_misses", &SearchStats::tt_misses},
        {"tt_evictions", &SearchStats::tt_evictions},
        {"tt_collisions", &SearchStats::tt_collisions},
        {"steals_attempted", &SearchStats::steals_attempted,
         "parabb_steals_attempted_total"},
        {"steals_succeeded", &SearchStats::steals_succeeded,
         "parabb_steals_succeeded_total"},
        {"degrade_steps", &SearchStats::degrade_steps,
         "parabb_degrade_steps_total"},
    }};

void merge_search_stats(SearchStats& into, const SearchStats& from) {
  std::array<std::uint64_t, kSearchStatsFieldCount + 2> dst;
  std::array<std::uint64_t, kSearchStatsFieldCount + 2> src;
  for (std::size_t i = 0; i < kSearchStatsFieldCount; ++i) {
    dst[i] = into.*(kSearchStatsFields[i].member);
    src[i] = from.*(kSearchStatsFields[i].member);
  }
  dst[kSearchStatsFieldCount] = into.peak_active;
  src[kSearchStatsFieldCount] = from.peak_active;
  dst[kSearchStatsFieldCount + 1] = into.peak_memory_bytes;
  src[kSearchStatsFieldCount + 1] = from.peak_memory_bytes;
  accumulate(std::span<std::uint64_t>(dst),
             std::span<const std::uint64_t>(src));
  for (std::size_t i = 0; i < kSearchStatsFieldCount; ++i) {
    into.*(kSearchStatsFields[i].member) = dst[i];
  }
  into.peak_active = static_cast<std::size_t>(dst[kSearchStatsFieldCount]);
  into.peak_memory_bytes =
      static_cast<std::size_t>(dst[kSearchStatsFieldCount + 1]);
}

void SearchObs::bind(const Observation* obs, std::size_t channel,
                     bool with_flight) {
  if (!obs) return;
  if (obs->metrics) {
    for (std::size_t i = 0; i < kSearchStatsFieldCount; ++i) {
      const SearchStatsField& f = kSearchStatsFields[i];
      counters_[i] = obs->metrics->counter(
          f.metric ? std::string(f.metric)
                   : std::string("parabb_search_") + f.name + "_total");
    }
    peak_active_ = obs->metrics->gauge("parabb_search_peak_active");
    peak_memory_ = obs->metrics->gauge("parabb_search_peak_memory_bytes");
    ckpt_writes_ = obs->metrics->counter("parabb_ckpt_writes_total");
    ckpt_bytes_ = obs->metrics->counter("parabb_ckpt_bytes_total");
    ckpt_restores_ = obs->metrics->counter("parabb_ckpt_restores_total");
    metrics_ = true;
  }
  if (with_flight && obs->recorder) {
    flight_ = &obs->recorder->channel(channel);
  }
}

void SearchObs::bind_deque_depth(const Observation* obs, std::size_t worker) {
  if (!obs || !obs->metrics) return;
  deque_depth_ = obs->metrics->gauge("parabb_deque_depth_w" +
                                     std::to_string(worker));
}

void SearchObs::deque_depth(std::int64_t depth) noexcept {
  if (deque_depth_) deque_depth_->set(depth);
}

void SearchObs::checkpoint_written(std::int64_t bytes) noexcept {
  if (ckpt_writes_) {
    ckpt_writes_->add(1);
    ckpt_bytes_->add(static_cast<std::uint64_t>(bytes));
  }
  if (flight_)
    flight_->record(FlightEventKind::kCheckpoint, FlightPruneRule::kNone, 0,
                    bytes);
}

void SearchObs::checkpoint_restored(std::int64_t frontier) noexcept {
  if (ckpt_restores_) ckpt_restores_->add(1);
  if (flight_)
    flight_->record(FlightEventKind::kCheckpoint, FlightPruneRule::kNone, 1,
                    frontier);
}

void SearchObs::flush(const SearchStats& cur) {
  if (!metrics_) return;
  for (std::size_t i = 0; i < kSearchStatsFieldCount; ++i) {
    const std::uint64_t delta =
        cur.*(kSearchStatsFields[i].member) -
        last_.*(kSearchStatsFields[i].member);
    if (delta != 0) counters_[i]->add(delta);
  }
  peak_active_->set_max(static_cast<std::int64_t>(cur.peak_active));
  peak_memory_->set_max(static_cast<std::int64_t>(cur.peak_memory_bytes));
  last_ = cur;
}

}  // namespace parabb
