// Parallel branch-and-bound (extension; DESIGN.md item 8).
//
// A work-sharing parallelization of the LIFO depth-first search that the
// paper's experiments identify as the strongest configuration:
//
//  * a breadth-first *seeding* phase expands the root until there is at
//    least one frontier vertex per worker;
//  * each worker then runs sorted-LIFO dives on a private stack;
//  * the incumbent cost is a shared atomic read on every bound test and
//    updated (together with the incumbent schedule) under a mutex;
//  * a worker donates the shallowest half of its stack to a global queue
//    whenever that queue is dry and a peer is starving; idle workers block
//    on the queue; the search ends when the queue is empty and every
//    worker is idle.
//
// The returned cost is identical to the sequential engine's (same bounds,
// same pruning rule); the number of searched vertices varies run-to-run
// because incumbent improvements propagate asynchronously.
#pragma once

#include "parabb/bnb/engine.hpp"

namespace parabb {

struct ParallelParams {
  /// Base 9-tuple. `select` is ignored (always LIFO dives); `rb.max_active`
  /// and `rb.max_children` are ignored (no disposal in the parallel
  /// engine); `rb.max_memory_bytes` is ignored (worker memory is bounded by
  /// dive depth, not an active set); `dominance` is ignored. BR, LB, branch
  /// rule, UB init, the time limit, `rb.max_generated` (summed across
  /// workers) and the `cancel` token apply. `transposition` is honored: one
  /// table is shared by every worker (lock-striped), so a state expanded by
  /// any thread is pruned as a duplicate everywhere else.
  Params base;
  int threads = 0;  ///< 0 = hardware concurrency
};

struct ParallelResult {
  bool found_solution = false;
  Schedule best;
  Time best_cost = kTimeInf;
  bool proved = false;
  TerminationReason reason = TerminationReason::kExhausted;
  SearchStats stats;  ///< merged across workers (peaks are approximate sums)
  int threads_used = 0;
};

ParallelResult solve_bnb_parallel(const SchedContext& ctx,
                                  const ParallelParams& params);

}  // namespace parabb
