// Parallel branch-and-bound (extension; DESIGN.md item 8).
//
// Two schedulers share one search semantics (same bounds, same pruning,
// shared atomic incumbent, shared lock-striped transposition table):
//
//  * kWorkStealing (default) — decentralized: each worker owns a
//    Chase-Lev deque (support/ws_deque.hpp). The owner pushes and pops
//    children at the bottom (sorted-LIFO dive, depth-first locality);
//    idle workers steal batches from the top of randomly chosen victims
//    (oldest = shallowest vertices, whose subtrees amortize the steal).
//    Vertices live in per-worker slab pools, so neither allocation nor
//    scheduling ever takes a global lock on the hot path. Termination is
//    detected by an idle-worker counter: a worker is counted idle only
//    while it holds no vertex, and the search ends when a sweep of every
//    deque finds them empty AND the counter — re-read after the sweep and
//    after a final stop-flag check — equals the worker count.
//    docs/algorithm.md ("Parallel search: work stealing") has the memory-
//    order and termination arguments.
//
//  * kCentralQueue — the previous work-sharing design, kept as the
//    benchmark baseline (bench/micro_parallel compares the two): workers
//    dive on private stacks and donate the shallowest half of their stack
//    to one mutex-guarded global queue when it runs dry and a peer
//    starves; idle workers block on the queue's condition variable.
//
// Both start from a breadth-first *seeding* phase that expands the root
// until there is at least one frontier vertex per worker. The returned
// cost is identical to the sequential engine's under either scheduler;
// the number of searched vertices varies run-to-run because incumbent
// improvements propagate asynchronously. Cancellation, the time limit,
// and the generated budget (PR 2/PR 3 semantics) are polled per expanded
// vertex under both schedulers.
#pragma once

#include <cstdint>

#include "parabb/bnb/engine.hpp"

namespace parabb {

/// How the parallel engine distributes vertices among workers.
enum class ParallelScheduler : std::uint8_t {
  kWorkStealing,  ///< per-worker Chase-Lev deques, batched steals (default)
  kCentralQueue,  ///< one shared queue + donation (benchmark baseline)
};

std::string to_string(ParallelScheduler s);

struct ParallelParams {
  /// Base 9-tuple. `select` is ignored (always LIFO dives); `rb.max_active`
  /// and `rb.max_children` are ignored (no disposal in the parallel
  /// engine); `dominance` is ignored. BR, LB, branch rule, UB init, the
  /// time limit, `rb.max_memory_bytes` (summed worker slab bytes — the
  /// degradation-ladder signal and, past the last rung, the stop cliff;
  /// docs/robustness.md), `rb.max_generated` (summed across
  /// workers) and the `cancel` token apply. `transposition` is honored: one
  /// table is shared by every worker (lock-striped), so a state expanded by
  /// any thread is pruned as a duplicate everywhere else.
  Params base;
  int threads = 0;  ///< 0 = hardware concurrency
  ParallelScheduler scheduler = ParallelScheduler::kWorkStealing;
  /// Work-stealing only: cap on the vertices one steal may take.
  /// 0 = auto — half of the victim's visible deque (minimum 1), the
  /// textbook balance between handoff latency and steal amortization.
  int steal_batch = 0;
};

struct ParallelResult {
  bool found_solution = false;
  Schedule best;
  Time best_cost = kTimeInf;
  bool proved = false;
  TerminationReason reason = TerminationReason::kExhausted;
  SearchStats stats;  ///< merged across workers (peaks are approximate sums)
  int threads_used = 0;
};

ParallelResult solve_bnb_parallel(const SchedContext& ctx,
                                  const ParallelParams& params);

}  // namespace parabb
