// Cooperative cancellation for the B&B engines.
//
// A CancelToken is a single atomic flag shared between a controller (the
// solver service, a signal handler, a test) and a running search. The
// engines poll it on the hot loop — every 256 expansions in the sequential
// engine, every private-stack pop in the parallel one — so a cancelled
// search unwinds within a sub-millisecond latency while the poll itself is
// one relaxed load, unmeasurable next to a vertex expansion. A cancelled
// search returns normally with TerminationReason::kCancelled and the best
// incumbent found so far; it never aborts or throws.
//
// cancel() is async-signal-safe (a lock-free atomic store), so a SIGINT
// handler may trip it directly (tools/parabb_solve does).
#pragma once

#include <atomic>

namespace parabb {

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent, thread-safe, signal-safe.
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }

  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

  /// Re-arms a token for reuse across searches (not concurrently with one).
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace parabb
