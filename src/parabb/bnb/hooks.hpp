// Ready-made characteristic (F) and dominance (D) rules.
//
// The paper deliberately leaves F and D unused "to preserve the results as
// general as possible" (§3) and notes they are most powerful when designed
// for a specific processor scheduling strategy. These implementations are
// sound for *this* scheduling operation and show what the hooks buy:
//
//  * deadline characteristic — prunes partial schedules that provably
//    cannot complete with every remaining deadline met. Only valid when
//    the caller searches for *feasible* (deadline-satisfying) schedules,
//    e.g. with an explicit upper bound U <= 0: any optimal solution it
//    could cut would miss a deadline anyway.
//
//  * processor-symmetry dominance — among sibling child vertices, a
//    dominates b when b is a's schedule with the (identical) processors
//    renamed: the per-processor contents and timings match under some
//    permutation. Completions of b are then exactly completions of a with
//    the same renaming, so one representative suffices. This is the
//    symmetry the paper's "all possible permutations" search pays for at
//    every empty-processor choice.
#pragma once

#include "parabb/bnb/params.hpp"

namespace parabb {

/// F: reject partial schedules where some unscheduled task's optimistic
/// finish (LB0 recursion) already exceeds its deadline, or a scheduled
/// task has missed its deadline. Sound only for feasibility search (see
/// header comment) — pair with Params::ub = kExplicit, explicit_ub = 1 to
/// search for any schedule with L_max <= 0.
CharacteristicFn make_deadline_characteristic();

/// D: sibling equivalence up to a permutation of the identical processors
/// (see header comment). The engine keeps the first representative of each
/// equivalence class.
DominanceFn make_processor_symmetry_dominance();

/// Convenience: parameters configured for a pure feasibility query
/// ("is there a valid schedule?"): BFn/LIFO/U-DBAS/LB1, U = explicit 1
/// (only solutions with L_max <= 0 are accepted), F = deadline
/// characteristic.
Params feasibility_params();

}  // namespace parabb
