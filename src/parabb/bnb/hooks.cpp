#include "parabb/bnb/hooks.hpp"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "parabb/support/types.hpp"

namespace parabb {

CharacteristicFn make_deadline_characteristic() {
  return [](const SchedContext& ctx, const PartialSchedule& ps) {
    // LB0-style optimistic finish for every task; any miss kills the
    // subtree (for feasibility search).
    std::array<Time, kMaxTasks> fhat{};
    for (const TaskId t : ctx.topo_order()) {
      const auto ut = static_cast<std::size_t>(t);
      Time f;
      if (ps.scheduled().contains(t)) {
        f = Time{ps.finish(ctx, t)};
      } else {
        Time floor = ctx.arrival(t);
        for (const TaskId j : ctx.pred_ids(t)) {
          floor = std::max(floor, fhat[static_cast<std::size_t>(j)]);
        }
        f = floor + ctx.exec(t);
      }
      fhat[ut] = f;
      if (f > Time{ctx.deadline(t)}) return false;
    }
    return true;
  };
}

namespace {

/// Canonical per-processor signature: the (task, start) pairs hosted by
/// each processor, processors sorted so renamings compare equal.
using ProcSig = std::vector<std::pair<TaskId, CTime>>;

std::vector<ProcSig> signature(const SchedContext& ctx,
                               const PartialSchedule& ps) {
  std::vector<ProcSig> sig(static_cast<std::size_t>(ctx.proc_count()));
  for (const TaskId t : ps.scheduled()) {
    sig[static_cast<std::size_t>(ps.proc(t))].emplace_back(t, ps.start(t));
  }
  for (ProcSig& s : sig) std::sort(s.begin(), s.end());
  std::sort(sig.begin(), sig.end());
  return sig;
}

}  // namespace

DominanceFn make_processor_symmetry_dominance() {
  return [](const SchedContext& ctx, const PartialSchedule& a,
            const PartialSchedule& b) {
    if (a.scheduled() != b.scheduled()) return false;
    return signature(ctx, a) == signature(ctx, b);
  };
}

Params feasibility_params() {
  Params p;
  p.ub = UpperBoundInit::kExplicit;
  p.explicit_ub = 1;  // accept only L_max <= 0 (every deadline met)
  p.characteristic = make_deadline_characteristic();
  return p;
}

}  // namespace parabb
