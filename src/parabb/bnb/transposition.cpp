#include "parabb/bnb/transposition.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>

#include "parabb/support/assert.hpp"

namespace parabb {

struct TranspositionTable::Shard {
  mutable std::mutex mutex;
  // Parallel arrays (see the header's layout note). fps is the only
  // zero-initialized allocation: fingerprint 0 means "free slot", so
  // construction touches 8 bytes per slot, not the whole memory cap —
  // engines build a table per solve and short searches must not pay for
  // it. lbs/states are uninitialized until their slot is claimed
  // (PartialSchedule is an implicit-lifetime type: trivial copy
  // constructor and destructor).
  std::unique_ptr<std::uint64_t[]> fps;
  std::unique_ptr<Time[]> lbs;
  std::unique_ptr<std::byte[]> state_storage;
  PartialSchedule* states = nullptr;
  std::size_t used_count = 0;
  TranspositionCounters counters;
};

namespace {

int clamp_shards(int requested) {
  const int clamped = std::clamp(requested, 1, 1024);
  return static_cast<int>(std::bit_ceil(static_cast<unsigned>(clamped)));
}

/// Fingerprint 0 is the free-slot sentinel; remap real zeros (one state in
/// 2^64 — the equality fallback absorbs the extra collision).
std::uint64_t desentinel(std::uint64_t fp) noexcept {
  return fp == 0 ? 1 : fp;
}

}  // namespace

TranspositionTable::TranspositionTable(const TranspositionConfig& config) {
  shard_count_ = clamp_shards(config.shards);
  shard_mask_ = static_cast<std::uint64_t>(shard_count_) - 1;
  const std::size_t total_slots =
      std::max<std::size_t>(config.memory_cap_bytes / kBytesPerSlot, 1);
  // Power-of-two slot count so probe indices wrap with a mask, and at
  // least one full bucket per shard.
  slots_per_shard_ = std::bit_floor(std::max<std::size_t>(
      total_slots / static_cast<std::size_t>(shard_count_), kProbeWindow));
  shards_ = std::make_unique<Shard[]>(static_cast<std::size_t>(shard_count_));
  for (int s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.fps = std::make_unique<std::uint64_t[]>(slots_per_shard_);
    shard.lbs = std::make_unique_for_overwrite<Time[]>(slots_per_shard_);
    shard.state_storage = std::make_unique_for_overwrite<std::byte[]>(
        slots_per_shard_ * sizeof(PartialSchedule));
    shard.states = reinterpret_cast<PartialSchedule*>(
        shard.state_storage.get());
  }
}

TranspositionTable::~TranspositionTable() = default;

TranspositionTable::Shard& TranspositionTable::shard_for(
    std::uint64_t fp) const noexcept {
  return shards_[static_cast<std::size_t>(fp & shard_mask_)];
}

bool TranspositionTable::seen_or_insert(std::uint64_t fp,
                                        const PartialSchedule& state,
                                        Time lb) {
  fp = desentinel(fp);
  Shard& shard = shard_for(fp);
  const std::lock_guard lock(shard.mutex);
  ++shard.counters.probes;

  // The shard index consumed the low bits; pick the bucket from the high
  // ones so the two choices stay independent. Aligning the window to a
  // bucket boundary keeps all eight fingerprints in one cache line.
  const std::size_t slot_mask = slots_per_shard_ - 1;
  const std::size_t base =
      (static_cast<std::size_t>(fp >> 10) & slot_mask) & ~(kProbeWindow - 1);
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t free_slot = kNone;
  std::size_t worst = kNone;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    const std::size_t idx = base + i;
    const std::uint64_t slot_fp = shard.fps[idx];
    if (slot_fp == 0) {
      if (free_slot == kNone) free_slot = idx;
      continue;
    }
    if (slot_fp == fp) {
      if (shard.states[idx] == state) {
        if (shard.lbs[idx] <= lb) {
          ++shard.counters.hits;
          return true;
        }
        // Re-seen with a strictly better bound: remember the improvement
        // so later duplicates are measured against the best-known bound.
        shard.lbs[idx] = lb;
        ++shard.counters.misses;
        return false;
      }
      ++shard.counters.collisions;  // 64-bit collision: equality saved us
    }
    if (worst == kNone || shard.lbs[idx] > shard.lbs[worst]) worst = idx;
  }

  ++shard.counters.misses;
  if (free_slot != kNone) {
    shard.fps[free_slot] = fp;
    shard.lbs[free_slot] = lb;
    shard.states[free_slot] = state;
    ++shard.used_count;
    ++shard.counters.inserts;
    return false;
  }
  // Bucket full: replace-if-better, keyed on the bound — promising
  // (low-bound) states are the ones the search will regenerate most.
  PARABB_ASSERT(worst != kNone);
  if (lb < shard.lbs[worst]) {
    shard.fps[worst] = fp;
    shard.lbs[worst] = lb;
    shard.states[worst] = state;
    ++shard.counters.evictions;
  } else {
    ++shard.counters.rejected;
  }
  return false;
}

TranspositionCounters TranspositionTable::counters() const {
  TranspositionCounters total;
  for (int s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    const std::lock_guard lock(shard.mutex);
    total.probes += shard.counters.probes;
    total.hits += shard.counters.hits;
    total.misses += shard.counters.misses;
    total.inserts += shard.counters.inserts;
    total.evictions += shard.counters.evictions;
    total.rejected += shard.counters.rejected;
    total.collisions += shard.counters.collisions;
  }
  return total;
}

std::size_t TranspositionTable::size() const {
  std::size_t used = 0;
  for (int s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    const std::lock_guard lock(shard.mutex);
    used += shard.used_count;
  }
  return used;
}

std::size_t TranspositionTable::capacity() const noexcept {
  return static_cast<std::size_t>(shard_count_) * slots_per_shard_;
}

std::size_t TranspositionTable::memory_bytes() const noexcept {
  return capacity() * kBytesPerSlot;
}

void TranspositionTable::for_each_entry(
    const std::function<void(const PartialSchedule&, Time)>& fn) const {
  for (int s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[static_cast<std::size_t>(s)];
    const std::lock_guard lock(shard.mutex);
    for (std::size_t i = 0; i < slots_per_shard_; ++i)
      if (shard.fps[i] != 0) fn(shard.states[i], shard.lbs[i]);
  }
}

void TranspositionTable::preload(const PartialSchedule& state, Time lb) {
  const std::uint64_t fp = desentinel(state.fingerprint());
  Shard& shard = shard_for(fp);
  const std::lock_guard lock(shard.mutex);
  const std::size_t slot_mask = slots_per_shard_ - 1;
  const std::size_t base =
      (static_cast<std::size_t>(fp >> 10) & slot_mask) & ~(kProbeWindow - 1);
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t free_slot = kNone;
  std::size_t worst = kNone;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    const std::size_t idx = base + i;
    const std::uint64_t slot_fp = shard.fps[idx];
    if (slot_fp == 0) {
      if (free_slot == kNone) free_slot = idx;
      continue;
    }
    if (slot_fp == fp && shard.states[idx] == state) {
      if (lb < shard.lbs[idx]) shard.lbs[idx] = lb;
      return;
    }
    if (worst == kNone || shard.lbs[idx] > shard.lbs[worst]) worst = idx;
  }
  if (free_slot != kNone) {
    shard.fps[free_slot] = fp;
    shard.lbs[free_slot] = lb;
    shard.states[free_slot] = state;
    ++shard.used_count;
  } else if (worst != kNone && lb < shard.lbs[worst]) {
    shard.fps[worst] = fp;
    shard.lbs[worst] = lb;
    shard.states[worst] = state;
  }
}

void TranspositionTable::add_counters(const TranspositionCounters& prior) {
  Shard& shard = shards_[0];
  const std::lock_guard lock(shard.mutex);
  shard.counters.probes += prior.probes;
  shard.counters.hits += prior.hits;
  shard.counters.misses += prior.misses;
  shard.counters.inserts += prior.inserts;
  shard.counters.evictions += prior.evictions;
  shard.counters.rejected += prior.rejected;
  shard.counters.collisions += prior.collisions;
}

void TranspositionTable::clear() {
  for (int s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    const std::lock_guard lock(shard.mutex);
    std::fill(shard.fps.get(), shard.fps.get() + slots_per_shard_,
              std::uint64_t{0});
    shard.used_count = 0;
  }
}

}  // namespace parabb
