#include "parabb/bnb/active_set.hpp"

#include <algorithm>
#include <vector>

#include "parabb/support/assert.hpp"

namespace parabb {

ActiveSet::ActiveSet(SelectRule rule, std::function<void(SlotRef)> release,
                     bool llb_tie_newest)
    : rule_(rule),
      release_(std::move(release)),
      llb_tie_newest_(llb_tie_newest) {
  PARABB_REQUIRE(static_cast<bool>(release_), "release callback required");
}

// std::push_heap builds a max-heap w.r.t. the comparator; we want the
// *least* lower bound on top. Among equal bounds the configured policy
// decides: oldest-first (default, textbook LLB) or newest-first (which
// turns plateau traversal into a LIFO dive).
bool ActiveSet::heap_less(const VertexEntry& a,
                          const VertexEntry& b) const noexcept {
  if (a.lb != b.lb) return a.lb > b.lb;
  return llb_tie_newest_ ? a.seq < b.seq : a.seq > b.seq;
}

void ActiveSet::push(const VertexEntry& e) {
  entries_.push_back(e);
  if (rule_ == SelectRule::kLLB) {
    std::push_heap(entries_.begin(), entries_.end(),
                   [this](const VertexEntry& a, const VertexEntry& b) {
                     return heap_less(a, b);
                   });
  }
}

VertexEntry ActiveSet::pop() {
  PARABB_ASSERT(!entries_.empty());
  switch (rule_) {
    case SelectRule::kLIFO: {
      const VertexEntry e = entries_.back();
      entries_.pop_back();
      return e;
    }
    case SelectRule::kFIFO: {
      const VertexEntry e = entries_.front();
      entries_.pop_front();
      return e;
    }
    case SelectRule::kLLB: {
      std::pop_heap(entries_.begin(), entries_.end(),
                    [this](const VertexEntry& a, const VertexEntry& b) {
                      return heap_less(a, b);
                    });
      const VertexEntry e = entries_.back();
      entries_.pop_back();
      return e;
    }
  }
  PARABB_ASSERT(false);
  return {};
}

const VertexEntry& ActiveSet::peek() const {
  PARABB_ASSERT(!entries_.empty());
  switch (rule_) {
    case SelectRule::kLIFO: return entries_.back();
    case SelectRule::kFIFO: return entries_.front();
    case SelectRule::kLLB: return entries_.front();  // heap root
  }
  PARABB_ASSERT(false);
  return entries_.front();
}

Time ActiveSet::min_lb() const {
  PARABB_ASSERT(!entries_.empty());
  if (rule_ == SelectRule::kLLB) return entries_.front().lb;
  Time lo = entries_.front().lb;
  for (const VertexEntry& e : entries_) lo = std::min(lo, e.lb);
  return lo;
}

std::size_t ActiveSet::prune_worse(Time threshold) {
  std::size_t pruned = 0;
  const auto keep_end = std::remove_if(
      entries_.begin(), entries_.end(), [&](const VertexEntry& e) {
        if (e.lb < threshold) return false;
        release_(e.ref);
        ++pruned;
        return true;
      });
  entries_.erase(keep_end, entries_.end());
  if (rule_ == SelectRule::kLLB && pruned > 0) {
    std::make_heap(entries_.begin(), entries_.end(),
                   [this](const VertexEntry& a, const VertexEntry& b) {
                     return heap_less(a, b);
                   });
  }
  return pruned;
}

std::size_t ActiveSet::dispose_worst(std::size_t count) {
  if (count == 0 || entries_.empty()) return 0;
  count = std::min(count, entries_.size());

  // Find the bound cutoff of the count-th worst entry.
  std::vector<Time> lbs;
  lbs.reserve(entries_.size());
  for (const VertexEntry& e : entries_) lbs.push_back(e.lb);
  std::nth_element(lbs.begin(), lbs.begin() + static_cast<std::ptrdiff_t>(
                                     count - 1),
                   lbs.end(), std::greater<>());
  const Time cutoff = lbs[count - 1];

  // Drop everything strictly above the cutoff, then enough ties
  // (oldest-first, i.e. in container order) to reach `count`.
  std::size_t strictly_above = 0;
  for (const VertexEntry& e : entries_)
    if (e.lb > cutoff) ++strictly_above;
  std::size_t ties_to_drop = count - strictly_above;

  std::size_t disposed = 0;
  const auto keep_end = std::remove_if(
      entries_.begin(), entries_.end(), [&](const VertexEntry& e) {
        const bool drop =
            e.lb > cutoff || (e.lb == cutoff && ties_to_drop > 0);
        if (!drop) return false;
        if (e.lb == cutoff) --ties_to_drop;
        release_(e.ref);
        ++disposed;
        return true;
      });
  entries_.erase(keep_end, entries_.end());
  if (rule_ == SelectRule::kLLB && disposed > 0) {
    std::make_heap(entries_.begin(), entries_.end(),
                   [this](const VertexEntry& a, const VertexEntry& b) {
                     return heap_less(a, b);
                   });
  }
  return disposed;
}

}  // namespace parabb
