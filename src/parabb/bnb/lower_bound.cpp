#include "parabb/bnb/lower_bound.hpp"

#include <algorithm>
#include <array>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

/// Workload packing term of LB2. Considers unscheduled tasks in increasing
/// absolute-deadline order; the prefix with deadlines <= D forms work W_D
/// that m processors, free no earlier than avail_q each, must complete.
Time packing_bound(const SchedContext& ctx, const PartialSchedule& ps) {
  const int n = ctx.task_count();
  const int m = ctx.proc_count();

  std::array<TaskId, kMaxTasks> order{};
  int k = 0;
  for (TaskId t = 0; t < n; ++t) {
    if (!ps.scheduled().contains(t)) order[static_cast<std::size_t>(k++)] = t;
  }
  if (k == 0) return kTimeNegInf;
  std::sort(order.begin(), order.begin() + k, [&](TaskId a, TaskId b) {
    return ctx.deadline(a) < ctx.deadline(b);
  });

  Time avail_sum = 0;
  for (ProcId p = 0; p < m; ++p) avail_sum += ps.proc_avail(p);

  Time bound = kTimeNegInf;
  Time work = 0;
  for (int i = 0; i < k; ++i) {
    const TaskId t = order[static_cast<std::size_t>(i)];
    work += ctx.exec(t);
    // Last deadline of a group of equal deadlines dominates; skipping the
    // inner ones is only an optimization, correctness holds either way.
    const Time d = ctx.deadline(t);
    const Time completion =
        (avail_sum + work + m - 1) / m;  // ceil; operands are non-negative
    bound = std::max(bound, completion - d);
  }
  return bound;
}

}  // namespace

Time lower_bound_cost(const SchedContext& ctx, const PartialSchedule& ps,
                      LowerBound kind) {
  const bool contention = kind != LowerBound::kLB0;
  const Time lmin = contention ? Time{ps.min_proc_avail(ctx)} : 0;

  std::array<Time, kMaxTasks> fhat{};
  Time worst = kTimeNegInf;

  for (const TaskId t : ctx.topo_order()) {
    const auto ut = static_cast<std::size_t>(t);
    Time f;
    if (ps.scheduled().contains(t)) {
      f = Time{ps.finish(ctx, t)};
    } else {
      const Time a = ctx.arrival(t);
      const Time c = ctx.exec(t);
      Time start_floor = contention ? std::max(a, lmin) : a;
      for (std::size_t idx = 0; idx < ctx.pred_ids(t).size(); ++idx) {
        const TaskId j = ctx.pred_ids(t)[idx];
        start_floor = std::max(start_floor,
                               fhat[static_cast<std::size_t>(j)]);
      }
      f = start_floor + c;
    }
    fhat[ut] = f;
    worst = std::max(worst, f - Time{ctx.deadline(t)});
  }

  if (kind == LowerBound::kLB2) {
    worst = std::max(worst, packing_bound(ctx, ps));
  }
  return worst;
}

Time exact_cost(const SchedContext& ctx, const PartialSchedule& ps) {
  PARABB_ASSERT(ps.complete(ctx));
  return ps.max_lateness_scheduled(ctx);
}

void IncrementalLB::attach(const PartialSchedule& ps) noexcept {
  const SchedContext& ctx = *ctx_;
  avail_sum_ = 0;
  for (ProcId p = 0; p < ctx.proc_count(); ++p) {
    avail_sum_ += Time{ps.proc_avail(p)};
  }
  worst_sched_ = ps.max_lateness_scheduled(ctx);
  unsched_topo_ = 0;
  unsched_dl_ = 0;
  unsched_work_ = 0;
  const TaskSet scheduled = ps.scheduled();
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    if (scheduled.contains(t)) {
      fhat_[static_cast<std::size_t>(t)] = Time{ps.finish(ctx, t)};
    } else {
      unsched_topo_ |= 1ULL << ctx.topo_rank(t);
      unsched_dl_ |= 1ULL << ctx.deadline_rank(t);
      unsched_work_ += Time{ctx.exec(t)};
    }
  }
  depth_ = 0;
}

CTime IncrementalLB::place(PartialSchedule& ps, TaskId t, ProcId p) noexcept {
  const SchedContext& ctx = *ctx_;
  const CTime before = ps.proc_avail(p);
  const CTime s = ps.place(ctx, t, p);
  const CTime f = s + ctx.exec(t);
  avail_sum_ += Time{f} - Time{before};
  unsched_work_ -= Time{ctx.exec(t)};
  unsched_topo_ &= ~(1ULL << ctx.topo_rank(t));
  unsched_dl_ &= ~(1ULL << ctx.deadline_rank(t));
  fhat_[static_cast<std::size_t>(t)] = Time{f};
  PARABB_ASSERT(depth_ <= kMaxTasks);
  saved_worst_[static_cast<std::size_t>(depth_++)] = worst_sched_;
  worst_sched_ = std::max(worst_sched_, Time{f} - Time{ctx.deadline(t)});
  return s;
}

void IncrementalLB::unplace(PartialSchedule& ps, TaskId t) noexcept {
  const SchedContext& ctx = *ctx_;
  const CTime before = ps.proc_avail(ps.proc(t));
  const CTime restored = ps.unplace(ctx, t);
  avail_sum_ -= Time{before} - Time{restored};
  unsched_work_ += Time{ctx.exec(t)};
  unsched_topo_ |= 1ULL << ctx.topo_rank(t);
  unsched_dl_ |= 1ULL << ctx.deadline_rank(t);
  PARABB_ASSERT(depth_ > 0);
  worst_sched_ = saved_worst_[static_cast<std::size_t>(--depth_)];
}

Time IncrementalLB::evaluate(const PartialSchedule& ps, LowerBound kind,
                             Time cutoff) noexcept {
  const SchedContext& ctx = *ctx_;
  // Seeding with exact floors (the scheduled prefix and the static
  // a+c−D floor, both <= every f̂−D they cover) cannot change the final
  // maximum — it only lets the cutoff fire before any work happens.
  Time worst = std::max(worst_sched_, ctx.static_lateness_floor());
  if (worst >= cutoff) return worst;

  const bool contention = kind != LowerBound::kLB0;
  const Time lmin = contention ? Time{ps.min_proc_avail(ctx)} : 0;
  const auto order = ctx.topo_order();
  for (std::uint64_t rest = unsched_topo_; rest != 0; rest &= rest - 1) {
    const TaskId t = order[static_cast<std::size_t>(std::countr_zero(rest))];
    const Time a = Time{ctx.arrival(t)};
    Time start_floor = contention ? std::max(a, lmin) : a;
    const auto preds = ctx.pred_ids(t);
    for (std::size_t k = 0; k < preds.size(); ++k) {
      start_floor = std::max(
          start_floor, fhat_[static_cast<std::size_t>(preds[k])]);
    }
    const Time f = start_floor + Time{ctx.exec(t)};
    fhat_[static_cast<std::size_t>(t)] = f;
    worst = std::max(worst, f - Time{ctx.deadline(t)});
    if (worst >= cutoff) return worst;
  }

  if (kind == LowerBound::kLB2 && unsched_dl_ != 0) {
    const Time m = ctx.proc_count();
    // No candidate at deadline rank >= r can exceed cap − d_r (its work
    // term is <= unsched_work_ and deadlines are nondecreasing in rank),
    // so once cap − d_r <= worst the remaining suffix is settled exactly.
    const Time cap = (avail_sum_ + unsched_work_ + m - 1) / m;
    Time work = 0;
    for (std::uint64_t rest = unsched_dl_; rest != 0; rest &= rest - 1) {
      const int r = std::countr_zero(rest);
      const Time d = Time{ctx.deadline_at_rank(r)};
      if (cap - d <= worst) break;
      work += Time{ctx.exec_at_deadline_rank(r)};
      const Time completion = (avail_sum_ + work + m - 1) / m;
      worst = std::max(worst, completion - d);
      if (worst >= cutoff) return worst;
    }
  }
  return worst;
}

}  // namespace parabb
