#include "parabb/bnb/lower_bound.hpp"

#include <algorithm>
#include <array>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

/// Workload packing term of LB2. Considers unscheduled tasks in increasing
/// absolute-deadline order; the prefix with deadlines <= D forms work W_D
/// that m processors, free no earlier than avail_q each, must complete.
Time packing_bound(const SchedContext& ctx, const PartialSchedule& ps) {
  const int n = ctx.task_count();
  const int m = ctx.proc_count();

  std::array<TaskId, kMaxTasks> order{};
  int k = 0;
  for (TaskId t = 0; t < n; ++t) {
    if (!ps.scheduled().contains(t)) order[static_cast<std::size_t>(k++)] = t;
  }
  if (k == 0) return kTimeNegInf;
  std::sort(order.begin(), order.begin() + k, [&](TaskId a, TaskId b) {
    return ctx.deadline(a) < ctx.deadline(b);
  });

  Time avail_sum = 0;
  for (ProcId p = 0; p < m; ++p) avail_sum += ps.proc_avail(p);

  Time bound = kTimeNegInf;
  Time work = 0;
  for (int i = 0; i < k; ++i) {
    const TaskId t = order[static_cast<std::size_t>(i)];
    work += ctx.exec(t);
    // Last deadline of a group of equal deadlines dominates; skipping the
    // inner ones is only an optimization, correctness holds either way.
    const Time d = ctx.deadline(t);
    const Time completion =
        (avail_sum + work + m - 1) / m;  // ceil; operands are non-negative
    bound = std::max(bound, completion - d);
  }
  return bound;
}

}  // namespace

Time lower_bound_cost(const SchedContext& ctx, const PartialSchedule& ps,
                      LowerBound kind) {
  const bool contention = kind != LowerBound::kLB0;
  const Time lmin = contention ? Time{ps.min_proc_avail(ctx)} : 0;

  std::array<Time, kMaxTasks> fhat{};
  Time worst = kTimeNegInf;

  for (const TaskId t : ctx.topo_order()) {
    const auto ut = static_cast<std::size_t>(t);
    Time f;
    if (ps.scheduled().contains(t)) {
      f = Time{ps.finish(ctx, t)};
    } else {
      const Time a = ctx.arrival(t);
      const Time c = ctx.exec(t);
      Time start_floor = contention ? std::max(a, lmin) : a;
      for (std::size_t idx = 0; idx < ctx.pred_ids(t).size(); ++idx) {
        const TaskId j = ctx.pred_ids(t)[idx];
        start_floor = std::max(start_floor,
                               fhat[static_cast<std::size_t>(j)]);
      }
      f = start_floor + c;
    }
    fhat[ut] = f;
    worst = std::max(worst, f - Time{ctx.deadline(t)});
  }

  if (kind == LowerBound::kLB2) {
    worst = std::max(worst, packing_bound(ctx, ps));
  }
  return worst;
}

Time exact_cost(const SchedContext& ctx, const PartialSchedule& ps) {
  PARABB_ASSERT(ps.complete(ctx));
  return ps.max_lateness_scheduled(ctx);
}

}  // namespace parabb
