// The parametrized branch-and-bound engine (paper §3, Figure 1).
//
// Faithful to the published pseudo-code with the paper's own refinement:
// goal vertices are never inserted into the active set — a goal either
// improves the incumbent (upper-bound solution) or is pruned on the spot.
#pragma once

#include <cstdint>

#include "parabb/bnb/params.hpp"
#include "parabb/sched/schedule.hpp"

namespace parabb {

enum class TerminationReason : std::uint8_t {
  kExhausted,   ///< active set ran empty
  kBoundStop,   ///< S_LLB stop condition: selected bound >= incumbent
  kTimeLimit,   ///< RB.TIMELIMIT exceeded; best-so-far returned
  kCancelled,   ///< cooperative CancelToken tripped; best-so-far returned
  kBudget,      ///< RB.max_generated / max_memory_bytes hit; best-so-far
};

/// True for the reasons that end a search early with the incumbent
/// (time limit, cancellation, budget exhaustion) rather than by proof.
constexpr bool is_interrupted(TerminationReason r) noexcept {
  return r == TerminationReason::kTimeLimit ||
         r == TerminationReason::kCancelled ||
         r == TerminationReason::kBudget;
}

struct SearchStats {
  std::uint64_t expanded = 0;        ///< vertices selected and branched
  std::uint64_t generated = 0;       ///< child vertices cost-evaluated
  std::uint64_t activated = 0;       ///< children inserted into AS
  std::uint64_t goals = 0;           ///< complete solutions encountered
  std::uint64_t goal_updates = 0;    ///< incumbent improvements
  std::uint64_t pruned_children = 0; ///< children discarded before insertion
  std::uint64_t pruned_active = 0;   ///< AS entries removed by E_U/DBAS
  std::uint64_t disposed = 0;        ///< AS entries dropped by RB.MAXSZAS
  std::uint64_t tt_hits = 0;         ///< duplicates pruned by the table
  std::uint64_t tt_misses = 0;       ///< table probes that found no duplicate
  std::uint64_t tt_evictions = 0;    ///< table entries replaced (memory cap)
  std::uint64_t tt_collisions = 0;   ///< equal fingerprint, unequal state
  /// Work-stealing scheduler only (zero for the sequential engine and the
  /// central-queue scheduler): victim-deque probes by idle workers, and
  /// probes that came back with at least one vertex.
  std::uint64_t steals_attempted = 0;
  std::uint64_t steals_succeeded = 0;
  /// Degradation-ladder rungs applied (robust/degrade.hpp); zero unless
  /// Params::degrade.enabled and memory pressure forced a step-down.
  std::uint64_t degrade_steps = 0;
  std::size_t peak_active = 0;       ///< max |AS| observed
  std::size_t peak_memory_bytes = 0; ///< max vertex-pool footprint
  double seconds = 0.0;              ///< wall time of the search
};

struct SearchResult {
  /// True when `best` holds an actual schedule (always true with
  /// U = kFromEDF; with other initializations the search may fail).
  bool found_solution = false;
  Schedule best;
  Time best_cost = kTimeInf;

  /// True when the result carries the full guarantee: cost within BR of
  /// optimal. Requires the complete branching rule (BFn), no resource-bound
  /// compromise, and a normally terminated search.
  bool proved = false;

  /// A certified lower bound on the optimal cost: no schedule can beat
  /// this value. Equals `best_cost` when the search proved optimality;
  /// after a TIMELIMIT or disposal-compromised run it is the least bound
  /// among the abandoned active vertices, so `best_cost -
  /// certified_lower_bound` is a sound optimality gap. Only meaningful
  /// with the complete branching rule (BFn); kTimeNegInf otherwise.
  Time certified_lower_bound = kTimeNegInf;

  TerminationReason reason = TerminationReason::kExhausted;
  SearchStats stats;
};

/// Runs the B&B algorithm of Figure 1 on `ctx` with parameters `params`.
SearchResult solve_bnb(const SchedContext& ctx, const Params& params);

/// The bound below which a vertex must stay to survive E_U/DBAS given the
/// incumbent cost and the BR inaccuracy limit: vertices with
/// lb >= incumbent - floor(br*|incumbent|) are pruned. Exposed for tests.
Time prune_threshold(Time incumbent, double br);

}  // namespace parabb
