#include "parabb/bnb/trace.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "parabb/support/assert.hpp"

namespace parabb {

SearchTrace::SearchTrace(std::size_t capacity) : ring_(capacity) {
  PARABB_REQUIRE(capacity >= 1, "trace capacity must be >= 1");
}

void SearchTrace::record(TraceEvent event, int level, Time value) noexcept {
  TraceRecord& slot =
      ring_[static_cast<std::size_t>(next_index_ % ring_.size())];
  slot.event = event;
  // Clamped narrowing: levels are task counts (well inside int16) but a
  // garbage value must not wrap into a plausible-looking one.
  slot.level = static_cast<std::int16_t>(
      std::clamp<int>(level, std::numeric_limits<std::int16_t>::min(),
                      std::numeric_limits<std::int16_t>::max()));
  slot.value = value;
  slot.index = next_index_;
  ++next_index_;
}

std::vector<TraceRecord> SearchTrace::chronological() const {
  std::vector<TraceRecord> out;
  const std::uint64_t retained =
      next_index_ < ring_.size() ? next_index_ : ring_.size();
  out.reserve(retained);
  const std::uint64_t first = next_index_ - retained;
  for (std::uint64_t i = first; i < next_index_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

std::string SearchTrace::to_string() const {
  std::ostringstream os;
  if (dropped() > 0) {
    os << "... (" << dropped() << " earlier events dropped)\n";
  }
  for (const TraceRecord& r : chronological()) {
    os << '#' << r.index << ' ' << parabb::to_string(r.event) << " level="
       << r.level << " value=" << r.value << '\n';
  }
  return os.str();
}

void SearchTrace::clear() noexcept { next_index_ = 0; }

std::string to_string(TraceEvent event) {
  switch (event) {
    case TraceEvent::kExpand: return "expand";
    case TraceEvent::kActivate: return "activate";
    case TraceEvent::kPruneChild: return "prune-child";
    case TraceEvent::kGoal: return "goal";
    case TraceEvent::kIncumbent: return "incumbent";
    case TraceEvent::kPruneActive: return "prune-active";
    case TraceEvent::kDispose: return "dispose";
    case TraceEvent::kTransposition: return "transposition";
  }
  return "?";
}

}  // namespace parabb
