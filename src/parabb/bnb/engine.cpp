#include "parabb/bnb/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "parabb/bnb/active_set.hpp"
#include "parabb/bnb/cancel.hpp"
#include "parabb/bnb/certify.hpp"
#include "parabb/bnb/lower_bound.hpp"
#include "parabb/bnb/search_obs.hpp"
#include "parabb/bnb/trace.hpp"
#include "parabb/bnb/transposition.hpp"
#include "parabb/bnb/vertex.hpp"
#include "parabb/ckpt/checkpoint.hpp"
#include "parabb/ckpt/snapshot.hpp"
#include "parabb/robust/fault.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/support/assert.hpp"
#include "parabb/support/inline_vector.hpp"
#include "parabb/support/pool.hpp"
#include "parabb/support/timer.hpp"

namespace parabb {

Time prune_threshold(Time incumbent, double br) {
  if (incumbent >= kTimeInf) return kTimeInf;
  if (br <= 0.0) return incumbent;
  const auto margin = static_cast<Time>(
      std::floor(br * std::abs(static_cast<double>(incumbent))));
  return incumbent - margin;
}

namespace {

/// A child that survived the filters: bounded, already living in its pool
/// slot. The slot is allocated the moment the child survives (one copy,
/// straight from the scratch state); pruned children are never copied.
struct StagedChild {
  Time lb = 0;
  int order = 0;  ///< generation index, for deterministic tie-breaking
  SlotRef ref;
};

/// Tasks the branching rule B expands from `ready` (§3.3).
InlineVector<TaskId, kMaxTasks> branch_tasks(const SchedContext& ctx,
                                             BranchRule rule, TaskSet ready) {
  InlineVector<TaskId, kMaxTasks> out;
  PARABB_ASSERT(!ready.empty());
  switch (rule) {
    case BranchRule::kBFn:
      for (const TaskId t : ready) out.push_back(t);
      break;
    case BranchRule::kBF1:
      for (const TaskId t : ctx.level_order()) {
        if (ready.contains(t)) {
          out.push_back(t);
          break;
        }
      }
      break;
    case BranchRule::kDF:
      for (const TaskId t : ctx.dfs_order()) {
        if (ready.contains(t)) {
          out.push_back(t);
          break;
        }
      }
      break;
  }
  PARABB_ASSERT(!out.empty());
  return out;
}

}  // namespace

SearchResult solve_bnb(const SchedContext& ctx, const Params& params) {
  PARABB_REQUIRE(params.br >= 0.0, "BR must be >= 0");
  PARABB_REQUIRE(params.rb.max_children >= 1, "MAXSZDB must be >= 1");
  PARABB_REQUIRE(params.rb.max_active >= 1, "MAXSZAS must be >= 1");

  Stopwatch watch;
  SearchResult result;
  SearchStats& stats = result.stats;
  SearchObs so;
  so.bind(params.observe, /*channel=*/0);

  // --- Step 1-2: initialize with the upper-bound solution cost U. ---
  // A resumed run takes its incumbent from the snapshot instead: the
  // snapshot's cost is <= whatever U would produce (the original run
  // started from the same U), and re-deriving it here would discard
  // incumbent improvements the interrupted run already paid for.
  Time incumbent = kTimeInf;
  if (params.resume == nullptr) {
    switch (params.ub) {
      case UpperBoundInit::kInfinite:
        break;
      case UpperBoundInit::kFromEDF: {
        const EdfResult edf = schedule_edf(ctx);
        incumbent = edf.max_lateness;
        result.best = edf.schedule;
        result.found_solution = true;
        break;
      }
      case UpperBoundInit::kExplicit:
        incumbent = params.explicit_ub;
        break;
    }
  }

  if (params.certify) {
    params.certify->begin(ctx, static_cast<int>(params.lb),
                          params.branch == BranchRule::kBFn, params.br,
                          describe(params));
  }

  // Duplicate-state detection: every state that enters the search is
  // recorded; a child equal to a recorded state with an equal-or-better
  // bound is pruned (identical states root identical subtrees).
  std::unique_ptr<TranspositionTable> tt;
  if (params.transposition.enabled) {
    tt = std::make_unique<TranspositionTable>(params.transposition);
  }
  // Counters rescued when the degradation ladder sheds the table mid-run.
  bool tt_shed = false;
  TranspositionCounters tt_shed_counters{};

  // Unbudgeted runs allocate in large chunks for throughput. A finite
  // memory budget shrinks the granularity to ~1/64 of the budget (floor
  // 64 slots) so the capacity cliff below and the degradation ladder see
  // the budget at fine resolution instead of overshooting it by a whole
  // 8192-slot chunk — a sub-chunk budget would otherwise trip the cliff
  // on the very first allocation.
  std::size_t slots_per_chunk = 8192;
  if (params.rb.max_memory_bytes != std::numeric_limits<std::size_t>::max()) {
    const std::size_t budget_slots =
        params.rb.max_memory_bytes / sizeof(Vertex);
    slots_per_chunk = std::clamp<std::size_t>(budget_slots / 64, 64, 8192);
  }
  SlotPool pool(sizeof(Vertex), slots_per_chunk);
  // ActiveSet::prune_worse releases entries through this callback; while
  // `certify_releases` is armed (only around prune_worse, never around
  // dispose_worst — disposals are losses, not justified cuts) each
  // released vertex is logged against `release_threshold`.
  bool certify_releases = false;
  Time release_threshold = kTimeInf;
  auto release = [&](SlotRef ref) {
    if (certify_releases) {
      const auto* v = static_cast<const Vertex*>(pool.get(ref));
      params.certify->record_cut(
          ctx, v->state,
          bound_cut_rule(ctx, v->state, params.lb, release_threshold),
          v->lb);
    }
    pool.release(ref);
  };
  ActiveSet as(params.select, release, params.llb_tie_newest);

  std::uint32_t next_seq = 0;

  // Root vertex: the empty schedule (does not count as an activated child).
  // A resumed run pushes the snapshot's frontier below instead.
  if (params.resume == nullptr) {
    const SlotRef ref = pool.allocate();
    auto* v = static_cast<Vertex*>(pool.get(ref));
    v->state = PartialSchedule::empty(ctx);
    v->lb = lower_bound_cost(ctx, v->state, params.lb);
    v->seq = next_seq;
    as.push(VertexEntry{v->lb, next_seq, ref});
    ++next_seq;
  }

  IncrementalLB inc(ctx);

  // Graceful-degradation ladder (robust/degrade.hpp): consulted only at
  // the amortized poll point, and only when enabled with a finite memory
  // budget; otherwise `branch_rule` / `effective_max_children` hold the
  // caller's values for the whole run (byte-identical to pre-ladder).
  const DegradeSchedule degrade_sched = DegradeSchedule::from(params.degrade);
  const bool ladder_on =
      degrade_sched.count > 0 &&
      params.rb.max_memory_bytes != std::numeric_limits<std::size_t>::max();
  int degrade_level = 0;
  BranchRule branch_rule = params.branch;
  SelectRule effective_select = params.select;
  int effective_max_children = params.rb.max_children;

  bool compromised = false;  // an RB storage bound forced vertex disposal
  // Least bound of any vertex lost to a storage bound; with the monotone
  // bounds of this problem, every pruned subtree's cost is >= its root's
  // bound, so this floors the optimality-gap certificate.
  Time compromise_floor = kTimeInf;
  std::vector<StagedChild> staged;
  staged.reserve(static_cast<std::size_t>(ctx.task_count()) *
                 static_cast<std::size_t>(ctx.proc_count()));

  // --- Crash-safe checkpoint/resume (ckpt/snapshot.hpp). Both paths are
  // gated on their Params pointer: with ckpt == resume == nullptr nothing
  // below this comment executes and the run is byte-identical to a
  // checkpoint-less build.
  const std::uint64_t instance_fp =
      (params.ckpt != nullptr || params.resume != nullptr)
          ? instance_fingerprint(ctx, params)
          : 0;
  double resume_seconds = 0.0;  // wall time earlier incarnations spent

  if (params.resume != nullptr) {
    const SearchSnapshot& snap = *params.resume;
    PARABB_REQUIRE(snap.instance == instance_fp,
                   "resume snapshot was written for a different instance "
                   "or parameter set");
    // Incumbent and accumulated accounting.
    incumbent = snap.incumbent_cost;
    if (snap.found) {
      result.best = Schedule::from_entries(ctx.task_count(), snap.incumbent);
      result.found_solution = true;
    }
    stats = snap.stats;
    resume_seconds = snap.stats.seconds;
    stats.seconds = 0.0;
    so.seed(stats);  // registry deltas cover this incarnation only
    // Replay the degradation rungs the interrupted run had already fired,
    // without re-counting them (stats/certificate carry them already).
    for (int lvl = 0; lvl < snap.degrade_level && lvl < degrade_sched.count;
         ++lvl) {
      switch (degrade_sched.rungs[static_cast<std::size_t>(lvl)].action) {
        case DegradeAction::kShedTT:
          if (tt) {
            tt.reset();
            tt_shed = true;
            tt_shed_counters.hits = snap.stats.tt_hits;
            tt_shed_counters.misses = snap.stats.tt_misses;
            tt_shed_counters.evictions = snap.stats.tt_evictions;
            tt_shed_counters.collisions = snap.stats.tt_collisions;
          }
          break;
        case DegradeAction::kTightenDB:
          effective_max_children = std::min(
              effective_max_children,
              std::max(1, ctx.proc_count() *
                              params.degrade.tightened_children_per_proc));
          break;
        case DegradeAction::kBF1:
          if (branch_rule == BranchRule::kBFn) branch_rule = BranchRule::kBF1;
          break;
        case DegradeAction::kDF:
          branch_rule = BranchRule::kDF;
          effective_select = SelectRule::kLIFO;
          as.degrade_to_lifo();
          break;
      }
    }
    degrade_level = snap.degrade_level;
    compromised = snap.compromised;
    compromise_floor = snap.compromise_floor;
    // Transposition survivors: preloading only accelerates pruning; a
    // lost entry merely re-explores a subtree, so partial restores are
    // sound. The snapshot's counters fold in so counters() (and the
    // final stats.tt_*) keep accumulating across restarts.
    if (tt && snap.tt_present) {
      tt->add_counters(snap.tt_counters);
      for (const SnapshotTTEntry& e : snap.tt_entries)
        tt->preload(replay_path(ctx, e.path), e.lb);
    }
    // Certificate continuity: the resumed builder carries every cut of
    // every incarnation, so the final certificate audits the whole search.
    if (params.certify && snap.cert_present) {
      params.certify->restore_state(snap.cert_cuts, snap.cert_degrades,
                                    snap.cert_truncated);
    }
    // The frontier, replayed through the scheduling operation and pushed
    // in container order (exact reconstruction for LIFO/FIFO; a valid
    // re-heapification for LLB).
    for (const SnapshotVertex& sv : snap.frontier) {
      const SlotRef ref = pool.allocate();
      auto* v = static_cast<Vertex*>(pool.get(ref));
      v->state = replay_path(ctx, sv.path);
      v->lb = static_cast<Time>(sv.lb);
      v->seq = sv.seq;
      as.push(VertexEntry{v->lb, v->seq, ref});
    }
    next_seq = snap.next_seq;
    so.checkpoint_restored(static_cast<std::int64_t>(snap.frontier.size()));
  }

  // Serializes the complete live state and writes it atomically to
  // params.ckpt->path(). Called from the poll point; a failed write is
  // recorded and survived (the search matters more than the snapshot).
  const auto write_checkpoint = [&]() {
    SearchSnapshot snap;
    snap.instance = instance_fp;
    snap.engine = SnapshotEngine::kSequential;
    snap.found = result.found_solution;
    snap.incumbent_cost = incumbent;
    if (result.found_solution) {
      snap.incumbent.reserve(static_cast<std::size_t>(ctx.task_count()));
      for (TaskId t = 0; t < ctx.task_count(); ++t)
        snap.incumbent.push_back(result.best.entry(t));
    }
    snap.frontier.reserve(as.size());
    for (const VertexEntry& e : as.entries()) {
      const auto* v = static_cast<const Vertex*>(pool.get(e.ref));
      snap.frontier.push_back(
          SnapshotVertex{placement_path(ctx, v->state), e.lb, e.seq});
    }
    snap.next_seq = next_seq;
    snap.stats = stats;
    snap.stats.seconds = resume_seconds + watch.seconds();
    snap.degrade_level = degrade_level;
    snap.compromised = compromised;
    snap.compromise_floor = compromise_floor;
    if (tt) {
      snap.tt_present = true;
      snap.tt_counters = tt->counters();
      tt->for_each_entry([&](const PartialSchedule& s, Time lb) {
        if (snap.tt_entries.size() < kSnapshotTTCap) {
          snap.tt_entries.push_back(
              SnapshotTTEntry{placement_path(ctx, s), lb});
        }
      });
    }
    if (params.certify) {
      snap.cert_present = true;
      params.certify->export_state(snap.cert_cuts, snap.cert_degrades,
                                   snap.cert_truncated);
      if (snap.cert_cuts.size() > kSnapshotCutCap) {
        snap.cert_cuts.resize(kSnapshotCutCap);
        snap.cert_truncated = true;
      }
    }
    try {
      const std::size_t bytes = save_snapshot(params.ckpt->path(), snap);
      params.ckpt->note_written(bytes);
      so.checkpoint_written(static_cast<std::int64_t>(bytes));
    } catch (const SnapshotError&) {
      params.ckpt->note_failed();
    }
  };

  std::uint64_t iter = 0;
  result.reason = TerminationReason::kExhausted;

  // --- Step 3-10: main loop. ---
  try {
    while (!as.empty()) {
      // Deterministic effort caps are enforced exactly (two comparisons per
      // expansion): the service's golden tests rely on a max_generated
      // budget tripping at the same vertex on every run.
      if (stats.generated >= params.rb.max_generated ||
          pool.memory_bytes() >= params.rb.max_memory_bytes) {
        result.reason = TerminationReason::kBudget;
        break;
      }
      // Cancellation / wall-clock polls are amortized over 256 expansions
      // so the checks (one relaxed load, one clock read) stay off the hot
      // path.
      if ((++iter & 0xFFu) == 0) {
        so.budget_checkpoint(static_cast<std::int64_t>(stats.generated));
        so.flush(stats);
        if (params.progress) {
          params.progress->store(stats.generated, std::memory_order_relaxed);
        }
        // Snapshot before the cancellation checks, so a SIGTERM-driven
        // request_now() gets its state on disk before the run winds down.
        if (params.ckpt && params.ckpt->due()) {
          write_checkpoint();
          if (params.ckpt->stop_requested()) {
            result.reason = TerminationReason::kCancelled;
            break;
          }
        }
        if (params.faults) {
          params.faults->at_poll(stats.generated);
          if (params.faults->cancel_requested(stats.generated)) {
            result.reason = TerminationReason::kCancelled;
            break;
          }
        }
        if (params.cancel && params.cancel->cancelled()) {
          result.reason = TerminationReason::kCancelled;
          break;
        }
        double elapsed = resume_seconds + watch.seconds();
        if (params.faults) elapsed += params.faults->clock_skew_s(stats.generated);
        if (elapsed > params.rb.time_limit_s) {
          result.reason = TerminationReason::kTimeLimit;
          break;
        }
        // Step down the degradation ladder while live vertex memory sits
        // above the next high-water fraction of the budget. Branch-rule and
        // MAXSZDB rungs make the search incomplete from here on, so they
        // compromise the proof and floor the gap certificate like a disposal
        // does: every subtree lost downstream roots at a current AS vertex
        // (or a descendant), whose bound is >= the AS minimum now.
        while (ladder_on && degrade_level < degrade_sched.count &&
               degrade_sched.target_level(pool.live_count() * pool.slot_bytes(),
                                          params.rb.max_memory_bytes) >
                   degrade_level) {
          const DegradeAction action =
              degrade_sched.rungs[static_cast<std::size_t>(degrade_level)]
                  .action;
          ++degrade_level;
          switch (action) {
            case DegradeAction::kShedTT:
              if (tt) {
                const TranspositionCounters tc = tt->counters();
                tt_shed_counters = tc;
                tt_shed = true;
                tt.reset();  // duplicate pruning only: completeness kept
              }
              break;
            case DegradeAction::kTightenDB:
              effective_max_children =
                  std::min(effective_max_children,
                           std::max(1, ctx.proc_count() *
                                           params.degrade
                                               .tightened_children_per_proc));
              compromised = true;
              if (!as.empty()) {
                compromise_floor = std::min(compromise_floor, as.min_lb());
              }
              break;
            case DegradeAction::kBF1:
              if (branch_rule == BranchRule::kBFn) branch_rule = BranchRule::kBF1;
              compromised = true;
              if (!as.empty()) {
                compromise_floor = std::min(compromise_floor, as.min_lb());
              }
              break;
            case DegradeAction::kDF:
              // Last resort before the cliff: degenerate into a
              // depth-first dive — branching *and* selection — so the
              // remaining memory buys a leaf (an incumbent) instead of
              // more frontier.
              branch_rule = BranchRule::kDF;
              effective_select = SelectRule::kLIFO;
              as.degrade_to_lifo();
              compromised = true;
              if (!as.empty()) {
                compromise_floor = std::min(compromise_floor, as.min_lb());
              }
              break;
          }
          ++stats.degrade_steps;
          so.degrade(degrade_level, static_cast<std::int64_t>(action));
          if (params.certify) {
            params.certify->record_degrade(to_string(action), stats.generated,
                                           degrade_level);
          }
        }
      }

      const Time threshold = prune_threshold(incumbent, params.br);

      // Step 4-5: select vertex v_b; apply the rule's stop condition. The
      // bound test doubles as deferred U/DBAS for vertices that became
      // hopeless after they were pushed.
      if (params.elim == ElimRule::kUDBAS ||
          effective_select == SelectRule::kLLB) {
        if (as.peek().lb >= threshold) {
          if (effective_select == SelectRule::kLLB) {
            // Least bound already >= incumbent: nothing can improve.
            result.reason = TerminationReason::kBoundStop;
            break;
          }
          if (params.elim == ElimRule::kUDBAS) {
            const VertexEntry e = as.pop();
            if (params.certify) {
              const auto* v = static_cast<const Vertex*>(pool.get(e.ref));
              params.certify->record_cut(
                  ctx, v->state,
                  bound_cut_rule(ctx, v->state, params.lb, threshold), e.lb);
            }
            pool.release(e.ref);
            ++stats.pruned_active;
            so.prune(FlightPruneRule::kBound, -1, e.lb);
            continue;
          }
        }
      }

      const VertexEntry entry = as.pop();
      const PartialSchedule parent =
          static_cast<const Vertex*>(pool.get(entry.ref))->state;
      pool.release(entry.ref);
      ++stats.expanded;
      so.expand(parent.count(), entry.lb);
      if (params.trace) {
        params.trace->record(TraceEvent::kExpand, parent.count(), entry.lb);
      }

      // Step 6-7: branch (rule B) and bound (function L). Children are
      // evaluated zero-copy: one scratch state per expansion, each candidate
      // via place → bound → unplace; only survivors are copied, straight into
      // their pool slot.
      staged.clear();
      const auto tasks = branch_tasks(ctx, branch_rule, parent.ready());
      const int child_count = parent.count() + 1;
      // When every child is a goal its bound is its exact cost and may beat
      // the incumbent even at or above the BR-relaxed threshold, so the
      // short-circuit must not fire. Likewise keep bounds exact while a
      // trace listens (it records lb values of pruned children), under
      // E = none (pruned-vs-kept is not decided by the threshold alone),
      // and while certifying (the audit log must carry exact bounds).
      const bool goal_children = child_count == ctx.task_count();
      const Time cutoff =
          (params.incremental_lb && params.elim == ElimRule::kUDBAS &&
           !goal_children && params.trace == nullptr &&
           params.certify == nullptr)
              ? threshold
              : kTimeInf;
      PartialSchedule cur = parent;
      inc.attach(cur);
      Time best_goal = kTimeInf;
      PartialSchedule best_goal_state;
      bool have_goal = false;
      int children = 0;
      for (const TaskId t : tasks) {
        for (ProcId p = 0; p < ctx.proc_count(); ++p) {
          if (children >= effective_max_children) {
            compromised = true;  // MAXSZDB truncated the child set
            compromise_floor = std::min(compromise_floor, entry.lb);
            break;
          }
          ++children;
          ++stats.generated;
          inc.place(cur, t, p);
          const Time lb = params.incremental_lb
                              ? inc.evaluate(cur, params.lb, cutoff)
                              : lower_bound_cost(ctx, cur, params.lb);

          bool keep = false;
          if (goal_children) {
            // Goal vertex: candidate new upper-bound solution (Figure 2).
            ++stats.goals;
            if (params.trace) {
              params.trace->record(TraceEvent::kGoal, child_count, lb);
            }
            if (lb < best_goal) {
              best_goal = lb;
              best_goal_state = cur;
              have_goal = true;
            }
          } else if (params.characteristic &&
                     !params.characteristic(ctx, cur)) {
            ++stats.pruned_children;  // F: cannot extend to a valid solution
            so.prune(FlightPruneRule::kCharacteristic, child_count, lb);
            if (params.trace) {
              params.trace->record(TraceEvent::kPruneChild, child_count, lb);
            }
            if (params.certify) {
              params.certify->record_cut(ctx, cur, CutRule::kCharacteristic,
                                         lb);
            }
          } else if (params.elim == ElimRule::kUDBAS && lb >= threshold) {
            ++stats.pruned_children;  // E applied to DB
            so.prune(FlightPruneRule::kBound, child_count, lb);
            if (params.trace) {
              params.trace->record(TraceEvent::kPruneChild, child_count, lb);
            }
            if (params.certify) {
              params.certify->record_cut(
                  ctx, cur, bound_cut_rule(ctx, cur, params.lb, threshold),
                  lb);
            }
          } else if (tt && tt->seen_or_insert(cur, lb)) {
            ++stats.pruned_children;  // duplicate of an already-seen state
            so.prune(FlightPruneRule::kTransposition, child_count, lb);
            if (params.trace) {
              params.trace->record(TraceEvent::kTransposition, child_count,
                                   lb);
            }
            if (params.certify) {
              params.certify->record_cut(ctx, cur, CutRule::kTransposition,
                                         lb);
            }
          } else {
            keep = true;
          }
          if (keep) {
            if (params.faults) params.faults->on_alloc(stats.generated);
            const SlotRef ref = pool.allocate();
            static_cast<Vertex*>(pool.get(ref))->state = cur;
            staged.push_back(StagedChild{lb, children, ref});
          }
          inc.unplace(cur, t);
        }
        if (children >= effective_max_children) break;
      }

      // Incumbent update from the cheapest goal in DB (goal vertices never
      // enter the active set).
      bool improved = false;
      if (have_goal && best_goal < incumbent) {
        incumbent = best_goal;
        result.best = Schedule::from_partial(ctx, best_goal_state);
        result.found_solution = true;
        ++stats.goal_updates;
        improved = true;
        so.incumbent(ctx.task_count(), incumbent);
        if (params.trace) {
          params.trace->record(TraceEvent::kIncumbent, ctx.task_count(),
                               incumbent);
        }
      }

      // D: optional pairwise dominance filter among siblings.
      if (params.dominance && staged.size() > 1) {
        const auto state_of = [&](const StagedChild& c) -> const PartialSchedule& {
          return static_cast<const Vertex*>(pool.get(c.ref))->state;
        };
        std::vector<char> dead(staged.size(), 0);
        for (std::size_t i = 0; i < staged.size(); ++i) {
          if (dead[i]) continue;
          for (std::size_t j = 0; j < staged.size(); ++j) {
            if (i == j || dead[j]) continue;
            if (params.dominance(ctx, state_of(staged[i]),
                                 state_of(staged[j])))
              dead[j] = 1;
          }
        }
        std::size_t w = 0;
        for (std::size_t i = 0; i < staged.size(); ++i) {
          if (!dead[i]) {
            staged[w++] = staged[i];
          } else {
            ++stats.pruned_children;
            so.prune(FlightPruneRule::kDominance, child_count, staged[i].lb);
            if (params.trace) {
              params.trace->record(TraceEvent::kPruneChild, child_count,
                                   staged[i].lb);
            }
            if (params.certify) {
              params.certify->record_cut(ctx, state_of(staged[i]),
                                         CutRule::kDominance, staged[i].lb);
            }
            pool.release(staged[i].ref);
          }
        }
        staged.resize(w);
      }

      // Step 8 applied to AS: a better incumbent invalidates queued vertices.
      if (improved && params.elim == ElimRule::kUDBAS) {
        const Time fresh = prune_threshold(incumbent, params.br);
        if (params.certify) {
          certify_releases = true;
          release_threshold = fresh;
        }
        const std::size_t removed = as.prune_worse(fresh);
        certify_releases = false;
        stats.pruned_active += removed;
        if (removed > 0) {
          so.prune(FlightPruneRule::kBound, -1,
                   static_cast<std::int64_t>(removed));
        }
        if (params.trace && removed > 0) {
          params.trace->record(TraceEvent::kPruneActive, -1,
                               static_cast<Time>(removed));
        }
        // Staged children were bounded against the stale threshold.
        std::erase_if(staged, [&](const StagedChild& c) {
          if (c.lb < fresh) return false;
          ++stats.pruned_children;
          so.prune(FlightPruneRule::kBound, child_count, c.lb);
          if (params.trace) {
            params.trace->record(TraceEvent::kPruneChild, child_count, c.lb);
          }
          if (params.certify) {
            const auto* v = static_cast<const Vertex*>(pool.get(c.ref));
            params.certify->record_cut(
                ctx, v->state,
                bound_cut_rule(ctx, v->state, params.lb, fresh), c.lb);
          }
          pool.release(c.ref);
          return true;
        });
      }

      // Step 9: move surviving children into AS, most promising popped first
      // for the stack/queue disciplines.
      if (params.sort_children && effective_select != SelectRule::kLLB) {
        std::sort(staged.begin(), staged.end(),
                  [](const StagedChild& a, const StagedChild& b) {
                    if (a.lb != b.lb) return a.lb > b.lb;
                    return a.order > b.order;
                  });
      }
      for (const StagedChild& c : staged) {
        auto* v = static_cast<Vertex*>(pool.get(c.ref));
        v->lb = c.lb;
        v->seq = next_seq;
        as.push(VertexEntry{c.lb, next_seq, c.ref});
        ++next_seq;
        ++stats.activated;
        if (params.trace) {
          params.trace->record(TraceEvent::kActivate, child_count, c.lb);
        }
      }

      // RB.MAXSZAS: dispose of the worst active vertices when over budget.
      // Drop an extra 25% of the budget so the O(|AS|) disposal scan is
      // amortized instead of firing on every subsequent expansion.
      if (as.size() > params.rb.max_active) {
        const std::size_t excess = as.size() - params.rb.max_active +
                                   params.rb.max_active / 4;
        compromise_floor = std::min(compromise_floor, as.min_lb());
        const std::size_t dropped =
            as.dispose_worst(std::min(excess, as.size() - 1));
        stats.disposed += dropped;
        so.dispose(static_cast<std::int64_t>(dropped));
        compromised = true;
        if (params.trace) {
          params.trace->record(TraceEvent::kDispose, -1,
                               static_cast<Time>(dropped));
        }
      }

      stats.peak_active = std::max(stats.peak_active, as.size());
      stats.peak_memory_bytes =
          std::max(stats.peak_memory_bytes, pool.memory_bytes());
    }
  } catch (const std::bad_alloc&) {
    // Allocation failure mid-expansion (injected via Params::faults or
    // real): unwind to the last consistent state. The incumbent, stats,
    // and active set survive; the failed expansion's staged children are
    // abandoned inside the pool, which frees them wholesale on return
    // (no leak under ASan). The outcome is the memory-budget cliff:
    // best-so-far, not proved, gap certificate voided.
    result.reason = TerminationReason::kBudget;
    compromised = true;
    compromise_floor = kTimeNegInf;
  }

  result.best_cost = incumbent;
  result.proved = result.found_solution && !compromised &&
                  !is_interrupted(result.reason) &&
                  params.branch == BranchRule::kBFn;
  if (params.certify) {
    params.certify->finish(result.found_solution, result.best,
                           result.best_cost, result.proved, stats.expanded,
                           stats.generated);
  }

  // Optimality-gap certificate (see SearchResult::certified_lower_bound).
  // F may prune vertices whose completions are cheap-but-invalid, so a
  // characteristic function voids the certificate.
  if (params.branch == BranchRule::kBFn && !params.characteristic) {
    Time floor = prune_threshold(incumbent, params.br);
    if (!as.empty()) floor = std::min(floor, as.min_lb());
    floor = std::min(floor, compromise_floor);
    result.certified_lower_bound = std::min(floor, incumbent);
  }
  if (tt || tt_shed) {
    const TranspositionCounters tc = tt ? tt->counters() : tt_shed_counters;
    stats.tt_hits = tc.hits;
    stats.tt_misses = tc.misses;
    stats.tt_evictions = tc.evictions + tc.rejected;
    stats.tt_collisions = tc.collisions;
  }
  stats.seconds = resume_seconds + watch.seconds();
  so.flush(stats);  // final deltas, incl. the tt_* fields set just above
  return result;
}

}  // namespace parabb
