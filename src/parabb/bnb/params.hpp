// The parametrized B&B 9-tuple <B, S, E, F, D, L, U, BR, RB> of Kohler &
// Steiglitz, as instantiated by the paper (§3).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include <atomic>

#include "parabb/bnb/transposition.hpp"
#include "parabb/robust/degrade.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/sched/partial_schedule.hpp"
#include "parabb/support/types.hpp"

namespace parabb {

class SearchTrace;           // bnb/trace.hpp
class CancelToken;           // bnb/cancel.hpp
class CertificateBuilder;    // verify/certificate.hpp
class FaultInjector;         // robust/fault.hpp
struct Observation;          // obs/observe.hpp
class CheckpointController;  // ckpt/checkpoint.hpp
struct SearchSnapshot;       // ckpt/snapshot.hpp

/// S — vertex selection rule (§3.2).
enum class SelectRule : std::uint8_t {
  kLLB,   ///< least lower bound; stop when popped lb >= incumbent
  kFIFO,  ///< oldest first (breadth-first sweep; §3.2 notes it is hopeless)
  kLIFO,  ///< newest first (depth-first dive; the paper's winner)
};

/// B — vertex branching rule (§3.3).
enum class BranchRule : std::uint8_t {
  kBFn,  ///< branch on every ready task × every processor (complete)
  kBF1,  ///< branch on the highest-*level* ready task only (approximate)
  kDF,   ///< branch on the first ready task in depth-first order (approx.)
};

/// E — vertex elimination rule (§3.6).
enum class ElimRule : std::uint8_t {
  kNone,   ///< keep everything (exhaustive; for reference/testing)
  kUDBAS,  ///< U/DBAS: prune DB and AS entries with cost >= upper bound
};

/// L — lower-bound cost function (§3.5).
enum class LowerBound : std::uint8_t {
  kLB0,  ///< path-recursive estimated finish times (Hou & Shin style)
  kLB1,  ///< LB0 + processor-contention term l_min (the paper's proposal)
  kLB2,  ///< LB1 + remaining-workload packing bound (our extension)
};

/// U — initial upper-bound solution cost (§3.4, §4.4, §6).
enum class UpperBoundInit : std::uint8_t {
  kInfinite,  ///< no initial solution (cost +inf)
  kFromEDF,   ///< greedy EDF provides the initial solution and its cost
  kExplicit,  ///< caller-supplied cost (e.g. the §6 "positive value")
};

/// RB — resource bounds (TIMELIMIT, MAXSZAS, MAXSZDB), extended with the
/// per-job budget caps the solver service enforces (service/job.hpp maps a
/// Budget onto these). TIMELIMIT and the disposal bounds are the paper's;
/// `max_generated` / `max_memory_bytes` stop the search outright — best
/// incumbent returned with TerminationReason::kBudget — instead of
/// compromising it by disposal. Caps are polled on the hot loop, so they
/// are honored to within one polling interval (256 expansions).
struct ResourceBounds {
  double time_limit_s = std::numeric_limits<double>::infinity();
  std::size_t max_active = std::numeric_limits<std::size_t>::max();
  int max_children = std::numeric_limits<int>::max();
  /// Cap on generated (cost-evaluated) vertices; the classic proxy for
  /// total search effort, deterministic across runs unlike wall clock.
  std::uint64_t max_generated = std::numeric_limits<std::uint64_t>::max();
  /// Cap on live vertex memory, in bytes: the sequential engine's pool
  /// footprint, the parallel engine's summed per-worker slab bytes. Both
  /// engines stop at the cap (kBudget); with `degrade.enabled` it is also
  /// the signal the graceful-degradation ladder steps against
  /// (docs/robustness.md).
  std::size_t max_memory_bytes = std::numeric_limits<std::size_t>::max();
};

/// F — optional characteristic function: return false to discard a partial
/// solution that provably cannot extend to a valid complete one. The paper
/// leaves F unused to keep results general; the hook exists for clients.
using CharacteristicFn =
    std::function<bool(const SchedContext&, const PartialSchedule&)>;

/// D — optional dominance relation among sibling child vertices: return
/// true when `a` dominates `b` (b may be discarded). Applied pairwise
/// within each newly generated child set only (the paper leaves D unused).
using DominanceFn = std::function<bool(
    const SchedContext&, const PartialSchedule& a, const PartialSchedule& b)>;

struct Params {
  BranchRule branch = BranchRule::kBFn;
  SelectRule select = SelectRule::kLIFO;
  ElimRule elim = ElimRule::kUDBAS;
  LowerBound lb = LowerBound::kLB1;
  UpperBoundInit ub = UpperBoundInit::kFromEDF;
  Time explicit_ub = kTimeInf;  ///< used when ub == kExplicit
  double br = 0.0;              ///< BR inaccuracy limit (0 = exact)
  ResourceBounds rb;

  /// When true (default), newly generated siblings are inserted in
  /// decreasing-bound order, so stack/queue rules explore the most
  /// promising child first ("best-first dive"). Ablatable via
  /// bench/ablation_childorder; LLB is insensitive to it.
  bool sort_children = true;

  /// When true (default), the engines evaluate child bounds through the
  /// IncrementalLB scratch (bnb/lower_bound.hpp) with the bound-aware
  /// short-circuit, instead of the from-scratch lower_bound_cost. Results
  /// are bit-identical either way — the toggle exists so the differential
  /// suite and bench/micro_lower_bound can compare the two paths on the
  /// same engine.
  bool incremental_lb = true;

  /// LLB tie-breaking among equal bounds. false (default) = oldest-first,
  /// the behaviour of a plain best-first heap and what the literature's
  /// "default" LLB does; true = newest-first, which makes LLB dive like
  /// LIFO across equal-bound plateaus (bench/ablation_llbtie quantifies
  /// the difference — it is the entire LLB-vs-LIFO story).
  bool llb_tie_newest = false;

  /// Duplicate-state detection (bnb/transposition.hpp): when enabled, a
  /// child whose exact state already entered the search with an
  /// equal-or-better bound is pruned before activation. Sound for every
  /// rule combination (identical states root identical subtrees) and
  /// shared across workers in the parallel engine. Off by default to keep
  /// the paper's baseline configuration untouched.
  TranspositionConfig transposition;
  CharacteristicFn characteristic;  ///< F (optional)
  DominanceFn dominance;            ///< D (optional)

  /// Optional event recorder (bnb/trace.hpp); not owned, may be null.
  /// The sequential engine records expand/activate/prune/goal/incumbent
  /// events; the parallel engine ignores it (cross-thread ordering would
  /// be meaningless).
  SearchTrace* trace = nullptr;

  /// Optional cooperative cancellation token (bnb/cancel.hpp); not owned,
  /// may be null. Both engines poll it on the hot loop and return the best
  /// incumbent with TerminationReason::kCancelled once it trips.
  const CancelToken* cancel = nullptr;

  /// Optional optimality-certificate recorder (verify/certificate.hpp);
  /// not owned, may be null. When set, both engines log every cut they
  /// make (fingerprint, rule, claimed bound, placement path) and disable
  /// the bound-aware LB short-circuit so every claimed bound is exact.
  /// The builder is thread-safe; the parallel engine's workers record
  /// into it concurrently.
  CertificateBuilder* certify = nullptr;

  /// Optional observability sinks (obs/observe.hpp); not owned, may be
  /// null (as may either member). Both engines honor it: counter deltas
  /// are flushed to the metrics registry at the amortized poll points,
  /// and search events (expand / prune / incumbent / budget / dispose)
  /// stream into the flight recorder's per-worker rings. Unlike `trace`
  /// and `certify`, observation is strictly read-beside: it never
  /// disables the bound-aware LB short-circuit, so results — and the
  /// search trajectory itself — are byte-identical with it on or off.
  const Observation* observe = nullptr;

  /// Graceful-degradation ladder (robust/degrade.hpp): as the vertex-pool
  /// footprint crosses configurable high-water fractions of
  /// rb.max_memory_bytes, the engines shed the transposition table,
  /// tighten the effective MAXSZDB, and step the branching rule down
  /// BFn -> BF1 -> DF before resorting to disposal or the budget cliff.
  /// Disabled by default; with enabled == false no ladder state is read
  /// anywhere and the search is byte-identical to pre-ladder builds.
  DegradeConfig degrade;

  /// Optional deterministic fault injector (robust/fault.hpp); not owned,
  /// may be null. Both engines call its hooks at the allocation and poll
  /// sites; the off path costs one null check per site. Injected faults
  /// surface as ordinary termination reasons (kBudget / kCancelled /
  /// kTimeLimit) — never a crash or an undefined result.
  FaultInjector* faults = nullptr;

  /// Optional crash-safe checkpointing (ckpt/checkpoint.hpp); not owned,
  /// may be null — the off path is this null check and nothing else, so
  /// runs without a controller are byte-identical to pre-checkpoint
  /// builds. When set, both engines write an atomic versioned snapshot of
  /// the live search (ckpt/snapshot.hpp) to ckpt->path() whenever
  /// ckpt->due() — every interval_ms at the amortized poll points, or
  /// immediately on request_now() (the SIGTERM hook). Checkpointing is
  /// read-beside: it never changes the search trajectory.
  CheckpointController* ckpt = nullptr;

  /// Optional snapshot to resume from (ckpt/snapshot.hpp); not owned, may
  /// be null. When set, the engines seed the incumbent, frontier,
  /// transposition table, degradation rung, certificate cuts, and stats
  /// from the snapshot instead of starting at the root; the snapshot must
  /// satisfy snapshot_matches(*resume, ctx, params) (PARABB_REQUIREd).
  /// resume(checkpoint(t)) reaches the same optimal lateness — and a
  /// CERTIFIED certificate — as the uninterrupted run, because every
  /// vertex live at snapshot time is rooted in a stored frontier entry.
  const SearchSnapshot* resume = nullptr;

  /// Optional progress heartbeat; not owned, may be null. Both engines
  /// store stats.generated into it at their poll cadence so an external
  /// watchdog (robust/watchdog.hpp, wired up by the solver service) can
  /// detect generated-count stagnation and cancel the hung job.
  std::atomic<std::uint64_t>* progress = nullptr;
};

std::string to_string(SelectRule s);
std::string to_string(BranchRule b);
std::string to_string(ElimRule e);
std::string to_string(LowerBound l);
std::string to_string(UpperBoundInit u);

/// One-line summary "B=BFn S=LIFO E=U/DBAS L=LB1 U=EDF BR=0%".
std::string describe(const Params& p);

}  // namespace parabb
