// Concurrent duplicate-state transposition table for the B&B engines.
//
// The BFn branching rule reaches the same partial schedule along every
// interleaving of commuting placements (independent tasks placed on
// distinct processors, in either order, produce the identical state), so
// the naive vertex space contains each state up to k! times. The table
// records the fingerprint of every state that has entered the search and
// prunes any later vertex whose state was already recorded with an
// equal-or-better lateness bound — safe because identical states root
// identical subtrees (see docs/algorithm.md, "Duplicate detection").
//
// Layout: the fingerprint's low bits pick one of S shards (lock striping:
// each shard has its own mutex, so concurrent probes from the parallel
// engine's workers only contend when they land on the same shard); inside
// a shard, open addressing over fixed-capacity buckets of 8 slots. The
// slot data is split into parallel arrays so the common probe (miss or
// fingerprint mismatch) reads exactly one cache line: a bucket's eight
// 64-bit fingerprints are contiguous and 64-byte aligned; bounds and full
// states live in sibling arrays touched only on a fingerprint match or an
// insert. Capacity is fixed up front from the memory cap, so table memory
// stays bounded no matter how large the search grows; a full bucket
// evicts its worst-bound (largest lb) entry when the new state's bound is
// better, and rejects the insertion otherwise (replace-if-better).
//
// A fingerprint match falls back to PartialSchedule::operator== before
// declaring a duplicate, so a 64-bit collision costs one comparison
// (counted) instead of an unsound prune.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>

#include "parabb/sched/partial_schedule.hpp"
#include "parabb/support/types.hpp"

namespace parabb {

/// Params knob controlling duplicate detection (Params::transposition).
struct TranspositionConfig {
  bool enabled = false;
  /// Upper bound on table memory; entries beyond it are handled by
  /// replace-if-better eviction, never by growth.
  std::size_t memory_cap_bytes = std::size_t{16} << 20;
  /// Lock stripes; rounded to the next power of two, clamped to [1, 1024].
  /// More shards = less contention under the parallel engine.
  int shards = 16;
};

/// Monotone event counters; aggregated across shards on read.
struct TranspositionCounters {
  std::uint64_t probes = 0;      ///< seen_or_insert calls
  std::uint64_t hits = 0;        ///< duplicate found with bound <= query
  std::uint64_t misses = 0;      ///< state not present (insert attempted)
  std::uint64_t inserts = 0;     ///< new entries stored
  std::uint64_t evictions = 0;   ///< worse-bound entries replaced
  std::uint64_t rejected = 0;    ///< inserts dropped (window full, no worse)
  std::uint64_t collisions = 0;  ///< equal fingerprint, unequal state
};

class TranspositionTable {
 public:
  explicit TranspositionTable(const TranspositionConfig& config);
  ~TranspositionTable();  // out of line: Shard is incomplete here

  TranspositionTable(const TranspositionTable&) = delete;
  TranspositionTable& operator=(const TranspositionTable&) = delete;

  /// The duplicate test + record, as one atomic step per shard. Returns
  /// true when `state` is already recorded with bound <= `lb` — the caller
  /// should prune the vertex. Otherwise records (state, lb), subject to
  /// the eviction policy, and returns false. `fp` must be
  /// state.fingerprint(); it is a parameter so tests can force collisions.
  bool seen_or_insert(std::uint64_t fp, const PartialSchedule& state,
                      Time lb);

  /// Convenience overload using the state's own fingerprint.
  bool seen_or_insert(const PartialSchedule& state, Time lb) {
    return seen_or_insert(state.fingerprint(), state, lb);
  }

  /// Counter snapshot summed over all shards (takes every shard lock).
  TranspositionCounters counters() const;

  /// Entries currently stored (sums shard occupancy; takes shard locks).
  std::size_t size() const;

  std::size_t capacity() const noexcept;

  /// Fixed allocation footprint of the slot arrays.
  std::size_t memory_bytes() const noexcept;

  int shard_count() const noexcept { return shard_count_; }

  /// Drops every entry (counters keep accumulating).
  void clear();

  /// Checkpoint export (ckpt/snapshot.hpp): visits every live entry, one
  /// shard at a time under that shard's lock. Entries inserted or evicted
  /// by concurrent workers may be seen or missed — any subset is a sound
  /// snapshot, because the table only ever accelerates pruning.
  void for_each_entry(
      const std::function<void(const PartialSchedule&, Time)>& fn) const;

  /// Checkpoint restore: re-inserts a snapshot survivor (insert-if-absent,
  /// replace-if-better) without touching the event counters, so a resumed
  /// run's statistics reflect search work, not the restore.
  void preload(const PartialSchedule& state, Time lb);

  /// Folds the counters a snapshot carried into this table, so counters()
  /// keeps accumulating across process restarts.
  void add_counters(const TranspositionCounters& prior);

 private:
  struct Shard;

  /// Slots per bucket; a bucket of fingerprints is one 64-byte cache line.
  static constexpr std::size_t kProbeWindow = 8;
  /// fp (8) + lb (8) + state, summed across the parallel arrays.
  static constexpr std::size_t kBytesPerSlot =
      sizeof(std::uint64_t) + sizeof(Time) + sizeof(PartialSchedule);

  static_assert(std::is_trivially_copyable_v<PartialSchedule>);

  Shard& shard_for(std::uint64_t fp) const noexcept;

  std::unique_ptr<Shard[]> shards_;
  int shard_count_ = 1;
  std::uint64_t shard_mask_ = 0;
  std::size_t slots_per_shard_ = 0;
};

}  // namespace parabb
