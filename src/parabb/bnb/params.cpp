#include "parabb/bnb/params.hpp"

#include <sstream>

namespace parabb {

std::string to_string(SelectRule s) {
  switch (s) {
    case SelectRule::kLLB: return "LLB";
    case SelectRule::kFIFO: return "FIFO";
    case SelectRule::kLIFO: return "LIFO";
  }
  return "?";
}

std::string to_string(BranchRule b) {
  switch (b) {
    case BranchRule::kBFn: return "BFn";
    case BranchRule::kBF1: return "BF1";
    case BranchRule::kDF: return "DF";
  }
  return "?";
}

std::string to_string(ElimRule e) {
  switch (e) {
    case ElimRule::kNone: return "none";
    case ElimRule::kUDBAS: return "U/DBAS";
  }
  return "?";
}

std::string to_string(LowerBound l) {
  switch (l) {
    case LowerBound::kLB0: return "LB0";
    case LowerBound::kLB1: return "LB1";
    case LowerBound::kLB2: return "LB2";
  }
  return "?";
}

std::string to_string(UpperBoundInit u) {
  switch (u) {
    case UpperBoundInit::kInfinite: return "inf";
    case UpperBoundInit::kFromEDF: return "EDF";
    case UpperBoundInit::kExplicit: return "explicit";
  }
  return "?";
}

std::string describe(const Params& p) {
  std::ostringstream os;
  os << "B=" << to_string(p.branch) << " S=" << to_string(p.select)
     << " E=" << to_string(p.elim) << " L=" << to_string(p.lb)
     << " U=" << to_string(p.ub) << " BR=" << p.br * 100.0 << "%";
  if (p.transposition.enabled) {
    os << " TT=" << (p.transposition.memory_cap_bytes >> 20) << "MiB/"
       << p.transposition.shards << "sh";
  }
  return os.str();
}

}  // namespace parabb
