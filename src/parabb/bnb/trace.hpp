// SearchTrace: bounded recording of branch-and-bound events.
//
// Attach a trace via Params::trace to watch a search unfold — which levels
// it dives to, when incumbents improve, how pruning concentrates. Used by
// the trace_search example and by tests that assert engine behaviour
// (e.g. "the incumbent never worsens") without poking at internals.
// Recording into a preallocated ring buffer costs a few stores per event;
// with no trace attached the engine pays a null check only.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "parabb/support/types.hpp"

namespace parabb {

enum class TraceEvent : std::uint8_t {
  kExpand,      ///< vertex selected and branched (value = its bound)
  kActivate,    ///< child inserted into the active set (value = bound)
  kPruneChild,  ///< child discarded before insertion (value = bound)
  kGoal,        ///< complete schedule generated (value = exact cost)
  kIncumbent,   ///< incumbent improved (value = new cost)
  kPruneActive, ///< active-set entries removed by E (value = count)
  kDispose,     ///< entries dropped by RB.MAXSZAS (value = count)
  kTransposition, ///< duplicate state pruned by the table (value = bound)
};

struct TraceRecord {
  TraceEvent event{};
  std::int16_t level = 0;  ///< tasks scheduled at the event's vertex
  Time value = 0;
  std::uint64_t index = 0;  ///< global event sequence number
};

class SearchTrace {
 public:
  explicit SearchTrace(std::size_t capacity = 65536);

  void record(TraceEvent event, int level, Time value) noexcept;

  /// Records in chronological order (oldest retained first).
  std::vector<TraceRecord> chronological() const;

  std::uint64_t total_events() const noexcept { return next_index_; }
  std::uint64_t dropped() const noexcept {
    return next_index_ > ring_.size() ? next_index_ - ring_.size() : 0;
  }

  /// Human-readable dump of the retained window.
  std::string to_string() const;

  void clear() noexcept;

 private:
  std::vector<TraceRecord> ring_;
  std::uint64_t next_index_ = 0;
};

std::string to_string(TraceEvent event);

}  // namespace parabb
