#include "parabb/bnb/parallel_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parabb/bnb/cancel.hpp"
#include "parabb/bnb/certify.hpp"
#include "parabb/bnb/lower_bound.hpp"
#include "parabb/bnb/search_obs.hpp"
#include "parabb/bnb/transposition.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/support/assert.hpp"
#include "parabb/support/inline_vector.hpp"
#include "parabb/support/timer.hpp"

namespace parabb {
namespace {

struct WorkItem {
  PartialSchedule state;
  Time lb = 0;
};

/// Shared search state. The incumbent cost is mirrored in an atomic so the
/// per-vertex bound test never takes a lock.
struct Shared {
  const SchedContext& ctx;
  const Params& params;
  int total_threads = 1;

  std::atomic<Time> incumbent{kTimeInf};
  std::mutex best_mutex;
  PartialSchedule best_state;
  bool found = false;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<WorkItem> queue;
  std::atomic<std::size_t> queue_hint{0};  ///< approximate queue size
  int idle = 0;       ///< workers currently without work (under queue_mutex)
  bool done = false;  ///< search finished (under queue_mutex)

  std::atomic<bool> stop{false};  ///< time limit / cancel / budget tripped
  /// Why `stop` was raised; the first cause wins (compare-exchange).
  std::atomic<TerminationReason> stop_reason{TerminationReason::kExhausted};
  /// Generated vertices across all workers, for RB.max_generated. One
  /// relaxed add per expansion (batched), invisible next to expansion cost.
  std::atomic<std::uint64_t> generated{0};

  /// Shared duplicate-state table (null when disabled). Lock-striped
  /// internally, so workers probe it without a global lock.
  std::unique_ptr<TranspositionTable> tt;

  Shared(const SchedContext& c, const Params& p) : ctx(c), params(p) {
    if (p.transposition.enabled) {
      tt = std::make_unique<TranspositionTable>(p.transposition);
    }
  }

  Time threshold() const {
    return prune_threshold(incumbent.load(std::memory_order_relaxed),
                           params.br);
  }

  /// Raises `stop` with reason `r`; the first caller's reason sticks.
  /// The flag is set under `queue_mutex`: a bare store + notify could land
  /// between a worker's wait-predicate check and its actual block, and that
  /// worker would sleep through the wakeup forever (missed-wakeup race).
  void request_stop(TerminationReason r) {
    TerminationReason expected = TerminationReason::kExhausted;
    stop_reason.compare_exchange_strong(expected, r,
                                        std::memory_order_relaxed);
    {
      const std::lock_guard lock(queue_mutex);
      stop.store(true);
    }
    queue_cv.notify_all();
  }

  /// Cancellation / generated-budget poll, called once per expanded vertex.
  bool should_stop() {
    if (stop.load(std::memory_order_relaxed)) return true;
    if (params.cancel && params.cancel->cancelled()) {
      request_stop(TerminationReason::kCancelled);
      return true;
    }
    if (generated.load(std::memory_order_relaxed) >=
        params.rb.max_generated) {
      request_stop(TerminationReason::kBudget);
      return true;
    }
    return false;
  }

  void offer_goal(const PartialSchedule& state, Time cost,
                  SearchStats& stats, SearchObs& so) {
    if (cost >= incumbent.load(std::memory_order_relaxed)) return;
    const std::lock_guard lock(best_mutex);
    if (cost >= incumbent.load(std::memory_order_relaxed)) return;
    incumbent.store(cost, std::memory_order_relaxed);
    best_state = state;
    found = true;
    ++stats.goal_updates;
    so.incumbent(ctx.task_count(), cost);
  }
};

InlineVector<TaskId, kMaxTasks> branch_tasks(const SchedContext& ctx,
                                             BranchRule rule, TaskSet ready) {
  InlineVector<TaskId, kMaxTasks> out;
  switch (rule) {
    case BranchRule::kBFn:
      for (const TaskId t : ready) out.push_back(t);
      break;
    case BranchRule::kBF1:
      for (const TaskId t : ctx.level_order())
        if (ready.contains(t)) {
          out.push_back(t);
          break;
        }
      break;
    case BranchRule::kDF:
      for (const TaskId t : ctx.dfs_order())
        if (ready.contains(t)) {
          out.push_back(t);
          break;
        }
      break;
  }
  return out;
}

/// Expands one vertex; goals update the incumbent, surviving children are
/// appended to `out` worst-bound-first (pop-back then explores best-first).
/// Zero-copy: candidates are evaluated via place → bound → unplace on one
/// scratch state; only survivors are copied into `out`.
void expand(Shared& sh, IncrementalLB& inc, const WorkItem& item,
            std::vector<WorkItem>& out, SearchStats& stats, SearchObs& so) {
  ++stats.expanded;
  so.expand(item.state.count(), item.lb);
  const Time threshold = sh.threshold();
  const std::size_t base = out.size();
  // Goal children need their exact cost (offer_goal compares it to the
  // incumbent directly), so the short-circuit may not fire on them.
  const bool goal_children = item.state.count() + 1 == sh.ctx.task_count();
  const Time cutoff =
      (sh.params.incremental_lb && sh.params.elim == ElimRule::kUDBAS &&
       !goal_children && sh.params.certify == nullptr)
          ? threshold
          : kTimeInf;
  PartialSchedule cur = item.state;
  inc.attach(cur);
  std::uint64_t generated_here = 0;
  for (const TaskId t : branch_tasks(sh.ctx, sh.params.branch, cur.ready())) {
    for (ProcId p = 0; p < sh.ctx.proc_count(); ++p) {
      ++stats.generated;
      ++generated_here;
      inc.place(cur, t, p);
      const Time lb = sh.params.incremental_lb
                          ? inc.evaluate(cur, sh.params.lb, cutoff)
                          : lower_bound_cost(sh.ctx, cur, sh.params.lb);
      if (goal_children) {
        ++stats.goals;
        sh.offer_goal(cur, lb, stats, so);
      } else if (sh.params.characteristic &&
                 !sh.params.characteristic(sh.ctx, cur)) {
        ++stats.pruned_children;
        so.prune(FlightPruneRule::kCharacteristic, cur.count(), lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(sh.ctx, cur,
                                        CutRule::kCharacteristic, lb);
        }
      } else if (sh.params.elim == ElimRule::kUDBAS && lb >= threshold) {
        ++stats.pruned_children;
        so.prune(FlightPruneRule::kBound, cur.count(), lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(
              sh.ctx, cur,
              bound_cut_rule(sh.ctx, cur, sh.params.lb, threshold), lb);
        }
      } else if (sh.tt && sh.tt->seen_or_insert(cur, lb)) {
        ++stats.pruned_children;  // duplicate: another worker owns this state
        so.prune(FlightPruneRule::kTransposition, cur.count(), lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(sh.ctx, cur,
                                        CutRule::kTransposition, lb);
        }
      } else {
        out.push_back(WorkItem{cur, lb});
        ++stats.activated;
      }
      inc.unplace(cur, t);
    }
  }
  if (generated_here > 0) {
    sh.generated.fetch_add(generated_here, std::memory_order_relaxed);
  }
  if (sh.params.sort_children) {
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
              [](const WorkItem& a, const WorkItem& b) { return a.lb > b.lb; });
  }
}

/// Worker protocol: `idle` counts workers not holding work. The last worker
/// to go idle with an empty queue declares the search done.
void worker_loop(Shared& sh, SearchStats& stats, SearchObs& so) {
  std::vector<WorkItem> local;
  IncrementalLB inc(sh.ctx);  // private scratch: no shared mutable state
  std::uint64_t iter = 0;
  for (;;) {
    {
      std::unique_lock lock(sh.queue_mutex);
      ++sh.idle;
      if ((sh.idle == sh.total_threads && sh.queue.empty()) ||
          sh.stop.load()) {
        sh.done = true;
        sh.queue_cv.notify_all();
        so.flush(stats);
        return;
      }
      sh.queue_cv.wait(lock, [&] {
        return sh.done || sh.stop.load() || !sh.queue.empty();
      });
      if (sh.done || sh.stop.load()) {
        sh.done = true;
        sh.queue_cv.notify_all();
        so.flush(stats);
        return;
      }
      --sh.idle;
      local.push_back(std::move(sh.queue.front()));
      sh.queue.pop_front();
      sh.queue_hint.store(sh.queue.size(), std::memory_order_relaxed);
    }

    // Depth-first dive on the private stack.
    while (!local.empty()) {
      if (sh.should_stop()) {
        stats.disposed += local.size();  // abandoned by the early stop
        so.dispose(static_cast<std::int64_t>(local.size()));
        local.clear();
        break;
      }
      const WorkItem item = std::move(local.back());
      local.pop_back();
      const Time pop_threshold = sh.threshold();
      if (sh.params.elim == ElimRule::kUDBAS && item.lb >= pop_threshold) {
        ++stats.pruned_active;
        so.prune(FlightPruneRule::kBound, item.state.count(), item.lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(
              sh.ctx, item.state,
              bound_cut_rule(sh.ctx, item.state, sh.params.lb,
                             pop_threshold),
              item.lb);
        }
        continue;
      }
      expand(sh, inc, item, local, stats, so);
      stats.peak_active = std::max(stats.peak_active, local.size());
      stats.peak_memory_bytes = std::max(
          stats.peak_memory_bytes, local.capacity() * sizeof(WorkItem));
      // Amortized metrics flush, mirroring the sequential engine's
      // 256-expansion polling cadence.
      if ((++iter & 0xFFu) == 0) {
        so.budget_checkpoint(static_cast<std::int64_t>(
            sh.generated.load(std::memory_order_relaxed)));
        so.flush(stats);
      }

      // Donate the shallowest half when the queue is dry and peers starve.
      if (local.size() >= 2 &&
          sh.queue_hint.load(std::memory_order_relaxed) == 0) {
        std::unique_lock lock(sh.queue_mutex, std::try_to_lock);
        if (lock.owns_lock() && sh.queue.empty() && sh.idle > 0) {
          const std::size_t donate = local.size() / 2;
          for (std::size_t i = 0; i < donate; ++i)
            sh.queue.push_back(std::move(local[i]));
          local.erase(local.begin(),
                      local.begin() + static_cast<std::ptrdiff_t>(donate));
          sh.queue_hint.store(sh.queue.size(), std::memory_order_relaxed);
          sh.queue_cv.notify_all();
        }
      }
    }
  }
}

}  // namespace

ParallelResult solve_bnb_parallel(const SchedContext& ctx,
                                  const ParallelParams& pp) {
  Stopwatch watch;
  ParallelResult result;

  int threads = pp.threads;
  if (threads <= 0) {
    threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  result.threads_used = threads;

  Shared sh(ctx, pp.base);
  sh.total_threads = threads;

  if (pp.base.certify) {
    pp.base.certify->begin(ctx, static_cast<int>(pp.base.lb),
                           pp.base.branch == BranchRule::kBFn, pp.base.br,
                           describe(pp.base));
  }

  // Initial upper bound U.
  Schedule initial_best;
  switch (pp.base.ub) {
    case UpperBoundInit::kInfinite:
      break;
    case UpperBoundInit::kFromEDF: {
      const EdfResult edf = schedule_edf(ctx);
      sh.incumbent.store(edf.max_lateness);
      initial_best = edf.schedule;
      result.found_solution = true;
      break;
    }
    case UpperBoundInit::kExplicit:
      sh.incumbent.store(pp.base.explicit_ub);
      break;
  }

  // Seeding: breadth-first expansion until one frontier item per worker.
  // Flight channel 0 belongs to this phase; workers use channels 1..N.
  SearchStats seed_stats;
  SearchObs seed_so;
  seed_so.bind(pp.base.observe, /*channel=*/0);
  {
    IncrementalLB seed_inc(ctx);
    std::deque<WorkItem> frontier;
    WorkItem root;
    root.state = PartialSchedule::empty(ctx);
    root.lb = lower_bound_cost(ctx, root.state, pp.base.lb);
    frontier.push_back(std::move(root));
    std::vector<WorkItem> buf;
    while (!frontier.empty() &&
           frontier.size() < static_cast<std::size_t>(threads) * 4) {
      if (sh.should_stop()) break;
      const WorkItem item = std::move(frontier.front());
      frontier.pop_front();
      const Time seed_threshold = sh.threshold();
      if (pp.base.elim == ElimRule::kUDBAS && item.lb >= seed_threshold) {
        ++seed_stats.pruned_active;
        seed_so.prune(FlightPruneRule::kBound, item.state.count(), item.lb);
        if (pp.base.certify) {
          pp.base.certify->record_cut(
              ctx, item.state,
              bound_cut_rule(ctx, item.state, pp.base.lb, seed_threshold),
              item.lb);
        }
        continue;
      }
      buf.clear();
      expand(sh, seed_inc, item, buf, seed_stats, seed_so);
      for (WorkItem& w : buf) frontier.push_back(std::move(w));
      seed_stats.peak_memory_bytes =
          std::max(seed_stats.peak_memory_bytes,
                   frontier.size() * sizeof(WorkItem));
    }
    for (WorkItem& w : frontier) sh.queue.push_back(std::move(w));
    sh.queue_hint.store(sh.queue.size());
  }
  seed_so.flush(seed_stats);

  if (!sh.queue.empty()) {
    std::vector<SearchStats> per_thread(static_cast<std::size_t>(threads));
    std::vector<SearchObs> per_obs(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      per_obs[static_cast<std::size_t>(i)].bind(
          pp.base.observe, /*channel=*/static_cast<std::size_t>(i) + 1);
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      pool.emplace_back([&sh, &per_thread, &per_obs, i] {
        worker_loop(sh, per_thread[static_cast<std::size_t>(i)],
                    per_obs[static_cast<std::size_t>(i)]);
      });
    }

    // Time-limit supervisor (main thread); cancellation and the generated
    // budget are polled by the workers themselves (Shared::should_stop).
    const double limit = pp.base.rb.time_limit_s;
    if (std::isfinite(limit)) {
      for (;;) {
        {
          const std::lock_guard lock(sh.queue_mutex);
          if (sh.done) break;
        }
        if (watch.seconds() >= limit) {
          sh.request_stop(TerminationReason::kTimeLimit);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    for (auto& th : pool) th.join();
    for (const SearchStats& s : per_thread) {
      merge_search_stats(result.stats, s);
    }
  }
  merge_search_stats(result.stats, seed_stats);
  // Work left behind in the shared queue by an early stop was disposed of,
  // the same way worker-local leftovers are counted inside worker_loop.
  const std::uint64_t queue_disposed =
      sh.stop.load() ? sh.queue.size() : 0;
  result.stats.disposed += queue_disposed;
  const TerminationReason reason = sh.stop.load()
                                       ? sh.stop_reason.load()
                                       : TerminationReason::kExhausted;

  result.best_cost = sh.incumbent.load();
  if (sh.found) {
    result.found_solution = true;
    result.best = Schedule::from_partial(ctx, sh.best_state);
  } else if (result.found_solution) {
    result.best = std::move(initial_best);  // the EDF seed stands
  }
  result.reason = reason;
  result.proved = result.found_solution && !is_interrupted(reason) &&
                  pp.base.branch == BranchRule::kBFn;
  if (pp.base.certify) {
    pp.base.certify->finish(result.found_solution, result.best,
                            result.best_cost, result.proved,
                            result.stats.expanded, result.stats.generated);
  }
  if (sh.tt) {
    const TranspositionCounters tc = sh.tt->counters();
    result.stats.tt_hits = tc.hits;
    result.stats.tt_misses = tc.misses;
    result.stats.tt_evictions = tc.evictions + tc.rejected;
    result.stats.tt_collisions = tc.collisions;
  }
  result.stats.seconds = watch.seconds();
  // Workers and the seed phase flushed their own counters; publish the
  // remainder that only exists post-merge (queue leftovers disposed by an
  // early stop, shared-table totals).
  if (pp.base.observe) {
    SearchObs fin;
    fin.bind(pp.base.observe, /*channel=*/0, /*with_flight=*/false);
    SearchStats rem;
    rem.disposed = queue_disposed;
    rem.tt_hits = result.stats.tt_hits;
    rem.tt_misses = result.stats.tt_misses;
    rem.tt_evictions = result.stats.tt_evictions;
    rem.tt_collisions = result.stats.tt_collisions;
    rem.peak_active = result.stats.peak_active;
    rem.peak_memory_bytes = result.stats.peak_memory_bytes;
    fin.flush(rem);
  }
  return result;
}

}  // namespace parabb
