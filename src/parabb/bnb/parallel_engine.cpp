#include "parabb/bnb/parallel_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "parabb/bnb/cancel.hpp"
#include "parabb/bnb/certify.hpp"
#include "parabb/bnb/lower_bound.hpp"
#include "parabb/bnb/search_obs.hpp"
#include "parabb/bnb/transposition.hpp"
#include "parabb/ckpt/checkpoint.hpp"
#include "parabb/ckpt/snapshot.hpp"
#include "parabb/robust/fault.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/support/assert.hpp"
#include "parabb/support/inline_vector.hpp"
#include "parabb/support/timer.hpp"
#include "parabb/support/ws_deque.hpp"

namespace parabb {
namespace {

struct WorkItem {
  PartialSchedule state;
  Time lb = 0;
};

/// Shared search state. The incumbent cost is mirrored in an atomic so the
/// per-vertex bound test never takes a lock.
struct Shared {
  const SchedContext& ctx;
  const Params& params;
  int total_threads = 1;

  std::atomic<Time> incumbent{kTimeInf};
  std::mutex best_mutex;
  PartialSchedule best_state;
  bool found = false;

  // Central-queue scheduler state (unused under work stealing).
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<WorkItem> queue;
  std::atomic<std::size_t> queue_hint{0};  ///< approximate queue size
  int idle = 0;       ///< workers currently without work (under queue_mutex)
  bool done = false;  ///< search finished (under queue_mutex)

  std::atomic<bool> stop{false};  ///< time limit / cancel / budget tripped
  /// Why `stop` was raised; the first cause wins (compare-exchange).
  std::atomic<TerminationReason> stop_reason{TerminationReason::kExhausted};
  /// Generated vertices across all workers, for RB.max_generated. One
  /// relaxed add per expansion (batched), invisible next to expansion cost.
  std::atomic<std::uint64_t> generated{0};

  /// Shared duplicate-state table (null when disabled). Lock-striped
  /// internally, so workers probe it without a global lock.
  std::unique_ptr<TranspositionTable> tt;

  // --- graceful-degradation ladder (robust/degrade.hpp) -----------------
  // `ladder_on` is fixed before the workers start; while false, no worker
  // reads any of the atomics below (branch_rule()/table()/max_children()
  // short-circuit to the plain params), so the ladder-off search is
  // byte-identical to a pre-ladder build.
  DegradeSchedule degrade_sched;
  bool ladder_on = false;
  std::atomic<int> degrade_level{0};
  std::atomic<BranchRule> effective_branch{BranchRule::kBFn};
  std::atomic<int> effective_children{std::numeric_limits<int>::max()};
  /// Live table pointer: nulled by the kShedTT rung. The table object
  /// itself stays alive (owned by `tt`) so a prober that loaded the
  /// pointer before the shed finishes its probe safely.
  std::atomic<TranspositionTable*> tt_live{nullptr};
  std::atomic<bool> degraded_incomplete{false};
  /// Per-worker resident bytes, published at the poll cadence; the ladder
  /// compares their sum against rb.max_memory_bytes.
  std::unique_ptr<std::atomic<std::size_t>[]> worker_bytes;

  // --- crash-safe checkpoint quiesce (ckpt/snapshot.hpp) ----------------
  // The supervisor bumps `ckpt_epoch`; every worker, at its amortized poll
  // point (or while foraging / waiting for work), copies its own deque
  // contents plus the in-hand vertex into its dump slot, publishes a stats
  // copy, and then *pauses* until the supervisor finishes serializing.
  // The pause is what makes the frontier complete: once a worker has
  // dumped, it neither consumes nor produces vertices until the release,
  // so every vertex live at serialize time is in some dump slot (or the
  // central queue) — a steal landing after the victim's dump merely
  // duplicates an already-captured entry, which resume re-explores
  // harmlessly. `ckpt_alive` counts workers that have not exited, so a
  // worker leaving mid-quiesce (search exhausted or stopped) cannot hang
  // the supervisor; its slot keeps the previous epoch tag and is skipped.
  // With params.ckpt == nullptr none of this state is touched.
  struct CkptDump {
    std::uint64_t epoch = 0;  ///< epoch this slot was written for
    std::vector<WorkItem> items;
    SearchStats stats;
  };
  std::atomic<std::uint64_t> ckpt_epoch{0};
  std::atomic<std::uint64_t> ckpt_released{0};
  std::atomic<int> ckpt_arrived{0};
  std::atomic<int> ckpt_alive{0};
  std::vector<CkptDump> ckpt_dumps;

  /// Blocks the calling worker until the supervisor releases `epoch` (or
  /// the search stops). Callers must hold no locks.
  void ckpt_pause(std::uint64_t epoch) {
    while (ckpt_released.load(std::memory_order_acquire) < epoch &&
           !stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  /// Worker-side arrival: publishes this worker's dump slot (items were
  /// already filled by the caller), joins the barrier, and sits out the
  /// serialize. At most once per epoch per worker.
  void ckpt_arrive_and_pause(std::size_t self, std::uint64_t epoch,
                             const SearchStats& worker_stats) {
    ckpt_dumps[self].stats = worker_stats;
    ckpt_dumps[self].epoch = epoch;
    ckpt_arrived.fetch_add(1, std::memory_order_release);
    ckpt_pause(epoch);
  }

  Shared(const SchedContext& c, const Params& p) : ctx(c), params(p) {
    if (p.transposition.enabled) {
      tt = std::make_unique<TranspositionTable>(p.transposition);
    }
    effective_branch.store(p.branch, std::memory_order_relaxed);
    tt_live.store(tt.get(), std::memory_order_relaxed);
  }

  void init_ladder(int threads) {
    degrade_sched = DegradeSchedule::from(params.degrade);
    ladder_on = degrade_sched.count > 0 &&
                params.rb.max_memory_bytes !=
                    std::numeric_limits<std::size_t>::max();
    if (!ladder_on) return;
    worker_bytes = std::make_unique<std::atomic<std::size_t>[]>(
        static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      worker_bytes[static_cast<std::size_t>(i)].store(
          0, std::memory_order_relaxed);
    }
  }

  BranchRule branch_rule() const {
    return ladder_on ? effective_branch.load(std::memory_order_relaxed)
                     : params.branch;
  }
  TranspositionTable* table() const {
    return ladder_on ? tt_live.load(std::memory_order_relaxed) : tt.get();
  }
  int max_children() const {
    return ladder_on ? effective_children.load(std::memory_order_relaxed)
                     : std::numeric_limits<int>::max();
  }

  /// Ladder poll (flush cadence): publish this worker's resident bytes,
  /// escalate while the cross-worker total sits above the next rung, and
  /// fall off the budget cliff once the ladder is spent. Rung application
  /// is CAS-claimed so each fires exactly once, by one worker, which also
  /// accounts it (stats/flight/certificate).
  void maybe_degrade(std::size_t worker, std::size_t used_bytes,
                     SearchStats& stats, SearchObs& so) {
    if (!ladder_on) return;
    worker_bytes[worker].store(used_bytes, std::memory_order_relaxed);
    std::size_t total = 0;
    for (int i = 0; i < total_threads; ++i) {
      total += worker_bytes[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed);
    }
    const int target =
        degrade_sched.target_level(total, params.rb.max_memory_bytes);
    int cur = degrade_level.load(std::memory_order_relaxed);
    while (cur < target) {
      if (!degrade_level.compare_exchange_strong(
              cur, cur + 1, std::memory_order_relaxed)) {
        continue;  // another worker claimed this rung; cur was reloaded
      }
      const DegradeAction action =
          degrade_sched.rungs[static_cast<std::size_t>(cur)].action;
      switch (action) {
        case DegradeAction::kShedTT:
          tt_live.store(nullptr, std::memory_order_relaxed);
          if (tt) tt->clear();  // duplicate pruning only: completeness kept
          break;
        case DegradeAction::kTightenDB:
          effective_children.store(
              std::max(1, ctx.proc_count() *
                              params.degrade.tightened_children_per_proc),
              std::memory_order_relaxed);
          degraded_incomplete.store(true, std::memory_order_relaxed);
          break;
        case DegradeAction::kBF1: {
          BranchRule expected = BranchRule::kBFn;
          effective_branch.compare_exchange_strong(
              expected, BranchRule::kBF1, std::memory_order_relaxed);
          degraded_incomplete.store(true, std::memory_order_relaxed);
          break;
        }
        case DegradeAction::kDF:
          effective_branch.store(BranchRule::kDF, std::memory_order_relaxed);
          degraded_incomplete.store(true, std::memory_order_relaxed);
          break;
      }
      ++cur;
      ++stats.degrade_steps;
      so.degrade(cur, static_cast<std::int64_t>(action));
      if (params.certify) {
        params.certify->record_degrade(
            to_string(action), generated.load(std::memory_order_relaxed),
            cur);
      }
    }
    // Ladder spent and still over budget: the cliff is all that is left.
    if (target == degrade_sched.count &&
        total >= params.rb.max_memory_bytes) {
      request_stop(TerminationReason::kBudget);
    }
  }

  Time threshold() const {
    return prune_threshold(incumbent.load(std::memory_order_relaxed),
                           params.br);
  }

  /// Raises `stop` with reason `r`; the first caller's reason sticks.
  /// The flag is set under `queue_mutex`: a bare store + notify could land
  /// between a central worker's wait-predicate check and its actual block,
  /// and that worker would sleep through the wakeup forever (missed-wakeup
  /// race). Work-stealing workers park on a *timed* wait instead, so for
  /// them the relaxed flag alone is enough.
  void request_stop(TerminationReason r) {
    TerminationReason expected = TerminationReason::kExhausted;
    stop_reason.compare_exchange_strong(expected, r,
                                        std::memory_order_relaxed);
    {
      const std::lock_guard lock(queue_mutex);
      stop.store(true);
    }
    queue_cv.notify_all();
  }

  /// Cancellation / generated-budget poll, called once per expanded vertex.
  bool should_stop() {
    if (stop.load(std::memory_order_relaxed)) return true;
    if (params.cancel && params.cancel->cancelled()) {
      request_stop(TerminationReason::kCancelled);
      return true;
    }
    if (params.faults &&
        params.faults->cancel_requested(
            generated.load(std::memory_order_relaxed))) {
      request_stop(TerminationReason::kCancelled);
      return true;
    }
    if (generated.load(std::memory_order_relaxed) >=
        params.rb.max_generated) {
      request_stop(TerminationReason::kBudget);
      return true;
    }
    return false;
  }

  void offer_goal(const PartialSchedule& state, Time cost,
                  SearchStats& stats, SearchObs& so) {
    if (cost >= incumbent.load(std::memory_order_relaxed)) return;
    const std::lock_guard lock(best_mutex);
    if (cost >= incumbent.load(std::memory_order_relaxed)) return;
    incumbent.store(cost, std::memory_order_relaxed);
    best_state = state;
    found = true;
    ++stats.goal_updates;
    so.incumbent(ctx.task_count(), cost);
  }
};

InlineVector<TaskId, kMaxTasks> branch_tasks(const SchedContext& ctx,
                                             BranchRule rule, TaskSet ready) {
  InlineVector<TaskId, kMaxTasks> out;
  switch (rule) {
    case BranchRule::kBFn:
      for (const TaskId t : ready) out.push_back(t);
      break;
    case BranchRule::kBF1:
      for (const TaskId t : ctx.level_order())
        if (ready.contains(t)) {
          out.push_back(t);
          break;
        }
      break;
    case BranchRule::kDF:
      for (const TaskId t : ctx.dfs_order())
        if (ready.contains(t)) {
          out.push_back(t);
          break;
        }
      break;
  }
  return out;
}

/// Core of one vertex expansion, shared by both schedulers and the seeding
/// phase. Goals update the incumbent; each surviving child is handed to
/// `emit(state, lb)` in generation order (callers order them afterwards).
/// Zero-copy: candidates are evaluated via place → bound → unplace on one
/// scratch state; `emit` decides where survivors get copied.
template <typename Emit>
void expand_children(Shared& sh, IncrementalLB& inc,
                     const PartialSchedule& parent, Time parent_lb,
                     SearchStats& stats, SearchObs& so, Emit&& emit) {
  ++stats.expanded;
  so.expand(parent.count(), parent_lb);
  const Time threshold = sh.threshold();
  // Goal children need their exact cost (offer_goal compares it to the
  // incumbent directly), so the short-circuit may not fire on them.
  const bool goal_children = parent.count() + 1 == sh.ctx.task_count();
  const Time cutoff =
      (sh.params.incremental_lb && sh.params.elim == ElimRule::kUDBAS &&
       !goal_children && sh.params.certify == nullptr)
          ? threshold
          : kTimeInf;
  PartialSchedule cur = parent;
  inc.attach(cur);
  std::uint64_t generated_here = 0;
  TranspositionTable* const tt = sh.table();
  const int child_cap = sh.max_children();
  int children = 0;
  for (const TaskId t : branch_tasks(sh.ctx, sh.branch_rule(), cur.ready())) {
    if (children >= child_cap) break;  // kTightenDB rung truncated the set
    for (ProcId p = 0; p < sh.ctx.proc_count(); ++p) {
      if (children >= child_cap) break;
      ++children;
      ++stats.generated;
      ++generated_here;
      inc.place(cur, t, p);
      const Time lb = sh.params.incremental_lb
                          ? inc.evaluate(cur, sh.params.lb, cutoff)
                          : lower_bound_cost(sh.ctx, cur, sh.params.lb);
      if (goal_children) {
        ++stats.goals;
        sh.offer_goal(cur, lb, stats, so);
      } else if (sh.params.characteristic &&
                 !sh.params.characteristic(sh.ctx, cur)) {
        ++stats.pruned_children;
        so.prune(FlightPruneRule::kCharacteristic, cur.count(), lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(sh.ctx, cur,
                                        CutRule::kCharacteristic, lb);
        }
      } else if (sh.params.elim == ElimRule::kUDBAS && lb >= threshold) {
        ++stats.pruned_children;
        so.prune(FlightPruneRule::kBound, cur.count(), lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(
              sh.ctx, cur,
              bound_cut_rule(sh.ctx, cur, sh.params.lb, threshold), lb);
        }
      } else if (tt && tt->seen_or_insert(cur, lb)) {
        ++stats.pruned_children;  // duplicate: another worker owns this state
        so.prune(FlightPruneRule::kTransposition, cur.count(), lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(sh.ctx, cur,
                                        CutRule::kTransposition, lb);
        }
      } else {
        if (sh.params.faults) {
          sh.params.faults->on_alloc(
              sh.generated.load(std::memory_order_relaxed) + generated_here);
        }
        emit(cur, lb);
        ++stats.activated;
      }
      inc.unplace(cur, t);
    }
  }
  if (generated_here > 0) {
    sh.generated.fetch_add(generated_here, std::memory_order_relaxed);
  }
}

/// Central-queue expansion: surviving children are appended to `out`
/// worst-bound-first (pop-back then explores best-first).
void expand(Shared& sh, IncrementalLB& inc, const WorkItem& item,
            std::vector<WorkItem>& out, SearchStats& stats, SearchObs& so) {
  const std::size_t base = out.size();
  expand_children(sh, inc, item.state, item.lb, stats, so,
                  [&](const PartialSchedule& s, Time lb) {
                    out.push_back(WorkItem{s, lb});
                  });
  if (sh.params.sort_children) {
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(base), out.end(),
              [](const WorkItem& a, const WorkItem& b) { return a.lb > b.lb; });
  }
}

// ---------------------------------------------------------------------------
// Central-queue scheduler (ParallelScheduler::kCentralQueue).
// ---------------------------------------------------------------------------

/// Worker protocol: `idle` counts workers not holding work. The last worker
/// to go idle with an empty queue declares the search done.
///
/// Idle-accounting invariant (hardened; mirrored by the work-stealing
/// termination counter): a worker increments `idle` exactly once per outer
/// iteration and decrements it only in the same critical section in which
/// it takes a WorkItem off the queue. A wake → queue-empty → re-sleep cycle
/// therefore re-enters the wait with its increment still standing — it can
/// never decrement without dequeuing, so `idle` cannot drift low and
/// declare termination while work is in flight, and every exit path leaves
/// the worker counted (the caller asserts idle == total_threads after the
/// join).
void worker_loop(Shared& sh, const std::size_t self, SearchStats& stats,
                 SearchObs& so) {
  std::vector<WorkItem> local;
  IncrementalLB inc(sh.ctx);  // private scratch: no shared mutable state
  std::uint64_t iter = 0;
  std::uint64_t ckpt_seen = 0;  // last checkpoint epoch this worker joined
  const auto leave = [&] {
    sh.done = true;
    sh.queue_cv.notify_all();
    if (sh.params.ckpt != nullptr) {
      sh.ckpt_alive.fetch_sub(1, std::memory_order_relaxed);
    }
    so.flush(stats);
  };
  for (;;) {
    {
      std::unique_lock lock(sh.queue_mutex);
      ++sh.idle;
      PARABB_ASSERT(sh.idle <= sh.total_threads);
      if ((sh.idle == sh.total_threads && sh.queue.empty()) ||
          sh.stop.load()) {
        leave();
        return;
      }
      for (;;) {
        sh.queue_cv.wait(lock, [&] {
          return sh.done || sh.stop.load() || !sh.queue.empty() ||
                 (sh.params.ckpt != nullptr &&
                  sh.ckpt_epoch.load(std::memory_order_acquire) !=
                      ckpt_seen);
        });
        if (sh.done || sh.stop.load()) {
          leave();
          return;
        }
        if (sh.params.ckpt != nullptr) {
          const std::uint64_t e =
              sh.ckpt_epoch.load(std::memory_order_acquire);
          if (e != ckpt_seen) {
            // Out of work: dump an empty slot, then sit out the serialize
            // outside the lock (the supervisor needs queue_mutex for the
            // shared queue). `idle` stays incremented, which is exactly
            // the waiting state this worker is still in.
            ckpt_seen = e;
            sh.ckpt_dumps[self].items.clear();
            lock.unlock();
            sh.ckpt_arrive_and_pause(self, e, stats);
            lock.lock();
            continue;
          }
        }
        if (!sh.queue.empty()) break;
      }
      --sh.idle;
      local.push_back(std::move(sh.queue.front()));
      sh.queue.pop_front();
      sh.queue_hint.store(sh.queue.size(), std::memory_order_relaxed);
    }

    // Depth-first dive on the private stack.
    while (!local.empty()) {
      if (sh.should_stop()) {
        stats.disposed += local.size();  // abandoned by the early stop
        so.dispose(static_cast<std::int64_t>(local.size()));
        local.clear();
        break;
      }
      const WorkItem item = std::move(local.back());
      local.pop_back();
      const Time pop_threshold = sh.threshold();
      if (sh.params.elim == ElimRule::kUDBAS && item.lb >= pop_threshold) {
        ++stats.pruned_active;
        so.prune(FlightPruneRule::kBound, item.state.count(), item.lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(
              sh.ctx, item.state,
              bound_cut_rule(sh.ctx, item.state, sh.params.lb,
                             pop_threshold),
              item.lb);
        }
        continue;
      }
      try {
        expand(sh, inc, item, local, stats, so);
      } catch (const std::bad_alloc&) {
        // Injected or genuine allocation failure mid-expansion: surface
        // it as the budget cliff. The dive loop's stop branch disposes
        // whatever is left on the private stack on the next iteration.
        sh.request_stop(TerminationReason::kBudget);
        continue;
      }
      stats.peak_active = std::max(stats.peak_active, local.size());
      stats.peak_memory_bytes = std::max(
          stats.peak_memory_bytes, local.capacity() * sizeof(WorkItem));
      // Amortized metrics flush, mirroring the sequential engine's
      // 256-expansion polling cadence.
      if ((++iter & 0xFFu) == 0) {
        const std::uint64_t gen =
            sh.generated.load(std::memory_order_relaxed);
        so.budget_checkpoint(static_cast<std::int64_t>(gen));
        if (sh.params.progress) {
          sh.params.progress->store(gen, std::memory_order_relaxed);
        }
        if (sh.params.faults) sh.params.faults->at_poll(gen);
        sh.maybe_degrade(self, local.capacity() * sizeof(WorkItem), stats,
                         so);
        so.flush(stats);
        if (sh.params.ckpt != nullptr) {
          const std::uint64_t e =
              sh.ckpt_epoch.load(std::memory_order_acquire);
          if (e != ckpt_seen) {
            // The just-expanded vertex's survivors are all on `local`, so
            // the private stack IS this worker's live frontier.
            ckpt_seen = e;
            sh.ckpt_dumps[self].items.assign(local.begin(), local.end());
            sh.ckpt_arrive_and_pause(self, e, stats);
          }
        }
      }

      // Donate the shallowest half when the queue is dry and peers starve.
      if (local.size() >= 2 &&
          sh.queue_hint.load(std::memory_order_relaxed) == 0) {
        std::unique_lock lock(sh.queue_mutex, std::try_to_lock);
        if (lock.owns_lock() && sh.queue.empty() && sh.idle > 0) {
          const std::size_t donate = local.size() / 2;
          for (std::size_t i = 0; i < donate; ++i)
            sh.queue.push_back(std::move(local[i]));
          local.erase(local.begin(),
                      local.begin() + static_cast<std::ptrdiff_t>(donate));
          sh.queue_hint.store(sh.queue.size(), std::memory_order_relaxed);
          sh.queue_cv.notify_all();
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler (ParallelScheduler::kWorkStealing).
// ---------------------------------------------------------------------------

/// One search-tree vertex. Lives in a per-worker NodeSlab; the deques store
/// pointers, so a steal moves 8 bytes instead of a ~250-byte state copy.
/// `next_free` threads a slab freelist while the node is dead.
struct WsNode {
  PartialSchedule state;
  Time lb = 0;
  WsNode* next_free = nullptr;
};

/// Per-worker slab allocator: nodes come from chunked arrays, dead nodes go
/// on a freelist. Strictly single-threaded — only the owning worker
/// allocates from or releases into it. A *stolen* node is released into the
/// thief's slab, which is safe because the node's chunk belongs to the
/// allocating slab and every slab outlives every worker (they are owned by
/// WsControl, destroyed after the joins). No lock anywhere on the
/// allocation path.
class NodeSlab {
 public:
  WsNode* alloc() {
    if (free_list_ != nullptr) {
      WsNode* const n = free_list_;
      free_list_ = n->next_free;
      return n;
    }
    if (next_ == kChunkNodes) {
      chunks_.push_back(std::make_unique<WsNode[]>(kChunkNodes));
      next_ = 0;
    }
    return &chunks_.back()[next_++];
  }

  void release(WsNode* n) noexcept {
    n->next_free = free_list_;
    free_list_ = n;
  }

  /// Bytes resident in this slab's chunks (freelisted nodes included; a
  /// node released cross-slab is counted by its allocating slab).
  std::size_t memory_bytes() const noexcept {
    return chunks_.size() * kChunkNodes * sizeof(WsNode);
  }

 private:
  static constexpr std::size_t kChunkNodes = 128;
  std::vector<std::unique_ptr<WsNode[]>> chunks_;
  std::size_t next_ = kChunkNodes;  ///< next unused slot in chunks_.back()
  WsNode* free_list_ = nullptr;
};

/// Shared work-stealing scheduler state: one deque + one slab per worker,
/// the idle/termination counter, and the park bench for starved workers.
struct WsControl {
  WsControl(int threads, int batch_cap) : steal_cap(batch_cap) {
    deques.reserve(static_cast<std::size_t>(threads));
    slabs.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      deques.push_back(std::make_unique<WsDeque<WsNode*>>());
      slabs.push_back(std::make_unique<NodeSlab>());
    }
  }

  std::vector<std::unique_ptr<WsDeque<WsNode*>>> deques;
  std::vector<std::unique_ptr<NodeSlab>> slabs;
  const int steal_cap;  ///< ParallelParams::steal_batch (0 = uncapped half)

  /// Workers currently holding no vertex. The termination protocol's only
  /// invariant: a worker counted here never holds work — it decrements
  /// BEFORE attempting a steal and re-increments only after the whole
  /// sweep failed (same discipline as Shared::idle, without the lock).
  alignas(64) std::atomic<int> idle{0};
  std::atomic<bool> done{false};  ///< search exhausted (terminal)

  /// Starved workers park here on a *timed* wait, so a missed notify (the
  /// wakers deliberately notify without holding the mutex) costs at most
  /// one park period, not a hang.
  std::mutex park_mutex;
  std::condition_variable park_cv;
};

/// Work-stealing worker. Dives depth-first on its own deque (owner LIFO);
/// when dry, steals a batch from the top of a random victim (thief FIFO —
/// the shallowest vertices, whose subtrees amortize the steal best).
///
/// Termination: `ctl.idle` counts workers holding no vertex. A worker may
/// declare `done` only after (1) reading every deque empty, (2) a seq_cst
/// fence, (3) reading idle == threads, and (4) re-reading every deque
/// empty. Any vertex still alive is either in a deque — contradicting (1)
/// or (4), since an owner only goes idle with its own deque drained — or in
/// the hands of a worker that decremented `idle` before claiming it —
/// contradicting (3). See docs/algorithm.md for the full argument.
void ws_worker_loop(Shared& sh, WsControl& ctl, const std::size_t self,
                    SearchStats& stats, SearchObs& so) {
  WsDeque<WsNode*>& mine = *ctl.deques[self];
  NodeSlab& slab = *ctl.slabs[self];
  const std::size_t nworkers = ctl.deques.size();
  IncrementalLB inc(sh.ctx);  // private scratch: no shared mutable state
  std::vector<WsNode*> staged;  // children of the current expansion
  std::vector<WsNode*> loot;    // steal batch buffer
  std::minstd_rand rng(static_cast<std::minstd_rand::result_type>(
      self * 2654435761u + 1));
  std::uint64_t iter = 0;
  std::uint64_t ckpt_seen = 0;  // last checkpoint epoch this worker joined

  const auto pop_own = [&]() -> WsNode* {
    WsNode* n = nullptr;
    return mine.pop_bottom(n) ? n : nullptr;
  };
  const auto finish = [&] {
    if (sh.params.ckpt != nullptr) {
      sh.ckpt_alive.fetch_sub(1, std::memory_order_relaxed);
    }
    stats.peak_memory_bytes = std::max(
        stats.peak_memory_bytes, slab.memory_bytes() + mine.memory_bytes());
    so.deque_depth(0);
    so.flush(stats);
  };
  /// Checkpoint barrier (Shared::CkptDump): copy the in-hand vertex plus
  /// the owned deque into this worker's dump slot — pop-all / push-back
  /// restores the deque order; a concurrent thief may shrink what we see,
  /// in which case the items travel in the thief's dump instead — then
  /// arrive and pause until the supervisor has serialized.
  const auto ckpt_join = [&](std::uint64_t epoch, WsNode* in_hand) {
    ckpt_seen = epoch;
    std::vector<WorkItem>& out = sh.ckpt_dumps[self].items;
    out.clear();
    if (in_hand != nullptr) {
      out.push_back(WorkItem{in_hand->state, in_hand->lb});
    }
    loot.clear();
    for (WsNode* n = pop_own(); n != nullptr; n = pop_own()) {
      loot.push_back(n);
      out.push_back(WorkItem{n->state, n->lb});
    }
    for (auto it = loot.rbegin(); it != loot.rend(); ++it) {
      mine.push_bottom(*it);
    }
    loot.clear();
    sh.ckpt_arrive_and_pause(self, epoch, stats);
  };

  WsNode* cur = pop_own();
  for (;;) {
    // ---- dive: depth-first on the owned deque --------------------------
    while (cur != nullptr) {
      if (sh.should_stop()) {
        std::uint64_t dumped = 1;  // the in-hand vertex
        slab.release(cur);
        cur = nullptr;
        for (WsNode* n = pop_own(); n != nullptr; n = pop_own()) {
          slab.release(n);
          ++dumped;
        }
        stats.disposed += dumped;
        so.dispose(static_cast<std::int64_t>(dumped));
        break;
      }
      const Time pop_threshold = sh.threshold();
      if (sh.params.elim == ElimRule::kUDBAS && cur->lb >= pop_threshold) {
        ++stats.pruned_active;
        so.prune(FlightPruneRule::kBound, cur->state.count(), cur->lb);
        if (sh.params.certify) {
          sh.params.certify->record_cut(
              sh.ctx, cur->state,
              bound_cut_rule(sh.ctx, cur->state, sh.params.lb,
                             pop_threshold),
              cur->lb);
        }
        slab.release(cur);
        cur = pop_own();
        continue;
      }
      staged.clear();
      bool alloc_failed = false;
      try {
        expand_children(sh, inc, cur->state, cur->lb, stats, so,
                        [&](const PartialSchedule& s, Time lb) {
                          WsNode* const n = slab.alloc();
                          n->state = s;
                          n->lb = lb;
                          staged.push_back(n);
                        });
      } catch (const std::bad_alloc&) {
        // Injected or genuine allocation failure mid-expansion: children
        // staged before the throw go back to the slab, and the budget
        // cliff stops the search (the stop branch drains the deque).
        sh.request_stop(TerminationReason::kBudget);
        for (WsNode* const n : staged) slab.release(n);
        staged.clear();
        alloc_failed = true;
      }
      slab.release(cur);
      if (alloc_failed) {
        cur = pop_own();
        continue;
      }
      if (sh.params.sort_children) {
        // Worst bound pushed first: the owner's next pop gets the best
        // child, thieves at the top get the worst (and shallowest).
        std::sort(staged.begin(), staged.end(),
                  [](const WsNode* a, const WsNode* b) {
                    return a->lb > b->lb;
                  });
      }
      // The best child stays in hand — it is the vertex this worker dives
      // into next anyway, so round-tripping it through the deque would buy
      // nothing but a push plus a fenced pop per expansion.
      cur = nullptr;
      if (!staged.empty()) {
        cur = staged.back();
        staged.pop_back();
      }
      for (WsNode* const n : staged) mine.push_bottom(n);
      if (!staged.empty() &&
          ctl.idle.load(std::memory_order_relaxed) > 0) {
        ctl.park_cv.notify_one();  // deliberately lock-free; timed park
                                   // bounds a missed wakeup
      }
      // Amortized flush, mirroring the 256-expansion polling cadence.
      // peak_active is sampled here too: exact tracking would cost two
      // atomic loads per expansion, and the parallel peaks are documented
      // as approximate sums anyway.
      if ((++iter & 0xFFu) == 0) {
        const std::size_t depth = mine.size_hint() + 1;  // + the in-hand one
        stats.peak_active = std::max(stats.peak_active, depth);
        const std::uint64_t gen =
            sh.generated.load(std::memory_order_relaxed);
        so.budget_checkpoint(static_cast<std::int64_t>(gen));
        if (sh.params.progress) {
          sh.params.progress->store(gen, std::memory_order_relaxed);
        }
        if (sh.params.faults) sh.params.faults->at_poll(gen);
        so.deque_depth(static_cast<std::int64_t>(depth - 1));
        stats.peak_memory_bytes =
            std::max(stats.peak_memory_bytes,
                     slab.memory_bytes() + mine.memory_bytes());
        sh.maybe_degrade(self, slab.memory_bytes() + mine.memory_bytes(),
                         stats, so);
        so.flush(stats);
        if (sh.params.ckpt != nullptr) {
          const std::uint64_t e =
              sh.ckpt_epoch.load(std::memory_order_acquire);
          if (e != ckpt_seen) ckpt_join(e, cur);
        }
      }
      if (cur == nullptr) cur = pop_own();
    }

    // ---- forage: steal work or detect termination ----------------------
    ctl.idle.fetch_add(1, std::memory_order_seq_cst);
    int spins = 0;
    while (cur == nullptr) {
      if (sh.stop.load(std::memory_order_relaxed) ||
          ctl.done.load(std::memory_order_acquire)) {
        finish();
        return;  // exits counted idle; caller asserts idle == threads
      }
      if (sh.params.ckpt != nullptr) {
        const std::uint64_t e =
            sh.ckpt_epoch.load(std::memory_order_acquire);
        if (e != ckpt_seen) {
          ckpt_join(e, nullptr);  // foraging: empty-handed, deque drained
          continue;
        }
      }
      // Glance: is any work visible? A mere look needs no idle bookkeeping.
      bool saw_work = false;
      for (std::size_t v = 0; v < nworkers && !saw_work; ++v) {
        saw_work = v != self && !ctl.deques[v]->empty_hint();
      }
      if (saw_work) {
        // Leave the idle count BEFORE touching any vertex: the termination
        // declarer reads `idle` after its empty sweep, so a worker counted
        // idle must never hold work (WsControl::idle invariant).
        ctl.idle.fetch_sub(1, std::memory_order_seq_cst);
        const std::size_t start =
            static_cast<std::size_t>(rng()) % nworkers;
        for (std::size_t off = 0; off < nworkers && cur == nullptr; ++off) {
          const std::size_t v = (start + off) % nworkers;
          if (v == self) continue;
          WsDeque<WsNode*>& victim = *ctl.deques[v];
          const std::size_t hint = victim.size_hint();
          if (hint == 0) continue;
          ++stats.steals_attempted;
          // Steal half (rounded up, min 1), capped by the knob.
          std::size_t take = hint - hint / 2;
          if (ctl.steal_cap > 0) {
            take = std::min(take, static_cast<std::size_t>(ctl.steal_cap));
          }
          loot.resize(take);
          const std::size_t got = victim.steal_batch(loot.data(), take);
          if (got == 0) continue;  // lost the race or victim drained
          ++stats.steals_succeeded;
          so.steal(static_cast<int>(v), static_cast<std::int64_t>(got));
          cur = loot[0];
          for (std::size_t i = 1; i < got; ++i) mine.push_bottom(loot[i]);
          if (got > 1 && ctl.idle.load(std::memory_order_relaxed) > 0) {
            ctl.park_cv.notify_one();
          }
        }
        if (cur == nullptr) {
          // Whole sweep came back empty-handed: rejoin the idle count.
          ctl.idle.fetch_add(1, std::memory_order_seq_cst);
        }
        continue;  // dive if cur, else retry with termination checks
      }
      // Nothing visible anywhere: the glance above read every deque empty.
      // Declare termination only if every worker is still idle AFTER that
      // sweep, the stop flag stayed clear, and a re-sweep agrees. The
      // seq_cst RMW read of `idle` doubles as the full barrier ordering
      // the glance before the count (an RMW so the ordering is modeled by
      // TSan, which cannot see standalone fences).
      if (ctl.idle.fetch_add(0, std::memory_order_seq_cst) ==
              static_cast<int>(nworkers) &&
          !sh.stop.load(std::memory_order_relaxed)) {
        bool still_empty = true;
        for (std::size_t v = 0; v < nworkers && still_empty; ++v) {
          still_empty = ctl.deques[v]->empty_hint();
        }
        if (still_empty) {
          ctl.done.store(true, std::memory_order_release);
          ctl.park_cv.notify_all();
          finish();
          return;
        }
      }
      if (++spins < 32) {
        std::this_thread::yield();
      } else {
        std::unique_lock lock(ctl.park_mutex);
        ctl.park_cv.wait_for(lock, std::chrono::microseconds(200));
      }
    }
    ctl.park_cv.notify_one();  // we left idle with work in hand; nudge a peer
  }
}

}  // namespace

std::string to_string(ParallelScheduler s) {
  switch (s) {
    case ParallelScheduler::kWorkStealing: return "ws";
    case ParallelScheduler::kCentralQueue: return "central";
  }
  return "?";
}

ParallelResult solve_bnb_parallel(const SchedContext& ctx,
                                  const ParallelParams& pp) {
  Stopwatch watch;
  ParallelResult result;

  int threads = pp.threads;
  if (threads <= 0) {
    threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  result.threads_used = threads;

  Shared sh(ctx, pp.base);
  sh.total_threads = threads;
  sh.init_ladder(threads);

  // --- Crash-safe checkpoint/resume (ckpt/snapshot.hpp). Both paths are
  // gated on their Params pointer: with ckpt == resume == nullptr nothing
  // below touches the quiesce state and the run is byte-identical to a
  // checkpoint-less build.
  const std::uint64_t instance_fp =
      (pp.base.ckpt != nullptr || pp.base.resume != nullptr)
          ? instance_fingerprint(ctx, pp.base)
          : 0;
  SearchStats resume_base;      // accounting carried over from the snapshot
  double resume_seconds = 0.0;  // wall time earlier incarnations spent
  if (pp.base.ckpt != nullptr) {
    sh.ckpt_dumps.resize(static_cast<std::size_t>(threads));
    sh.ckpt_alive.store(threads, std::memory_order_relaxed);
  }

  if (pp.base.certify) {
    pp.base.certify->begin(ctx, static_cast<int>(pp.base.lb),
                           pp.base.branch == BranchRule::kBFn, pp.base.br,
                           describe(pp.base));
  }

  // Initial upper bound U (a resumed run restores the snapshot's
  // incumbent below instead).
  Schedule initial_best;
  if (pp.base.resume == nullptr) {
    switch (pp.base.ub) {
      case UpperBoundInit::kInfinite:
        break;
      case UpperBoundInit::kFromEDF: {
        const EdfResult edf = schedule_edf(ctx);
        sh.incumbent.store(edf.max_lateness);
        initial_best = edf.schedule;
        result.found_solution = true;
        break;
      }
      case UpperBoundInit::kExplicit:
        sh.incumbent.store(pp.base.explicit_ub);
        break;
    }
  }

  // Seeding: breadth-first expansion until one frontier item per worker.
  // Flight channel 0 belongs to this phase; workers use channels 1..N.
  // A resumed run skips the expansion and seeds the pool with the
  // snapshot's frontier verbatim.
  SearchStats seed_stats;
  SearchObs seed_so;
  seed_so.bind(pp.base.observe, /*channel=*/0);
  std::deque<WorkItem> seeds;
  if (pp.base.resume != nullptr) {
    const SearchSnapshot& snap = *pp.base.resume;
    PARABB_REQUIRE(snap.instance == instance_fp,
                   "resume snapshot was written for a different instance "
                   "or parameter set");
    // Incumbent and accumulated accounting.
    sh.incumbent.store(snap.incumbent_cost);
    if (snap.found) {
      initial_best = Schedule::from_entries(ctx.task_count(), snap.incumbent);
      result.found_solution = true;
    }
    resume_base = snap.stats;
    resume_seconds = snap.stats.seconds;
    resume_base.seconds = 0.0;
    // The generated budget keeps counting across restarts, and fault
    // injection points stay aligned with the uninterrupted run.
    sh.generated.store(snap.stats.generated);
    // Replay the degradation rungs the interrupted run had already fired,
    // without re-counting them (stats/certificate carry them already).
    if (sh.ladder_on) {
      const int replay =
          std::min(snap.degrade_level, sh.degrade_sched.count);
      for (int lvl = 0; lvl < replay; ++lvl) {
        switch (sh.degrade_sched.rungs[static_cast<std::size_t>(lvl)]
                    .action) {
          case DegradeAction::kShedTT:
            sh.tt_live.store(nullptr, std::memory_order_relaxed);
            if (sh.tt) sh.tt->clear();
            break;
          case DegradeAction::kTightenDB:
            sh.effective_children.store(
                std::max(1, ctx.proc_count() *
                                pp.base.degrade.tightened_children_per_proc),
                std::memory_order_relaxed);
            sh.degraded_incomplete.store(true, std::memory_order_relaxed);
            break;
          case DegradeAction::kBF1: {
            BranchRule expected = BranchRule::kBFn;
            sh.effective_branch.compare_exchange_strong(
                expected, BranchRule::kBF1, std::memory_order_relaxed);
            sh.degraded_incomplete.store(true, std::memory_order_relaxed);
            break;
          }
          case DegradeAction::kDF:
            sh.effective_branch.store(BranchRule::kDF,
                                      std::memory_order_relaxed);
            sh.degraded_incomplete.store(true, std::memory_order_relaxed);
            break;
        }
      }
      sh.degrade_level.store(replay, std::memory_order_relaxed);
    }
    if (snap.compromised) {
      sh.degraded_incomplete.store(true, std::memory_order_relaxed);
    }
    // Transposition survivors: preloading only accelerates pruning; a
    // lost entry merely re-explores a subtree, so partial restores are
    // sound. The snapshot's counters fold in so counters() (and the
    // final stats.tt_*) keep accumulating across restarts.
    if (TranspositionTable* const t = sh.table();
        t != nullptr && snap.tt_present) {
      t->add_counters(snap.tt_counters);
      for (const SnapshotTTEntry& e : snap.tt_entries)
        t->preload(replay_path(ctx, e.path), e.lb);
    }
    // Certificate continuity: the resumed builder carries every cut of
    // every incarnation, so the final certificate audits the whole search.
    if (pp.base.certify && snap.cert_present) {
      pp.base.certify->restore_state(snap.cert_cuts, snap.cert_degrades,
                                     snap.cert_truncated);
    }
    for (const SnapshotVertex& sv : snap.frontier) {
      seeds.push_back(
          WorkItem{replay_path(ctx, sv.path), static_cast<Time>(sv.lb)});
    }
    seed_so.checkpoint_restored(
        static_cast<std::int64_t>(snap.frontier.size()));
  } else {
    IncrementalLB seed_inc(ctx);
    WorkItem root;
    root.state = PartialSchedule::empty(ctx);
    root.lb = lower_bound_cost(ctx, root.state, pp.base.lb);
    seeds.push_back(std::move(root));
    std::vector<WorkItem> buf;
    while (!seeds.empty() &&
           seeds.size() < static_cast<std::size_t>(threads) * 4) {
      if (sh.should_stop()) break;
      const WorkItem item = std::move(seeds.front());
      seeds.pop_front();
      const Time seed_threshold = sh.threshold();
      if (pp.base.elim == ElimRule::kUDBAS && item.lb >= seed_threshold) {
        ++seed_stats.pruned_active;
        seed_so.prune(FlightPruneRule::kBound, item.state.count(), item.lb);
        if (pp.base.certify) {
          pp.base.certify->record_cut(
              ctx, item.state,
              bound_cut_rule(ctx, item.state, pp.base.lb, seed_threshold),
              item.lb);
        }
        continue;
      }
      buf.clear();
      try {
        expand(sh, seed_inc, item, buf, seed_stats, seed_so);
      } catch (const std::bad_alloc&) {
        sh.request_stop(TerminationReason::kBudget);
        break;
      }
      for (WorkItem& w : buf) seeds.push_back(std::move(w));
      seed_stats.peak_memory_bytes =
          std::max(seed_stats.peak_memory_bytes,
                   seeds.size() * sizeof(WorkItem));
    }
  }
  seed_so.flush(seed_stats);

  const bool ws = pp.scheduler == ParallelScheduler::kWorkStealing;
  std::uint64_t leftover_disposed = 0;
  if (!seeds.empty()) {
    std::vector<SearchStats> per_thread(static_cast<std::size_t>(threads));
    std::vector<SearchObs> per_obs(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      per_obs[static_cast<std::size_t>(i)].bind(
          pp.base.observe, /*channel=*/static_cast<std::size_t>(i) + 1);
      if (ws) {
        per_obs[static_cast<std::size_t>(i)].bind_deque_depth(
            pp.base.observe, static_cast<std::size_t>(i));
      }
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    const double limit = pp.base.rb.time_limit_s;
    const bool supervise =
        std::isfinite(limit) || pp.base.ckpt != nullptr;

    // Serializes the quiesced state and writes it atomically to
    // params.ckpt->path(). Runs with every live worker arrived-and-paused,
    // so the dump slots (and, for the central queue, sh.queue) together
    // hold the complete frontier. A failed write is recorded and survived.
    const auto ckpt_serialize = [&](bool central_queue) {
      SearchSnapshot snap;
      snap.instance = instance_fp;
      snap.engine = SnapshotEngine::kParallel;
      {
        const std::lock_guard lock(sh.best_mutex);
        snap.incumbent_cost = sh.incumbent.load(std::memory_order_relaxed);
        if (sh.found) {
          const Schedule best = Schedule::from_partial(ctx, sh.best_state);
          snap.found = true;
          for (TaskId t = 0; t < ctx.task_count(); ++t)
            snap.incumbent.push_back(best.entry(t));
        } else if (result.found_solution) {
          snap.found = true;  // the EDF (or resumed) seed still stands
          for (TaskId t = 0; t < ctx.task_count(); ++t)
            snap.incumbent.push_back(initial_best.entry(t));
        }
      }
      const std::uint64_t epoch =
          sh.ckpt_epoch.load(std::memory_order_relaxed);
      SearchStats agg = resume_base;
      merge_search_stats(agg, seed_stats);
      std::uint32_t seq = 0;
      for (const Shared::CkptDump& d : sh.ckpt_dumps) {
        if (d.epoch != epoch) continue;  // worker exited before this epoch
        merge_search_stats(agg, d.stats);
        for (const WorkItem& w : d.items) {
          snap.frontier.push_back(
              SnapshotVertex{placement_path(ctx, w.state), w.lb, seq++});
        }
      }
      if (central_queue) {
        const std::lock_guard lock(sh.queue_mutex);
        for (const WorkItem& w : sh.queue) {
          snap.frontier.push_back(
              SnapshotVertex{placement_path(ctx, w.state), w.lb, seq++});
        }
      }
      snap.next_seq = seq;
      if (TranspositionTable* const t = sh.table(); t != nullptr) {
        snap.tt_present = true;
        snap.tt_counters = t->counters();
        agg.tt_hits = snap.tt_counters.hits;
        agg.tt_misses = snap.tt_counters.misses;
        agg.tt_evictions =
            snap.tt_counters.evictions + snap.tt_counters.rejected;
        agg.tt_collisions = snap.tt_counters.collisions;
        t->for_each_entry([&](const PartialSchedule& s, Time lb) {
          if (snap.tt_entries.size() < kSnapshotTTCap) {
            snap.tt_entries.push_back(
                SnapshotTTEntry{placement_path(ctx, s), lb});
          }
        });
      }
      agg.seconds = resume_seconds + watch.seconds();
      snap.stats = agg;
      snap.degrade_level = sh.degrade_level.load(std::memory_order_relaxed);
      snap.compromised =
          sh.degraded_incomplete.load(std::memory_order_relaxed);
      snap.compromise_floor = snap.compromised ? kTimeNegInf : kTimeInf;
      if (pp.base.certify) {
        snap.cert_present = true;
        pp.base.certify->export_state(snap.cert_cuts, snap.cert_degrades,
                                      snap.cert_truncated);
        if (snap.cert_cuts.size() > kSnapshotCutCap) {
          snap.cert_cuts.resize(kSnapshotCutCap);
          snap.cert_truncated = true;
        }
      }
      try {
        const std::size_t bytes =
            save_snapshot(pp.base.ckpt->path(), snap);
        pp.base.ckpt->note_written(bytes);
        seed_so.checkpoint_written(static_cast<std::int64_t>(bytes));
      } catch (const SnapshotError&) {
        pp.base.ckpt->note_failed();
      }
    };

    // Quiesce barrier: bump the epoch (under queue_mutex, so a central
    // worker checking its wait predicate cannot miss the wakeup), wait for
    // every live worker to dump and pause, serialize, release. Aborts —
    // without writing — if the search ends mid-quiesce; the final result
    // supersedes any snapshot.
    const auto ckpt_quiesce = [&](const std::function<bool()>& search_done,
                                  bool central_queue) {
      const std::uint64_t epoch =
          sh.ckpt_epoch.load(std::memory_order_relaxed) + 1;
      sh.ckpt_arrived.store(0, std::memory_order_relaxed);
      {
        const std::lock_guard lock(sh.queue_mutex);
        sh.ckpt_epoch.store(epoch, std::memory_order_release);
      }
      sh.queue_cv.notify_all();
      bool complete = true;
      while (sh.ckpt_arrived.load(std::memory_order_acquire) <
             sh.ckpt_alive.load(std::memory_order_relaxed)) {
        if (search_done() || sh.stop.load(std::memory_order_relaxed)) {
          complete = false;
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      if (complete) ckpt_serialize(central_queue);
      sh.ckpt_released.store(epoch, std::memory_order_release);
    };

    if (ws) {
      WsControl ctl(threads, pp.steal_batch);
      // Round-robin seed distribution. Each worker's share is pushed in
      // reverse, so its first pop_bottom yields its earliest (breadth-
      // first-order) seed — matching the central queue's pop_front.
      {
        std::vector<std::vector<WsNode*>> share(
            static_cast<std::size_t>(threads));
        std::size_t k = 0;
        for (const WorkItem& w : seeds) {
          const std::size_t who = k++ % static_cast<std::size_t>(threads);
          WsNode* const n = ctl.slabs[who]->alloc();
          n->state = w.state;
          n->lb = w.lb;
          share[who].push_back(n);
        }
        for (std::size_t who = 0; who < share.size(); ++who) {
          for (auto it = share[who].rbegin(); it != share[who].rend(); ++it) {
            ctl.deques[who]->push_bottom(*it);
          }
        }
      }
      for (int i = 0; i < threads; ++i) {
        pool.emplace_back([&sh, &ctl, &per_thread, &per_obs, i] {
          ws_worker_loop(sh, ctl, static_cast<std::size_t>(i),
                         per_thread[static_cast<std::size_t>(i)],
                         per_obs[static_cast<std::size_t>(i)]);
        });
      }
      // Time-limit / checkpoint supervisor (main thread); cancellation and
      // the generated budget are polled by the workers
      // (Shared::should_stop).
      if (supervise) {
        while (!ctl.done.load() && !sh.stop.load()) {
          double elapsed = resume_seconds + watch.seconds();
          if (pp.base.faults) {
            elapsed += pp.base.faults->clock_skew_s(
                sh.generated.load(std::memory_order_relaxed));
          }
          if (elapsed >= limit) {
            sh.request_stop(TerminationReason::kTimeLimit);
            break;
          }
          if (pp.base.ckpt != nullptr && pp.base.ckpt->due()) {
            ckpt_quiesce([&] { return ctl.done.load(); },
                         /*central_queue=*/false);
            // A SIGTERM-driven request_now(stop_after) winds the search
            // down only after its state reached the disk.
            if (pp.base.ckpt->stop_requested()) {
              sh.request_stop(TerminationReason::kCancelled);
              break;
            }
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      for (auto& th : pool) th.join();
      // Every exit path leaves the worker counted idle — the same
      // invariant the central queue keeps under its mutex.
      PARABB_ASSERT(ctl.idle.load() == threads);
      // An early stop can leave stolen-then-abandoned vertices behind;
      // count them like the central queue's leftovers. After the joins the
      // main thread is the sole accessor, so owner ops are safe here.
      for (const auto& d : ctl.deques) {
        WsNode* n = nullptr;
        while (d->pop_bottom(n)) ++leftover_disposed;
      }
      PARABB_ASSERT(sh.stop.load() || leftover_disposed == 0);
    } else {
      for (WorkItem& w : seeds) sh.queue.push_back(std::move(w));
      sh.queue_hint.store(sh.queue.size());
      for (int i = 0; i < threads; ++i) {
        pool.emplace_back([&sh, &per_thread, &per_obs, i] {
          worker_loop(sh, static_cast<std::size_t>(i),
                      per_thread[static_cast<std::size_t>(i)],
                      per_obs[static_cast<std::size_t>(i)]);
        });
      }
      if (supervise) {
        const auto central_done = [&] {
          const std::lock_guard lock(sh.queue_mutex);
          return sh.done;
        };
        for (;;) {
          if (central_done()) break;
          double elapsed = resume_seconds + watch.seconds();
          if (pp.base.faults) {
            elapsed += pp.base.faults->clock_skew_s(
                sh.generated.load(std::memory_order_relaxed));
          }
          if (elapsed >= limit) {
            sh.request_stop(TerminationReason::kTimeLimit);
            break;
          }
          if (pp.base.ckpt != nullptr && pp.base.ckpt->due()) {
            ckpt_quiesce(central_done, /*central_queue=*/true);
            if (pp.base.ckpt->stop_requested()) {
              sh.request_stop(TerminationReason::kCancelled);
              break;
            }
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      for (auto& th : pool) th.join();
      {
        const std::lock_guard lock(sh.queue_mutex);
        PARABB_ASSERT(sh.idle == threads);
      }
    }
    for (const SearchStats& s : per_thread) {
      merge_search_stats(result.stats, s);
    }
  }
  merge_search_stats(result.stats, seed_stats);
  // Accounting carried over from a resumed snapshot (zero otherwise); the
  // tt_* fields are overwritten from the shared table's absolute counters
  // below, which already fold the snapshot's in (add_counters).
  merge_search_stats(result.stats, resume_base);
  // Work left behind by an early stop — seeds never handed to a worker
  // pool (central queue) or vertices abandoned in deques (work stealing) —
  // was disposed of, the same way worker-local leftovers are counted
  // inside the worker loops.
  const std::uint64_t queue_disposed =
      (sh.stop.load() ? sh.queue.size() : 0) + leftover_disposed;
  result.stats.disposed += queue_disposed;
  const TerminationReason reason = sh.stop.load()
                                       ? sh.stop_reason.load()
                                       : TerminationReason::kExhausted;

  result.best_cost = sh.incumbent.load();
  if (sh.found) {
    result.found_solution = true;
    result.best = Schedule::from_partial(ctx, sh.best_state);
  } else if (result.found_solution) {
    result.best = std::move(initial_best);  // the EDF seed stands
  }
  result.reason = reason;
  result.proved = result.found_solution && !is_interrupted(reason) &&
                  pp.base.branch == BranchRule::kBFn &&
                  !sh.degraded_incomplete.load(std::memory_order_relaxed);
  if (pp.base.certify) {
    pp.base.certify->finish(result.found_solution, result.best,
                            result.best_cost, result.proved,
                            result.stats.expanded, result.stats.generated);
  }
  if (sh.tt) {
    const TranspositionCounters tc = sh.tt->counters();
    result.stats.tt_hits = tc.hits;
    result.stats.tt_misses = tc.misses;
    result.stats.tt_evictions = tc.evictions + tc.rejected;
    result.stats.tt_collisions = tc.collisions;
  }
  result.stats.seconds = resume_seconds + watch.seconds();
  // Workers and the seed phase flushed their own counters; publish the
  // remainder that only exists post-merge (leftovers disposed by an early
  // stop, shared-table totals).
  if (pp.base.observe) {
    SearchObs fin;
    fin.bind(pp.base.observe, /*channel=*/0, /*with_flight=*/false);
    // A resumed run's table totals include the snapshot's folded-in base;
    // seed the baseline so the registry only receives this incarnation's
    // delta (the base was published by the run that earned it).
    if (pp.base.resume != nullptr && pp.base.resume->tt_present &&
        sh.table() != nullptr) {
      SearchStats base;
      base.tt_hits = pp.base.resume->stats.tt_hits;
      base.tt_misses = pp.base.resume->stats.tt_misses;
      base.tt_evictions = pp.base.resume->stats.tt_evictions;
      base.tt_collisions = pp.base.resume->stats.tt_collisions;
      fin.seed(base);
    }
    SearchStats rem;
    rem.disposed = queue_disposed;
    rem.tt_hits = result.stats.tt_hits;
    rem.tt_misses = result.stats.tt_misses;
    rem.tt_evictions = result.stats.tt_evictions;
    rem.tt_collisions = result.stats.tt_collisions;
    rem.peak_active = result.stats.peak_active;
    rem.peak_memory_bytes = result.stats.peak_memory_bytes;
    fin.flush(rem);
  }
  return result;
}

}  // namespace parabb
