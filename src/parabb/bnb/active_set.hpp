// The active set AS and the three vertex selection rules S (paper §3.2).
//
//  * LIFO — stack (newest first): depth-first dives that reach goal
//    vertices quickly and keep the set small; pop order matches the pool's
//    allocation locality (the §6 paging observation).
//  * FIFO — queue (oldest first): breadth-first; kept for completeness.
//  * LLB  — binary min-heap on the lower bound. Tie-breaking among equal
//    bounds is configurable and matters enormously in practice: integer
//    lateness costs make large plateaus of equal-bound vertices, and
//    oldest-first ties (the natural "textbook" heap behaviour) wander
//    those plateaus breadth-first, while newest-first ties degenerate LLB
//    into a LIFO dive (see bench/ablation_llbtie).
//
// U/DBAS elimination is *eager*: prune_worse() walks the container,
// releases every vertex whose bound can no longer beat the incumbent, and
// compacts storage — so size() is an exact measure of AS memory (MAXSZAS).
#pragma once

#include <deque>
#include <functional>

#include "parabb/bnb/params.hpp"
#include "parabb/bnb/vertex.hpp"

namespace parabb {

class ActiveSet {
 public:
  /// `release` is invoked for every entry removed by prune_worse /
  /// dispose_worst (it should free the pool slot). `llb_tie_newest`
  /// selects the LLB tie-breaking policy (ignored by LIFO/FIFO).
  ActiveSet(SelectRule rule, std::function<void(SlotRef)> release,
            bool llb_tie_newest = false);

  void push(const VertexEntry& e);

  /// Selects and removes the next vertex per the selection rule.
  /// Precondition: !empty().
  VertexEntry pop();

  /// Peeks the entry pop() would return (LLB stop-condition check).
  const VertexEntry& peek() const;

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Least lower bound among all entries (O(1) for LLB, O(n) otherwise).
  /// Precondition: !empty(). Used for optimality-gap certificates.
  Time min_lb() const;

  /// E_U/DBAS applied to AS: removes every entry with lb >= threshold.
  /// Returns the number pruned.
  std::size_t prune_worse(Time threshold);

  /// RB.MAXSZAS overflow handling: disposes the `count` entries with the
  /// largest bounds (ties resolved oldest-first). Returns the number
  /// disposed (== count unless the set is smaller).
  std::size_t dispose_worst(std::size_t count);

  /// Read-only view of every live entry in container order (LIFO/FIFO:
  /// insertion order; LLB: heap order — an arbitrary but complete
  /// enumeration). The checkpoint writer (ckpt/snapshot.hpp) walks this
  /// to serialize the frontier; re-pushing the entries in this order
  /// reconstructs an equivalent active set.
  const std::deque<VertexEntry>& entries() const noexcept {
    return entries_;
  }

  /// Degradation-ladder support (robust/degrade.hpp, kDF rung): switch
  /// selection to LIFO so the search degenerates into a depth-first dive
  /// that reaches leaves — and therefore incumbents — under memory
  /// pressure. Existing entries keep their container order (for a heap,
  /// an arbitrary but valid order); newly pushed children pop first.
  void degrade_to_lifo() noexcept { rule_ = SelectRule::kLIFO; }

 private:
  bool heap_less(const VertexEntry& a, const VertexEntry& b) const noexcept;

  SelectRule rule_;
  std::function<void(SlotRef)> release_;
  bool llb_tie_newest_;
  std::deque<VertexEntry> entries_;
};

}  // namespace parabb
