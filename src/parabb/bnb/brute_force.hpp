// Exhaustive reference search (testing oracle).
//
// Enumerates *every* permutation of (ready task × processor) decisions —
// exactly the goal-vertex space the BFn branching rule spans — with no
// bounding at all, and returns the true optimal maximum lateness. Only
// usable for tiny instances (|goals| <= k^n m^n); the B&B optimality tests
// compare against this.
#pragma once

#include <cstdint>

#include "parabb/sched/schedule.hpp"

namespace parabb {

struct BruteForceResult {
  Time best_cost = kTimeInf;
  Schedule best;
  std::uint64_t leaves = 0;  ///< complete schedules enumerated
};

/// Exhaustively searches `ctx`. `max_leaves` guards against accidental
/// explosion (throws precondition_error when exceeded).
BruteForceResult brute_force(const SchedContext& ctx,
                             std::uint64_t max_leaves = 50'000'000);

}  // namespace parabb
