#include "parabb/bnb/brute_force.hpp"

#include "parabb/bnb/lower_bound.hpp"
#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

struct Searcher {
  const SchedContext& ctx;
  std::uint64_t max_leaves;
  BruteForceResult out;
  PartialSchedule best_state;

  void visit(const PartialSchedule& ps) {
    if (ps.complete(ctx)) {
      ++out.leaves;
      PARABB_REQUIRE(out.leaves <= max_leaves,
                     "brute force exceeded the leaf budget");
      const Time cost = ps.max_lateness_scheduled(ctx);
      if (cost < out.best_cost) {
        out.best_cost = cost;
        best_state = ps;
      }
      return;
    }
    for (const TaskId t : ps.ready()) {
      for (ProcId p = 0; p < ctx.proc_count(); ++p) {
        PartialSchedule child = ps;
        child.place(ctx, t, p);
        visit(child);
      }
    }
  }
};

}  // namespace

BruteForceResult brute_force(const SchedContext& ctx,
                             std::uint64_t max_leaves) {
  Searcher s{ctx, max_leaves, {}, {}};
  s.visit(PartialSchedule::empty(ctx));
  PARABB_ASSERT(s.out.leaves > 0);
  s.out.best = Schedule::from_partial(ctx, s.best_state);
  return s.out;
}

}  // namespace parabb
