// Bridge between the engines' plain SearchStats counters and the obs
// subsystem. Three responsibilities, all driven by one field table:
//
//  * kSearchStatsFields names every uint64 counter of SearchStats once;
//    metric names, stats-JSON rows, and the merge below all derive from
//    it, so a new counter added to SearchStats is wired everywhere by
//    adding one table row.
//  * merge_search_stats is THE stats reduction: the parallel engine's
//    per-worker merge and any future reducer go through the registry's
//    accumulate() kernel (counters summed; worker peaks summed, which is
//    the engine's documented approximation; seconds untouched).
//  * SearchObs is the per-worker publication handle. Engines keep
//    bumping their local SearchStats exactly as before and call flush()
//    at their amortized poll points, which publishes only the deltas to
//    the registry — zero registry traffic per vertex. Flight events are
//    inline null-checked stores into the worker's ring.
//
// With Params::observe == nullptr every SearchObs call is a single
// predictable branch, so the disabled path costs nothing measurable
// (bench/micro_obs holds the enabled path to <= 2% as well).
#pragma once

#include <array>
#include <cstdint>

#include "parabb/bnb/engine.hpp"
#include "parabb/obs/observe.hpp"
#include "parabb/obs/recorder.hpp"

namespace parabb {

class Counter;
class Gauge;

struct SearchStatsField {
  const char* name;  ///< short name ("expanded"); metric is
                     ///< parabb_search_<name>_total unless overridden
  std::uint64_t SearchStats::*member;
  /// Full metric name override (null -> parabb_search_<name>_total). The
  /// steal counters use it: their published names are
  /// parabb_steals_*_total, not parabb_search_steals_*_total.
  const char* metric = nullptr;
};

inline constexpr std::size_t kSearchStatsFieldCount = 15;
extern const std::array<SearchStatsField, kSearchStatsFieldCount>
    kSearchStatsFields;

/// Sums `from` into `into` through obs accumulate(): the uint64 counters
/// of the field table plus the two peak fields (summed across workers —
/// approximate, as before). `seconds` is deliberately left alone; the
/// caller owns wall-clock attribution.
void merge_search_stats(SearchStats& into, const SearchStats& from);

class SearchObs {
 public:
  SearchObs() = default;

  /// Resolves metric handles and the flight channel for this worker.
  /// `obs` may be null (and its members may be null) — every later call
  /// degrades to a branch. `with_flight=false` binds metrics only (used
  /// for publishing merged totals that already had their events
  /// recorded elsewhere).
  void bind(const Observation* obs, std::size_t channel,
            bool with_flight = true);

  /// Additionally binds the per-worker deque-depth gauge
  /// (parabb_deque_depth_w<worker>); work-stealing workers call this
  /// after bind() and publish their deque size at the flush cadence.
  void bind_deque_depth(const Observation* obs, std::size_t worker);

  bool metrics_bound() const noexcept { return metrics_; }

  /// Publishes cur - last into the registry counters/peak gauges and
  /// remembers cur. Call at amortized poll points and once at the end
  /// (after tt_* and peaks are final).
  void flush(const SearchStats& cur);

  /// Resume support (ckpt/snapshot.hpp): marks `base` as already
  /// published, so a run seeded from a snapshot flushes only the work of
  /// this process into the registry — the snapshot's counters belong to
  /// the incarnation that earned them.
  void seed(const SearchStats& base) { last_ = base; }

  // --- flight events (inline; no-ops while unbound) ---
  void expand(int level, std::int64_t lb) noexcept {
    if (flight_)
      flight_->record(FlightEventKind::kExpand, FlightPruneRule::kNone,
                      clamp_level(level), lb);
  }
  void prune(FlightPruneRule rule, int level, std::int64_t lb) noexcept {
    if (flight_)
      flight_->record(FlightEventKind::kPrune, rule, clamp_level(level), lb);
  }
  void incumbent(int level, std::int64_t cost) noexcept {
    if (flight_)
      flight_->record(FlightEventKind::kIncumbent, FlightPruneRule::kNone,
                      clamp_level(level), cost);
  }
  /// Periodic progress marker; `generated` is the effort spent so far.
  void budget_checkpoint(std::int64_t generated) noexcept {
    if (flight_)
      flight_->record(FlightEventKind::kBudget, FlightPruneRule::kNone, -1,
                      generated);
  }
  void dispose(std::int64_t count) noexcept {
    if (flight_)
      flight_->record(FlightEventKind::kDispose, FlightPruneRule::kNone, -1,
                      count);
  }
  /// Successful steal: `victim` is the worker robbed, `count` the number
  /// of vertices taken in the batch.
  void steal(int victim, std::int64_t count) noexcept {
    if (flight_)
      flight_->record(FlightEventKind::kSteal, FlightPruneRule::kNone,
                      clamp_level(victim), count);
  }
  /// Degradation-ladder rung applied: `level` is the rung index just
  /// reached (1-based), `action` the DegradeAction as an integer.
  void degrade(int level, std::int64_t action) noexcept {
    if (flight_)
      flight_->record(FlightEventKind::kDegrade, FlightPruneRule::kNone,
                      clamp_level(level), action);
  }
  /// Publishes the current work-stealing deque depth (flush cadence).
  void deque_depth(std::int64_t depth) noexcept;

  /// Snapshot written: bumps parabb_ckpt_writes_total /
  /// parabb_ckpt_bytes_total and records a kCheckpoint flight event.
  void checkpoint_written(std::int64_t bytes) noexcept;
  /// Snapshot restored at startup: bumps parabb_ckpt_restores_total and
  /// records a kCheckpoint event with level 1 and the frontier size.
  void checkpoint_restored(std::int64_t frontier) noexcept;

 private:
  static std::int16_t clamp_level(int level) noexcept {
    if (level > INT16_MAX) return INT16_MAX;
    if (level < INT16_MIN) return INT16_MIN;
    return static_cast<std::int16_t>(level);
  }

  FlightChannel* flight_ = nullptr;
  bool metrics_ = false;
  std::array<Counter*, kSearchStatsFieldCount> counters_{};
  Gauge* peak_active_ = nullptr;
  Gauge* peak_memory_ = nullptr;
  Gauge* deque_depth_ = nullptr;
  Counter* ckpt_writes_ = nullptr;
  Counter* ckpt_bytes_ = nullptr;
  Counter* ckpt_restores_ = nullptr;
  SearchStats last_;
};

}  // namespace parabb
