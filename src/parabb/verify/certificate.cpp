#include "parabb/verify/certificate.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace parabb {

std::string to_string(CutRule r) {
  switch (r) {
    case CutRule::kLB0: return "lb0";
    case CutRule::kLB1: return "lb1";
    case CutRule::kLB2: return "lb2";
    case CutRule::kPackingSuffix: return "packing";
    case CutRule::kTransposition: return "transposition";
    case CutRule::kDominance: return "dominance";
    case CutRule::kCharacteristic: return "characteristic";
  }
  return "?";
}

CutRule cut_rule_from_string(const std::string& s) {
  if (s == "lb0") return CutRule::kLB0;
  if (s == "lb1") return CutRule::kLB1;
  if (s == "lb2") return CutRule::kLB2;
  if (s == "packing") return CutRule::kPackingSuffix;
  if (s == "transposition") return CutRule::kTransposition;
  if (s == "dominance") return CutRule::kDominance;
  if (s == "characteristic") return CutRule::kCharacteristic;
  throw std::runtime_error("unknown cut rule: " + s);
}

std::vector<CutPlacement> placement_path(const SchedContext& ctx,
                                         const PartialSchedule& state) {
  std::vector<CutPlacement> path;
  path.reserve(static_cast<std::size_t>(state.count()));
  for (const TaskId t : state.scheduled()) {
    path.push_back({t, state.proc(t), static_cast<Time>(state.start(t))});
  }
  // (start, topo rank) is a replay order: a task never starts before a
  // predecessor finishes, and equal-start tasks are independent, so
  // placing in this order keeps every prefix's ready-set honest.
  std::sort(path.begin(), path.end(),
            [&ctx](const CutPlacement& a, const CutPlacement& b) {
              if (a.start != b.start) return a.start < b.start;
              return ctx.topo_rank(a.task) < ctx.topo_rank(b.task);
            });
  return path;
}

CertificateBuilder::CertificateBuilder(std::size_t max_cuts)
    : max_cuts_(max_cuts) {}

void CertificateBuilder::begin(const SchedContext& ctx, int lb_kind,
                               bool branch_complete, double br,
                               std::string params_summary) {
  std::lock_guard lock(mutex_);
  cert_ = Certificate{};
  cert_.task_count = ctx.task_count();
  cert_.procs = ctx.proc_count();
  cert_.lb_kind = lb_kind;
  cert_.branch_complete = branch_complete;
  cert_.br = br;
  cert_.params_summary = std::move(params_summary);
}

void CertificateBuilder::record_cut(const SchedContext& ctx,
                                    const PartialSchedule& state,
                                    CutRule rule, Time claimed_bound) {
  std::vector<CutPlacement> path = placement_path(ctx, state);
  std::lock_guard lock(mutex_);
  if (cert_.cuts.size() >= max_cuts_) {
    cert_.truncated = true;
    return;
  }
  cert_.cuts.push_back(
      {state.fingerprint(), rule, claimed_bound, std::move(path)});
}

void CertificateBuilder::record_degrade(std::string action,
                                        std::uint64_t at_generated,
                                        int level) {
  std::lock_guard lock(mutex_);
  cert_.degrades.push_back({std::move(action), at_generated, level});
}

void CertificateBuilder::finish(bool found, const Schedule& incumbent,
                                Time cost, bool complete,
                                std::uint64_t expanded,
                                std::uint64_t generated) {
  std::lock_guard lock(mutex_);
  cert_.found = found;
  cert_.incumbent = incumbent;
  cert_.cost = cost;
  cert_.complete = complete;
  cert_.expanded = expanded;
  cert_.generated = generated;
}

void CertificateBuilder::export_state(std::vector<CutRecord>& cuts,
                                      std::vector<DegradeRecord>& degrades,
                                      bool& truncated) const {
  std::lock_guard lock(mutex_);
  cuts = cert_.cuts;
  degrades = cert_.degrades;
  truncated = cert_.truncated;
}

void CertificateBuilder::restore_state(std::vector<CutRecord> cuts,
                                       std::vector<DegradeRecord> degrades,
                                       bool truncated) {
  std::lock_guard lock(mutex_);
  cert_.cuts = std::move(cuts);
  cert_.degrades = std::move(degrades);
  cert_.truncated = truncated || cert_.cuts.size() > max_cuts_;
}

Certificate CertificateBuilder::take() {
  std::lock_guard lock(mutex_);
  return std::move(cert_);
}

std::size_t CertificateBuilder::cut_count() const {
  std::lock_guard lock(mutex_);
  return cert_.cuts.size();
}

}  // namespace parabb
