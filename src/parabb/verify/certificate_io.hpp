// Certificate serialization: a line-oriented text format so certificates
// travel next to their TGF graphs and schedule files (docs/formats.md).
//
//   # comments and blank lines ignored
//   cert tasks=<n> procs=<m> lb=<0|1|2> branch=<complete|approx> br=<real>
//   summary <free text, informational>
//   result found=<0|1> cost=<int> complete=<0|1> truncated=<0|1>
//          expanded=<u64> generated=<u64>            (one line)
//   sched <task-name> proc=<int> start=<int> finish=<int>   (incumbent,
//          schedule_io format, one line per task when found=1)
//   cut <rule> fp=<hex> bound=<int> path=<task>:<proc>:<start>,...
//
// Reading resolves the incumbent against a graph via schedule_from_text,
// so tampered schedule lines fail exactly like a corrupt schedule file.
#pragma once

#include <string>

#include "parabb/taskgraph/graph.hpp"
#include "parabb/verify/certificate.hpp"

namespace parabb {

/// Serializes `cert` using `graph`'s task names for the incumbent.
std::string certificate_to_text(const Certificate& cert,
                                const TaskGraph& graph);

/// Parses a certificate document against `graph`. Throws
/// std::runtime_error with a line-numbered message on malformed input.
Certificate certificate_from_text(const std::string& text,
                                  const TaskGraph& graph);

/// Convenience file wrappers.
void save_certificate(const Certificate& cert, const TaskGraph& graph,
                      const std::string& path);
Certificate load_certificate(const std::string& path,
                             const TaskGraph& graph);

}  // namespace parabb
