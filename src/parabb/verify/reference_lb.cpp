#include "parabb/verify/reference_lb.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "parabb/taskgraph/graph.hpp"

namespace parabb {

namespace {

/// Kahn's algorithm over the raw graph, smallest id first among the ready
/// tasks — computed here instead of borrowing ctx.topo_order() so the
/// verifier's recursion order owes nothing to the code under audit.
std::vector<TaskId> own_topo_order(const TaskGraph& g) {
  const int n = g.task_count();
  std::vector<int> missing(static_cast<std::size_t>(n), 0);
  std::vector<TaskId> ready;
  for (TaskId t = 0; t < n; ++t) {
    missing[static_cast<std::size_t>(t)] =
        static_cast<int>(g.preds(t).size());
    if (missing[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
  }
  std::vector<TaskId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const auto it = std::min_element(ready.begin(), ready.end());
    const TaskId t = *it;
    ready.erase(it);
    order.push_back(t);
    for (const Arc& a : g.succs(t)) {
      if (--missing[static_cast<std::size_t>(a.other)] == 0) {
        ready.push_back(a.other);
      }
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw std::runtime_error("reference_lb: graph is cyclic");
  }
  return order;
}

}  // namespace

Time reference_lower_bound(const SchedContext& ctx,
                           const PartialSchedule& ps, int lb_kind) {
  if (lb_kind < 0 || lb_kind > 2) {
    throw std::runtime_error("reference_lb: unknown lb kind " +
                             std::to_string(lb_kind));
  }
  const TaskGraph& g = ctx.graph();
  const int n = g.task_count();

  // l_min: the earliest time any processor frees up. Under the append-only
  // scheduling operation no unscheduled task can start before it.
  Time l_min = 0;
  if (lb_kind >= 1) {
    l_min = kTimeInf;
    for (ProcId p = 0; p < ctx.proc_count(); ++p) {
      l_min = std::min(l_min, static_cast<Time>(ps.proc_avail(p)));
    }
  }

  std::vector<Time> fhat(static_cast<std::size_t>(n), 0);
  Time worst = kTimeNegInf;
  for (const TaskId t : own_topo_order(g)) {
    const Task& task = g.task(t);
    Time f;
    if (ps.scheduled().contains(t)) {
      f = static_cast<Time>(ps.start(t)) + task.exec;
    } else {
      Time floor = task.arrival();
      if (lb_kind >= 1) floor = std::max(floor, l_min);
      for (const Arc& a : g.preds(t)) {
        floor = std::max(floor, fhat[static_cast<std::size_t>(a.other)]);
      }
      f = floor + task.exec;
    }
    fhat[static_cast<std::size_t>(t)] = f;
    worst = std::max(worst, f - task.abs_deadline());
  }

  if (lb_kind == 2) {
    worst = std::max(worst, reference_packing_bound(ctx, ps));
  }
  return worst;
}

Time reference_packing_bound(const SchedContext& ctx,
                             const PartialSchedule& ps) {
  const TaskGraph& g = ctx.graph();
  const int n = g.task_count();
  const Time m = ctx.proc_count();

  Time committed = 0;
  for (ProcId p = 0; p < ctx.proc_count(); ++p) {
    committed += static_cast<Time>(ps.proc_avail(p));
  }

  // Unscheduled tasks in (absolute deadline, id) order; a deadline-ordered
  // prefix with work W cannot all finish before ceil((committed + W)/m).
  std::vector<TaskId> unsched;
  for (TaskId t = 0; t < n; ++t) {
    if (!ps.scheduled().contains(t)) unsched.push_back(t);
  }
  std::sort(unsched.begin(), unsched.end(), [&g](TaskId a, TaskId b) {
    const Time da = g.task(a).abs_deadline();
    const Time db = g.task(b).abs_deadline();
    if (da != db) return da < db;
    return a < b;
  });

  Time worst = kTimeNegInf;
  Time work = 0;
  for (const TaskId t : unsched) {
    work += g.task(t).exec;
    const Time finish = (committed + work + m - 1) / m;  // ceil
    worst = std::max(worst, finish - g.task(t).abs_deadline());
  }
  return worst;
}

Time reference_exact_cost(const SchedContext& ctx,
                          const PartialSchedule& ps) {
  const TaskGraph& g = ctx.graph();
  if (!ps.complete(ctx)) {
    throw std::runtime_error("reference_exact_cost: state is incomplete");
  }
  Time worst = kTimeNegInf;
  for (TaskId t = 0; t < g.task_count(); ++t) {
    const Time finish = static_cast<Time>(ps.start(t)) + g.task(t).exec;
    worst = std::max(worst, finish - g.task(t).abs_deadline());
  }
  return worst;
}

}  // namespace parabb
