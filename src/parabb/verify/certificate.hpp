// Optimality certificates: the audit trail a B&B run leaves behind so an
// *independent* checker can confirm its "optimal" claim without re-running
// the search (verify/verifier.hpp).
//
// A certificate is the incumbent schedule plus a pruning audit log: one
// record per cut the engines made, carrying the cut state's canonical
// fingerprint, the rule that justified the cut (which lower bound,
// transposition, dominance, characteristic), the claimed bound, and the
// placement path that reconstructs the state. Orr & Sinnen ("Optimal Task
// Scheduling Benefits From a Duplicate-Free State-Space") document how
// subtle pruning bugs silently return sub-optimal "optima"; the
// certificate turns every pruning layer into a mechanically checkable
// claim instead of trusted code.
//
// Emission is gated behind Params::certify (bnb/params.hpp): both engines
// append to a CertificateBuilder while searching and disable the
// bound-aware short-circuit so every claimed bound is exact. The builder
// is thread-safe (the parallel engine's workers record concurrently) and
// bounded: past `max_cuts` records the log is truncated (the certificate
// says so), which weakens the audit but not the verifier's independent
// optimality replay.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "parabb/sched/context.hpp"
#include "parabb/sched/partial_schedule.hpp"
#include "parabb/sched/schedule.hpp"
#include "parabb/support/types.hpp"

namespace parabb {

/// Which pruning layer justified a cut.
enum class CutRule : std::uint8_t {
  kLB0,            ///< path-recursion bound >= incumbent threshold
  kLB1,            ///< LB0 + processor-contention term
  kLB2,            ///< max(LB1, workload packing), path term decisive
  kPackingSuffix,  ///< LB2 where the packing term alone was decisive
  kTransposition,  ///< duplicate of a state already in the search
  kDominance,      ///< discarded by the client's D relation (unverifiable)
  kCharacteristic, ///< discarded by the client's F function (unverifiable)
};

std::string to_string(CutRule r);
/// Inverse of to_string; throws std::runtime_error on unknown spellings.
CutRule cut_rule_from_string(const std::string& s);

/// One placement of the path that rebuilds a cut state from the empty
/// schedule. `start` is the start time the scheduling operation assigned;
/// the verifier replays the path and rejects the record when the
/// operation disagrees.
struct CutPlacement {
  TaskId task = kNoTask;
  ProcId proc = kNoProc;
  Time start = 0;
};

/// One pruned search vertex.
struct CutRecord {
  std::uint64_t fingerprint = 0;  ///< PartialSchedule::fingerprint()
  CutRule rule = CutRule::kLB1;
  Time claimed_bound = 0;  ///< the engine's (exact) bound for the state
  /// Placements ordered by (start, topo rank): a valid replay order for
  /// any state the scheduling operation can produce.
  std::vector<CutPlacement> path;
};

/// One graceful-degradation ladder rung applied during the run
/// (robust/degrade.hpp). Recorded so a verifier auditing a degraded run
/// knows from which point the search was no longer complete: a
/// `tighten_db` / `bf1` / `df` rung voids `complete` (the engines mark
/// the result compromised), while `shed_tt` keeps completeness.
struct DegradeRecord {
  std::string action;             ///< to_string(DegradeAction)
  std::uint64_t at_generated = 0; ///< generated-count when the rung fired
  int level = 0;                  ///< 1-based ladder level after the step
};

struct Certificate {
  int task_count = 0;
  int procs = 0;
  /// Lower-bound function the run used: 0/1/2 (mirrors LowerBound).
  int lb_kind = 1;
  /// True iff the branching rule was complete (BFn). Approximate rules
  /// (BF1/DF) cannot certify optimality regardless of the log.
  bool branch_complete = true;
  double br = 0.0;  ///< BR inaccuracy limit the cut threshold used
  std::string params_summary;  ///< describe(params), informational

  bool found = false;      ///< `incumbent`/`cost` are meaningful
  Time cost = kTimeInf;    ///< claimed optimal maximum lateness
  Schedule incumbent;      ///< the claimed-optimal schedule
  /// True when the search terminated by proof (the engine's `proved`):
  /// no disposal compromise, no interruption, complete branching.
  bool complete = false;
  bool truncated = false;  ///< the audit log hit the builder's cap
  std::uint64_t expanded = 0;
  std::uint64_t generated = 0;
  /// Ladder rungs applied, in firing order (empty unless the run degraded).
  std::vector<DegradeRecord> degrades;
  std::vector<CutRecord> cuts;
};

/// Thread-safe, bounded certificate assembly. Lifecycle:
/// begin() once, record_cut() per cut (any thread), finish() once.
class CertificateBuilder {
 public:
  explicit CertificateBuilder(std::size_t max_cuts = std::size_t{1} << 20);

  void begin(const SchedContext& ctx, int lb_kind, bool branch_complete,
             double br, std::string params_summary);

  /// Appends one cut record (drops it and marks the certificate truncated
  /// once `max_cuts` is reached).
  void record_cut(const SchedContext& ctx, const PartialSchedule& state,
                  CutRule rule, Time claimed_bound);

  /// Appends one degradation-ladder record (never truncated: a run fires
  /// at most four rungs).
  void record_degrade(std::string action, std::uint64_t at_generated,
                      int level);

  void finish(bool found, const Schedule& incumbent, Time cost,
              bool complete, std::uint64_t expanded,
              std::uint64_t generated);

  /// Checkpoint continuity (ckpt/snapshot.hpp). export_state copies the
  /// accumulated audit log out under the lock; restore_state seeds a
  /// fresh builder with a snapshot's log (call between begin() and the
  /// first record_cut), so a resumed run's certificate carries the cuts
  /// of every incarnation.
  void export_state(std::vector<CutRecord>& cuts,
                    std::vector<DegradeRecord>& degrades,
                    bool& truncated) const;
  void restore_state(std::vector<CutRecord> cuts,
                     std::vector<DegradeRecord> degrades, bool truncated);

  /// Moves the assembled certificate out (call after the solve returned).
  Certificate take();

  std::size_t cut_count() const;

 private:
  mutable std::mutex mutex_;
  Certificate cert_;
  std::size_t max_cuts_;
};

/// The replayable placement list of `state`: every scheduled task's
/// (task, proc, start), ordered by (start, topo rank). Exposed for the
/// verifier's reconstruction tests.
std::vector<CutPlacement> placement_path(const SchedContext& ctx,
                                         const PartialSchedule& state);

}  // namespace parabb
