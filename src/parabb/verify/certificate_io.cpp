#include "parabb/verify/certificate_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "parabb/sched/schedule_io.hpp"

namespace parabb {
namespace {

[[noreturn]] void parse_fail(int line, const std::string& msg) {
  throw std::runtime_error("certificate parse error at line " +
                           std::to_string(line) + ": " + msg);
}

/// Splits "key=value", failing when the key differs from `key`.
std::string attr_value(const std::string& token, const char* key,
                       int line) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0)
    parse_fail(line, "expected " + prefix + "..., got " + token);
  return token.substr(prefix.size());
}

long long parse_int(const std::string& value, int line) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) parse_fail(line, "bad integer: " + value);
    return v;
  } catch (const std::invalid_argument&) {
    parse_fail(line, "bad integer: " + value);
  } catch (const std::out_of_range&) {
    parse_fail(line, "integer out of range: " + value);
  }
}

long long int_attr(const std::string& token, const char* key, int line) {
  return parse_int(attr_value(token, key, line), line);
}

std::uint64_t parse_hex(const std::string& value, int line) {
  if (value.empty()) parse_fail(line, "empty fingerprint");
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(value.c_str(), &end, 16);
  if (end != value.c_str() + value.size())
    parse_fail(line, "bad fingerprint: " + value);
  return v;
}

}  // namespace

std::string certificate_to_text(const Certificate& cert,
                                const TaskGraph& graph) {
  std::ostringstream os;
  os << "# parabb optimality certificate: " << cert.cuts.size()
     << " cuts\n";
  char br_buf[64];
  std::snprintf(br_buf, sizeof br_buf, "%.17g", cert.br);
  os << "cert tasks=" << cert.task_count << " procs=" << cert.procs
     << " lb=" << cert.lb_kind << " branch="
     << (cert.branch_complete ? "complete" : "approx") << " br=" << br_buf
     << '\n';
  if (!cert.params_summary.empty()) {
    os << "summary " << cert.params_summary << '\n';
  }
  os << "result found=" << (cert.found ? 1 : 0) << " cost=" << cert.cost
     << " complete=" << (cert.complete ? 1 : 0)
     << " truncated=" << (cert.truncated ? 1 : 0)
     << " expanded=" << cert.expanded << " generated=" << cert.generated
     << '\n';
  if (cert.found) {
    for (TaskId t = 0; t < cert.incumbent.task_count(); ++t) {
      const ScheduledTask& e = cert.incumbent.entry(t);
      os << "sched " << graph.task(t).name << " proc=" << e.proc
         << " start=" << e.start << " finish=" << e.finish << '\n';
    }
  }
  for (const DegradeRecord& d : cert.degrades) {
    os << "degrade " << d.action << " at=" << d.at_generated
       << " level=" << d.level << '\n';
  }
  for (const CutRecord& rec : cert.cuts) {
    char fp_buf[32];
    std::snprintf(fp_buf, sizeof fp_buf, "%016llx",
                  static_cast<unsigned long long>(rec.fingerprint));
    os << "cut " << to_string(rec.rule) << " fp=" << fp_buf
       << " bound=" << rec.claimed_bound << " path=";
    for (std::size_t i = 0; i < rec.path.size(); ++i) {
      if (i > 0) os << ',';
      os << rec.path[i].task << ':' << rec.path[i].proc << ':'
         << rec.path[i].start;
    }
    os << '\n';
  }
  return os.str();
}

Certificate certificate_from_text(const std::string& text,
                                  const TaskGraph& graph) {
  Certificate cert;
  bool saw_header = false;
  bool saw_result = false;
  std::string sched_block;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;

    if (kind == "cert") {
      std::string tasks, procs, lb, branch, br;
      if (!(ls >> tasks >> procs >> lb >> branch >> br))
        parse_fail(lineno, "cert needs: tasks= procs= lb= branch= br=");
      cert.task_count =
          static_cast<int>(int_attr(tasks, "tasks", lineno));
      cert.procs = static_cast<int>(int_attr(procs, "procs", lineno));
      cert.lb_kind = static_cast<int>(int_attr(lb, "lb", lineno));
      const std::string b = attr_value(branch, "branch", lineno);
      if (b != "complete" && b != "approx")
        parse_fail(lineno, "branch must be complete|approx, got " + b);
      cert.branch_complete = b == "complete";
      const std::string br_val = attr_value(br, "br", lineno);
      char* end = nullptr;
      cert.br = std::strtod(br_val.c_str(), &end);
      if (end != br_val.c_str() + br_val.size())
        parse_fail(lineno, "bad br value: " + br_val);
      saw_header = true;
    } else if (kind == "summary") {
      std::string rest;
      std::getline(ls >> std::ws, rest);
      cert.params_summary = rest;
    } else if (kind == "result") {
      std::string found, cost, complete, truncated, expanded, generated;
      if (!(ls >> found >> cost >> complete >> truncated >> expanded >>
            generated))
        parse_fail(lineno,
                   "result needs: found= cost= complete= truncated= "
                   "expanded= generated=");
      cert.found = int_attr(found, "found", lineno) != 0;
      cert.cost = int_attr(cost, "cost", lineno);
      cert.complete = int_attr(complete, "complete", lineno) != 0;
      cert.truncated = int_attr(truncated, "truncated", lineno) != 0;
      cert.expanded =
          static_cast<std::uint64_t>(int_attr(expanded, "expanded", lineno));
      cert.generated = static_cast<std::uint64_t>(
          int_attr(generated, "generated", lineno));
      saw_result = true;
    } else if (kind == "sched") {
      // Collected verbatim and handed to schedule_from_text below, so the
      // incumbent parses exactly like a standalone schedule file.
      sched_block += line;
      sched_block += '\n';
    } else if (kind == "degrade") {
      std::string action, at, level;
      if (!(ls >> action >> at >> level))
        parse_fail(lineno, "degrade needs: <action> at= level=");
      DegradeRecord rec;
      rec.action = action;
      rec.at_generated =
          static_cast<std::uint64_t>(int_attr(at, "at", lineno));
      rec.level = static_cast<int>(int_attr(level, "level", lineno));
      cert.degrades.push_back(std::move(rec));
    } else if (kind == "cut") {
      std::string rule, fp, bound, path;
      if (!(ls >> rule >> fp >> bound >> path))
        parse_fail(lineno, "cut needs: <rule> fp= bound= path=");
      CutRecord rec;
      try {
        rec.rule = cut_rule_from_string(rule);
      } catch (const std::exception& e) {
        parse_fail(lineno, e.what());
      }
      rec.fingerprint = parse_hex(attr_value(fp, "fp", lineno), lineno);
      rec.claimed_bound = int_attr(bound, "bound", lineno);
      const std::string path_val = attr_value(path, "path", lineno);
      std::size_t pos = 0;
      while (pos < path_val.size()) {
        std::size_t comma = path_val.find(',', pos);
        if (comma == std::string::npos) comma = path_val.size();
        const std::string item = path_val.substr(pos, comma - pos);
        const std::size_t c1 = item.find(':');
        const std::size_t c2 =
            c1 == std::string::npos ? std::string::npos
                                    : item.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
          parse_fail(lineno, "bad path item: " + item);
        CutPlacement pl;
        pl.task =
            static_cast<TaskId>(parse_int(item.substr(0, c1), lineno));
        pl.proc = static_cast<ProcId>(
            parse_int(item.substr(c1 + 1, c2 - c1 - 1), lineno));
        pl.start = parse_int(item.substr(c2 + 1), lineno);
        rec.path.push_back(pl);
        pos = comma + 1;
      }
      cert.cuts.push_back(std::move(rec));
    } else {
      parse_fail(lineno, "unknown record: " + kind);
    }
  }

  if (!saw_header) throw std::runtime_error("certificate has no cert line");
  if (!saw_result)
    throw std::runtime_error("certificate has no result line");
  if (cert.found) {
    cert.incumbent = schedule_from_text(sched_block, graph);
  } else if (!sched_block.empty()) {
    throw std::runtime_error(
        "certificate has sched lines but result says found=0");
  }
  return cert;
}

void save_certificate(const Certificate& cert, const TaskGraph& graph,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << certificate_to_text(cert, graph);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Certificate load_certificate(const std::string& path,
                             const TaskGraph& graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return certificate_from_text(buf.str(), graph);
}

}  // namespace parabb
