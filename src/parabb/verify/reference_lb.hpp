// From-scratch reference lower bounds for certificate checking.
//
// Deliberately independent of bnb/lower_bound.cpp: no IncrementalLB
// scratch, no bound-aware cutoff, no reuse of the context's precomputed
// deadline order or prefix sums — the verifier must not inherit a bug from
// the code it is auditing. These functions re-derive everything they need
// (topological order included) from the graph each call and pay the full
// O(n + e + n log n) every time. Slow by design; only the verifier and the
// differential tests call them.
//
// The formulas are the documented ones (bnb/lower_bound.hpp, paper §3.5):
//   LB0  f̂_i = max(a_i, max_j f̂_j) + c_i  over direct predecessors j,
//        communication optimistically free;
//   LB1  LB0 with every unscheduled start additionally floored by l_min,
//        the earliest time any processor becomes free;
//   LB2  max(LB1, packing): for each absolute deadline D, the unscheduled
//        work W_D with deadlines <= D plus the committed processor time
//        Σ_q avail_q cannot finish before ceil((Σ_q avail_q + W_D)/m).
// In all cases the bound is max_i (f̂_i − D_i).
#pragma once

#include "parabb/sched/context.hpp"
#include "parabb/sched/partial_schedule.hpp"
#include "parabb/support/types.hpp"

namespace parabb {

/// Reference bound of `kind` (0, 1 or 2) for `ps`. Throws
/// std::runtime_error on a kind outside [0, 2].
Time reference_lower_bound(const SchedContext& ctx,
                           const PartialSchedule& ps, int lb_kind);

/// The LB2 packing term alone (kTimeNegInf when everything is scheduled).
Time reference_packing_bound(const SchedContext& ctx,
                             const PartialSchedule& ps);

/// Exact maximum lateness of a *complete* state, recomputed from the raw
/// starts (not via max_lateness_scheduled). Throws on incomplete states.
Time reference_exact_cost(const SchedContext& ctx,
                          const PartialSchedule& ps);

}  // namespace parabb
