// Independent certificate checking: confirms a B&B run's "optimal" claim
// without trusting the engine that produced it.
//
// Three layers, all mandatory for `certified`:
//
//  1. Incumbent check — the claimed schedule is re-validated with the
//     existing validator (structure, overlap, precedence + communication)
//     and its maximum lateness is recomputed and compared to the claimed
//     cost.
//
//  2. Cut audit — every record of the pruning log is replayed from the
//     empty schedule via the scheduling operation (recorded starts must
//     match what the operation assigns), its fingerprint is recomputed,
//     and its claimed bound is checked two ways against the from-scratch
//     reference LB (reference_lb.hpp): the claim must not exceed the
//     reference bound (no inflated claims) and — for bound-rule cuts —
//     must dominate the incumbent, i.e. be >= the BR-relaxed prune
//     threshold. Because the threshold only tightens as the incumbent
//     improves, every cut an honest engine made against an intermediate
//     incumbent still dominates the final one. Transposition cuts are
//     audited for honesty only (their subtree is covered elsewhere, and
//     the replay below carries its own duplicate detection); dominance /
//     characteristic cuts come from opaque client hooks and are merely
//     counted — the replay is what keeps them honest.
//
//  3. Optimality replay — an exhaustive DFS over the scheduling
//     operation's state space using only the reference LB and the
//     verifier's own duplicate detection (fingerprint + full state
//     comparison), pruning exactly at `lb >= threshold` with a locally
//     reimplemented threshold. Any complete schedule found with cost
//     below the threshold refutes the certificate. This layer trusts
//     *nothing* the engine recorded except the claimed cost; it is a
//     second solver, not a log replay, so it also covers cuts the log
//     cannot justify (dominance, characteristic, truncation).
//
// The replay is budgeted (VerifyOptions::max_replayed); hitting the budget
// yields `exhausted = true` and an uncertified-but-unrefuted report.
#pragma once

#include <cstdint>
#include <string>

#include "parabb/platform/machine.hpp"
#include "parabb/taskgraph/graph.hpp"
#include "parabb/verify/certificate.hpp"

namespace parabb {

struct VerifyOptions {
  /// Replay budget: states the optimality DFS may expand before giving
  /// up. Each retained state costs ~300 bytes of duplicate-detection
  /// memory, so the default stays modest.
  std::uint64_t max_replayed = 1'000'000;
  /// Skip layer 3 (cut audit only). For huge instances where the replay
  /// cannot finish anyway; the report can then never be `certified`.
  bool audit_only = false;
};

struct VerifyReport {
  /// The verdict: incumbent valid, cost exact, every auditable cut sound,
  /// and the independent replay confirmed no cheaper schedule exists.
  bool certified = false;

  bool incumbent_valid = false;   ///< layer 1: validator accepted it
  bool cost_matches = false;      ///< layer 1: recomputed L_max == claim
  bool cuts_sound = false;        ///< layer 2: no audited cut rejected
  bool optimal_confirmed = false; ///< layer 3: replay found nothing better
  bool exhausted = false;         ///< layer 3 hit the replay budget

  std::uint64_t cuts_checked = 0;   ///< records audited (all of them)
  std::uint64_t cuts_rejected = 0;  ///< records that failed the audit
  std::uint64_t hook_cuts = 0;      ///< dominance/characteristic records
  std::uint64_t replayed = 0;       ///< states the optimality DFS expanded
  std::uint64_t replay_pruned = 0;  ///< replay children cut by reference LB
  std::uint64_t replay_deduped = 0; ///< replay children cut as duplicates
  std::uint64_t goals_seen = 0;     ///< complete schedules the replay met

  /// First failure, empty when certified (or merely exhausted).
  std::string error;

  std::string summary() const;
};

/// Checks `cert` against the instance it claims to solve.
VerifyReport verify_certificate(const TaskGraph& graph,
                                const Machine& machine,
                                const Certificate& cert,
                                const VerifyOptions& options = {});

}  // namespace parabb
