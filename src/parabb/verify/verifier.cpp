#include "parabb/verify/verifier.hpp"

#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "parabb/sched/context.hpp"
#include "parabb/sched/partial_schedule.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/verify/reference_lb.hpp"

namespace parabb {

namespace {

/// The BR-relaxed prune threshold, reimplemented locally so the verifier
/// does not link the engine's prune_threshold. Mirrors the documented
/// contract (engine.hpp): cuts require lb >= incumbent - floor(br*|inc|).
Time verify_threshold(Time incumbent, double br) {
  if (incumbent >= kTimeInf) return kTimeInf;
  if (br <= 0.0) return incumbent;
  const auto margin = static_cast<Time>(
      std::floor(br * std::abs(static_cast<double>(incumbent))));
  return incumbent - margin;
}

/// Reference-LB kind a cut rule claims to have used (-1 for hook rules).
int rule_kind(CutRule rule) {
  switch (rule) {
    case CutRule::kLB0: return 0;
    case CutRule::kLB1: return 1;
    case CutRule::kLB2: return 2;
    case CutRule::kPackingSuffix: return 2;
    case CutRule::kTransposition:
    case CutRule::kDominance:
    case CutRule::kCharacteristic: return -1;
  }
  return -1;
}

/// Replays a cut record's placement path through the scheduling operation.
/// Fails when a placement is out of range, not ready at its turn, starts
/// at a different time than the operation assigns, or the final state's
/// fingerprint disagrees with the recorded one.
bool rebuild_state(const SchedContext& ctx, const CutRecord& rec,
                   PartialSchedule& out, std::string& err) {
  out = PartialSchedule::empty(ctx);
  for (const CutPlacement& pl : rec.path) {
    if (pl.task < 0 || pl.task >= ctx.task_count()) {
      err = "cut path names task " + std::to_string(pl.task) +
            " outside the graph";
      return false;
    }
    if (pl.proc < 0 || pl.proc >= ctx.proc_count()) {
      err = "cut path places on processor " + std::to_string(pl.proc) +
            " outside the machine";
      return false;
    }
    if (!out.ready().contains(pl.task)) {
      err = "cut path places task " + std::to_string(pl.task) +
            " before its predecessors";
      return false;
    }
    const Time start =
        static_cast<Time>(out.place(ctx, pl.task, pl.proc));
    if (start != pl.start) {
      err = "cut path records start " + std::to_string(pl.start) +
            " for task " + std::to_string(pl.task) +
            " but the scheduling operation assigns " +
            std::to_string(start);
      return false;
    }
  }
  if (out.fingerprint() != rec.fingerprint) {
    err = "cut state fingerprint mismatch";
    return false;
  }
  return true;
}

/// Layer 2: audits one record. Returns false with `err` set on rejection;
/// sets `is_hook` for dominance/characteristic records (counted, not
/// verifiable from the log alone — the optimality replay covers them).
bool audit_cut(const SchedContext& ctx, const Certificate& cert,
               const CutRecord& rec, Time threshold, bool& is_hook,
               std::string& err) {
  is_hook = false;
  PartialSchedule state;
  if (!rebuild_state(ctx, rec, state, err)) return false;

  const int kind = rule_kind(rec.rule);
  if (kind >= 0) {
    if (kind > cert.lb_kind) {
      err = "cut claims " + to_string(rec.rule) +
            " but the run was configured with lb" +
            std::to_string(cert.lb_kind);
      return false;
    }
    const Time ref = reference_lower_bound(ctx, state, kind);
    if (rec.claimed_bound > ref) {
      err = "claimed bound " + std::to_string(rec.claimed_bound) +
            " exceeds the reference " + to_string(rec.rule) + " bound " +
            std::to_string(ref);
      return false;
    }
    if (rec.claimed_bound < threshold) {
      err = "claimed bound " + std::to_string(rec.claimed_bound) +
            " does not dominate the incumbent (threshold " +
            std::to_string(threshold) + ")";
      return false;
    }
    if (rec.rule == CutRule::kPackingSuffix &&
        reference_packing_bound(ctx, state) < threshold) {
      err = "packing-suffix cut whose packing term does not dominate "
            "the incumbent";
      return false;
    }
    return true;
  }

  if (rec.rule == CutRule::kTransposition) {
    // A duplicate cut is sound because the subtree entered the search
    // elsewhere; only honesty of the recorded bound is checkable here.
    const Time ref = reference_lower_bound(ctx, state, cert.lb_kind);
    if (rec.claimed_bound > ref) {
      err = "transposition cut claims bound " +
            std::to_string(rec.claimed_bound) +
            " above the reference bound " + std::to_string(ref);
      return false;
    }
    return true;
  }

  is_hook = true;  // dominance / characteristic
  return true;
}

}  // namespace

std::string VerifyReport::summary() const {
  std::string s = certified ? "CERTIFIED" : "NOT CERTIFIED";
  s += ": incumbent " + std::string(incumbent_valid ? "valid" : "INVALID");
  s += ", cost " + std::string(cost_matches ? "exact" : "MISMATCH");
  s += ", cuts " + std::to_string(cuts_checked) + " audited / " +
       std::to_string(cuts_rejected) + " rejected (" +
       std::to_string(hook_cuts) + " hook)";
  s += ", replay " + std::to_string(replayed) + " expanded / " +
       std::to_string(replay_pruned) + " pruned / " +
       std::to_string(replay_deduped) + " duplicate, " +
       std::to_string(goals_seen) + " goals";
  if (exhausted) s += " [replay budget exhausted]";
  if (!error.empty()) s += "\n  first failure: " + error;
  return s;
}

VerifyReport verify_certificate(const TaskGraph& graph,
                                const Machine& machine,
                                const Certificate& cert,
                                const VerifyOptions& options) {
  VerifyReport report;
  if (!cert.found) {
    report.error = "certificate carries no incumbent schedule";
    return report;
  }
  if (cert.task_count != graph.task_count() ||
      cert.procs != machine.procs) {
    report.error = "certificate is for a different instance (" +
                   std::to_string(cert.task_count) + " tasks, " +
                   std::to_string(cert.procs) + " processors)";
    return report;
  }

  const SchedContext ctx(graph, machine);
  const Time threshold = verify_threshold(cert.cost, cert.br);

  // Layer 1: the incumbent itself.
  const ValidationReport vr =
      validate_schedule(cert.incumbent, graph, machine);
  report.incumbent_valid = vr.structurally_sound;
  if (!report.incumbent_valid) {
    report.error = "incumbent rejected by the validator: " + vr.error;
  }
  const Time actual = max_lateness(cert.incumbent, graph);
  report.cost_matches = actual == cert.cost;
  if (report.incumbent_valid && !report.cost_matches) {
    report.error = "claimed cost " + std::to_string(cert.cost) +
                   " but the incumbent's maximum lateness is " +
                   std::to_string(actual);
  }

  // Layer 2: the pruning audit log.
  report.cuts_sound = true;
  for (const CutRecord& rec : cert.cuts) {
    ++report.cuts_checked;
    bool is_hook = false;
    std::string err;
    if (!audit_cut(ctx, cert, rec, threshold, is_hook, err)) {
      ++report.cuts_rejected;
      report.cuts_sound = false;
      if (report.error.empty()) {
        report.error = "cut " + std::to_string(report.cuts_checked - 1) +
                       " (" + to_string(rec.rule) + ") rejected: " + err;
      }
    }
    if (is_hook) ++report.hook_cuts;
  }

  // Layer 3: independent optimality replay. Exhaustive DFS with the
  // reference LB and local duplicate detection; any complete schedule
  // cheaper than the threshold refutes the certificate.
  bool refuted = false;
  if (!options.audit_only) {
    std::vector<PartialSchedule> stack;
    std::unordered_map<std::uint64_t, std::vector<PartialSchedule>> seen;
    const PartialSchedule root = PartialSchedule::empty(ctx);
    if (reference_lower_bound(ctx, root, cert.lb_kind) < threshold) {
      stack.push_back(root);
      seen[root.fingerprint()].push_back(root);
    } else {
      ++report.replay_pruned;
    }
    while (!stack.empty() && !refuted) {
      if (report.replayed >= options.max_replayed) {
        report.exhausted = true;
        break;
      }
      const PartialSchedule state = stack.back();
      stack.pop_back();
      ++report.replayed;
      for (const TaskId t : state.ready()) {
        for (ProcId p = 0; p < ctx.proc_count() && !refuted; ++p) {
          PartialSchedule child = state;
          child.place(ctx, t, p);
          if (child.complete(ctx)) {
            ++report.goals_seen;
            const Time cost = reference_exact_cost(ctx, child);
            if (cost < threshold) {
              refuted = true;
              report.error = "replay found a schedule with lateness " +
                             std::to_string(cost) +
                             ", below the certified threshold " +
                             std::to_string(threshold);
            }
            continue;
          }
          if (reference_lower_bound(ctx, child, cert.lb_kind) >=
              threshold) {
            ++report.replay_pruned;
            continue;
          }
          auto& bucket = seen[child.fingerprint()];
          bool duplicate = false;
          for (const PartialSchedule& prev : bucket) {
            if (prev == child) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) {
            ++report.replay_deduped;
            continue;
          }
          bucket.push_back(child);
          stack.push_back(child);
        }
        if (refuted) break;
      }
    }
    report.optimal_confirmed = !refuted && !report.exhausted;
  }

  report.certified = report.incumbent_valid && report.cost_matches &&
                     report.cuts_sound && report.optimal_confirmed;
  return report;
}

}  // namespace parabb
