#include "parabb/workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "parabb/support/assert.hpp"
#include "parabb/support/types.hpp"

namespace parabb {
namespace {

/// Level sizes: every level >= 1 task, extras sprinkled randomly while
/// keeping adjacent levels wireable within the degree bound (see below).
std::vector<int> pick_level_sizes(Rng& rng, int n, int depth, int degree_max,
                                  int fixed_width) {
  if (fixed_width > 0) {
    PARABB_REQUIRE(n == depth * fixed_width,
                   "fixed_width requires n == depth * width");
    return std::vector<int>(static_cast<std::size_t>(depth), fixed_width);
  }
  std::vector<int> sizes(static_cast<std::size_t>(depth), 1);
  int extra = n - depth;
  // Feasibility invariant kept while growing a level:
  //  * sizes[l] <= degree_max * sizes[l-1]      (each task needs a pred)
  //  * sizes[l] <= (degree_max - 1) * sizes[l+1] + slack  — conservatively
  //    sizes[l] <= (degree_max - 1) * sizes[l+1] so every task can get a
  //    successor even after the mandatory pred arcs consumed capacity.
  auto can_grow = [&](std::size_t l) {
    const int grown = sizes[l] + 1;
    if (l > 0 && grown > degree_max * sizes[l - 1]) return false;
    if (l + 1 < sizes.size() && grown > (degree_max - 1) * sizes[l + 1])
      return false;
    // Growing level l only tightens l's own constraints (checked above);
    // neighbours' constraints involve l's size on the permissive side, so
    // existing feasibility is preserved.
    return true;
  };
  int guard = 64 * (extra + 1);
  while (extra > 0 && guard-- > 0) {
    const auto l = rng.index(sizes.size());
    if (can_grow(l)) {
      ++sizes[l];
      --extra;
    }
  }
  PARABB_REQUIRE(extra == 0,
                 "could not distribute tasks over levels within the degree "
                 "bound; relax depth or degree_max");
  return sizes;
}

}  // namespace

GeneratedGraph generate_graph(const GeneratorConfig& config,
                              std::uint64_t seed) {
  PARABB_REQUIRE(config.n_min >= 1 && config.n_min <= config.n_max,
                 "bad task count range");
  PARABB_REQUIRE(config.n_max <= kMaxTasks, "n_max exceeds kMaxTasks");
  PARABB_REQUIRE(config.depth_min >= 1 &&
                     config.depth_min <= config.depth_max,
                 "bad depth range");
  PARABB_REQUIRE(config.degree_max >= 2,
                 "degree_max must be >= 2 for wireable layered graphs");
  PARABB_REQUIRE(config.exec_mean >= 1.0, "exec_mean must be >= 1");
  PARABB_REQUIRE(config.exec_dev >= 0.0 && config.exec_dev <= 0.99,
                 "exec_dev in [0, 0.99]");
  PARABB_REQUIRE(config.ccr >= 0.0, "ccr must be >= 0");
  PARABB_REQUIRE(config.comm_per_item >= 1, "comm_per_item must be >= 1");

  Rng rng(seed);
  const int n = static_cast<int>(rng.uniform_int(config.n_min, config.n_max));
  const int depth_cap = std::min(config.depth_max, n);
  PARABB_REQUIRE(config.depth_min <= depth_cap,
                 "depth_min exceeds the task count");
  const int depth =
      static_cast<int>(rng.uniform_int(config.depth_min, depth_cap));

  const std::vector<int> sizes =
      pick_level_sizes(rng, n, depth, config.degree_max, config.fixed_width);

  // Materialize tasks level by level; record each task's level.
  TaskGraph graph;
  std::vector<std::vector<TaskId>> levels(sizes.size());
  const Time exec_lo = std::max<Time>(
      1, std::llround(config.exec_mean * (1.0 - config.exec_dev)));
  const Time exec_hi = std::max<Time>(
      exec_lo, std::llround(config.exec_mean * (1.0 + config.exec_dev)));
  for (std::size_t l = 0; l < sizes.size(); ++l) {
    for (int k = 0; k < sizes[l]; ++k) {
      Task t;
      t.name = "t" + std::to_string(graph.task_count());
      t.exec = rng.uniform_int(exec_lo, exec_hi);
      levels[l].push_back(graph.add_task(std::move(t)));
    }
  }

  std::vector<int> in_deg(static_cast<std::size_t>(n), 0);
  std::vector<int> out_deg(static_cast<std::size_t>(n), 0);
  auto add_arc = [&](TaskId from, TaskId to) {
    graph.add_arc(from, to, 0);  // items sized after wiring
    ++out_deg[static_cast<std::size_t>(from)];
    ++in_deg[static_cast<std::size_t>(to)];
  };

  // Pass 1 — mandatory predecessor: every task below level 0 is wired to a
  // uniformly chosen level-(l-1) task that still has successor capacity.
  for (std::size_t l = 1; l < levels.size(); ++l) {
    for (const TaskId t : levels[l]) {
      std::vector<TaskId> candidates;
      for (const TaskId p : levels[l - 1]) {
        if (out_deg[static_cast<std::size_t>(p)] < config.degree_max)
          candidates.push_back(p);
      }
      PARABB_ASSERT(!candidates.empty());  // by pick_level_sizes invariant
      add_arc(candidates[rng.index(candidates.size())], t);
    }
  }

  // Pass 2 — mandatory successor: a non-last-level task with no successor
  // is wired to a capacity-bearing task on the next level (fallback: any
  // deeper level).
  for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
    for (const TaskId t : levels[l]) {
      if (out_deg[static_cast<std::size_t>(t)] > 0) continue;
      std::vector<TaskId> candidates;
      for (std::size_t l2 = l + 1; l2 < levels.size() && candidates.empty();
           ++l2) {
        for (const TaskId s : levels[l2]) {
          if (in_deg[static_cast<std::size_t>(s)] < config.degree_max)
            candidates.push_back(s);
        }
      }
      PARABB_REQUIRE(!candidates.empty(),
                     "cannot satisfy the successor bound; relax degree_max");
      add_arc(t, candidates[rng.index(candidates.size())]);
    }
  }

  // Pass 3 — optional extra predecessors up to a per-task random target in
  // 1..degree_max, drawn from any earlier level with successor capacity.
  for (std::size_t l = 1; l < levels.size(); ++l) {
    for (const TaskId t : levels[l]) {
      const auto target =
          static_cast<int>(rng.uniform_int(1, config.degree_max));
      while (in_deg[static_cast<std::size_t>(t)] < target) {
        std::vector<TaskId> candidates;
        for (std::size_t l2 = 0; l2 < l; ++l2) {
          for (const TaskId p : levels[l2]) {
            if (out_deg[static_cast<std::size_t>(p)] < config.degree_max &&
                graph.items_on_arc(p, t) == kTimeNegInf) {
              candidates.push_back(p);
            }
          }
        }
        if (candidates.empty()) break;
        add_arc(candidates[rng.index(candidates.size())], t);
      }
    }
  }

  // Pass 4 — message sizes targeting the CCR: average message cost
  // (items × per-item delay) should equal ccr × exec_mean.
  Time total_items = 0;
  if (config.ccr > 0.0) {
    const double items_mean =
        config.ccr * config.exec_mean /
        static_cast<double>(config.comm_per_item);
    // Rebuild the graph with sampled item counts (arcs are immutable).
    TaskGraph sized;
    for (TaskId t = 0; t < graph.task_count(); ++t)
      sized.add_task(graph.task(t));
    for (const Channel& c : graph.arcs()) {
      const Time items =
          std::max<Time>(0, std::llround(rng.uniform_real(0.0,
                                                          2.0 * items_mean)));
      total_items += items;
      sized.add_arc(c.from, c.to, items);
    }
    graph = std::move(sized);
  }

  GeneratedGraph out;
  out.depth = depth;
  out.width = *std::max_element(sizes.begin(), sizes.end());
  double exec_sum = 0.0;
  for (TaskId t = 0; t < graph.task_count(); ++t)
    exec_sum += static_cast<double>(graph.task(t).exec);
  out.avg_exec = exec_sum / n;
  out.achieved_ccr =
      graph.arc_count() == 0 || out.avg_exec == 0.0
          ? 0.0
          : static_cast<double>(total_items) *
                static_cast<double>(config.comm_per_item) /
                static_cast<double>(graph.arc_count()) / out.avg_exec;
  out.graph = std::move(graph);
  PARABB_ASSERT(out.graph.is_acyclic());
  return out;
}

GeneratorConfig paper_config() { return GeneratorConfig{}; }

GeneratorConfig width_config(int levels, int width) {
  PARABB_REQUIRE(levels >= 1 && width >= 1, "levels and width must be >= 1");
  PARABB_REQUIRE(levels * width <= kMaxTasks,
                 "levels * width exceeds kMaxTasks");
  GeneratorConfig c;
  c.n_min = c.n_max = levels * width;
  c.depth_min = c.depth_max = levels;
  c.fixed_width = width;
  return c;
}

}  // namespace parabb
