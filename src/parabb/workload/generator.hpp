// Random task-graph generator reproducing the paper's workload (§4.1):
//
//  * 12–16 tasks per graph;
//  * execution times uniform with mean 20, deviating at most ±99 %;
//  * graph depth 8–12 levels, every level non-empty;
//  * per-task successor/predecessor counts in 1..3;
//  * message sizes chosen so the communication-to-computation ratio (CCR)
//    — average message communication cost over average task execution
//    time — matches a target (paper default 1.0).
//
// Determinism: the same config + seed produces the same graph on every
// platform (all randomness flows through parabb::Rng).
#pragma once

#include <cstdint>

#include "parabb/support/rng.hpp"
#include "parabb/taskgraph/graph.hpp"

namespace parabb {

struct GeneratorConfig {
  int n_min = 12;          ///< minimum task count
  int n_max = 16;          ///< maximum task count
  int depth_min = 8;       ///< minimum number of graph levels
  int depth_max = 12;      ///< maximum number of graph levels
  int degree_max = 3;      ///< max successors and max predecessors per task
  double exec_mean = 20.0; ///< mean execution time
  double exec_dev = 0.99;  ///< max relative deviation from the mean
  double ccr = 1.0;        ///< target communication-to-computation ratio
  Time comm_per_item = 1;  ///< interconnect nominal delay used to size items

  /// Fixed tasks-per-level override for the §6 parallelism experiments;
  /// 0 = random level sizes (the paper's base setup).
  int fixed_width = 0;
};

struct GeneratedGraph {
  TaskGraph graph;
  int depth = 0;           ///< realized level count
  int width = 0;           ///< realized max level size
  double avg_exec = 0.0;   ///< realized mean execution time
  double achieved_ccr = 0.0;
};

/// Generates one random graph. Degree bounds hold exactly: every non-input
/// task has 1..degree_max predecessors, every non-output task 1..degree_max
/// successors. Throws precondition_error on unsatisfiable configs
/// (e.g. depth_min > n_max, or level sizes that cannot be wired within the
/// degree bound).
GeneratedGraph generate_graph(const GeneratorConfig& config,
                              std::uint64_t seed);

/// The paper's §4.1 configuration.
GeneratorConfig paper_config();

/// §6 parallelism-sweep configuration: `levels` levels of exactly `width`
/// tasks (n = levels × width), other knobs as the paper's.
GeneratorConfig width_config(int levels, int width);

}  // namespace parabb
