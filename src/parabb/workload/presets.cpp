#include "parabb/workload/presets.hpp"

#include <string>

#include "parabb/support/assert.hpp"
#include "parabb/taskgraph/builder.hpp"

namespace parabb {

TaskGraph preset_diamond() {
  return GraphBuilder()
      .task("src", 10)
      .task("left", 20)
      .task("right", 25)
      .task("sink", 10)
      .arc("src", "left", 5)
      .arc("src", "right", 5)
      .arc("left", "sink", 8)
      .arc("right", "sink", 8)
      .build();
}

TaskGraph preset_chain(int stages, Time exec, Time items) {
  PARABB_REQUIRE(stages >= 1, "chain needs at least one stage");
  GraphBuilder b;
  for (int i = 0; i < stages; ++i)
    b.task("s" + std::to_string(i), exec);
  for (int i = 1; i < stages; ++i)
    b.arc("s" + std::to_string(i - 1), "s" + std::to_string(i), items);
  return b.build();
}

TaskGraph preset_fork_join(int branches, Time exec, Time items) {
  PARABB_REQUIRE(branches >= 1, "fork-join needs at least one branch");
  GraphBuilder b;
  b.task("fork", exec).task("join", exec);
  for (int i = 0; i < branches; ++i) {
    const std::string name = "b" + std::to_string(i);
    b.task(name, exec);
    b.arc("fork", name, items);
    b.arc(name, "join", items);
  }
  return b.build();
}

TaskGraph preset_dsp_pipeline() {
  return GraphBuilder()
      .task("sensorA", 8)
      .task("sensorB", 8)
      .task("filterA", 24)
      .task("filterB", 24)
      .task("fft_lo", 30)
      .task("fft_hi", 30)
      .task("features", 18)
      .task("fusion", 12)
      .task("actuate", 6)
      .arc("sensorA", "filterA", 16)
      .arc("sensorB", "filterB", 16)
      .arc("filterA", "fft_lo", 12)
      .arc("filterA", "fft_hi", 12)
      .arc("filterB", "fft_lo", 12)
      .arc("filterB", "fft_hi", 12)
      .arc("fft_lo", "features", 10)
      .arc("fft_hi", "features", 10)
      .arc("features", "fusion", 6)
      .arc("filterB", "fusion", 6)
      .arc("fusion", "actuate", 4)
      .build();
}

TaskGraph preset_gaussian_elimination(int k, Time pivot_exec,
                                      Time update_exec, Time items) {
  PARABB_REQUIRE(k >= 2, "gaussian elimination needs k >= 2");
  GraphBuilder b;
  for (int j = 0; j < k - 1; ++j) {
    const std::string pivot = "piv" + std::to_string(j);
    b.task(pivot, pivot_exec);
    if (j > 0) {
      // The pivot of column j depends on the previous column's update of
      // row j.
      b.arc("upd" + std::to_string(j - 1) + "_" + std::to_string(j), pivot,
            items);
    }
    for (int i = j + 1; i < k; ++i) {
      const std::string upd =
          "upd" + std::to_string(j) + "_" + std::to_string(i);
      b.task(upd, update_exec);
      b.arc(pivot, upd, items);
      if (j > 0) {
        b.arc("upd" + std::to_string(j - 1) + "_" + std::to_string(i), upd,
              items);
      }
    }
  }
  return b.build();
}

}  // namespace parabb
