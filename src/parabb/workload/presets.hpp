// Hand-crafted canonical task graphs used by tests and examples.
#pragma once

#include "parabb/taskgraph/graph.hpp"

namespace parabb {

/// Four-task diamond:  src -> {left, right} -> sink.
TaskGraph preset_diamond();

/// A linear pipeline of `stages` tasks with uniform execution time `exec`
/// and `items` data items between consecutive stages.
TaskGraph preset_chain(int stages, Time exec = 20, Time items = 20);

/// Fork-join: one source fanning out to `branches` parallel tasks joined by
/// one sink. Exercises application parallelism > processor parallelism.
TaskGraph preset_fork_join(int branches, Time exec = 20, Time items = 20);

/// A small digital-signal-processing pipeline in the spirit of the paper's
/// DSP motivation [2]: two sensor front-ends, per-channel filtering, an FFT
/// split into two half-spectrum tasks, feature extraction, fusion, and an
/// actuator output. 9 tasks, realistic non-uniform costs.
TaskGraph preset_dsp_pipeline();

/// Gaussian-elimination update DAG for a k×k system (column-sweep variant):
/// pivot tasks chained, each pivot fanning out to its column updates.
/// n = (k-1) + k(k-1)/2 tasks.
TaskGraph preset_gaussian_elimination(int k, Time pivot_exec = 10,
                                      Time update_exec = 20, Time items = 10);

}  // namespace parabb
