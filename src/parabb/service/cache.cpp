#include "parabb/service/cache.hpp"

namespace parabb {

ResultCache::ResultCache(std::size_t max_entries)
    : max_entries_(max_entries) {}

std::optional<JobResult> ResultCache::lookup(std::uint64_t fp,
                                             const std::string& key) {
  const std::lock_guard lock(mutex_);
  const auto it = index_.find(fp);
  if (it == index_.end()) {
    ++counters_.misses;
    return std::nullopt;
  }
  if (it->second->key != key) {
    // Distinct requests colliding on the 64-bit fingerprint: a miss, and
    // counted so an implausible collision rate is visible in the summary.
    ++counters_.collisions;
    ++counters_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++counters_.hits;
  return it->second->result;
}

void ResultCache::insert(std::uint64_t fp, std::string key,
                         JobResult result) {
  if (max_entries_ == 0) return;
  const std::lock_guard lock(mutex_);
  if (const auto it = index_.find(fp); it != index_.end()) {
    // Same fingerprint already present: overwrite (same key), or replace
    // the colliding entry (different key) — either way one entry per fp.
    it->second->key = std::move(key);
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++counters_.insertions;
    return;
  }
  if (lru_.size() >= max_entries_) {
    index_.erase(lru_.back().fp);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(Entry{fp, std::move(key), std::move(result)});
  index_[fp] = lru_.begin();
  ++counters_.insertions;
}

std::size_t ResultCache::size() const {
  const std::lock_guard lock(mutex_);
  return lru_.size();
}

CacheCounters ResultCache::counters() const {
  const std::lock_guard lock(mutex_);
  return counters_;
}

void ResultCache::clear() {
  const std::lock_guard lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace parabb
