// Solver-service job model: what a client submits (JobRequest), the
// resources a job may consume (Budget), and what comes back (JobResult
// with a four-way JobOutcome taxonomy).
//
// A job is one B&B solve of one task graph on one machine description.
// The service enforces the budget *cooperatively*: the engine polls a
// cancellation token and its resource bounds on the hot loop and returns
// the best incumbent found so far — a budget-expired job yields a usable
// (validator-clean) schedule with outcome kFeasibleTimeout, never an
// aborted process (the anytime operation arXiv:1905.05568 argues is the
// only way to run exact schedulers at scale).
#pragma once

#include <cstdint>
#include <string>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/bnb/params.hpp"
#include "parabb/platform/machine.hpp"
#include "parabb/sched/schedule.hpp"
#include "parabb/taskgraph/graph.hpp"

namespace parabb {

/// Per-job resource budget. Zero means "unlimited" for every field, so a
/// default-constructed Budget imposes nothing.
struct Budget {
  double wall_ms = 0;                ///< wall-clock cap in milliseconds
  std::uint64_t max_generated = 0;   ///< generated-vertex cap
  std::size_t max_active_bytes = 0;  ///< active-set vertex-pool memory cap

  bool unlimited() const noexcept {
    return wall_ms <= 0 && max_generated == 0 && max_active_bytes == 0;
  }
};

/// Maps a Budget onto the engine's resource bounds and ties the given
/// cancellation token to `params`. Existing tighter bounds are kept (the
/// budget can only shrink what the caller already set).
void apply_budget(Params& params, const Budget& budget,
                  const CancelToken* cancel);

/// Terminal outcome of a job, the service's client-facing taxonomy.
enum class JobOutcome : std::uint8_t {
  kOptimal,          ///< search completed; result carries its guarantee
  kFeasibleTimeout,  ///< budget expired; best incumbent returned
  kCancelled,        ///< cancelled; any incumbent found so far returned
  kInfeasible,       ///< search completed without finding any schedule
};

std::string to_string(JobOutcome o);

/// Folds an engine termination reason + solution flag into the taxonomy.
JobOutcome outcome_of(TerminationReason reason, bool found_solution);

/// Stable process exit code for CLI front ends (docs/robustness.md):
/// optimal -> 0, feasible_timeout -> 3, cancelled -> 4, infeasible -> 5.
/// (1/2 are reserved for usage/runtime errors, 6 for a broken output
/// stream in parabb_serve.)
int exit_code_for(JobOutcome o);

/// One solve request. The graph/machine are owned by value: a request is
/// self-contained and outlives the client buffer it was parsed from.
struct JobRequest {
  std::string id;     ///< client-chosen tag, echoed in the response
  TaskGraph graph;
  Machine machine;
  Params params;      ///< `trace` and `cancel` are service-owned: ignored
  int threads = 1;    ///< 1 = sequential engine; >1 = parallel engine
  /// Parallel engine only (threads > 1): how vertices are distributed.
  ParallelScheduler scheduler = ParallelScheduler::kWorkStealing;
  /// Work-stealing only: cap on the vertices one steal takes (0 = auto,
  /// half of the victim's visible deque).
  int steal_batch = 0;
  int priority = 0;   ///< higher admits earlier; FIFO within a priority
  Budget budget;
  /// When true the solve records an optimality certificate
  /// (verify/certificate.hpp) and the result carries its text serialization.
  /// Certified solves disable the engines' bound-aware LB short-circuit, so
  /// they are slower than plain ones; the flag participates in the cache key.
  bool certify = false;
  /// When true the solve records recent search events into a per-worker
  /// flight recorder (obs/recorder.hpp) and, if the job ends early
  /// (feasible_timeout / cancelled), the result carries the dump —
  /// explaining where the budget went. Unlike `certify`, recording is
  /// read-beside and does not slow the bound computation; the flag still
  /// participates in the cache key (a dump-carrying result must not
  /// satisfy a plain request, or vice versa).
  bool flight = false;
};

/// One terminal response. `schedule` is meaningful iff `found`.
struct JobResult {
  std::string id;
  JobOutcome outcome = JobOutcome::kInfeasible;
  bool found = false;
  Schedule schedule;
  Time cost = kTimeInf;
  bool proved = false;
  Time certified_lower_bound = kTimeNegInf;
  TerminationReason reason = TerminationReason::kExhausted;
  std::uint64_t generated = 0;  ///< vertices cost-evaluated by the search
  bool cached = false;          ///< served from the result cache
  double seconds = 0.0;         ///< solve wall time (0 for cache hits)
  /// Non-empty when the job failed before/inside the engine (bad request,
  /// capacity limits). An errored job has no meaningful outcome fields.
  std::string error;
  /// Text-format optimality certificate (verify/certificate_io.hpp);
  /// non-empty iff the request set `certify`. Check it independently with
  /// `parabb_verify` or verify_certificate().
  std::string certificate;
  /// Serialized flight-recorder dump (one JSON object; see
  /// docs/observability.md). Non-empty iff the request set `flight` AND
  /// the job ended early (feasible_timeout / cancelled).
  std::string flight_json;
};

}  // namespace parabb
