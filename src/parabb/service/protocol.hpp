// JSONL request/response protocol of the parabb_serve front end.
//
// One request per input line, one response per output line, correlated by
// the client-chosen `id`; responses may be emitted out of submission
// order (the service completes jobs as workers free up). The full schema
// lives in docs/formats.md ("Solver service protocol"); in brief:
//
//   request  {"id":"r1","graph":"task a exec=3\n...","procs":2,
//             "select":"lifo","budget":{"wall_ms":1000},...}
//   response {"id":"r1","outcome":"optimal","cost":-2,"proved":true,
//             "cached":false,"generated":41,"seconds":0.001,
//             "schedule":[{"task":"a","proc":0,"start":0,"finish":3},...]}
//   error    {"id":"r1","error":"tgf parse error at line 2: ..."}
//
// Response field order is fixed, so output lines are byte-deterministic
// for deterministic jobs (the serve smoke test diffs against a golden
// file after zeroing the "seconds" field).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "parabb/service/job.hpp"

namespace parabb {

struct MetricsSnapshot;  // obs/metrics.hpp

/// Hard cap on one request line. A line past this is rejected with a
/// structured error before JSON parsing — the graph is capped at
/// kMaxTasks tasks, so legitimate requests are orders of magnitude
/// smaller and an oversized line is a protocol error, not a big job.
inline constexpr std::size_t kMaxRequestLineBytes = std::size_t{1} << 20;

/// Shared CLI/protocol spelling parsers (throw std::runtime_error on an
/// unknown spelling; used by parabb_solve and the JSONL protocol alike).
SelectRule parse_select_rule(const std::string& s);
BranchRule parse_branch_rule(const std::string& s);
LowerBound parse_lower_bound(const std::string& s);

/// Builds a Machine from the protocol/CLI spelling: `topology` is
/// "bus" | "ring" | "line" | "mesh<R>x<C>" (mesh overrides `procs`).
Machine machine_from_spec(int procs, Time comm_per_item,
                          const std::string& topology);

/// Parses one JSONL request line into a self-contained JobRequest.
/// Throws std::runtime_error on malformed JSON, a missing/invalid field,
/// or an invalid task graph. The thrown message is client-facing.
JobRequest request_from_json(const std::string& line);

/// Serializes a terminal result (error results included) as one JSONL
/// line, without the trailing newline. `graph` supplies task names for
/// the schedule entries and must be the request's graph.
std::string response_to_json(const JobResult& result, const TaskGraph& graph);

/// The error-response line for requests that failed before admission
/// (unparseable line: `id` may be empty, emitted as "?").
std::string error_response_json(const std::string& id,
                                const std::string& message);

/// The load-shedding response line: {"id":...,"outcome":"overloaded",
/// "retry_after_ms":N}. Emitted when admission control rejected the
/// request and the client should back off (docs/robustness.md).
std::string overloaded_response_json(const std::string& id,
                                     double retry_after_ms);

/// An in-band observability request: {"id":"m1","metrics":true} asks the
/// server for one registry snapshot, answered on the same stream as
/// {"id":"m1","metrics":{...}} (see docs/formats.md, "Metrics requests").
struct MetricsRequest {
  std::string id;
};

/// Classifies one input line. Returns nullopt when the line is not a
/// metrics request (no "metrics" member, or not parseable as a JSON
/// object) — the caller falls through to the solve-request path, which
/// owns the error reporting for those. A line that *is* a metrics
/// request but malformed (unknown field, wrong types, missing id) throws
/// std::runtime_error whose message carries `line_no`, e.g.
///   metrics request at line 7: unknown field 'metrcs_interval'
std::optional<MetricsRequest> parse_metrics_request(const std::string& line,
                                                    std::size_t line_no);

/// Serializes a snapshot as the response line for a metrics request
/// (without the trailing newline).
std::string metrics_response_json(const std::string& id,
                                  const MetricsSnapshot& snapshot);

}  // namespace parabb
