// SolverService: the multi-tenant solver front of the B&B engines.
//
// Architecture (ISSUE 2 tentpole):
//
//   submit() ──► admission queue ──► support/ThreadPool workers ──► results
//                (priority + FIFO)      (concurrency cap)
//                                          │
//                            ResultCache ◄─┴─► bnb engines
//                         (canonical request   (per-job Budget +
//                          fingerprint, LRU)    CancelToken, anytime)
//
// * Admission: every submitted job enters a priority queue (higher
//   `priority` first, FIFO within a priority level). One pump task per
//   admitted job is pushed onto a fixed ThreadPool whose thread count is
//   the service's concurrency cap; each pump pops the *best* pending job,
//   so priorities are honored at dispatch time regardless of submission
//   order.
// * Budgets: each job's Budget is mapped onto the engine's resource
//   bounds plus a per-job CancelToken polled on the search hot loop; an
//   expired or cancelled job returns its best incumbent, never aborts.
// * Caching: results of cacheable jobs (no F/D hooks, not cancelled, no
//   error) are stored in a bounded LRU keyed by the canonical request
//   fingerprint; identical re-submissions are answered without searching.
// * Completion: wait(ticket) blocks for one job; an optional on_done
//   callback fires on the worker thread (used by parabb_serve to stream
//   responses out of order). wait_all() drains everything in flight.
//
// Thread-safe: submit/cancel/wait/counters may be called from any thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "parabb/bnb/cancel.hpp"
#include "parabb/obs/metrics.hpp"
#include "parabb/robust/watchdog.hpp"
#include "parabb/service/cache.hpp"
#include "parabb/service/job.hpp"
#include "parabb/support/threadpool.hpp"

namespace parabb {

class SpanLog;         // obs/span.hpp
class FaultInjector;   // robust/fault.hpp
class JobJournal;      // ckpt/journal.hpp

struct ServiceConfig {
  /// Concurrent solve cap = worker threads; 0 = hardware concurrency.
  int workers = 0;
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_entries = 256;

  /// Optional metrics registry (obs/metrics.hpp); not owned, may be null,
  /// must outlive the service. When set, the service publishes its job /
  /// cache counters (parabb_service_* family), registers a pull collector
  /// for the live queue/cache gauges, and hands the registry to every
  /// solve so the engines publish their search_* counters too.
  MetricsRegistry* metrics = nullptr;

  /// Optional span log (obs/span.hpp); not owned, may be null, must
  /// outlive the service. Each job emits context/search/certify spans
  /// tagged with its request id.
  SpanLog* spans = nullptr;

  /// Ring capacity (events per engine worker) for jobs that request a
  /// flight-recorder dump.
  std::size_t flight_capacity = 256;

  /// Admission control: submissions past this many pending jobs are shed
  /// with OverloadedError instead of queued (0 = unbounded, the default).
  /// Load shedding keeps a saturated service's latency bounded: a client
  /// sees `overloaded` + a retry hint instead of an unbounded queue wait.
  std::size_t max_queue_depth = 0;

  /// Stagnation watchdog: a running job whose generated-count has not
  /// advanced for this long is escalated by tripping its CancelToken, so
  /// a hung search unwinds into a defined kCancelled outcome (0 = off).
  double watchdog_stall_ms = 0;

  /// Optional fault injector (robust/fault.hpp); not owned, may be null,
  /// must outlive the service. Threaded into every job's Params::faults
  /// and consulted for kQueueFull admission rejections. Fault-afflicted
  /// results are never cached (they are injection-dependent).
  FaultInjector* faults = nullptr;

  /// Optional durable job journal (ckpt/journal.hpp); not owned, may be
  /// null, must outlive the service. When set, every running job arms a
  /// per-job engine checkpoint at journal->job_checkpoint_path(id) (cadence
  /// `checkpoint_interval_ms`), resumes from a matching snapshot left by a
  /// crashed predecessor, and removes the snapshot file once the job
  /// reaches a terminal outcome. Accept/complete records themselves are
  /// the caller's responsibility (parabb_serve writes them around submit).
  JobJournal* journal = nullptr;

  /// Per-job snapshot cadence in ms when `journal` is set (<= 0 disables
  /// the interval; snapshots then only happen on explicit request).
  double checkpoint_interval_ms = 1000;
};

/// Thrown by submit() when admission control sheds the job (queue full or
/// an injected kQueueFull fault). `retry_after_ms` is the service's
/// backoff hint, scaled by the current queue depth per worker.
class OverloadedError : public std::runtime_error {
 public:
  explicit OverloadedError(double retry_ms)
      : std::runtime_error("service overloaded"), retry_after_ms(retry_ms) {}
  double retry_after_ms = 0;
};

/// Service-level counters (monotone; queue_peak is a high-water mark).
struct ServiceCounters {
  std::uint64_t admitted = 0;    ///< jobs accepted by submit()
  std::uint64_t completed = 0;   ///< jobs that reached a terminal outcome
  std::uint64_t optimal = 0;     ///< ... with outcome optimal
  std::uint64_t timed_out = 0;   ///< ... with outcome feasible_timeout
  std::uint64_t cancelled = 0;   ///< ... with outcome cancelled
  std::uint64_t infeasible = 0;  ///< ... with outcome infeasible
  std::uint64_t errors = 0;      ///< ... that failed with an error
  std::uint64_t shed = 0;        ///< submissions rejected by admission control
  std::uint64_t watchdog_cancels = 0;  ///< jobs cancelled for stagnation
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t queue_peak = 0;    ///< pending-queue depth high-water mark

  /// Stable (label, value) rows for the shutdown summary table.
  std::vector<std::pair<std::string, std::uint64_t>> rows() const;
};

/// Handle returned by submit(); identifies a job to wait()/cancel().
using JobTicket = std::uint64_t;

class SolverService {
 public:
  explicit SolverService(ServiceConfig config = {});

  /// Drains: blocks until every admitted job reached a terminal state.
  ~SolverService();

  const ServiceConfig& config() const noexcept { return config_; }

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Admits a job; throws OverloadedError (without admitting) when
  /// admission control sheds it. `on_done` (optional) fires exactly once with the
  /// terminal result, on a worker thread (or on the canceller's thread
  /// for a job cancelled before it ran); it must not block for long and
  /// must not call wait() on its own job. wait_all() does not return
  /// until every admitted job's callback has returned.
  JobTicket submit(JobRequest request,
                   std::function<void(const JobResult&)> on_done = {});

  /// Blocks until the job is terminal and returns its result.
  /// Throws precondition_error for an unknown ticket.
  JobResult wait(JobTicket ticket);

  /// Requests cancellation. A still-pending job completes immediately
  /// with outcome kCancelled (it never runs); a running job's token is
  /// tripped and it unwinds with its best incumbent. Returns false when
  /// the ticket is unknown or the job is already terminal.
  bool cancel(JobTicket ticket);

  /// Blocks until every job admitted so far is terminal.
  void wait_all();

  int worker_count() const noexcept;
  ServiceCounters counters() const;
  CacheCounters cache_counters() const { return cache_.counters(); }

 private:
  enum class State : std::uint8_t { kPending, kRunning, kDone };

  struct JobRecord {
    JobRequest request;
    std::function<void(const JobResult&)> on_done;
    CancelToken token;
    State state = State::kPending;
    JobResult result;
    std::uint64_t seq = 0;  ///< admission order, FIFO tie-break
    /// Engine progress feed (Params::progress) the watchdog scans.
    std::atomic<std::uint64_t> progress{0};
  };

  /// Max-heap orders pending jobs: higher priority first, then lower seq.
  struct PendingRef {
    int priority = 0;
    std::uint64_t seq = 0;
    JobTicket ticket = 0;
    bool operator<(const PendingRef& o) const noexcept {
      if (priority != o.priority) return priority < o.priority;
      return seq > o.seq;  // older (smaller seq) wins
    }
  };

  void pump();  ///< one admitted job: pop best pending, run, finalize
  JobResult run_job(const std::shared_ptr<JobRecord>& record);
  void finalize(const std::shared_ptr<JobRecord>& record, JobResult result);

  /// Resolves the parabb_service_* registry handles (null registry OK).
  void bind_metrics();

  ServiceConfig config_;
  ResultCache cache_;
  ThreadPool pool_;
  /// Stagnation watchdog; null unless config_.watchdog_stall_ms > 0.
  /// Declared after pool_ so it is destroyed (joined) first.
  std::unique_ptr<Watchdog> watchdog_;

  // Registry handles; all null when config_.metrics is null. Counters are
  // bumped next to their ServiceCounters twins so both views agree.
  Counter* m_admitted_ = nullptr;
  Counter* m_completed_ = nullptr;
  Counter* m_optimal_ = nullptr;
  Counter* m_timed_out_ = nullptr;
  Counter* m_cancelled_ = nullptr;
  Counter* m_infeasible_ = nullptr;
  Counter* m_errors_ = nullptr;
  Counter* m_shed_ = nullptr;
  Counter* m_watchdog_ = nullptr;
  Counter* m_cache_hits_ = nullptr;
  Counter* m_cache_misses_ = nullptr;
  Gauge* m_queue_peak_ = nullptr;
  Histogram* m_job_seconds_ = nullptr;
  MetricsRegistry::CollectorId collector_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_done_;
  std::map<JobTicket, std::shared_ptr<JobRecord>> jobs_;
  std::vector<PendingRef> pending_;  // std::push_heap/pop_heap
  JobTicket next_ticket_ = 1;
  std::uint64_t in_flight_ = 0;  ///< admitted, not yet terminal
  ServiceCounters counters_;
};

}  // namespace parabb
