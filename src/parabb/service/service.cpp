#include "parabb/service/service.hpp"

#include <algorithm>
#include <utility>

#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/service/fingerprint.hpp"
#include "parabb/support/assert.hpp"
#include "parabb/support/timer.hpp"
#include "parabb/verify/certificate.hpp"
#include "parabb/verify/certificate_io.hpp"

namespace parabb {

std::vector<std::pair<std::string, std::uint64_t>> ServiceCounters::rows()
    const {
  return {
      {"jobs admitted", admitted},
      {"jobs completed", completed},
      {"  optimal", optimal},
      {"  feasible_timeout", timed_out},
      {"  cancelled", cancelled},
      {"  infeasible", infeasible},
      {"  errors", errors},
      {"cache hits", cache_hits},
      {"cache misses", cache_misses},
      {"queue depth peak", queue_peak},
  };
}

SolverService::SolverService(ServiceConfig config)
    : cache_(config.cache_entries),
      pool_(config.workers <= 0 ? 0
                                : static_cast<std::size_t>(config.workers)) {}

SolverService::~SolverService() {
  // Drain-then-join: shutdown runs every queued pump to completion and
  // joins the workers, so no pump can touch members after they die.
  pool_.shutdown(ThreadPool::DrainPolicy::kDrain);
}

JobTicket SolverService::submit(
    JobRequest request, std::function<void(const JobResult&)> on_done) {
  auto record = std::make_shared<JobRecord>();
  record->request = std::move(request);
  record->on_done = std::move(on_done);

  JobTicket ticket;
  {
    const std::lock_guard lock(mutex_);
    ticket = next_ticket_++;
    record->seq = ticket;
    jobs_.emplace(ticket, record);
    pending_.push_back(
        PendingRef{record->request.priority, record->seq, ticket});
    std::push_heap(pending_.begin(), pending_.end());
    ++counters_.admitted;
    ++in_flight_;
    counters_.queue_peak = std::max(counters_.queue_peak, pending_.size());
  }
  // One pump per admitted job: the pool's thread count caps concurrency,
  // the heap decides *which* pending job each pump runs.
  pool_.submit([this] { pump(); });
  return ticket;
}

void SolverService::pump() {
  std::shared_ptr<JobRecord> record;
  {
    const std::lock_guard lock(mutex_);
    while (!pending_.empty()) {
      std::pop_heap(pending_.begin(), pending_.end());
      const JobTicket ticket = pending_.back().ticket;
      pending_.pop_back();
      const auto it = jobs_.find(ticket);
      PARABB_ASSERT(it != jobs_.end());
      if (it->second->state != State::kPending) continue;  // cancelled
      record = it->second;
      record->state = State::kRunning;
      break;
    }
  }
  // All heap entries consumed by cancellation: this pump has nothing to do
  // (the cancel path already finalized those jobs).
  if (!record) return;
  finalize(record, run_job(record));
}

JobResult SolverService::run_job(const std::shared_ptr<JobRecord>& record) {
  const JobRequest& req = record->request;
  JobResult out;
  out.id = req.id;

  // Jobs carrying opaque hooks (F/D) cannot be fingerprinted, so they
  // bypass the cache entirely rather than risk a stale-config hit.
  const bool cacheable =
      !req.params.characteristic && !req.params.dominance;
  std::uint64_t fp = 0;
  std::string key;
  if (cacheable) {
    key = request_key(req);
    fp = fingerprint_bytes(key);
    if (auto hit = cache_.lookup(fp, key)) {
      hit->id = req.id;
      hit->cached = true;
      hit->seconds = 0.0;
      return *std::move(hit);
    }
  }

  try {
    const SchedContext ctx(req.graph, req.machine);
    Params params = req.params;
    params.trace = nullptr;  // service-owned fields
    apply_budget(params, req.budget, &record->token);

    CertificateBuilder builder;
    if (req.certify) params.certify = &builder;

    Stopwatch watch;
    if (req.threads > 1) {
      ParallelParams pp;
      pp.base = params;
      pp.threads = req.threads;
      const ParallelResult r = solve_bnb_parallel(ctx, pp);
      out.found = r.found_solution;
      out.schedule = r.best;
      out.cost = r.best_cost;
      out.proved = r.proved;
      out.reason = r.reason;
      out.generated = r.stats.generated;
    } else {
      const SearchResult r = solve_bnb(ctx, params);
      out.found = r.found_solution;
      out.schedule = r.best;
      out.cost = r.best_cost;
      out.proved = r.proved;
      out.certified_lower_bound = r.certified_lower_bound;
      out.reason = r.reason;
      out.generated = r.stats.generated;
    }
    out.seconds = watch.seconds();
    out.outcome = outcome_of(out.reason, out.found);
    if (req.certify) {
      out.certificate = certificate_to_text(builder.take(), req.graph);
    }
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }

  // Cancelled searches are timing-dependent partial results; caching them
  // would serve a worse incumbent than a fresh (budgeted) run could find.
  if (cacheable && out.outcome != JobOutcome::kCancelled) {
    cache_.insert(fp, std::move(key), out);
  }
  return out;
}

void SolverService::finalize(const std::shared_ptr<JobRecord>& record,
                             JobResult result) {
  {
    const std::lock_guard lock(mutex_);
    record->result = std::move(result);
    record->state = State::kDone;
    ++counters_.completed;
    if (!record->result.error.empty()) {
      ++counters_.errors;
    } else {
      switch (record->result.outcome) {
        case JobOutcome::kOptimal: ++counters_.optimal; break;
        case JobOutcome::kFeasibleTimeout: ++counters_.timed_out; break;
        case JobOutcome::kCancelled: ++counters_.cancelled; break;
        case JobOutcome::kInfeasible: ++counters_.infeasible; break;
      }
    }
    if (record->result.cached) {
      ++counters_.cache_hits;
    } else if (record->result.error.empty() &&
               record->result.outcome != JobOutcome::kCancelled &&
               !record->request.params.characteristic &&
               !record->request.params.dominance) {
      ++counters_.cache_misses;
    }
  }
  cv_done_.notify_all();  // wait(ticket) waiters: the result is terminal
  // The callback runs before in_flight_ drops so wait_all() implies every
  // on_done has returned — parabb_serve relies on that to emit all
  // responses before its shutdown summary (and before its stream state
  // is torn down). `result` is immutable once kDone, so the unlocked read
  // is safe against concurrent wait().
  if (record->on_done) record->on_done(record->result);
  {
    const std::lock_guard lock(mutex_);
    PARABB_ASSERT(in_flight_ > 0);
    --in_flight_;
  }
  cv_done_.notify_all();
}

JobResult SolverService::wait(JobTicket ticket) {
  std::shared_ptr<JobRecord> record;
  {
    const std::lock_guard lock(mutex_);
    const auto it = jobs_.find(ticket);
    PARABB_REQUIRE(it != jobs_.end(), "unknown job ticket");
    record = it->second;
  }
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return record->state == State::kDone; });
  return record->result;
}

bool SolverService::cancel(JobTicket ticket) {
  std::shared_ptr<JobRecord> to_finalize;
  {
    const std::lock_guard lock(mutex_);
    const auto it = jobs_.find(ticket);
    if (it == jobs_.end()) return false;
    const auto& record = it->second;
    switch (record->state) {
      case State::kDone:
        return false;
      case State::kRunning:
        record->token.cancel();  // engine unwinds with its incumbent
        return true;
      case State::kPending: {
        // Never ran: finalize here; the pump that would have claimed it
        // skips the stale heap entry.
        record->state = State::kRunning;  // claim under the lock
        to_finalize = record;
        break;
      }
    }
  }
  JobResult result;
  result.id = to_finalize->request.id;
  result.outcome = JobOutcome::kCancelled;
  result.reason = TerminationReason::kCancelled;
  finalize(to_finalize, std::move(result));
  return true;
}

void SolverService::wait_all() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return in_flight_ == 0; });
}

int SolverService::worker_count() const noexcept {
  return static_cast<int>(pool_.thread_count());
}

ServiceCounters SolverService::counters() const {
  const std::lock_guard lock(mutex_);
  return counters_;
}

}  // namespace parabb
