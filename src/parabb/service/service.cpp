#include "parabb/service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/ckpt/checkpoint.hpp"
#include "parabb/ckpt/journal.hpp"
#include "parabb/ckpt/snapshot.hpp"
#include "parabb/obs/observe.hpp"
#include "parabb/obs/recorder.hpp"
#include "parabb/obs/span.hpp"
#include "parabb/robust/fault.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/service/fingerprint.hpp"
#include "parabb/support/assert.hpp"
#include "parabb/support/json.hpp"
#include "parabb/support/timer.hpp"
#include "parabb/verify/certificate.hpp"
#include "parabb/verify/certificate_io.hpp"

namespace parabb {

std::vector<std::pair<std::string, std::uint64_t>> ServiceCounters::rows()
    const {
  return {
      {"jobs admitted", admitted},
      {"jobs completed", completed},
      {"  optimal", optimal},
      {"  feasible_timeout", timed_out},
      {"  cancelled", cancelled},
      {"  infeasible", infeasible},
      {"  errors", errors},
      {"jobs shed", shed},
      {"watchdog cancels", watchdog_cancels},
      {"cache hits", cache_hits},
      {"cache misses", cache_misses},
      {"queue depth peak", queue_peak},
  };
}

SolverService::SolverService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_entries),
      pool_(config.workers <= 0 ? 0
                                : static_cast<std::size_t>(config.workers)) {
  if (config_.watchdog_stall_ms > 0) {
    Watchdog::Config wc;
    wc.stall_ms = config_.watchdog_stall_ms;
    wc.interval_ms = std::max(1.0, config_.watchdog_stall_ms / 4.0);
    watchdog_ = std::make_unique<Watchdog>(wc);
  }
  bind_metrics();
}

void SolverService::bind_metrics() {
  MetricsRegistry* reg = config_.metrics;
  if (!reg) return;
  m_admitted_ = reg->counter("parabb_service_jobs_admitted_total");
  m_completed_ = reg->counter("parabb_service_jobs_completed_total");
  m_optimal_ = reg->counter("parabb_service_jobs_optimal_total");
  m_timed_out_ = reg->counter("parabb_service_jobs_feasible_timeout_total");
  m_cancelled_ = reg->counter("parabb_service_jobs_cancelled_total");
  m_infeasible_ = reg->counter("parabb_service_jobs_infeasible_total");
  m_errors_ = reg->counter("parabb_service_jobs_error_total");
  m_shed_ = reg->counter("parabb_service_jobs_shed_total");
  m_watchdog_ = reg->counter("parabb_service_watchdog_cancels_total");
  m_cache_hits_ = reg->counter("parabb_service_cache_hits_total");
  m_cache_misses_ = reg->counter("parabb_service_cache_misses_total");
  m_queue_peak_ = reg->gauge("parabb_service_queue_depth_peak");
  m_job_seconds_ = reg->histogram(
      "parabb_service_job_seconds", {0.001, 0.01, 0.1, 1.0, 10.0});
  // Pull gauges: sampled at snapshot time so they are live values, not
  // whatever the last job left behind.
  collector_ = reg->add_collector([this](MetricsRegistry& r) {
    std::size_t pending;
    std::uint64_t inflight;
    {
      const std::lock_guard lock(mutex_);
      pending = pending_.size();
      inflight = in_flight_;
    }
    r.gauge("parabb_service_queue_depth")
        ->set(static_cast<std::int64_t>(pending));
    r.gauge("parabb_service_jobs_inflight")
        ->set(static_cast<std::int64_t>(inflight));
    r.gauge("parabb_service_pool_queue_depth")
        ->set(static_cast<std::int64_t>(pool_.queue_depth()));
    r.gauge("parabb_service_cache_entries")
        ->set(static_cast<std::int64_t>(cache_.size()));
    r.gauge("parabb_service_cache_capacity")
        ->set(static_cast<std::int64_t>(cache_.capacity()));
    r.gauge("parabb_service_workers")
        ->set(static_cast<std::int64_t>(pool_.thread_count()));
  });
}

SolverService::~SolverService() {
  // Drain-then-join: shutdown runs every queued pump to completion and
  // joins the workers, so no pump can touch members after they die.
  pool_.shutdown(ThreadPool::DrainPolicy::kDrain);
  // Only now is it safe to detach the collector: it reads pool_/cache_,
  // and a snapshot may race the teardown otherwise.
  if (config_.metrics) config_.metrics->remove_collector(collector_);
}

JobTicket SolverService::submit(
    JobRequest request, std::function<void(const JobResult&)> on_done) {
  auto record = std::make_shared<JobRecord>();
  record->request = std::move(request);
  record->on_done = std::move(on_done);

  JobTicket ticket;
  {
    const std::lock_guard lock(mutex_);
    // Admission control: shed instead of queueing without bound. The
    // retry hint grows with the backlog each worker already owes.
    const bool injected_full =
        config_.faults && config_.faults->submit_rejected();
    if (injected_full || (config_.max_queue_depth > 0 &&
                          pending_.size() >= config_.max_queue_depth)) {
      ++counters_.shed;
      if (m_shed_) m_shed_->add(1);
      const double backlog =
          static_cast<double>(pending_.size()) /
          static_cast<double>(std::max<std::size_t>(1, pool_.thread_count()));
      throw OverloadedError(25.0 * (1.0 + backlog));
    }
    ticket = next_ticket_++;
    record->seq = ticket;
    jobs_.emplace(ticket, record);
    pending_.push_back(
        PendingRef{record->request.priority, record->seq, ticket});
    std::push_heap(pending_.begin(), pending_.end());
    ++counters_.admitted;
    ++in_flight_;
    counters_.queue_peak = std::max(counters_.queue_peak, pending_.size());
  }
  if (m_admitted_) {
    m_admitted_->add(1);
    m_queue_peak_->set_max(
        static_cast<std::int64_t>(counters().queue_peak));
  }
  // One pump per admitted job: the pool's thread count caps concurrency,
  // the heap decides *which* pending job each pump runs.
  pool_.submit([this] { pump(); });
  return ticket;
}

void SolverService::pump() {
  std::shared_ptr<JobRecord> record;
  {
    const std::lock_guard lock(mutex_);
    while (!pending_.empty()) {
      std::pop_heap(pending_.begin(), pending_.end());
      const JobTicket ticket = pending_.back().ticket;
      pending_.pop_back();
      const auto it = jobs_.find(ticket);
      PARABB_ASSERT(it != jobs_.end());
      if (it->second->state != State::kPending) continue;  // cancelled
      record = it->second;
      record->state = State::kRunning;
      break;
    }
  }
  // All heap entries consumed by cancellation: this pump has nothing to do
  // (the cancel path already finalized those jobs).
  if (!record) return;
  finalize(record, run_job(record));
}

JobResult SolverService::run_job(const std::shared_ptr<JobRecord>& record) {
  const JobRequest& req = record->request;
  JobResult out;
  out.id = req.id;

  // Jobs carrying opaque hooks (F/D) cannot be fingerprinted, so they
  // bypass the cache entirely rather than risk a stale-config hit.
  // Fault-afflicted runs are injection-dependent partial results and are
  // never cached either.
  const bool cacheable = !req.params.characteristic &&
                         !req.params.dominance && !config_.faults;
  std::uint64_t fp = 0;
  std::string key;
  if (cacheable) {
    key = request_key(req);
    fp = fingerprint_bytes(key);
    if (auto hit = cache_.lookup(fp, key)) {
      hit->id = req.id;
      hit->cached = true;
      hit->seconds = 0.0;
      return *std::move(hit);
    }
  }

  FlightRecorder recorder(config_.flight_capacity);
  try {
    ScopedSpan ctx_span(config_.spans, "context", req.id);
    const SchedContext ctx(req.graph, req.machine);
    ctx_span.finish();

    Params params = req.params;
    params.trace = nullptr;  // service-owned fields
    params.observe = nullptr;
    apply_budget(params, req.budget, &record->token);
    params.faults = config_.faults;
    params.progress = &record->progress;

    // Durable per-job checkpoints: with a journal configured, the engine
    // snapshots its search state into the job's checkpoint file, so a
    // killed-and-restarted service resumes the job mid-search instead of
    // redoing it. A snapshot left behind by a crashed predecessor is
    // adopted only when it matches this exact (instance, parameter) pair;
    // anything else — missing, torn, corrupt, or from a different request
    // shape — starts the search fresh.
    std::optional<CheckpointController> ckpt;
    SearchSnapshot resume_snap;
    struct CkptCleanup {  // terminal outcome: the snapshot is spent
      std::string path;
      ~CkptCleanup() {
        if (!path.empty()) std::remove(path.c_str());
      }
    } ckpt_cleanup;
    if (config_.journal != nullptr) {
      const std::string path = config_.journal->job_checkpoint_path(req.id);
      ckpt.emplace(path, config_.checkpoint_interval_ms);
      params.ckpt = &*ckpt;
      ckpt_cleanup.path = path;
      try {
        resume_snap = load_snapshot(path);
        if (snapshot_matches(resume_snap, ctx, params)) {
          params.resume = &resume_snap;
        }
      } catch (const SnapshotError&) {
        // No usable snapshot: start fresh.
      }
    }

    Observation ob;
    ob.metrics = config_.metrics;
    if (req.flight) ob.recorder = &recorder;
    if (ob.enabled()) params.observe = &ob;

    CertificateBuilder builder;
    if (req.certify) params.certify = &builder;

    // Stagnation escalation: a running job whose progress feed stops
    // advancing for watchdog_stall_ms is cancelled, turning a hung search
    // into a defined kCancelled outcome. RAII so the registration is
    // dropped on every exit path, including engine throws.
    struct WatchGuard {
      Watchdog* dog = nullptr;
      std::uint64_t id = 0;
      ~WatchGuard() {
        if (dog) dog->unwatch(id);
      }
    } watch_guard;
    if (watchdog_) {
      watch_guard.dog = watchdog_.get();
      watch_guard.id =
          watchdog_->watch(&record->progress, [this, record] {
            record->token.cancel();
            {
              const std::lock_guard lock(mutex_);
              ++counters_.watchdog_cancels;
            }
            if (m_watchdog_) m_watchdog_->add(1);
          });
    }

    Stopwatch watch;
    ScopedSpan search_span(config_.spans, "search", req.id);
    if (req.threads > 1) {
      ParallelParams pp;
      pp.base = params;
      pp.threads = req.threads;
      pp.scheduler = req.scheduler;
      pp.steal_batch = req.steal_batch;
      const ParallelResult r = solve_bnb_parallel(ctx, pp);
      out.found = r.found_solution;
      out.schedule = r.best;
      out.cost = r.best_cost;
      out.proved = r.proved;
      out.reason = r.reason;
      out.generated = r.stats.generated;
    } else {
      const SearchResult r = solve_bnb(ctx, params);
      out.found = r.found_solution;
      out.schedule = r.best;
      out.cost = r.best_cost;
      out.proved = r.proved;
      out.certified_lower_bound = r.certified_lower_bound;
      out.reason = r.reason;
      out.generated = r.stats.generated;
    }
    search_span.finish();
    out.seconds = watch.seconds();
    out.outcome = outcome_of(out.reason, out.found);
    if (req.certify) {
      const ScopedSpan certify_span(config_.spans, "certify", req.id);
      out.certificate = certificate_to_text(builder.take(), req.graph);
    }
    // The dump explains *interrupted* searches; a job that ran to its
    // natural end has nothing to explain, so its response stays lean.
    if (req.flight && (out.outcome == JobOutcome::kFeasibleTimeout ||
                       out.outcome == JobOutcome::kCancelled)) {
      out.flight_json = recorder.dump_json().dump();
    }
  } catch (const std::exception& e) {
    out.error = e.what();
    return out;
  }

  // Cancelled searches are timing-dependent partial results; caching them
  // would serve a worse incumbent than a fresh (budgeted) run could find.
  if (cacheable && out.outcome != JobOutcome::kCancelled) {
    cache_.insert(fp, std::move(key), out);
  }
  return out;
}

void SolverService::finalize(const std::shared_ptr<JobRecord>& record,
                             JobResult result) {
  {
    const std::lock_guard lock(mutex_);
    record->result = std::move(result);
    record->state = State::kDone;
    ++counters_.completed;
    if (!record->result.error.empty()) {
      ++counters_.errors;
    } else {
      switch (record->result.outcome) {
        case JobOutcome::kOptimal: ++counters_.optimal; break;
        case JobOutcome::kFeasibleTimeout: ++counters_.timed_out; break;
        case JobOutcome::kCancelled: ++counters_.cancelled; break;
        case JobOutcome::kInfeasible: ++counters_.infeasible; break;
      }
    }
    if (record->result.cached) {
      ++counters_.cache_hits;
    } else if (record->result.error.empty() &&
               record->result.outcome != JobOutcome::kCancelled &&
               !record->request.params.characteristic &&
               !record->request.params.dominance) {
      ++counters_.cache_misses;
    }
  }
  if (m_completed_) {
    const JobResult& r = record->result;
    m_completed_->add(1);
    if (!r.error.empty()) {
      m_errors_->add(1);
    } else {
      switch (r.outcome) {
        case JobOutcome::kOptimal: m_optimal_->add(1); break;
        case JobOutcome::kFeasibleTimeout: m_timed_out_->add(1); break;
        case JobOutcome::kCancelled: m_cancelled_->add(1); break;
        case JobOutcome::kInfeasible: m_infeasible_->add(1); break;
      }
    }
    if (r.cached) {
      m_cache_hits_->add(1);
    } else if (r.error.empty() && r.outcome != JobOutcome::kCancelled &&
               !record->request.params.characteristic &&
               !record->request.params.dominance) {
      m_cache_misses_->add(1);
    }
    if (r.error.empty() && !r.cached) m_job_seconds_->observe(r.seconds);
  }
  cv_done_.notify_all();  // wait(ticket) waiters: the result is terminal
  // The callback runs before in_flight_ drops so wait_all() implies every
  // on_done has returned — parabb_serve relies on that to emit all
  // responses before its shutdown summary (and before its stream state
  // is torn down). `result` is immutable once kDone, so the unlocked read
  // is safe against concurrent wait().
  if (record->on_done) record->on_done(record->result);
  {
    const std::lock_guard lock(mutex_);
    PARABB_ASSERT(in_flight_ > 0);
    --in_flight_;
  }
  cv_done_.notify_all();
}

JobResult SolverService::wait(JobTicket ticket) {
  std::shared_ptr<JobRecord> record;
  {
    const std::lock_guard lock(mutex_);
    const auto it = jobs_.find(ticket);
    PARABB_REQUIRE(it != jobs_.end(), "unknown job ticket");
    record = it->second;
  }
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return record->state == State::kDone; });
  return record->result;
}

bool SolverService::cancel(JobTicket ticket) {
  std::shared_ptr<JobRecord> to_finalize;
  {
    const std::lock_guard lock(mutex_);
    const auto it = jobs_.find(ticket);
    if (it == jobs_.end()) return false;
    const auto& record = it->second;
    switch (record->state) {
      case State::kDone:
        return false;
      case State::kRunning:
        record->token.cancel();  // engine unwinds with its incumbent
        return true;
      case State::kPending: {
        // Never ran: finalize here; the pump that would have claimed it
        // skips the stale heap entry.
        record->state = State::kRunning;  // claim under the lock
        to_finalize = record;
        break;
      }
    }
  }
  JobResult result;
  result.id = to_finalize->request.id;
  result.outcome = JobOutcome::kCancelled;
  result.reason = TerminationReason::kCancelled;
  finalize(to_finalize, std::move(result));
  return true;
}

void SolverService::wait_all() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return in_flight_ == 0; });
}

int SolverService::worker_count() const noexcept {
  return static_cast<int>(pool_.thread_count());
}

ServiceCounters SolverService::counters() const {
  const std::lock_guard lock(mutex_);
  return counters_;
}

}  // namespace parabb
