// Canonical request fingerprinting for the result cache.
//
// Two requests must hit the same cache entry iff re-running the solver
// could be skipped: same task graph (structure, weights, deadlines —
// names included, since responses echo them), same machine (processor
// count, communication model, topology hop matrix), same 9-tuple
// parameters, same engine (sequential vs parallel), and same budget (a
// budget-truncated search depends on its caps, so a job with a different
// budget is a different request).
//
// The fingerprint is a 64-bit mix64 chain (support/hash.hpp — the same
// SplitMix64 machinery behind the transposition table's Zobrist keys)
// over a *canonical key string*: the normalized TGF serialization of the
// graph plus a stable rendering of machine/params/budget. The cache keeps
// the key string alongside each entry and compares it on a fingerprint
// match, so a 64-bit collision costs one string compare, never a wrong
// answer.
#pragma once

#include <cstdint>
#include <string>

#include "parabb/service/job.hpp"

namespace parabb {

/// 64-bit hash of an arbitrary byte string via the mix64 chain.
std::uint64_t fingerprint_bytes(const std::string& bytes) noexcept;

/// The canonical key string of a request (deterministic across runs and
/// platforms; see file comment for what it covers).
std::string request_key(const JobRequest& request);

/// fingerprint_bytes(request_key(request)).
std::uint64_t request_fingerprint(const JobRequest& request);

}  // namespace parabb
