// Bounded LRU result cache for the solver service.
//
// Keyed by the 64-bit canonical request fingerprint (service/fingerprint).
// Each entry retains the full canonical key string and verifies it on a
// fingerprint match, so a 64-bit collision degrades to a miss instead of
// serving another request's schedule. Capacity is a fixed entry count;
// insertion past capacity evicts the least-recently-used entry (lookups
// refresh recency). All operations are O(1) under one mutex — the cache
// is consulted once per job, never on the search hot path.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "parabb/service/job.hpp"

namespace parabb {

/// Monotone cache counters (snapshot via ResultCache::counters()).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t collisions = 0;  ///< fingerprint match, key mismatch
};

class ResultCache {
 public:
  /// `max_entries == 0` disables the cache (every lookup misses, inserts
  /// are dropped).
  explicit ResultCache(std::size_t max_entries);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for (fp, key) and refreshes its recency.
  /// The returned copy keeps the *cached* job's id; callers re-tag it.
  std::optional<JobResult> lookup(std::uint64_t fp, const std::string& key);

  /// Stores `result` under (fp, key), evicting the LRU entry when full.
  /// Re-inserting an existing key overwrites its result.
  void insert(std::uint64_t fp, std::string key, JobResult result);

  std::size_t size() const;
  std::size_t capacity() const noexcept { return max_entries_; }
  CacheCounters counters() const;
  void clear();

 private:
  struct Entry {
    std::uint64_t fp = 0;
    std::string key;
    JobResult result;
  };
  using Lru = std::list<Entry>;  // front = most recently used

  mutable std::mutex mutex_;
  std::size_t max_entries_;
  Lru lru_;
  std::unordered_map<std::uint64_t, Lru::iterator> index_;
  CacheCounters counters_;
};

}  // namespace parabb
