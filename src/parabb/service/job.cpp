#include "parabb/service/job.hpp"

#include <algorithm>

#include "parabb/bnb/cancel.hpp"

namespace parabb {

void apply_budget(Params& params, const Budget& budget,
                  const CancelToken* cancel) {
  if (budget.wall_ms > 0) {
    params.rb.time_limit_s =
        std::min(params.rb.time_limit_s, budget.wall_ms / 1000.0);
  }
  if (budget.max_generated > 0) {
    params.rb.max_generated =
        std::min(params.rb.max_generated, budget.max_generated);
  }
  if (budget.max_active_bytes > 0) {
    params.rb.max_memory_bytes =
        std::min(params.rb.max_memory_bytes, budget.max_active_bytes);
  }
  params.cancel = cancel;
}

std::string to_string(JobOutcome o) {
  switch (o) {
    case JobOutcome::kOptimal: return "optimal";
    case JobOutcome::kFeasibleTimeout: return "feasible_timeout";
    case JobOutcome::kCancelled: return "cancelled";
    case JobOutcome::kInfeasible: return "infeasible";
  }
  return "unknown";
}

int exit_code_for(JobOutcome o) {
  switch (o) {
    case JobOutcome::kOptimal: return 0;
    case JobOutcome::kFeasibleTimeout: return 3;
    case JobOutcome::kCancelled: return 4;
    case JobOutcome::kInfeasible: return 5;
  }
  return 2;
}

JobOutcome outcome_of(TerminationReason reason, bool found_solution) {
  if (reason == TerminationReason::kCancelled) return JobOutcome::kCancelled;
  if (!found_solution) return JobOutcome::kInfeasible;
  if (is_interrupted(reason)) return JobOutcome::kFeasibleTimeout;
  return JobOutcome::kOptimal;  // kExhausted / kBoundStop: search completed
}

}  // namespace parabb
