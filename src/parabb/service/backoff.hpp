// Seeded full-jitter exponential backoff for resubmission loops.
//
// When a shed client retries, a deterministic doubling schedule keeps every
// rejected client in lock-step: they all sleep the same time and stampede
// the queue together, getting shed together again. Full jitter (AWS
// architecture blog's "full jitter" variant) draws each delay uniformly
// from [0, base * 2^attempt), which decorrelates the retry arrivals while
// keeping the same expected load. The stream is seeded, so tests and the
// serve smoke script stay reproducible.
//
// Header-only; not thread-safe (use one policy per retrying thread).
#pragma once

#include <cstdint>

namespace parabb {

class BackoffPolicy {
 public:
  explicit BackoffPolicy(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next delay in ms: uniform over [0, cap) with
  /// cap = max(base_ms, 1) * 2^min(attempt, kMaxExponent). The exponent
  /// clamp keeps the cap finite for pathological attempt counts.
  double delay_ms(double base_ms, int attempt) noexcept {
    if (base_ms < 1.0) base_ms = 1.0;
    int exp = attempt;
    if (exp < 0) exp = 0;
    if (exp > kMaxExponent) exp = kMaxExponent;
    const double cap =
        base_ms * static_cast<double>(std::uint64_t{1} << exp);
    return cap * next_unit();
  }

  /// Exponent ceiling: caps the window at base * 2^30 (~12 days for a
  /// 1 ms base) so the cap never overflows a double's integer range.
  static constexpr int kMaxExponent = 30;

 private:
  /// [0, 1) from a splitmix64 stream — 53 mantissa bits of the mix.
  double next_unit() noexcept {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  std::uint64_t state_;
};

}  // namespace parabb
