#include "parabb/service/fingerprint.hpp"

#include <sstream>

#include "parabb/support/hash.hpp"
#include "parabb/taskgraph/io.hpp"

namespace parabb {

std::uint64_t fingerprint_bytes(const std::string& bytes) noexcept {
  // mix64 chain over 8-byte little-endian chunks (zero-padded tail), with
  // the length folded in so "a" and "a\0" cannot collide trivially.
  std::uint64_t h = mix64(0x9e3779b97f4a7c15ULL ^ bytes.size());
  std::uint64_t chunk = 0;
  int filled = 0;
  for (const char c : bytes) {
    chunk |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
             << (8 * filled);
    if (++filled == 8) {
      h = mix64(h ^ chunk);
      chunk = 0;
      filled = 0;
    }
  }
  if (filled > 0) h = mix64(h ^ chunk);
  return h;
}

std::string request_key(const JobRequest& request) {
  std::ostringstream os;
  // Graph: the normalized TGF writer output is canonical (stable task
  // order, only non-default attributes emitted).
  os << to_tgf(request.graph);
  // Machine: processor count, per-item delay, and the full hop matrix
  // (covers bus/ring/line/mesh and any future topology uniformly).
  os << "machine procs=" << request.machine.procs
     << " per_item=" << request.machine.comm.per_item_delay() << " hops=";
  for (ProcId p = 0; p < request.machine.procs; ++p) {
    for (ProcId q = 0; q < request.machine.procs; ++q) {
      os << request.machine.hops(p, q) << ',';
    }
  }
  os << '\n';
  // 9-tuple parameters that influence the search result. `trace` and
  // `cancel` are service-owned and excluded; the F/D hooks cannot be
  // fingerprinted, so requests carrying them must bypass the cache (the
  // service refuses to cache them — see SolverService).
  const Params& p = request.params;
  os << "params " << describe(p) << " explicit_ub=" << p.explicit_ub
     << " sort=" << p.sort_children << " llb_tie=" << p.llb_tie_newest
     << " tt=" << p.transposition.enabled << '/'
     << p.transposition.memory_cap_bytes << '/' << p.transposition.shards
     << " rb=" << p.rb.time_limit_s << '/' << p.rb.max_active << '/'
     << p.rb.max_children << '/' << p.rb.max_generated << '/'
     << p.rb.max_memory_bytes << '\n';
  os << "engine threads=" << (request.threads > 1 ? request.threads : 1);
  // Scheduler/steal-batch only matter when the parallel engine runs; fold
  // them in only then so sequential requests keep their existing keys.
  if (request.threads > 1) {
    os << " sched=" << to_string(request.scheduler)
       << " steal_batch=" << request.steal_batch;
  }
  os << '\n';
  // Certified results carry the certificate text; a plain cached result
  // must never satisfy a certify request (or vice versa).
  os << "certify=" << request.certify << '\n';
  // A flight-dump-carrying result must never satisfy a plain request
  // (or vice versa), exactly like certificates.
  os << "flight=" << request.flight << '\n';
  // The degradation ladder changes which vertices a memory-capped run
  // explores, so a degraded result must not satisfy a ladder-off request.
  os << request.params.degrade.describe() << '\n';
  os << "budget wall_ms=" << request.budget.wall_ms
     << " max_generated=" << request.budget.max_generated
     << " max_active_bytes=" << request.budget.max_active_bytes << '\n';
  return os.str();
}

std::uint64_t request_fingerprint(const JobRequest& request) {
  return fingerprint_bytes(request_key(request));
}

}  // namespace parabb
