#include "parabb/service/protocol.hpp"

#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>

#include "parabb/obs/metrics.hpp"
#include "parabb/support/json.hpp"
#include "parabb/taskgraph/io.hpp"

namespace parabb {
namespace {

[[noreturn]] void bad_request(const std::string& msg) {
  throw std::runtime_error("bad request: " + msg);
}

std::int64_t get_int_field(const JsonValue& obj, const char* key,
                           std::int64_t fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is_number()) bad_request(std::string(key) + " must be a number");
  return v->as_int();
}

double get_double_field(const JsonValue& obj, const char* key,
                        double fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is_number()) bad_request(std::string(key) + " must be a number");
  return v->as_double();
}

std::string get_string_field(const JsonValue& obj, const char* key,
                             const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is_string()) bad_request(std::string(key) + " must be a string");
  return v->as_string();
}

bool get_bool_field(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is_bool()) bad_request(std::string(key) + " must be a bool");
  return v->as_bool();
}

/// Rejects members outside the allowed set. Typo'd or unknown fields fail
/// loudly instead of being silently ignored — a client that sends
/// {"thread":4} gets an error, not a surprising sequential solve.
void reject_unknown_fields(const JsonValue& obj, const char* what,
                           std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      bad_request("unknown " + std::string(what) + " field '" + key + "'");
    }
  }
}

}  // namespace

SelectRule parse_select_rule(const std::string& s) {
  if (s == "lifo") return SelectRule::kLIFO;
  if (s == "llb") return SelectRule::kLLB;
  if (s == "fifo") return SelectRule::kFIFO;
  throw std::runtime_error("select must be lifo, llb or fifo (got '" + s +
                           "')");
}

BranchRule parse_branch_rule(const std::string& s) {
  if (s == "bfn") return BranchRule::kBFn;
  if (s == "bf1") return BranchRule::kBF1;
  if (s == "df") return BranchRule::kDF;
  throw std::runtime_error("branch must be bfn, bf1 or df (got '" + s +
                           "')");
}

LowerBound parse_lower_bound(const std::string& s) {
  if (s == "lb0") return LowerBound::kLB0;
  if (s == "lb1") return LowerBound::kLB1;
  if (s == "lb2") return LowerBound::kLB2;
  throw std::runtime_error("lb must be lb0, lb1 or lb2 (got '" + s + "')");
}

Machine machine_from_spec(int procs, Time comm_per_item,
                          const std::string& topology) {
  Machine machine;
  machine.procs = procs;
  machine.comm = CommModel::per_item(comm_per_item);
  if (topology == "bus" || topology.empty()) return machine;
  if (topology == "ring") {
    machine.topology = NetworkTopology::ring(procs);
  } else if (topology == "line") {
    machine.topology = NetworkTopology::line(procs);
  } else if (topology.rfind("mesh", 0) == 0) {
    const auto x = topology.find('x');
    int rows = 0;
    int cols = 0;
    try {
      if (x == std::string::npos || x <= 4) throw std::invalid_argument("");
      std::size_t rend = 0;
      std::size_t cend = 0;
      rows = std::stoi(topology.substr(4, x - 4), &rend);
      cols = std::stoi(topology.substr(x + 1), &cend);
      if (rend != x - 4 || cend != topology.size() - x - 1) {
        throw std::invalid_argument("");
      }
    } catch (const std::exception&) {
      throw std::runtime_error("mesh topology needs RxC, e.g. mesh2x2");
    }
    machine.topology = NetworkTopology::mesh(rows, cols);
    machine.procs = rows * cols;
  } else {
    throw std::runtime_error("unknown topology: " + topology);
  }
  return machine;
}

JobRequest request_from_json(const std::string& line) {
  if (line.size() > kMaxRequestLineBytes) {
    bad_request("request line exceeds " +
                std::to_string(kMaxRequestLineBytes) + " bytes (got " +
                std::to_string(line.size()) + ")");
  }
  const JsonValue doc = JsonValue::parse(line);
  if (!doc.is_object()) bad_request("request must be a JSON object");
  reject_unknown_fields(doc, "request",
                        {"id", "graph", "procs", "comm", "topology",
                         "select", "branch", "lb", "br", "ub", "tt",
                         "threads", "scheduler", "steal_batch", "priority",
                         "budget", "certify", "flight", "degrade"});

  JobRequest req;
  req.id = get_string_field(doc, "id", "");
  if (req.id.empty()) bad_request("missing request id");

  const JsonValue* graph = doc.find("graph");
  if (!graph || !graph->is_string()) {
    bad_request("missing inline TGF task graph ('graph' string field)");
  }
  req.graph = from_tgf(graph->as_string());

  const auto procs = get_int_field(doc, "procs", 2);
  if (procs < 1 || procs > kMaxProcs) {
    bad_request("procs must be in [1, " + std::to_string(kMaxProcs) + "]");
  }
  req.machine = machine_from_spec(static_cast<int>(procs),
                                  get_int_field(doc, "comm", 1),
                                  get_string_field(doc, "topology", "bus"));

  req.params.select = parse_select_rule(get_string_field(doc, "select",
                                                         "lifo"));
  req.params.branch = parse_branch_rule(get_string_field(doc, "branch",
                                                         "bfn"));
  req.params.lb = parse_lower_bound(get_string_field(doc, "lb", "lb1"));
  req.params.br = get_double_field(doc, "br", 0.0);
  if (req.params.br < 0) bad_request("br must be >= 0");

  if (const JsonValue* ub = doc.find("ub")) {
    if (ub->is_number()) {
      req.params.ub = UpperBoundInit::kExplicit;
      req.params.explicit_ub = ub->as_int();
    } else if (ub->as_string() == "edf") {
      req.params.ub = UpperBoundInit::kFromEDF;
    } else if (ub->as_string() == "inf") {
      req.params.ub = UpperBoundInit::kInfinite;
    } else {
      bad_request("ub must be \"edf\", \"inf\", or a number");
    }
  }

  if (const JsonValue* tt = doc.find("tt")) {
    if (!tt->is_bool()) bad_request("tt must be a bool");
    req.params.transposition.enabled = tt->as_bool();
  }

  req.threads = static_cast<int>(get_int_field(doc, "threads", 1));
  if (req.threads < 0) bad_request("threads must be >= 0");
  if (const JsonValue* sched = doc.find("scheduler")) {
    if (!sched->is_string()) bad_request("scheduler must be a string");
    const std::string& s = sched->as_string();
    if (s == "ws") {
      req.scheduler = ParallelScheduler::kWorkStealing;
    } else if (s == "central") {
      req.scheduler = ParallelScheduler::kCentralQueue;
    } else {
      bad_request("scheduler must be \"ws\" or \"central\"");
    }
  }
  req.steal_batch = static_cast<int>(get_int_field(doc, "steal_batch", 0));
  if (req.steal_batch < 0) bad_request("steal_batch must be >= 0");
  req.priority = static_cast<int>(get_int_field(doc, "priority", 0));

  req.certify = get_bool_field(doc, "certify", false);
  req.flight = get_bool_field(doc, "flight", false);
  // Opt into the graceful-degradation ladder (default high-water marks;
  // a no-op unless the budget carries max_active_bytes).
  req.params.degrade.enabled = get_bool_field(doc, "degrade", false);

  if (const JsonValue* budget = doc.find("budget")) {
    if (!budget->is_object()) bad_request("budget must be an object");
    reject_unknown_fields(*budget, "budget",
                          {"wall_ms", "max_generated", "max_active_bytes"});
    req.budget.wall_ms = get_double_field(*budget, "wall_ms", 0.0);
    req.budget.max_generated = static_cast<std::uint64_t>(
        get_int_field(*budget, "max_generated", 0));
    req.budget.max_active_bytes = static_cast<std::size_t>(
        get_int_field(*budget, "max_active_bytes", 0));
    if (req.budget.wall_ms < 0) bad_request("budget.wall_ms must be >= 0");
  }

  return req;
}

std::string response_to_json(const JobResult& result,
                             const TaskGraph& graph) {
  if (!result.error.empty()) {
    return error_response_json(result.id, result.error);
  }
  JsonValue out = JsonValue::object();
  out.set("id", result.id);
  out.set("outcome", to_string(result.outcome));
  if (result.found) {
    out.set("cost", result.cost);
    out.set("proved", result.proved);
  }
  if (result.certified_lower_bound > kTimeNegInf) {
    out.set("lower_bound", result.certified_lower_bound);
  }
  out.set("cached", result.cached);
  out.set("generated", result.generated);
  out.set("seconds", result.seconds);
  if (result.found) {
    JsonValue sched = JsonValue::array();
    for (TaskId t = 0; t < result.schedule.task_count(); ++t) {
      const ScheduledTask& e = result.schedule.entry(t);
      JsonValue entry = JsonValue::object();
      entry.set("task", graph.task(t).name);
      entry.set("proc", static_cast<std::int64_t>(e.proc));
      entry.set("start", e.start);
      entry.set("finish", e.finish);
      sched.push_back(std::move(entry));
    }
    out.set("schedule", std::move(sched));
  }
  if (!result.certificate.empty()) {
    out.set("certificate", result.certificate);
  }
  if (!result.flight_json.empty()) {
    out.set("flight", JsonValue::parse(result.flight_json));
  }
  return out.dump();
}

std::string error_response_json(const std::string& id,
                                const std::string& message) {
  JsonValue out = JsonValue::object();
  out.set("id", id.empty() ? "?" : id);
  out.set("error", message);
  return out.dump();
}

std::string overloaded_response_json(const std::string& id,
                                     double retry_after_ms) {
  JsonValue out = JsonValue::object();
  out.set("id", id.empty() ? "?" : id);
  out.set("outcome", std::string("overloaded"));
  out.set("retry_after_ms", retry_after_ms);
  return out.dump();
}

std::optional<MetricsRequest> parse_metrics_request(const std::string& line,
                                                    std::size_t line_no) {
  if (line.size() > kMaxRequestLineBytes) return std::nullopt;
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const std::exception&) {
    return std::nullopt;  // the solve-request path reports parse errors
  }
  if (!doc.is_object() || doc.find("metrics") == nullptr) {
    return std::nullopt;
  }
  const auto bad = [line_no](const std::string& msg) -> std::runtime_error {
    return std::runtime_error("metrics request at line " +
                              std::to_string(line_no) + ": " + msg);
  };
  for (const auto& [key, value] : doc.members()) {
    (void)value;
    if (key != "id" && key != "metrics") {
      throw bad("unknown field '" + key + "'");
    }
  }
  const JsonValue& flag = *doc.find("metrics");
  if (!flag.is_bool() || !flag.as_bool()) {
    throw bad("'metrics' must be the literal true");
  }
  MetricsRequest req;
  const JsonValue* id = doc.find("id");
  if (!id) throw bad("missing request id");
  if (!id->is_string() || id->as_string().empty()) {
    throw bad("id must be a non-empty string");
  }
  req.id = id->as_string();
  return req;
}

std::string metrics_response_json(const std::string& id,
                                  const MetricsSnapshot& snapshot) {
  JsonValue out = JsonValue::object();
  out.set("id", id);
  out.set("metrics", snapshot.to_json());
  return out.dump();
}

}  // namespace parabb
