#include "parabb/taskgraph/graph.hpp"

#include <algorithm>

#include "parabb/support/assert.hpp"

namespace parabb {

TaskId TaskGraph::add_task(Task task) {
  PARABB_REQUIRE(task.exec >= 0, "task execution time must be >= 0");
  PARABB_REQUIRE(task.period >= 0, "task period must be >= 0");
  tasks_.push_back(std::move(task));
  preds_.emplace_back();
  succs_.emplace_back();
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::add_arc(TaskId from, TaskId to, Time items) {
  check_task(from);
  check_task(to);
  PARABB_REQUIRE(from != to, "precedence is irreflexive");
  PARABB_REQUIRE(items >= 0, "message size must be >= 0");
  const auto& out = succs_[static_cast<std::size_t>(from)];
  const bool dup = std::any_of(out.begin(), out.end(),
                               [to](const Arc& a) { return a.other == to; });
  PARABB_REQUIRE(!dup, "duplicate arc");
  arcs_.push_back(Channel{from, to, items});
  succs_[static_cast<std::size_t>(from)].push_back(Arc{to, items});
  preds_[static_cast<std::size_t>(to)].push_back(Arc{from, items});
}

const Task& TaskGraph::task(TaskId t) const {
  check_task(t);
  return tasks_[static_cast<std::size_t>(t)];
}

Task& TaskGraph::task(TaskId t) {
  check_task(t);
  return tasks_[static_cast<std::size_t>(t)];
}

std::span<const Arc> TaskGraph::preds(TaskId t) const {
  check_task(t);
  return preds_[static_cast<std::size_t>(t)];
}

std::span<const Arc> TaskGraph::succs(TaskId t) const {
  check_task(t);
  return succs_[static_cast<std::size_t>(t)];
}

Time TaskGraph::items_on_arc(TaskId from, TaskId to) const {
  for (const Arc& a : succs(from)) {
    if (a.other == to) return a.items;
  }
  return kTimeNegInf;
}

Time TaskGraph::total_work() const noexcept {
  Time sum = 0;
  for (const Task& t : tasks_) sum += t.exec;
  return sum;
}

bool TaskGraph::is_acyclic() const {
  // Kahn's algorithm: a DAG is fully consumable by repeated source removal.
  const auto n = static_cast<std::size_t>(task_count());
  std::vector<int> indeg(n, 0);
  for (std::size_t t = 0; t < n; ++t)
    indeg[t] = static_cast<int>(preds_[t].size());
  std::vector<TaskId> stack;
  for (std::size_t t = 0; t < n; ++t)
    if (indeg[t] == 0) stack.push_back(static_cast<TaskId>(t));
  std::size_t seen = 0;
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    ++seen;
    for (const Arc& a : succs_[static_cast<std::size_t>(t)]) {
      if (--indeg[static_cast<std::size_t>(a.other)] == 0)
        stack.push_back(a.other);
    }
  }
  return seen == n;
}

std::string TaskGraph::validate() const {
  if (!is_acyclic()) return "graph contains a directed cycle";
  for (int i = 0; i < task_count(); ++i) {
    const Task& t = tasks_[static_cast<std::size_t>(i)];
    if (t.exec < 0) return "negative execution time on task " + t.name;
    if (t.rel_deadline < 0) return "negative relative deadline on " + t.name;
    if (t.period > 0 && t.rel_deadline > t.period)
      return "d_i > T_i violates the non-overlapping-window model (" +
             t.name + ")";
  }
  return {};
}

void TaskGraph::check_task(TaskId t) const {
  PARABB_REQUIRE(t >= 0 && t < task_count(),
                 "task id out of range: " + std::to_string(t));
}

}  // namespace parabb
