#include "parabb/taskgraph/transforms.hpp"

#include <algorithm>

#include "parabb/support/assert.hpp"
#include "parabb/support/bitset64.hpp"
#include "parabb/taskgraph/topology.hpp"

namespace parabb {
namespace {

/// reach[u] = set of tasks reachable from u (excluding u), for graphs with
/// <= 64 tasks (checked).
std::vector<TaskSet> reachability(const TaskGraph& graph) {
  PARABB_REQUIRE(graph.task_count() <= 64,
                 "reachability supports up to 64 tasks");
  const Topology topo = analyze(graph);
  std::vector<TaskSet> reach(static_cast<std::size_t>(graph.task_count()));
  for (auto it = topo.topo_order.rbegin(); it != topo.topo_order.rend();
       ++it) {
    const TaskId u = *it;
    TaskSet r;
    for (const Arc& a : graph.succs(u)) {
      r.insert(a.other);
      r = r | reach[static_cast<std::size_t>(a.other)];
    }
    reach[static_cast<std::size_t>(u)] = r;
  }
  return reach;
}

}  // namespace

TaskGraph transitive_reduction(const TaskGraph& graph) {
  const std::vector<TaskSet> reach = reachability(graph);
  TaskGraph out;
  for (TaskId t = 0; t < graph.task_count(); ++t) out.add_task(graph.task(t));
  for (const Channel& c : graph.arcs()) {
    if (c.items > 0) {
      out.add_arc(c.from, c.to, c.items);  // message arcs always kept
      continue;
    }
    // Redundant iff some *other* successor of `from` reaches `to`.
    bool redundant = false;
    for (const Arc& a : graph.succs(c.from)) {
      if (a.other == c.to) continue;
      if (reach[static_cast<std::size_t>(a.other)].contains(c.to)) {
        redundant = true;
        break;
      }
    }
    if (!redundant) out.add_arc(c.from, c.to, 0);
  }
  return out;
}

bool same_precedence_closure(const TaskGraph& a, const TaskGraph& b) {
  if (a.task_count() != b.task_count()) return false;
  const std::vector<TaskSet> ra = reachability(a);
  const std::vector<TaskSet> rb = reachability(b);
  return ra == rb;
}

ChainClustering cluster_linear_chains(const TaskGraph& graph) {
  const int n = graph.task_count();
  ChainClustering out;
  out.member_of.assign(static_cast<std::size_t>(n), kNoTask);

  // A task is an inner chain link if it has exactly one predecessor and
  // that predecessor has exactly one successor, and the connecting arc
  // carries no message.
  auto merges_into_pred = [&](TaskId t) {
    if (graph.preds(t).size() != 1) return false;
    const Arc& up = graph.preds(t)[0];
    return up.items == 0 && graph.succs(up.other).size() == 1;
  };

  const Topology topo = analyze(graph);
  TaskGraph clustered;
  for (const TaskId t : topo.topo_order) {
    const auto ut = static_cast<std::size_t>(t);
    if (merges_into_pred(t)) {
      const TaskId head =
          out.member_of[static_cast<std::size_t>(graph.preds(t)[0].other)];
      PARABB_ASSERT(head != kNoTask);
      Task& merged = clustered.task(head);
      merged.exec += graph.task(t).exec;
      // Conservative window: keep the head's arrival; the merged deadline
      // is the tightest absolute deadline of any member.
      if (graph.task(t).rel_deadline > 0 || merged.rel_deadline > 0) {
        const Time member_abs = graph.task(t).abs_deadline();
        const Time merged_abs = merged.abs_deadline();
        const Time abs = merged.rel_deadline > 0
                             ? std::min(member_abs, merged_abs)
                             : member_abs;
        merged.rel_deadline = abs - merged.phase;
      }
      merged.name += "+" + graph.task(t).name;
      out.member_of[ut] = head;
      ++out.chains_collapsed;
    } else {
      out.member_of[ut] = clustered.add_task(graph.task(t));
    }
  }

  // Re-wire arcs between distinct clusters (skip intra-chain arcs).
  for (const Channel& c : graph.arcs()) {
    const TaskId cf = out.member_of[static_cast<std::size_t>(c.from)];
    const TaskId ct = out.member_of[static_cast<std::size_t>(c.to)];
    if (cf == ct) continue;
    if (clustered.items_on_arc(cf, ct) == kTimeNegInf) {
      clustered.add_arc(cf, ct, c.items);
    }
  }
  PARABB_ASSERT(clustered.is_acyclic());
  out.clustered = std::move(clustered);
  return out;
}

std::vector<TaskId> critical_path_tasks(const TaskGraph& graph) {
  PARABB_REQUIRE(graph.task_count() >= 1, "empty graph");
  const Topology topo = analyze(graph);
  // Start from a task realizing the critical path, then walk heaviest
  // predecessors backwards.
  TaskId cur = 0;
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const auto ut = static_cast<std::size_t>(t);
    const auto uc = static_cast<std::size_t>(cur);
    if (topo.pref_work[ut] + graph.task(t).exec + topo.suff_work[ut] >
        topo.pref_work[uc] + graph.task(cur).exec + topo.suff_work[uc]) {
      cur = t;
    }
  }
  // Walk back to an input.
  std::vector<TaskId> path{cur};
  while (!graph.preds(path.back()).empty()) {
    const TaskId t = path.back();
    TaskId best = kNoTask;
    for (const Arc& a : graph.preds(t)) {
      const auto ua = static_cast<std::size_t>(a.other);
      if (best == kNoTask ||
          topo.pref_work[ua] + graph.task(a.other).exec >
              topo.pref_work[static_cast<std::size_t>(best)] +
                  graph.task(best).exec) {
        best = a.other;
      }
    }
    path.push_back(best);
  }
  std::reverse(path.begin(), path.end());
  // Walk forward to an output.
  while (!graph.succs(path.back()).empty()) {
    const TaskId t = path.back();
    TaskId best = kNoTask;
    for (const Arc& a : graph.succs(t)) {
      const auto ua = static_cast<std::size_t>(a.other);
      if (best == kNoTask ||
          topo.bottom_level[ua] >
              topo.bottom_level[static_cast<std::size_t>(best)]) {
        best = a.other;
      }
    }
    path.push_back(best);
  }
  return path;
}

}  // namespace parabb
