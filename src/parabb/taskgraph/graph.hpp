// TaskGraph: directed acyclic task graph G = (N, A) with per-arc message
// sizes (paper §2.2).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "parabb/support/types.hpp"
#include "parabb/taskgraph/task.hpp"

namespace parabb {

/// One incident arc as seen from a task: the neighbour and the message size.
struct Arc {
  TaskId other = kNoTask;
  Time items = 0;
};

/// Mutable DAG of tasks. Arcs represent the direct-precedence relation
/// (tau_i ≺· tau_j); message sizes annotate interprocessor data transfer.
///
/// Invariants enforced:
///  * arcs connect existing, distinct tasks (irreflexive);
///  * duplicate arcs are rejected;
///  * acyclicity is validated by validate() / required by analyze().
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Adds a task and returns its dense id.
  TaskId add_task(Task task);

  /// Adds a precedence arc tau_from ≺· tau_to carrying `items` data items.
  void add_arc(TaskId from, TaskId to, Time items = 0);

  int task_count() const noexcept { return static_cast<int>(tasks_.size()); }
  int arc_count() const noexcept { return static_cast<int>(arcs_.size()); }

  const Task& task(TaskId t) const;
  Task& task(TaskId t);

  /// Direct predecessors of t with the message size on each arc.
  std::span<const Arc> preds(TaskId t) const;
  /// Direct successors of t with the message size on each arc.
  std::span<const Arc> succs(TaskId t) const;

  /// All arcs in insertion order.
  std::span<const Channel> arcs() const noexcept { return arcs_; }

  bool is_input(TaskId t) const { return preds(t).empty(); }
  bool is_output(TaskId t) const { return succs(t).empty(); }

  /// Message size on arc (from, to); kTimeNegInf if no such arc.
  Time items_on_arc(TaskId from, TaskId to) const;

  /// Sum of all execution times (the "accumulated task graph workload").
  Time total_work() const noexcept;

  /// Checks structural invariants beyond construction-time ones; returns an
  /// empty string when valid, else a human-readable diagnosis. Currently:
  /// acyclicity and non-negative weights.
  std::string validate() const;

  /// True iff the arc set contains no directed cycle.
  bool is_acyclic() const;

 private:
  void check_task(TaskId t) const;

  std::vector<Task> tasks_;
  std::vector<Channel> arcs_;
  std::vector<std::vector<Arc>> preds_;
  std::vector<std::vector<Arc>> succs_;
};

}  // namespace parabb
