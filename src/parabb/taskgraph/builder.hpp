// GraphBuilder: fluent construction of hand-written task graphs, used by
// tests and examples. Tasks are referred to by name; arcs may be declared
// before both endpoints exist and are resolved at build().
#pragma once

#include <string>
#include <vector>

#include "parabb/taskgraph/graph.hpp"

namespace parabb {

class GraphBuilder {
 public:
  /// Declares a task. Deadline/phase may be filled in later by a deadline
  /// assigner; defaults leave them 0.
  GraphBuilder& task(std::string name, Time exec, Time rel_deadline = 0,
                     Time phase = 0, Time period = 0);

  /// Declares an arc `from -> to` carrying `items` data items.
  GraphBuilder& arc(const std::string& from, const std::string& to,
                    Time items = 0);

  /// Declares a chain of arcs a -> b -> c ... each carrying `items`.
  GraphBuilder& chain(std::initializer_list<std::string> names,
                      Time items = 0);

  /// Resolves names and returns the graph. Throws precondition_error on
  /// unknown names, duplicate tasks, or a resulting cycle.
  TaskGraph build() const;

 private:
  struct PendingArc {
    std::string from, to;
    Time items;
  };

  std::vector<Task> tasks_;
  std::vector<PendingArc> arcs_;
};

}  // namespace parabb
