// Task graph serialization: a simple line-oriented text format ("TGF") for
// persistence/round-tripping, and Graphviz DOT export for visualization.
//
// TGF format (one record per line, '#' comments, blank lines ignored):
//   task <name> exec=<int> [deadline=<int>] [phase=<int>] [period=<int>]
//   arc <from> <to> [items=<int>]
#pragma once

#include <iosfwd>
#include <string>

#include "parabb/taskgraph/graph.hpp"

namespace parabb {

/// Serializes `graph` in the TGF text format.
std::string to_tgf(const TaskGraph& graph);

/// Parses a TGF document. Throws std::runtime_error with a line-numbered
/// message on malformed input; validates the result (acyclicity etc.).
TaskGraph from_tgf(const std::string& text);

/// Graphviz DOT with execution times as node labels and message sizes as
/// edge labels.
std::string to_dot(const TaskGraph& graph);

/// Convenience: write/read a TGF file.
void save_tgf(const TaskGraph& graph, const std::string& path);
TaskGraph load_tgf(const std::string& path);

}  // namespace parabb
