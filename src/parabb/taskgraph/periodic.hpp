// Hyperperiod job expansion (extension; see DESIGN.md §3.8).
//
// The paper's task model is periodic (<c, phi, d, T>) but its evaluation
// schedules a single frame. This utility unrolls a periodic task graph into
// the equivalent single-frame job graph over one hyperperiod so the B&B
// scheduler can be applied to periodic workloads too.
//
// Rules:
//  * every task must have period > 0 and d_i <= T_i (§2.2's
//    non-overlapping-window assumption);
//  * precedence-connected tasks must share the same period (rate-matching
//    across unequal periods is out of scope and rejected);
//  * job k of tau_i becomes task "<name>#k" with phase phi_i + T_i (k-1);
//  * each arc (i, j) is replicated per invocation k;
//  * consecutive invocations of the same task are chained with a zero-items
//    arc (invocation k must precede invocation k+1).
#pragma once

#include "parabb/taskgraph/graph.hpp"

namespace parabb {

struct HyperperiodExpansion {
  TaskGraph jobs;     ///< the unrolled job graph
  Time hyperperiod;   ///< lcm of all task periods
  int invocations;    ///< jobs per task (= hyperperiod / period, uniform here)
};

/// Unrolls `graph` over one hyperperiod. Throws precondition_error if any
/// task is aperiodic, d_i > T_i, or connected tasks have unequal periods.
HyperperiodExpansion expand_hyperperiod(const TaskGraph& graph);

}  // namespace parabb
