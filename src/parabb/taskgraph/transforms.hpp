// Structural task-graph transformations.
//
// Utilities a scheduler front-end typically needs before search:
//  * transitive reduction — removing precedence arcs implied by longer
//    paths shrinks the BFn branching work and the LB recursions without
//    changing the precedence relation (message-carrying arcs are kept:
//    they change schedule semantics);
//  * linear-chain clustering — collapsing maximal single-in/single-out
//    chains into one task is the classic exact-preserving reduction for
//    non-preemptive scheduling when the chain shares one processor;
//  * critical-path extraction.
#pragma once

#include <vector>

#include "parabb/taskgraph/graph.hpp"

namespace parabb {

/// Returns a copy of `graph` without arcs (u, v) for which another
/// u -> ... -> v path exists, unless the arc carries a message
/// (items > 0), which must be kept for communication-cost semantics.
/// The result has the same transitive precedence closure.
TaskGraph transitive_reduction(const TaskGraph& graph);

/// True iff arc-wise reachability of `a` equals that of `b` (same task
/// count assumed); used to verify reduction correctness.
bool same_precedence_closure(const TaskGraph& a, const TaskGraph& b);

struct ChainClustering {
  TaskGraph clustered;
  /// member_of[original task] = clustered task id.
  std::vector<TaskId> member_of;
  int chains_collapsed = 0;
};

/// Collapses every maximal chain u1 -> u2 -> ... -> uk in which each inner
/// node has exactly one predecessor and one successor, and no link carries
/// a message (items == 0), into a single task with the summed execution
/// time. Phases/deadlines: the head's phase and the tail's absolute
/// deadline bound the merged window. Intended for workloads *before*
/// deadline slicing; tasks with assigned windows are merged conservatively.
ChainClustering cluster_linear_chains(const TaskGraph& graph);

/// Task ids of one heaviest execution-weighted input->output path,
/// in precedence order.
std::vector<TaskId> critical_path_tasks(const TaskGraph& graph);

}  // namespace parabb
