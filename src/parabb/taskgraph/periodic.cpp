#include "parabb/taskgraph/periodic.hpp"

#include <numeric>
#include <vector>

#include "parabb/support/assert.hpp"

namespace parabb {

HyperperiodExpansion expand_hyperperiod(const TaskGraph& graph) {
  const int n = graph.task_count();
  PARABB_REQUIRE(n > 0, "cannot expand an empty graph");

  Time hyper = 1;
  for (TaskId t = 0; t < n; ++t) {
    const Task& task = graph.task(t);
    PARABB_REQUIRE(task.period > 0,
                   "task " + task.name + " is aperiodic (period == 0)");
    PARABB_REQUIRE(task.rel_deadline <= task.period,
                   "task " + task.name + " violates d_i <= T_i");
    hyper = std::lcm(hyper, task.period);
  }
  for (const Channel& c : graph.arcs()) {
    PARABB_REQUIRE(graph.task(c.from).period == graph.task(c.to).period,
                   "connected tasks must share a period (" +
                       graph.task(c.from).name + " vs " +
                       graph.task(c.to).name + ")");
  }

  // All connected components share periods; invocation count may still vary
  // across components. We keep a per-task count.
  HyperperiodExpansion out;
  out.hyperperiod = hyper;
  out.invocations = 0;

  std::vector<std::vector<TaskId>> job_ids(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    const Task& task = graph.task(t);
    const auto count = static_cast<int>(hyper / task.period);
    out.invocations = std::max(out.invocations, count);
    for (int k = 1; k <= count; ++k) {
      Task job;
      job.name = task.name + "#" + std::to_string(k);
      job.exec = task.exec;
      job.phase = task.arrival(k);
      job.rel_deadline = task.rel_deadline;
      job.period = 0;  // jobs are one-shot
      job_ids[static_cast<std::size_t>(t)].push_back(
          out.jobs.add_task(std::move(job)));
    }
    // Chain consecutive invocations: tau_i^k ≺ tau_i^{k+1}.
    for (int k = 1; k < count; ++k) {
      out.jobs.add_arc(job_ids[static_cast<std::size_t>(t)][
                           static_cast<std::size_t>(k - 1)],
                       job_ids[static_cast<std::size_t>(t)][
                           static_cast<std::size_t>(k)],
                       0);
    }
  }

  for (const Channel& c : graph.arcs()) {
    const auto& from_jobs = job_ids[static_cast<std::size_t>(c.from)];
    const auto& to_jobs = job_ids[static_cast<std::size_t>(c.to)];
    PARABB_ASSERT(from_jobs.size() == to_jobs.size());
    for (std::size_t k = 0; k < from_jobs.size(); ++k) {
      out.jobs.add_arc(from_jobs[k], to_jobs[k], c.items);
    }
  }

  PARABB_ASSERT(out.jobs.validate().empty());
  return out;
}

}  // namespace parabb
