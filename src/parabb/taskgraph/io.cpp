#include "parabb/taskgraph/io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

[[noreturn]] void parse_fail(int line, const std::string& msg) {
  throw std::runtime_error("tgf parse error at line " + std::to_string(line) +
                           ": " + msg);
}

/// Parses "key=value" into (key, value); returns false if '=' missing.
bool split_kv(const std::string& token, std::string& key, std::string& val) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = token.substr(0, eq);
  val = token.substr(eq + 1);
  return true;
}

Time parse_time(const std::string& s, int line) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) parse_fail(line, "bad integer: " + s);
    return v;
  } catch (const std::invalid_argument&) {
    parse_fail(line, "bad integer: " + s);
  } catch (const std::out_of_range&) {
    parse_fail(line, "integer out of range: " + s);
  }
}

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) out += (c == '"' ? '\'' : c);
  return out;
}

}  // namespace

std::string to_tgf(const TaskGraph& graph) {
  std::ostringstream os;
  os << "# parabb task graph: " << graph.task_count() << " tasks, "
     << graph.arc_count() << " arcs\n";
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const Task& task = graph.task(t);
    PARABB_REQUIRE(!task.name.empty() &&
                       task.name.find_first_of(" \t\n=") == std::string::npos,
                   "task name must be non-empty and free of whitespace/'='");
    os << "task " << task.name << " exec=" << task.exec;
    if (task.rel_deadline != 0) os << " deadline=" << task.rel_deadline;
    if (task.phase != 0) os << " phase=" << task.phase;
    if (task.period != 0) os << " period=" << task.period;
    os << '\n';
  }
  for (const Channel& c : graph.arcs()) {
    os << "arc " << graph.task(c.from).name << ' ' << graph.task(c.to).name;
    if (c.items != 0) os << " items=" << c.items;
    os << '\n';
  }
  return os.str();
}

TaskGraph from_tgf(const std::string& text) {
  TaskGraph g;
  std::map<std::string, TaskId> by_name;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    if (kind == "task") {
      std::string name;
      if (!(ls >> name)) parse_fail(lineno, "task needs a name");
      if (by_name.contains(name)) parse_fail(lineno, "duplicate task " + name);
      Task t;
      t.name = name;
      bool have_exec = false;
      std::string token;
      while (ls >> token) {
        std::string key, val;
        if (!split_kv(token, key, val))
          parse_fail(lineno, "expected key=value, got " + token);
        if (key == "exec") {
          t.exec = parse_time(val, lineno);
          have_exec = true;
        } else if (key == "deadline") {
          t.rel_deadline = parse_time(val, lineno);
        } else if (key == "phase") {
          t.phase = parse_time(val, lineno);
        } else if (key == "period") {
          t.period = parse_time(val, lineno);
        } else {
          parse_fail(lineno, "unknown task attribute: " + key);
        }
      }
      if (!have_exec) parse_fail(lineno, "task " + name + " missing exec=");
      if (t.exec < 0) parse_fail(lineno, "negative exec");
      by_name[name] = g.add_task(std::move(t));
    } else if (kind == "arc") {
      std::string from, to;
      if (!(ls >> from >> to)) parse_fail(lineno, "arc needs two endpoints");
      if (!by_name.contains(from)) parse_fail(lineno, "unknown task " + from);
      if (!by_name.contains(to)) parse_fail(lineno, "unknown task " + to);
      // Reject the degenerate arcs here, where the offending line number
      // is known, instead of letting add_arc()'s precondition or the
      // final cycle check report them without location context.
      if (from == to) parse_fail(lineno, "self-loop arc " + from);
      if (g.items_on_arc(by_name.at(from), by_name.at(to)) != kTimeNegInf)
        parse_fail(lineno, "duplicate arc " + from + " -> " + to);
      Time items = 0;
      std::string token;
      while (ls >> token) {
        std::string key, val;
        if (!split_kv(token, key, val))
          parse_fail(lineno, "expected key=value, got " + token);
        if (key == "items") items = parse_time(val, lineno);
        else parse_fail(lineno, "unknown arc attribute: " + key);
      }
      try {
        g.add_arc(by_name.at(from), by_name.at(to), items);
      } catch (const precondition_error& e) {
        parse_fail(lineno, e.what());
      }
    } else {
      parse_fail(lineno, "unknown record kind: " + kind);
    }
  }
  const std::string err = g.validate();
  if (!err.empty()) throw std::runtime_error("tgf: invalid graph: " + err);
  return g;
}

std::string to_dot(const TaskGraph& graph) {
  std::ostringstream os;
  os << "digraph taskgraph {\n  rankdir=TB;\n  node [shape=box];\n";
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const Task& task = graph.task(t);
    os << "  t" << t << " [label=\"" << sanitize(task.name) << "\\nc="
       << task.exec;
    if (task.rel_deadline != 0)
      os << " D=" << task.abs_deadline();
    os << "\"];\n";
  }
  for (const Channel& c : graph.arcs()) {
    os << "  t" << c.from << " -> t" << c.to;
    if (c.items != 0) os << " [label=\"" << c.items << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

void save_tgf(const TaskGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << to_tgf(graph);
  if (!out) throw std::runtime_error("write failed: " + path);
}

TaskGraph load_tgf(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_tgf(buf.str());
}

}  // namespace parabb
