#include "parabb/taskgraph/builder.hpp"

#include <map>

#include "parabb/support/assert.hpp"

namespace parabb {

GraphBuilder& GraphBuilder::task(std::string name, Time exec,
                                 Time rel_deadline, Time phase, Time period) {
  Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.rel_deadline = rel_deadline;
  t.phase = phase;
  t.period = period;
  tasks_.push_back(std::move(t));
  return *this;
}

GraphBuilder& GraphBuilder::arc(const std::string& from, const std::string& to,
                                Time items) {
  arcs_.push_back(PendingArc{from, to, items});
  return *this;
}

GraphBuilder& GraphBuilder::chain(std::initializer_list<std::string> names,
                                  Time items) {
  PARABB_REQUIRE(names.size() >= 2, "chain needs at least two tasks");
  const std::string* prev = nullptr;
  for (const auto& name : names) {
    if (prev != nullptr) arc(*prev, name, items);
    prev = &name;
  }
  return *this;
}

TaskGraph GraphBuilder::build() const {
  TaskGraph g;
  std::map<std::string, TaskId> by_name;
  for (const Task& t : tasks_) {
    PARABB_REQUIRE(!by_name.contains(t.name), "duplicate task: " + t.name);
    by_name[t.name] = g.add_task(t);
  }
  for (const PendingArc& a : arcs_) {
    PARABB_REQUIRE(by_name.contains(a.from), "unknown task: " + a.from);
    PARABB_REQUIRE(by_name.contains(a.to), "unknown task: " + a.to);
    g.add_arc(by_name.at(a.from), by_name.at(a.to), a.items);
  }
  const std::string err = g.validate();
  PARABB_REQUIRE(err.empty(), "invalid graph: " + err);
  return g;
}

}  // namespace parabb
