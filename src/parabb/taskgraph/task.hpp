// Task and communication-channel records (paper §2.2).
#pragma once

#include <string>

#include "parabb/support/types.hpp"

namespace parabb {

/// A real-time task <c_i, phi_i, d_i, T_i>.
///
/// * `exec`        — worst-case execution time c_i (includes architectural
///                   overheads and message (de)packetizing per §2.2).
/// * `phase`       — phi_i, earliest time of the first invocation; for the
///                   single-frame experiments this is the task's arrival a_i.
/// * `rel_deadline`— d_i, relative deadline; absolute deadline of invocation
///                   k is a_i^k + d_i.
/// * `period`      — T_i; 0 means aperiodic / one-shot (single invocation).
struct Task {
  Time exec = 0;
  Time phase = 0;
  Time rel_deadline = 0;
  Time period = 0;
  std::string name;

  /// Arrival time a_i^k of invocation k (1-based), a_i^k = phi + T*(k-1).
  Time arrival(int k = 1) const noexcept {
    return phase + period * (k - 1);
  }
  /// Absolute deadline D_i^k = a_i^k + d_i.
  Time abs_deadline(int k = 1) const noexcept {
    return arrival(k) + rel_deadline;
  }
  /// Execution window length |w_i| = d_i.
  Time window_length() const noexcept { return rel_deadline; }
};

/// A directed communication channel chi_{i,j} (precedence arc annotation).
/// `items` is the maximum message size m_{i,j} in data items; the time cost
/// of the transfer on a given interconnect is CommModel::delay(items).
struct Channel {
  TaskId from = kNoTask;
  TaskId to = kNoTask;
  Time items = 0;
};

}  // namespace parabb
