// Derived structural properties of a task graph: topological order, depth
// levels, bottom levels (the task "level" of Hou & Shin used by BF1),
// depth-first priority order (used by DF), and exec-weighted longest-path
// prefixes/suffixes (used by deadline slicing).
#pragma once

#include <vector>

#include "parabb/support/types.hpp"
#include "parabb/taskgraph/graph.hpp"

namespace parabb {

struct Topology {
  /// Tasks in a deterministic topological order (Kahn, min-id first).
  std::vector<TaskId> topo_order;

  /// depth[t] = longest arc count from any input task to t (inputs = 0).
  std::vector<int> depth;

  /// Number of depth levels (= max depth + 1); the paper's "depth of the
  /// task graph" counts levels, so a chain of 8 tasks has depth 8 here
  /// via `level_count`.
  int level_count = 0;

  /// tasks grouped by depth; levels[d] lists tasks with depth d (id order).
  std::vector<std::vector<TaskId>> levels;

  /// Maximum tasks on one depth level — the graph's parallelism width.
  int width = 0;

  /// bottom_level[t] = length of the heaviest execution-weighted path from
  /// t to any output, *including* c_t (Hou & Shin's task level).
  std::vector<Time> bottom_level;

  /// pref_work[t] = heaviest execution-weighted path from any input to t,
  /// *excluding* c_t (0 for inputs). Used by deadline slicing.
  std::vector<Time> pref_work;

  /// suff_work[t] = heaviest execution-weighted path from t to any output,
  /// *excluding* c_t (0 for outputs).
  std::vector<Time> suff_work;

  /// Heaviest input->output execution-weighted path (the critical path).
  Time critical_path = 0;

  /// Depth-first priority order: preorder of a DFS that starts from input
  /// tasks in id order and visits successors in id order. Used by the DF
  /// branching rule (first *ready* task in this order is branched on).
  std::vector<TaskId> dfs_order;

  /// Level priority order: tasks sorted by decreasing bottom_level (ties by
  /// id). Used by the BF1 branching rule.
  std::vector<TaskId> level_order;

  /// Input (no predecessor) and output (no successor) task lists, id order.
  std::vector<TaskId> inputs;
  std::vector<TaskId> outputs;
};

/// Computes all of the above. Requires an acyclic graph (throws
/// precondition_error otherwise).
Topology analyze(const TaskGraph& graph);

}  // namespace parabb
