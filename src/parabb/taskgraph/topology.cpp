#include "parabb/taskgraph/topology.hpp"

#include <algorithm>
#include <queue>

#include "parabb/support/assert.hpp"

namespace parabb {

Topology analyze(const TaskGraph& graph) {
  PARABB_REQUIRE(graph.is_acyclic(), "analyze() requires an acyclic graph");
  const int n = graph.task_count();
  const auto un = static_cast<std::size_t>(n);

  Topology topo;
  topo.depth.assign(un, 0);
  topo.bottom_level.assign(un, 0);
  topo.pref_work.assign(un, 0);
  topo.suff_work.assign(un, 0);

  // Deterministic Kahn order with a min-heap keyed by task id.
  {
    std::vector<int> indeg(un, 0);
    std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
    for (TaskId t = 0; t < n; ++t) {
      indeg[static_cast<std::size_t>(t)] =
          static_cast<int>(graph.preds(t).size());
      if (indeg[static_cast<std::size_t>(t)] == 0) ready.push(t);
    }
    topo.topo_order.reserve(un);
    while (!ready.empty()) {
      const TaskId t = ready.top();
      ready.pop();
      topo.topo_order.push_back(t);
      for (const Arc& a : graph.succs(t)) {
        if (--indeg[static_cast<std::size_t>(a.other)] == 0)
          ready.push(a.other);
      }
    }
    PARABB_ASSERT(static_cast<int>(topo.topo_order.size()) == n);
  }

  // Forward passes: depth and exec-weighted prefix.
  for (const TaskId t : topo.topo_order) {
    const auto ut = static_cast<std::size_t>(t);
    for (const Arc& a : graph.preds(t)) {
      const auto up = static_cast<std::size_t>(a.other);
      topo.depth[ut] = std::max(topo.depth[ut], topo.depth[up] + 1);
      topo.pref_work[ut] =
          std::max(topo.pref_work[ut],
                   topo.pref_work[up] + graph.task(a.other).exec);
    }
  }

  // Backward passes: bottom level and exec-weighted suffix.
  for (auto it = topo.topo_order.rbegin(); it != topo.topo_order.rend();
       ++it) {
    const TaskId t = *it;
    const auto ut = static_cast<std::size_t>(t);
    topo.bottom_level[ut] = graph.task(t).exec;
    for (const Arc& a : graph.succs(t)) {
      const auto us = static_cast<std::size_t>(a.other);
      topo.bottom_level[ut] =
          std::max(topo.bottom_level[ut],
                   graph.task(t).exec + topo.bottom_level[us]);
      topo.suff_work[ut] = std::max(topo.suff_work[ut],
                                    topo.bottom_level[us]);
    }
  }

  for (TaskId t = 0; t < n; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    topo.critical_path =
        std::max(topo.critical_path,
                 topo.pref_work[ut] + graph.task(t).exec + topo.suff_work[ut]);
    topo.level_count = std::max(topo.level_count, topo.depth[ut] + 1);
    if (graph.is_input(t)) topo.inputs.push_back(t);
    if (graph.is_output(t)) topo.outputs.push_back(t);
  }
  if (n == 0) topo.level_count = 0;

  topo.levels.assign(static_cast<std::size_t>(topo.level_count), {});
  for (TaskId t = 0; t < n; ++t) {
    topo.levels[static_cast<std::size_t>(topo.depth[static_cast<std::size_t>(
                    t)])]
        .push_back(t);
  }
  for (const auto& lvl : topo.levels)
    topo.width = std::max(topo.width, static_cast<int>(lvl.size()));

  // DFS preorder from inputs (id order), successors visited in id order.
  {
    std::vector<char> seen(un, 0);
    std::vector<TaskId> stack;
    topo.dfs_order.reserve(un);
    for (const TaskId root : topo.inputs) {
      if (seen[static_cast<std::size_t>(root)]) continue;
      stack.push_back(root);
      while (!stack.empty()) {
        const TaskId t = stack.back();
        stack.pop_back();
        if (seen[static_cast<std::size_t>(t)]) continue;
        seen[static_cast<std::size_t>(t)] = 1;
        topo.dfs_order.push_back(t);
        // Push successors in reverse id order so the smallest id pops first.
        auto ss = graph.succs(t);
        std::vector<TaskId> kids;
        kids.reserve(ss.size());
        for (const Arc& a : ss) kids.push_back(a.other);
        std::sort(kids.begin(), kids.end(), std::greater<>());
        for (const TaskId k : kids)
          if (!seen[static_cast<std::size_t>(k)]) stack.push_back(k);
      }
    }
    PARABB_ASSERT(static_cast<int>(topo.dfs_order.size()) == n);
  }

  // Level priority order: decreasing bottom level, ties by id.
  topo.level_order.resize(un);
  for (TaskId t = 0; t < n; ++t)
    topo.level_order[static_cast<std::size_t>(t)] = t;
  std::stable_sort(topo.level_order.begin(), topo.level_order.end(),
                   [&](TaskId a, TaskId b) {
                     return topo.bottom_level[static_cast<std::size_t>(a)] >
                            topo.bottom_level[static_cast<std::size_t>(b)];
                   });

  return topo;
}

}  // namespace parabb
