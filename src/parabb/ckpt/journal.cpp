#include "parabb/ckpt/journal.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "parabb/support/hash.hpp"
#include "parabb/support/json.hpp"

namespace parabb {

namespace {

std::string journal_file(const std::string& dir) {
  return dir + "/journal.log";
}

}  // namespace

JobJournal::JobJournal(const std::string& dir) : dir_(dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    throw std::runtime_error("parabb journal: cannot create " + dir + ": " +
                             std::strerror(errno));
  file_ = std::fopen(journal_file(dir).c_str(), "ab");
  if (file_ == nullptr)
    throw std::runtime_error("parabb journal: cannot open " +
                             journal_file(dir) + ": " +
                             std::strerror(errno));
}

JobJournal::~JobJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void JobJournal::append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0)
    throw std::runtime_error("parabb journal: write failed: " +
                             std::string(std::strerror(errno)));
  // Durable before visible: the caller only acts on the job (submits it,
  // answers the client) after the record survives a crash.
  ::fsync(::fileno(file_));
}

void JobJournal::record_accept(const std::string& id,
                               const std::string& request_json) {
  append("{\"t\":\"accept\",\"id\":" + JsonValue(id).dump() +
         ",\"req\":" + request_json + "}");
}

void JobJournal::record_complete(const std::string& id,
                                 const std::string& response_json) {
  append("{\"t\":\"complete\",\"id\":" + JsonValue(id).dump() +
         ",\"resp\":" + response_json + "}");
}

void JobJournal::record_cancel(const std::string& id) {
  append("{\"t\":\"cancel\",\"id\":" + JsonValue(id).dump() + "}");
}

std::string JobJournal::job_checkpoint_path(const std::string& id) const {
  // File name from a digest, not the raw id (ids are client-chosen and may
  // hold path separators).
  std::uint64_t h = 0x4A4F424Aull;  // "JOBJ"
  for (const char c : id) h = mix64(h ^ static_cast<unsigned char>(c));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return dir_ + "/job-" + buf + ".ckpt";
}

JobJournal::Replay JobJournal::replay(const std::string& dir) {
  Replay out;
  std::ifstream in(journal_file(dir));
  if (!in.is_open()) return out;
  // id -> index into out.pending (still-live accepts only).
  std::map<std::string, std::size_t> live;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue rec;
    try {
      rec = JsonValue::parse(line);
    } catch (const std::exception&) {
      ++out.malformed;  // torn tail write: the record never took effect
      continue;
    }
    const JsonValue* t = rec.find("t");
    const JsonValue* id = rec.find("id");
    if (t == nullptr || !t->is_string() || id == nullptr ||
        !id->is_string()) {
      ++out.malformed;
      continue;
    }
    const std::string& kind = t->as_string();
    const std::string& job = id->as_string();
    if (kind == "accept") {
      const JsonValue* req = rec.find("req");
      if (req == nullptr) {
        ++out.malformed;
        continue;
      }
      if (out.completed.count(job) != 0 || live.count(job) != 0)
        continue;  // duplicate accept: first one wins
      live[job] = out.pending.size();
      out.pending.push_back(PendingJob{job, req->dump()});
    } else if (kind == "complete") {
      const JsonValue* resp = rec.find("resp");
      if (resp == nullptr) {
        ++out.malformed;
        continue;
      }
      out.completed[job] = resp->dump();
      auto it = live.find(job);
      if (it != live.end()) {
        out.pending[it->second].id.clear();  // tombstone
        live.erase(it);
      }
    } else if (kind == "cancel") {
      auto it = live.find(job);
      if (it != live.end()) {
        out.pending[it->second].id.clear();
        live.erase(it);
      }
    } else {
      ++out.malformed;
    }
  }
  // Compact out the tombstones, preserving acceptance order.
  std::vector<PendingJob> pending;
  pending.reserve(live.size());
  for (PendingJob& p : out.pending)
    if (!p.id.empty()) pending.push_back(std::move(p));
  out.pending = std::move(pending);
  return out;
}

}  // namespace parabb
