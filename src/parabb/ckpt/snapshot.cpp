#include "parabb/ckpt/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "parabb/support/assert.hpp"
#include "parabb/support/hash.hpp"

namespace parabb {

namespace {

constexpr std::array<char, 4> kMagic = {'P', 'B', 'C', 'K'};
// magic(4) + version(4) + payload length(8) + crc(4)
constexpr std::size_t kHeaderBytes = 20;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

// -- little-endian byte stream -------------------------------------------

struct Writer {
  std::vector<std::uint8_t> out;

  void u8(std::uint8_t v) { out.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
};

struct Reader {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (in.size() - pos < n)
      throw SnapshotError("payload truncated (needed " + std::to_string(n) +
                          " more bytes at offset " + std::to_string(pos) +
                          ")");
  }
  std::uint8_t u8() {
    need(1);
    return in[pos++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(in[pos++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(in[pos++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  /// Element counts are bounds-checked against the remaining payload so a
  /// corrupt length cannot drive a multi-gigabyte allocation.
  std::size_t count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (min_elem_bytes > 0 && n > (in.size() - pos) / min_elem_bytes)
      throw SnapshotError("element count " + std::to_string(n) +
                          " exceeds the remaining payload");
    return static_cast<std::size_t>(n);
  }
};

void write_path(Writer& w, const std::vector<CutPlacement>& path) {
  w.u64(path.size());
  for (const CutPlacement& pl : path) {
    w.i32(pl.task);
    w.i32(pl.proc);
    w.i64(pl.start);
  }
}

std::vector<CutPlacement> read_path(Reader& r) {
  const std::size_t n = r.count(16);
  std::vector<CutPlacement> path(n);
  for (CutPlacement& pl : path) {
    pl.task = r.i32();
    pl.proc = r.i32();
    pl.start = r.i64();
  }
  return path;
}

void write_stats(Writer& w, const SearchStats& s) {
  w.u64(s.expanded);
  w.u64(s.generated);
  w.u64(s.activated);
  w.u64(s.goals);
  w.u64(s.goal_updates);
  w.u64(s.pruned_children);
  w.u64(s.pruned_active);
  w.u64(s.disposed);
  w.u64(s.tt_hits);
  w.u64(s.tt_misses);
  w.u64(s.tt_evictions);
  w.u64(s.tt_collisions);
  w.u64(s.steals_attempted);
  w.u64(s.steals_succeeded);
  w.u64(s.degrade_steps);
  w.u64(s.peak_active);
  w.u64(s.peak_memory_bytes);
  w.f64(s.seconds);
}

SearchStats read_stats(Reader& r) {
  SearchStats s;
  s.expanded = r.u64();
  s.generated = r.u64();
  s.activated = r.u64();
  s.goals = r.u64();
  s.goal_updates = r.u64();
  s.pruned_children = r.u64();
  s.pruned_active = r.u64();
  s.disposed = r.u64();
  s.tt_hits = r.u64();
  s.tt_misses = r.u64();
  s.tt_evictions = r.u64();
  s.tt_collisions = r.u64();
  s.steals_attempted = r.u64();
  s.steals_succeeded = r.u64();
  s.degrade_steps = r.u64();
  s.peak_active = static_cast<std::size_t>(r.u64());
  s.peak_memory_bytes = static_cast<std::size_t>(r.u64());
  s.seconds = r.f64();
  return s;
}

std::uint64_t mix_in(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + 0x9E3779B97F4A7C15ull));
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t instance_fingerprint(const SchedContext& ctx, const Params& p) {
  std::uint64_t h = 0x5042434Bull;  // "PBCK" seed
  // Instance: every number the search tree depends on.
  h = mix_in(h, static_cast<std::uint64_t>(ctx.task_count()));
  h = mix_in(h, static_cast<std::uint64_t>(ctx.proc_count()));
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    h = mix_in(h, static_cast<std::uint64_t>(ctx.exec(t)));
    h = mix_in(h, static_cast<std::uint64_t>(ctx.arrival(t)));
    h = mix_in(h, static_cast<std::uint64_t>(ctx.deadline(t)));
    const auto preds = ctx.pred_ids(t);
    const auto comms = ctx.pred_comm(t);
    h = mix_in(h, preds.size());
    for (std::size_t k = 0; k < preds.size(); ++k) {
      h = mix_in(h, static_cast<std::uint64_t>(preds[k]));
      h = mix_in(h, static_cast<std::uint64_t>(comms[k]));
    }
  }
  for (ProcId a = 0; a < ctx.proc_count(); ++a)
    for (ProcId b = 0; b < ctx.proc_count(); ++b)
      h = mix_in(h, static_cast<std::uint64_t>(ctx.hop(a, b)));
  // 9-tuple members that steer the tree (observability/trace knobs and
  // checkpointing itself are read-beside and excluded on purpose).
  h = mix_in(h, static_cast<std::uint64_t>(p.branch));
  h = mix_in(h, static_cast<std::uint64_t>(p.select));
  h = mix_in(h, static_cast<std::uint64_t>(p.elim));
  h = mix_in(h, static_cast<std::uint64_t>(p.lb));
  h = mix_in(h, static_cast<std::uint64_t>(p.ub));
  h = mix_in(h, static_cast<std::uint64_t>(p.explicit_ub));
  h = mix_in(h, std::bit_cast<std::uint64_t>(p.br));
  h = mix_in(h, static_cast<std::uint64_t>(p.sort_children));
  h = mix_in(h, static_cast<std::uint64_t>(p.llb_tie_newest));
  h = mix_in(h, static_cast<std::uint64_t>(p.transposition.enabled));
  h = mix_in(h, static_cast<std::uint64_t>(p.degrade.enabled));
  return h;
}

bool snapshot_matches(const SearchSnapshot& snap, const SchedContext& ctx,
                      const Params& p) {
  return snap.instance == instance_fingerprint(ctx, p);
}

PartialSchedule replay_path(const SchedContext& ctx,
                            std::span<const CutPlacement> path) {
  PartialSchedule state = PartialSchedule::empty(ctx);
  for (const CutPlacement& pl : path) {
    if (pl.task < 0 || pl.task >= ctx.task_count())
      throw SnapshotError("frontier path names task " +
                          std::to_string(pl.task) + " outside the graph");
    if (pl.proc < 0 || pl.proc >= ctx.proc_count())
      throw SnapshotError("frontier path places on processor " +
                          std::to_string(pl.proc) + " outside the machine");
    if (!state.ready().contains(pl.task))
      throw SnapshotError("frontier path places task " +
                          std::to_string(pl.task) +
                          " before its predecessors");
    const Time start = static_cast<Time>(state.place(ctx, pl.task, pl.proc));
    if (start != pl.start)
      throw SnapshotError(
          "frontier path records start " + std::to_string(pl.start) +
          " for task " + std::to_string(pl.task) +
          " but the scheduling operation assigns " + std::to_string(start));
  }
  return state;
}

std::vector<std::uint8_t> encode_snapshot(const SearchSnapshot& snap) {
  Writer w;
  w.u64(snap.instance);
  w.u8(static_cast<std::uint8_t>(snap.engine));

  w.u8(snap.found ? 1 : 0);
  w.i64(snap.incumbent_cost);
  w.u64(snap.incumbent.size());
  for (const ScheduledTask& st : snap.incumbent) {
    w.i32(st.task);
    w.i32(st.proc);
    w.i64(st.start);
    w.i64(st.finish);
  }

  w.u64(snap.frontier.size());
  for (const SnapshotVertex& v : snap.frontier) {
    write_path(w, v.path);
    w.i64(v.lb);
    w.u32(v.seq);
  }
  w.u32(snap.next_seq);

  write_stats(w, snap.stats);

  w.i32(snap.degrade_level);
  w.u8(snap.compromised ? 1 : 0);
  w.i64(snap.compromise_floor);

  w.u8(snap.tt_present ? 1 : 0);
  w.u64(snap.tt_counters.probes);
  w.u64(snap.tt_counters.hits);
  w.u64(snap.tt_counters.misses);
  w.u64(snap.tt_counters.inserts);
  w.u64(snap.tt_counters.evictions);
  w.u64(snap.tt_counters.rejected);
  w.u64(snap.tt_counters.collisions);
  w.u64(snap.tt_entries.size());
  for (const SnapshotTTEntry& e : snap.tt_entries) {
    write_path(w, e.path);
    w.i64(e.lb);
  }

  w.u8(snap.cert_present ? 1 : 0);
  w.u8(snap.cert_truncated ? 1 : 0);
  w.u64(snap.cert_degrades.size());
  for (const DegradeRecord& d : snap.cert_degrades) {
    w.u64(d.action.size());
    w.out.insert(w.out.end(), d.action.begin(), d.action.end());
    w.u64(d.at_generated);
    w.i32(d.level);
  }
  w.u64(snap.cert_cuts.size());
  for (const CutRecord& c : snap.cert_cuts) {
    w.u64(c.fingerprint);
    w.u8(static_cast<std::uint8_t>(c.rule));
    w.i64(c.claimed_bound);
    write_path(w, c.path);
  }

  // Frame it.
  const std::uint32_t crc = crc32(w.out);
  Writer framed;
  framed.out.reserve(w.out.size() + kHeaderBytes);
  for (char c : kMagic) framed.u8(static_cast<std::uint8_t>(c));
  framed.u32(SearchSnapshot::kFormatVersion);
  framed.u64(w.out.size());
  framed.u32(crc);
  framed.out.insert(framed.out.end(), w.out.begin(), w.out.end());
  return framed.out;
}

SearchSnapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes)
    throw SnapshotError("file shorter than the header (" +
                        std::to_string(bytes.size()) + " bytes)");
  Reader hdr{bytes, 0};
  for (char c : kMagic)
    if (hdr.u8() != static_cast<std::uint8_t>(c))
      throw SnapshotError("bad magic (not a parabb checkpoint)");
  const std::uint32_t version = hdr.u32();
  if (version != SearchSnapshot::kFormatVersion)
    throw SnapshotError("unsupported format version " +
                        std::to_string(version) + " (this build reads " +
                        std::to_string(SearchSnapshot::kFormatVersion) + ")");
  const std::uint64_t payload_len = hdr.u64();
  const std::uint32_t want_crc = hdr.u32();
  if (bytes.size() - kHeaderBytes != payload_len)
    throw SnapshotError("payload length " + std::to_string(payload_len) +
                        " disagrees with file size " +
                        std::to_string(bytes.size() - kHeaderBytes));
  const std::span<const std::uint8_t> payload = bytes.subspan(kHeaderBytes);
  const std::uint32_t got_crc = crc32(payload);
  if (got_crc != want_crc)
    throw SnapshotError("CRC mismatch (stored " + std::to_string(want_crc) +
                        ", computed " + std::to_string(got_crc) +
                        "): checkpoint is corrupt");

  Reader r{payload, 0};
  SearchSnapshot s;
  s.instance = r.u64();
  const std::uint8_t engine = r.u8();
  if (engine > 1)
    throw SnapshotError("unknown engine tag " + std::to_string(engine));
  s.engine = static_cast<SnapshotEngine>(engine);

  s.found = r.u8() != 0;
  s.incumbent_cost = r.i64();
  s.incumbent.resize(r.count(24));
  for (ScheduledTask& st : s.incumbent) {
    st.task = r.i32();
    st.proc = r.i32();
    st.start = r.i64();
    st.finish = r.i64();
  }

  s.frontier.resize(r.count(20));
  for (SnapshotVertex& v : s.frontier) {
    v.path = read_path(r);
    v.lb = r.i64();
    v.seq = r.u32();
  }
  s.next_seq = r.u32();

  s.stats = read_stats(r);

  s.degrade_level = r.i32();
  s.compromised = r.u8() != 0;
  s.compromise_floor = r.i64();

  s.tt_present = r.u8() != 0;
  s.tt_counters.probes = r.u64();
  s.tt_counters.hits = r.u64();
  s.tt_counters.misses = r.u64();
  s.tt_counters.inserts = r.u64();
  s.tt_counters.evictions = r.u64();
  s.tt_counters.rejected = r.u64();
  s.tt_counters.collisions = r.u64();
  s.tt_entries.resize(r.count(16));
  for (SnapshotTTEntry& e : s.tt_entries) {
    e.path = read_path(r);
    e.lb = r.i64();
  }

  s.cert_present = r.u8() != 0;
  s.cert_truncated = r.u8() != 0;
  s.cert_degrades.resize(r.count(20));
  for (DegradeRecord& d : s.cert_degrades) {
    const std::size_t len = r.count(1);
    r.need(len);
    d.action.assign(reinterpret_cast<const char*>(payload.data()) + r.pos,
                    len);
    r.pos += len;
    d.at_generated = r.u64();
    d.level = r.i32();
  }
  s.cert_cuts.resize(r.count(25));
  for (CutRecord& c : s.cert_cuts) {
    c.fingerprint = r.u64();
    const std::uint8_t rule = r.u8();
    if (rule > static_cast<std::uint8_t>(CutRule::kCharacteristic))
      throw SnapshotError("unknown cut rule " + std::to_string(rule));
    c.rule = static_cast<CutRule>(rule);
    c.claimed_bound = r.i64();
    c.path = read_path(r);
  }
  if (r.pos != payload.size())
    throw SnapshotError("payload has " +
                        std::to_string(payload.size() - r.pos) +
                        " trailing bytes");
  return s;
}

std::size_t save_snapshot(const std::string& path,
                          const SearchSnapshot& snap) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw SnapshotError("cannot open " + tmp + ": " + std::strerror(errno));
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int e = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw SnapshotError("write to " + tmp + " failed: " +
                          std::strerror(e));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    const int e = errno;
    ::unlink(tmp.c_str());
    throw SnapshotError("fsync/close of " + tmp + " failed: " +
                        std::strerror(e));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int e = errno;
    ::unlink(tmp.c_str());
    throw SnapshotError("rename " + tmp + " -> " + path + " failed: " +
                        std::strerror(e));
  }
  return bytes.size();
}

SearchSnapshot load_snapshot(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw SnapshotError("cannot open " + path + ": " + std::strerror(errno));
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const int e = errno;
      ::close(fd);
      throw SnapshotError("read of " + path + " failed: " +
                          std::strerror(e));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf.begin(), buf.begin() + n);
  }
  ::close(fd);
  try {
    return decode_snapshot(bytes);
  } catch (const SnapshotError& e) {
    std::string msg = e.what();
    const std::string prefix = "parabb checkpoint: ";
    if (msg.rfind(prefix, 0) == 0) msg = msg.substr(prefix.size());
    throw SnapshotError(path + ": " + msg);
  }
}

}  // namespace parabb
