// Crash-safe search-state snapshots (DESIGN: ISSUE 10 tentpole).
//
// A SearchSnapshot is everything either B&B engine needs to continue a run
// after the process died: the incumbent schedule and its cost, the live
// frontier (active-set entries for the sequential engine; the union of the
// per-worker deque dumps for the parallel engine), the transposition-table
// survivors, the accumulated certificate cuts, the degradation-ladder rung,
// and the merged SearchStats. States are stored as replayable placement
// paths (verify/certificate.hpp) rather than raw structs, so the on-disk
// format is independent of PartialSchedule's memory layout and every load
// re-validates each state against the scheduling operation.
//
// Resume is *sound by re-derivation*: everything a resumed run could lose
// relative to the uninterrupted one — transposition entries, incumbent
// improvements found after the snapshot, subtrees pruned after the
// snapshot — is re-derived from the frontier, because every vertex live at
// snapshot time (or descended from one) is rooted in some stored frontier
// entry. Duplicated entries (a parallel steal racing a worker dump) only
// cost re-exploration, never correctness.
//
// On disk: "PBCK" magic, format version, payload length, CRC-32 of the
// payload, then the little-endian payload (docs/formats.md, "Checkpoint &
// journal"). Writes are atomic: temp file in the same directory, fsync,
// rename. Loads reject bad magic/version/truncation/CRC with
// SnapshotError — never a crash, never a partial state.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/params.hpp"
#include "parabb/bnb/transposition.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/sched/partial_schedule.hpp"
#include "parabb/sched/schedule.hpp"
#include "parabb/support/types.hpp"
#include "parabb/verify/certificate.hpp"

namespace parabb {

/// Thrown by load_snapshot / replay_path on any malformed or mismatched
/// checkpoint: bad magic, unsupported version, truncation, CRC mismatch,
/// or a placement path the scheduling operation refuses to replay.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("parabb checkpoint: " + what) {}
};

/// One frontier vertex: the placement path that rebuilds its state, the
/// engine's bound for it, and its generation sequence (selection order).
struct SnapshotVertex {
  std::vector<CutPlacement> path;
  Time lb = 0;
  std::uint32_t seq = 0;
};

/// One transposition-table survivor (path + recorded bound).
struct SnapshotTTEntry {
  std::vector<CutPlacement> path;
  Time lb = 0;
};

/// Which engine wrote the snapshot (informational; either engine can
/// resume either snapshot — the frontier semantics are identical).
enum class SnapshotEngine : std::uint8_t { kSequential = 0, kParallel = 1 };

struct SearchSnapshot {
  /// Bump on any change to the binary payload layout.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// instance_fingerprint(ctx, params) of the run that wrote it; resume
  /// refuses a snapshot taken for a different instance or 9-tuple.
  std::uint64_t instance = 0;
  SnapshotEngine engine = SnapshotEngine::kSequential;

  // -- incumbent --------------------------------------------------------
  bool found = false;
  Time incumbent_cost = kTimeInf;
  std::vector<ScheduledTask> incumbent;  ///< entries; empty unless found

  // -- frontier ---------------------------------------------------------
  /// Container order for the sequential active set; concatenated worker
  /// dumps (each deque oldest-to-newest, then the in-hand vertex) for the
  /// parallel engine.
  std::vector<SnapshotVertex> frontier;
  std::uint32_t next_seq = 0;

  // -- accounting -------------------------------------------------------
  /// Totals at snapshot time, *including* any earlier resumed-from runs;
  /// stats.seconds is the accumulated wall time, so budgets keep counting
  /// across restarts.
  SearchStats stats;

  // -- degradation ladder (robust/degrade.hpp) --------------------------
  int degrade_level = 0;     ///< rungs already fired (0 = pristine)
  bool compromised = false;  ///< a completeness-voiding rung fired
  Time compromise_floor = kTimeInf;  ///< kTimeNegInf once compromised

  // -- transposition table ----------------------------------------------
  bool tt_present = false;
  TranspositionCounters tt_counters;
  std::vector<SnapshotTTEntry> tt_entries;

  // -- certificate continuity (verify/certificate.hpp) ------------------
  bool cert_present = false;
  bool cert_truncated = false;
  std::vector<DegradeRecord> cert_degrades;
  std::vector<CutRecord> cert_cuts;
};

/// Snapshot-side bound on the certificate audit log: at most this many
/// cut records ride along in a checkpoint; past it the tail is dropped
/// and the snapshot marked cert_truncated — an accepted certificate
/// state (the verifier re-derives what it cannot audit). Keeps periodic
/// snapshot writes at megabytes even when the builder's own 2^20-record
/// log saturates (~200 MB of paths, far too heavy per write cadence).
inline constexpr std::size_t kSnapshotCutCap = std::size_t{1} << 14;

/// Same idea for transposition-table survivors: the table is a pure
/// accelerator (a resumed run re-derives anything dropped), so a
/// checkpoint carries at most this many entries.
inline constexpr std::size_t kSnapshotTTCap = std::size_t{1} << 15;

/// Stable 64-bit digest of the (task graph × machine) instance plus the
/// result-determining members of the 9-tuple, chained through mix64
/// (support/hash.hpp). Two runs with equal fingerprints search the same
/// tree, so a snapshot from one may seed the other.
std::uint64_t instance_fingerprint(const SchedContext& ctx, const Params& p);

/// True when `snap` was written for exactly this (ctx, params) pair.
bool snapshot_matches(const SearchSnapshot& snap, const SchedContext& ctx,
                      const Params& p);

/// Rebuilds a state from its placement path via the scheduling operation;
/// throws SnapshotError when a placement is inapplicable or its recorded
/// start disagrees with the operation (corruption the CRC cannot see).
PartialSchedule replay_path(const SchedContext& ctx,
                            std::span<const CutPlacement> path);

/// Serializes to the framed binary form (magic + version + length + CRC).
std::vector<std::uint8_t> encode_snapshot(const SearchSnapshot& snap);

/// Parses a framed snapshot; throws SnapshotError on any defect.
SearchSnapshot decode_snapshot(std::span<const std::uint8_t> bytes);

/// Atomic durable write: <path>.tmp + fsync + rename(<path>). Returns the
/// framed byte count. Throws SnapshotError on I/O failure.
std::size_t save_snapshot(const std::string& path, const SearchSnapshot& s);

/// Reads and decodes; throws SnapshotError (missing file, truncation,
/// CRC/version mismatch, invalid payload).
SearchSnapshot load_snapshot(const std::string& path);

/// CRC-32 (IEEE 802.3, reflected) — exposed for tests and the journal.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace parabb
