// CheckpointController: the engines' handle on *when* and *where* to
// snapshot (ckpt/snapshot.hpp holds the what and how).
//
// Wiring: Params::ckpt points at one controller (not owned, may be null —
// the off path in both engines is a single null check per poll point). The
// sequential engine consults due() at its 256-iteration poll point; the
// parallel engine's supervisor thread consults it and runs the worker
// quiesce protocol. request_now() is async-signal-safe (one relaxed atomic
// store), so a SIGTERM handler can demand an immediate final snapshot;
// request_now(true) additionally asks the engine to stop (kCancelled)
// *after* that snapshot is durably on disk — the ordering a clean
// preemption needs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace parabb {

class CheckpointController {
 public:
  /// `path` is the snapshot file; `every_ms` the write cadence (<= 0
  /// means "only on request_now()", the SIGTERM-only configuration).
  CheckpointController(std::string path, double every_ms)
      : path_(std::move(path)),
        every_ms_(every_ms),
        last_(std::chrono::steady_clock::now()) {}

  const std::string& path() const noexcept { return path_; }
  double interval_ms() const noexcept { return every_ms_; }

  /// True when a snapshot should be taken now: the cadence elapsed, or a
  /// request_now() is pending. Cheap enough for the poll loop: one
  /// relaxed load plus (only when armed with a cadence) one clock read.
  bool due() const noexcept {
    if (requested_.load(std::memory_order_relaxed)) return true;
    if (every_ms_ <= 0) return false;
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - last_).count() >=
           every_ms_;
  }

  /// Demands a snapshot at the next poll point. Async-signal-safe. When
  /// `stop_after` is set the engine also terminates (kCancelled) once the
  /// write completed — SIGTERM's "checkpoint, then die" semantics.
  void request_now(bool stop_after = false) noexcept {
    if (stop_after) stop_after_.store(true, std::memory_order_relaxed);
    requested_.store(true, std::memory_order_relaxed);
  }

  bool stop_requested() const noexcept {
    return stop_after_.load(std::memory_order_relaxed);
  }

  /// Called by the engine after a successful save: resets the cadence
  /// clock, clears any pending request, and bumps the write counters.
  void note_written(std::size_t bytes) noexcept {
    last_ = std::chrono::steady_clock::now();
    requested_.store(false, std::memory_order_relaxed);
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Called when a save attempt threw (disk full, permissions): the
  /// search must survive a failed checkpoint, so the engine swallows the
  /// error, records it here, and keeps searching.
  void note_failed() noexcept {
    requested_.store(false, std::memory_order_relaxed);
    last_ = std::chrono::steady_clock::now();
    failures_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t writes() const noexcept {
    return writes_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t failures() const noexcept {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  double every_ms_;
  std::chrono::steady_clock::time_point last_;
  std::atomic<bool> requested_{false};
  std::atomic<bool> stop_after_{false};
  std::atomic<std::uint64_t> writes_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace parabb
