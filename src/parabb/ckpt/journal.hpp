// Write-ahead job journal for the solver service (docs/formats.md,
// "Checkpoint & journal").
//
// One append-only JSONL file, `<dir>/journal.log`, fsync'd per record:
//
//   {"t":"accept","id":<id>,"req":<request object>}   before submit
//   {"t":"complete","id":<id>,"resp":<response>}      before the reply
//   {"t":"cancel","id":<id>}                          job withdrawn
//
// A restarted `parabb_serve --journal <dir>` replays the log: accepted
// records without a matching complete/cancel are re-enqueued (or resumed
// from their per-job engine checkpoint, `<dir>/job-<fp>.ckpt`), completed
// records become a duplicate-suppression map so a resubmitted id is
// answered from the log instead of being solved twice.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace parabb {

class JobJournal {
 public:
  /// Opens (creating the directory and file as needed) for appending.
  /// Throws std::runtime_error when the directory or file cannot be made.
  explicit JobJournal(const std::string& dir);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// `request_json` must be one valid JSON value (the request line as
  /// received); it is embedded verbatim. Each record is flushed and
  /// fsync'd before the call returns — the record is durable before the
  /// job is visible anywhere else.
  void record_accept(const std::string& id, const std::string& request_json);
  void record_complete(const std::string& id,
                       const std::string& response_json);
  void record_cancel(const std::string& id);

  const std::string& dir() const noexcept { return dir_; }

  /// Path of the per-job engine checkpoint for request id `id`.
  std::string job_checkpoint_path(const std::string& id) const;

  /// Records of jobs that never completed, in acceptance order.
  struct PendingJob {
    std::string id;
    std::string request_json;
  };
  struct Replay {
    std::vector<PendingJob> pending;
    /// id -> response line, for duplicate suppression.
    std::map<std::string, std::string> completed;
    /// Lines that failed to parse (torn final write, stray garbage) —
    /// counted, skipped, never fatal.
    std::size_t malformed = 0;
  };

  /// Parses `<dir>/journal.log`; a missing file replays to empty.
  static Replay replay(const std::string& dir);

 private:
  void append(const std::string& line);

  std::string dir_;
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

}  // namespace parabb
