#include "parabb/deadline/slicing.hpp"

#include <algorithm>
#include <cmath>

#include "parabb/support/assert.hpp"
#include "parabb/taskgraph/topology.hpp"

namespace parabb {
namespace {

void check_graph(const TaskGraph& graph) {
  PARABB_REQUIRE(graph.task_count() >= 1, "empty graph");
  PARABB_REQUIRE(graph.is_acyclic(), "graph must be acyclic");
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    PARABB_REQUIRE(graph.task(t).exec >= 1,
                   "slicing requires positive execution times");
  }
}

}  // namespace

SlicingReport assign_deadlines_slicing(TaskGraph& graph,
                                       const SlicingConfig& config) {
  check_graph(graph);
  const Topology topo = analyze(graph);

  SlicingReport report;
  report.critical_path = topo.critical_path;
  report.total_work = graph.total_work();

  double scale = config.laxity;
  if (config.base == LaxityBase::kTotalWork) {
    scale = config.laxity * static_cast<double>(report.total_work) /
            static_cast<double>(report.critical_path);
  }
  PARABB_REQUIRE(scale >= 1.0,
                 "slicing scale < 1: execution windows would be shorter than "
                 "execution times");
  report.scale = scale;

  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const auto ut = static_cast<std::size_t>(t);
    Task& task = graph.task(t);
    const auto pref = static_cast<double>(topo.pref_work[ut]);
    const auto phase = static_cast<Time>(std::llround(scale * pref));
    const Time window_end = std::max(
        phase + task.exec,
        static_cast<Time>(
            std::llround(scale * (pref + static_cast<double>(task.exec)))));
    task.phase = phase;
    task.rel_deadline = window_end - phase;
  }

  report.e2e_deadline = std::llround(scale *
                                     static_cast<double>(topo.critical_path));
  return report;
}

SlicingReport assign_deadlines_equal_slices(TaskGraph& graph,
                                            const SlicingConfig& config) {
  check_graph(graph);
  const Topology topo = analyze(graph);

  SlicingReport report;
  report.critical_path = topo.critical_path;
  report.total_work = graph.total_work();

  // Same end-to-end budget as the proportional variant...
  double e2e = config.laxity * static_cast<double>(report.critical_path);
  if (config.base == LaxityBase::kTotalWork) {
    e2e = config.laxity * static_cast<double>(report.total_work);
  }
  // ...but divided into |levels| equal slices regardless of workload.
  Time max_exec = 1;
  for (TaskId t = 0; t < graph.task_count(); ++t)
    max_exec = std::max(max_exec, graph.task(t).exec);
  const double slice =
      std::max(static_cast<double>(max_exec),
               e2e / static_cast<double>(topo.level_count));
  report.scale = slice;

  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const auto ut = static_cast<std::size_t>(t);
    Task& task = graph.task(t);
    const auto d = static_cast<double>(topo.depth[ut]);
    task.phase = static_cast<Time>(std::llround(slice * d));
    task.rel_deadline = std::max(
        task.exec,
        static_cast<Time>(std::llround(slice * (d + 1.0))) - task.phase);
  }

  report.e2e_deadline =
      std::llround(slice * static_cast<double>(topo.level_count));
  return report;
}

void clear_deadlines(TaskGraph& graph) {
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    graph.task(t).phase = 0;
    graph.task(t).rel_deadline = 0;
  }
}

}  // namespace parabb
