// End-to-end deadline assignment by slicing (paper §4.2, reproducing the
// technique of Jonsson & Shin, ICDCS'97 [16]).
//
// Each input–output chain's end-to-end deadline is divided into
// *non-overlapping execution windows* ("slices"), one per task,
// proportional to execution time. Concretely, with
//   pref_i = heaviest execution-weighted path from any input to tau_i
//            (excluding c_i),
// task tau_i receives the window
//   [ S * pref_i ,  S * (pref_i + c_i) ]   =>  phase = S*pref_i,
//                                              d_i  = S*c_i (rounded),
// where the scale S is derived from the configured laxity ratio (below).
// Along any chain pref is strictly accumulating, so windows never overlap
// (the property §4.2 relies on for independent per-task scheduling), and
// S >= 1 guarantees |w_i| >= c_i.
//
// Laxity base — the paper pins "the overall laxity ratio of the end-to-end
// deadline to the accumulated task graph workload" at 1.5; we support the
// two readings of "accumulated workload":
//  * kTotalWork (default, the literal reading): the heaviest chain's
//    end-to-end deadline equals laxity × total graph work, i.e.
//    S = laxity * total_work / critical_path;
//  * kPathWork: every chain's end-to-end deadline equals laxity × that
//    chain's own workload, i.e. S = laxity.
#pragma once

#include "parabb/support/types.hpp"
#include "parabb/taskgraph/graph.hpp"

namespace parabb {

enum class LaxityBase {
  kTotalWork,  ///< e2e deadline of the heaviest chain = laxity * total work
  kPathWork,   ///< e2e deadline of each chain = laxity * chain workload
};

struct SlicingConfig {
  double laxity = 1.5;
  LaxityBase base = LaxityBase::kTotalWork;
};

struct SlicingReport {
  double scale = 0.0;        ///< realized window scale S
  Time e2e_deadline = 0;     ///< deadline of the heaviest input-output chain
  Time critical_path = 0;    ///< heaviest chain workload
  Time total_work = 0;       ///< accumulated graph workload
};

/// Assigns phase (arrival) and relative deadline to every task in `graph`
/// in place. Requires an acyclic graph with positive execution times and a
/// scale S >= 1 (throws precondition_error otherwise).
SlicingReport assign_deadlines_slicing(TaskGraph& graph,
                                       const SlicingConfig& config = {});

/// Ablation variant: slices of *equal* length per chain position instead of
/// execution-proportional (distributes the same end-to-end deadline by
/// depth). Tasks with small c on deep chains get disproportionate slack;
/// used to show why exec-proportional slicing is the right default.
SlicingReport assign_deadlines_equal_slices(TaskGraph& graph,
                                            const SlicingConfig& config = {});

/// Removes any assignment (phase = deadline = 0).
void clear_deadlines(TaskGraph& graph);

}  // namespace parabb
