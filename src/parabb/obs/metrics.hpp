// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with sharded per-thread accumulation and cheap snapshot/merge.
//
// Design goals (ISSUE 7 tentpole):
//  * Near-zero update cost — a Counter::add is one relaxed fetch_add on a
//    cache-line-private shard chosen by a cached thread-local index, so
//    concurrent writers never bounce a line between cores.
//  * Handles, not lookups, on the hot path — counter()/gauge()/histogram()
//    resolve a name to a stable pointer once (mutex-guarded, cold); every
//    later update is lock-free through the handle.
//  * One merge implementation — every counter-style aggregation in the
//    subsystem (summing a metric's shard slabs, MetricsSnapshot::merge,
//    and the parallel engine's per-worker SearchStats reduction in
//    bnb/search_obs.hpp) funnels through accumulate() below, so there is
//    exactly one summation kernel to audit.
//  * Pull-model gauges — collectors registered via add_collector() run at
//    snapshot time, letting owners publish live depths (job queue, thread
//    pool) without a write on their own hot paths.
//
// When observation is disabled the engines carry a null Observation
// pointer and pay a predicted-not-taken branch per site; nothing here is
// touched at all (see bnb/search_obs.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace parabb {

class JsonValue;

/// Accumulation shards per metric. More shards than typical worker counts
/// so two workers rarely hash to the same slot; each slot is its own
/// cache line, so even a collision costs contention, not correctness.
inline constexpr std::size_t kMetricShards = 16;

namespace obs_detail {

struct alignas(64) ShardSlot {
  std::atomic<std::uint64_t> value{0};
};

/// This thread's shard index (stable for the thread's lifetime).
std::size_t this_thread_shard() noexcept;

}  // namespace obs_detail

/// THE merge kernel: dst[i] += src[i]. Registry snapshots, snapshot
/// merges, and the engines' SearchStats reduction all call this one
/// implementation (spans must be the same length).
void accumulate(std::span<std::uint64_t> dst,
                std::span<const std::uint64_t> src) noexcept;

/// Monotone counter, sharded per thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[obs_detail::this_thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum of all shards (relaxed; exact once writers are quiescent).
  std::uint64_t value() const noexcept;

 private:
  std::array<obs_detail::ShardSlot, kMetricShards> shards_;
};

/// Last-write-wins instantaneous value, plus a monotone set_max variant
/// for high-water marks published by concurrent workers.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if `v` is larger (CAS loop, cold path).
  void set_max(std::int64_t v) noexcept;
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. A sample lands in the first bucket whose upper
/// bound satisfies `v <= bound` (Prometheus "le" semantics); samples above
/// every bound land in the implicit +inf overflow bucket. Bucket counts
/// are sharded like counters; the running sum is a per-shard CAS loop
/// (histograms record per-job facts, never per-vertex ones).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last = overflow).
  std::vector<std::uint64_t> buckets() const;
  std::uint64_t count() const;
  double sum() const;

 private:
  struct alignas(64) SumSlot {
    std::atomic<double> value{0.0};
  };

  std::vector<double> bounds_;  // strictly increasing
  std::vector<obs_detail::ShardSlot> cells_;  // [shard][bucket] row-major
  std::array<SumSlot, kMetricShards> sums_;
};

/// One sampled metric set, detachable from the registry that produced it.
/// Metric vectors are sorted by name; merge() sums same-named counters,
/// histograms, and gauges and unions the rest.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    double sum = 0.0;
    std::uint64_t count() const noexcept;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  void merge(const MetricsSnapshot& other);

  /// Lookup helpers (null when absent) — test and CLI convenience.
  const CounterSample* find_counter(const std::string& name) const;
  const GaugeSample* find_gauge(const std::string& name) const;
  const HistogramSample* find_histogram(const std::string& name) const;

  /// {"counters":{name:value,...},"gauges":{...},"histograms":{name:
  /// {"bounds":[...],"buckets":[...],"sum":s,"count":n},...}} — names are
  /// JSON-escaped by the writer, so arbitrary metric names round-trip.
  JsonValue to_json() const;

  /// Prometheus text exposition (counters as `# TYPE name counter`,
  /// histograms as cumulative `name_bucket{le="..."}` series).
  std::string to_prometheus() const;
};

/// Thread-safe name -> metric registry. Handles returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  using CollectorId = std::uint64_t;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the named metric. Re-registering an existing
  /// name returns the same handle; registering a name that already names
  /// a metric of another kind (or a histogram with different bounds)
  /// throws precondition_error.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Registers a pull-model collector invoked at every snapshot() before
  /// sampling (outside the registry lock — collectors may register and
  /// update metrics freely, but must not call snapshot() themselves).
  /// Owners must remove_collector() before their captured state dies;
  /// removal blocks until no snapshot is mid-run, so once it returns the
  /// collector will never fire again.
  CollectorId add_collector(std::function<void(MetricsRegistry&)> fn);
  void remove_collector(CollectorId id);

  MetricsSnapshot snapshot();

 private:
  mutable std::mutex mutex_;
  /// Serializes collector execution against remove_collector (held for
  /// the whole copy-then-run phase of snapshot()).
  std::mutex collector_run_mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<CollectorId, std::function<void(MetricsRegistry&)>> collectors_;
  CollectorId next_collector_ = 1;
};

}  // namespace parabb
