#include "parabb/obs/recorder.hpp"

#include <bit>

#include "parabb/support/assert.hpp"
#include "parabb/support/json.hpp"

namespace parabb {

std::string to_string(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kExpand: return "expand";
    case FlightEventKind::kPrune: return "prune";
    case FlightEventKind::kIncumbent: return "incumbent";
    case FlightEventKind::kBudget: return "budget";
    case FlightEventKind::kDispose: return "dispose";
    case FlightEventKind::kSteal: return "steal";
    case FlightEventKind::kDegrade: return "degrade";
    case FlightEventKind::kCheckpoint: return "checkpoint";
  }
  return "?";
}

std::string to_string(FlightPruneRule r) {
  switch (r) {
    case FlightPruneRule::kNone: return "none";
    case FlightPruneRule::kBound: return "bound";
    case FlightPruneRule::kCharacteristic: return "characteristic";
    case FlightPruneRule::kDominance: return "dominance";
    case FlightPruneRule::kTransposition: return "transposition";
  }
  return "?";
}

FlightChannel::FlightChannel(std::size_t capacity) {
  PARABB_REQUIRE(capacity > 0, "flight channel capacity must be > 0");
  const std::size_t rounded = std::bit_ceil(std::max<std::size_t>(capacity, 8));
  ring_.resize(rounded);
  mask_ = rounded - 1;
}

std::vector<FlightEvent> FlightChannel::chronological() const {
  std::vector<FlightEvent> out;
  const std::uint64_t first = dropped();
  out.reserve(static_cast<std::size_t>(next_ - first));
  for (std::uint64_t i = first; i < next_; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {}

FlightChannel& FlightRecorder::channel(std::size_t worker) {
  const std::lock_guard lock(mutex_);
  if (worker >= channels_.size()) channels_.resize(worker + 1);
  if (!channels_[worker]) {
    channels_[worker] = std::make_unique<FlightChannel>(capacity_);
  }
  return *channels_[worker];
}

std::size_t FlightRecorder::channel_count() const {
  const std::lock_guard lock(mutex_);
  return channels_.size();
}

JsonValue FlightRecorder::dump_json() const {
  const std::lock_guard lock(mutex_);
  JsonValue out = JsonValue::object();
  out.set("capacity",
          static_cast<std::int64_t>(channels_.empty()
                                        ? capacity_
                                        : channels_[0]->capacity()));
  JsonValue workers = JsonValue::array();
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (!channels_[i]) continue;
    const FlightChannel& ch = *channels_[i];
    JsonValue w = JsonValue::object();
    w.set("worker", static_cast<std::int64_t>(i));
    w.set("total", ch.total());
    w.set("dropped", ch.dropped());
    JsonValue events = JsonValue::array();
    for (const FlightEvent& e : ch.chronological()) {
      JsonValue ev = JsonValue::object();
      ev.set("seq", e.seq);
      ev.set("event", parabb::to_string(e.kind));
      if (e.kind == FlightEventKind::kPrune) {
        ev.set("rule", parabb::to_string(e.rule));
      }
      ev.set("level", static_cast<std::int64_t>(e.level));
      ev.set("value", e.value);
      events.push_back(std::move(ev));
    }
    w.set("events", std::move(events));
    workers.push_back(std::move(w));
  }
  out.set("workers", std::move(workers));
  return out;
}

std::string FlightRecorder::to_string() const {
  const std::lock_guard lock(mutex_);
  std::string out;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (!channels_[i]) continue;
    const FlightChannel& ch = *channels_[i];
    out += "worker " + std::to_string(i) + " (" +
           std::to_string(ch.total()) + " events, " +
           std::to_string(ch.dropped()) + " dropped)\n";
    for (const FlightEvent& e : ch.chronological()) {
      out += "  #" + std::to_string(e.seq) + ' ' + parabb::to_string(e.kind);
      if (e.kind == FlightEventKind::kPrune) {
        out += '[' + parabb::to_string(e.rule) + ']';
      }
      out += " level=" + std::to_string(e.level) +
             " value=" + std::to_string(e.value) + '\n';
    }
  }
  return out;
}

}  // namespace parabb
