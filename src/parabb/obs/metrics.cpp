#include "parabb/obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "parabb/support/assert.hpp"
#include "parabb/support/json.hpp"

namespace parabb {

namespace obs_detail {

std::size_t this_thread_shard() noexcept {
  // One atomic round-robin assignment per thread lifetime: consecutive
  // threads land on consecutive shards, so a k-worker engine uses k
  // distinct cache lines (hashing thread ids can collide at small k).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace obs_detail

void accumulate(std::span<std::uint64_t> dst,
                std::span<const std::uint64_t> src) noexcept {
  PARABB_ASSERT(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    const std::uint64_t v = s.value.load(std::memory_order_relaxed);
    accumulate({&total, 1}, {&v, 1});
  }
  return total;
}

void Gauge::set_max(std::int64_t v) noexcept {
  std::int64_t cur = value_.load(std::memory_order_relaxed);
  while (v > cur && !value_.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  PARABB_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  PARABB_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly increasing");
  cells_ = std::vector<obs_detail::ShardSlot>(kMetricShards *
                                              (bounds_.size() + 1));
}

void Histogram::observe(double v) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v,
                       [](double a, double b) { return a <= b; }) -
      bounds_.begin());
  const std::size_t shard = obs_detail::this_thread_shard();
  cells_[shard * (bounds_.size() + 1) + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  auto& sum = sums_[shard].value;
  double cur = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::buckets() const {
  const std::size_t n = bounds_.size() + 1;
  std::vector<std::uint64_t> out(n, 0);
  std::vector<std::uint64_t> row(n);
  for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
    for (std::size_t b = 0; b < n; ++b) {
      row[b] = cells_[shard * n + b].value.load(std::memory_order_relaxed);
    }
    accumulate(out, row);
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets()) total += b;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& s : sums_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t MetricsSnapshot::HistogramSample::count() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  return total;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const CounterSample& c : other.counters) {
    auto it = std::lower_bound(
        counters.begin(), counters.end(), c,
        [](const CounterSample& a, const CounterSample& b) {
          return a.name < b.name;
        });
    if (it != counters.end() && it->name == c.name) {
      accumulate({&it->value, 1}, {&c.value, 1});
    } else {
      counters.insert(it, c);
    }
  }
  for (const GaugeSample& g : other.gauges) {
    auto it = std::lower_bound(gauges.begin(), gauges.end(), g,
                               [](const GaugeSample& a, const GaugeSample& b) {
                                 return a.name < b.name;
                               });
    if (it != gauges.end() && it->name == g.name) {
      it->value += g.value;
    } else {
      gauges.insert(it, g);
    }
  }
  for (const HistogramSample& h : other.histograms) {
    auto it = std::lower_bound(
        histograms.begin(), histograms.end(), h,
        [](const HistogramSample& a, const HistogramSample& b) {
          return a.name < b.name;
        });
    if (it != histograms.end() && it->name == h.name) {
      PARABB_REQUIRE(it->bounds == h.bounds,
                     "cannot merge histograms with different bounds");
      accumulate(it->buckets, h.buckets);
      it->sum += h.sum;
    } else {
      histograms.insert(it, h);
    }
  }
}

const MetricsSnapshot::CounterSample* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const CounterSample& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const MetricsSnapshot::GaugeSample* MetricsSnapshot::find_gauge(
    const std::string& name) const {
  for (const GaugeSample& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const MetricsSnapshot::HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const HistogramSample& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

JsonValue MetricsSnapshot::to_json() const {
  JsonValue out = JsonValue::object();
  JsonValue cs = JsonValue::object();
  for (const CounterSample& c : counters) cs.set(c.name, c.value);
  out.set("counters", std::move(cs));
  JsonValue gs = JsonValue::object();
  for (const GaugeSample& g : gauges) gs.set(g.name, g.value);
  out.set("gauges", std::move(gs));
  JsonValue hs = JsonValue::object();
  for (const HistogramSample& h : histograms) {
    JsonValue one = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (const double b : h.bounds) bounds.push_back(b);
    one.set("bounds", std::move(bounds));
    JsonValue buckets = JsonValue::array();
    for (const std::uint64_t b : h.buckets) buckets.push_back(b);
    one.set("buckets", std::move(buckets));
    one.set("sum", h.sum);
    one.set("count", h.count());
    hs.set(h.name, std::move(one));
  }
  out.set("histograms", std::move(hs));
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:] only; anything else is
/// rewritten to '_' so a registry with exotic names still exposes cleanly
/// (the JSON form keeps the exact name).
std::string prom_name(const std::string& name) {
  std::string out = name.empty() ? std::string("_") : name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string fmt_prom_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const CounterSample& c : counters) {
    const std::string n = prom_name(c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + ' ' + std::to_string(c.value) + '\n';
  }
  for (const GaugeSample& g : gauges) {
    const std::string n = prom_name(g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + ' ' + std::to_string(g.value) + '\n';
  }
  for (const HistogramSample& h : histograms) {
    const std::string n = prom_name(h.name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += n + "_bucket{le=\"" + fmt_prom_double(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    cumulative += h.buckets.back();
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + '\n';
    out += n + "_sum " + fmt_prom_double(h.sum) + '\n';
    out += n + "_count " + std::to_string(cumulative) + '\n';
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard lock(mutex_);
  PARABB_REQUIRE(!gauges_.count(name) && !histograms_.count(name),
                 "metric name already registered with another kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard lock(mutex_);
  PARABB_REQUIRE(!counters_.count(name) && !histograms_.count(name),
                 "metric name already registered with another kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard lock(mutex_);
  PARABB_REQUIRE(!counters_.count(name) && !gauges_.count(name),
                 "metric name already registered with another kind");
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  } else {
    PARABB_REQUIRE(slot->bounds() == upper_bounds,
                   "histogram re-registered with different bounds");
  }
  return slot.get();
}

MetricsRegistry::CollectorId MetricsRegistry::add_collector(
    std::function<void(MetricsRegistry&)> fn) {
  const std::lock_guard lock(mutex_);
  const CollectorId id = next_collector_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(CollectorId id) {
  // Taking the run mutex first guarantees no copied collector is still
  // executing (or about to execute) once removal returns.
  const std::lock_guard run_lock(collector_run_mutex_);
  const std::lock_guard lock(mutex_);
  collectors_.erase(id);
}

MetricsSnapshot MetricsRegistry::snapshot() {
  // Collectors run outside the registry lock: they update (and may
  // register) metrics through the normal API. The run mutex spans the
  // copy and the calls so remove_collector can wait them out.
  {
    const std::lock_guard run_lock(collector_run_mutex_);
    std::vector<std::function<void(MetricsRegistry&)>> collectors;
    {
      const std::lock_guard lock(mutex_);
      collectors.reserve(collectors_.size());
      for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
    }
    for (const auto& fn : collectors) fn(*this);
  }

  MetricsSnapshot snap;
  const std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->bounds(), h->buckets(), h->sum()});
  }
  return snap;
}

}  // namespace parabb
