// Observation: the bundle of sinks an engine run publishes into, handed
// to solve_bnb / solve_bnb_parallel via Params::observe.
//
// Both sinks are optional and independently nullable. Observation is
// strictly read-beside: attaching one never changes what the search
// explores or returns (tests/test_obs.cpp proves incumbents,
// certificates, and schedules byte-identical with observe on vs off).
#pragma once

namespace parabb {

class MetricsRegistry;  // obs/metrics.hpp
class FlightRecorder;   // obs/recorder.hpp

struct Observation {
  /// Live counters (search_* metric family; see docs/observability.md).
  /// Engines batch updates locally and flush deltas at their amortized
  /// poll points, so a registry costs nothing per vertex.
  MetricsRegistry* metrics = nullptr;

  /// Recent-event ring per worker, dumped on timeout/cancel to explain
  /// where the budget went.
  FlightRecorder* recorder = nullptr;

  bool enabled() const noexcept { return metrics || recorder; }
};

}  // namespace parabb
