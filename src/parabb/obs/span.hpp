// Span tracing: scoped timers around the coarse phases of a solve
// (parse, context build, search, certify, serialize), collected into a
// bounded log and emitted as JSONL — one object per span:
//
//   {"span":"search","tag":"job-7","start_s":0.001342,"dur_s":0.052108}
//
// Times are seconds since the log's construction (one monotonic epoch per
// process), so spans from different threads order on a common axis.
// Recording is mutex-guarded: spans fire a handful of times per job,
// never on the search hot path.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "parabb/support/timer.hpp"

namespace parabb {

struct SpanRecord {
  std::string name;
  std::string tag;  ///< correlator (job id); may be empty
  double start_s = 0.0;
  double dur_s = 0.0;
};

class SpanLog {
 public:
  /// `max_spans` bounds memory; once full, further spans are counted in
  /// dropped() but not retained.
  explicit SpanLog(std::size_t max_spans = 1 << 16);

  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  /// Seconds since the log's epoch (monotonic clock).
  double now() const noexcept { return epoch_.seconds(); }

  void record(std::string name, std::string tag, double start_s,
              double dur_s);

  std::vector<SpanRecord> spans() const;
  std::uint64_t dropped() const;

  /// One JSON object per line, chronological by record order.
  std::string to_jsonl() const;

 private:
  Stopwatch epoch_;
  mutable std::mutex mutex_;
  std::size_t max_spans_;
  std::vector<SpanRecord> spans_;
  std::uint64_t dropped_ = 0;
};

/// RAII phase timer. A null log makes the span a no-op, so call sites
/// need no conditionals. finish() closes the span early (idempotent).
class ScopedSpan {
 public:
  ScopedSpan(SpanLog* log, std::string name, std::string tag = {})
      : log_(log), name_(std::move(name)), tag_(std::move(tag)),
        start_s_(log ? log->now() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  void finish() {
    if (!log_) return;
    log_->record(std::move(name_), std::move(tag_), start_s_,
                 log_->now() - start_s_);
    log_ = nullptr;
  }

 private:
  SpanLog* log_;
  std::string name_;
  std::string tag_;
  double start_s_;
};

}  // namespace parabb
