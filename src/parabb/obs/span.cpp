#include "parabb/obs/span.hpp"

#include "parabb/support/json.hpp"

namespace parabb {

SpanLog::SpanLog(std::size_t max_spans) : max_spans_(max_spans) {}

void SpanLog::record(std::string name, std::string tag, double start_s,
                     double dur_s) {
  const std::lock_guard lock(mutex_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(SpanRecord{std::move(name), std::move(tag), start_s,
                              dur_s});
}

std::vector<SpanRecord> SpanLog::spans() const {
  const std::lock_guard lock(mutex_);
  return spans_;
}

std::uint64_t SpanLog::dropped() const {
  const std::lock_guard lock(mutex_);
  return dropped_;
}

std::string SpanLog::to_jsonl() const {
  const std::lock_guard lock(mutex_);
  std::string out;
  for (const SpanRecord& s : spans_) {
    JsonValue line = JsonValue::object();
    line.set("span", s.name);
    if (!s.tag.empty()) line.set("tag", s.tag);
    line.set("start_s", s.start_s);
    line.set("dur_s", s.dur_s);
    out += line.dump();
    out += '\n';
  }
  return out;
}

}  // namespace parabb
