// Search flight recorder: a bounded ring buffer of recent B&B events per
// worker, dumped after the fact to explain why a job ended the way it did.
//
// A channel is single-writer: each engine worker records into its own
// ring with plain stores and a local sequence number — no atomics, no
// locks, no cross-core traffic on the hot path. Readers look only after
// the writer is quiescent (the search returned / the worker joined), so
// the dump needs no synchronization beyond the join.
//
// The ring keeps the *last* `capacity` events (oldest overwritten), which
// is the window that matters for a timeout: the final dive, the last
// incumbent improvement, the budget checkpoints leading up to the stop.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace parabb {

class JsonValue;

enum class FlightEventKind : std::uint8_t {
  kExpand,     ///< vertex selected and branched (value = its bound)
  kPrune,      ///< child/vertex discarded; `rule` says why (value = bound)
  kIncumbent,  ///< incumbent improved (value = new cost)
  kBudget,     ///< periodic checkpoint (value = generated vertices so far)
  kDispose,    ///< entries dropped by a storage bound (value = count)
  kSteal,      ///< work-stealing batch taken (level = victim, value = count)
  kDegrade,    ///< degradation-ladder rung applied (level = rung, value =
               ///< DegradeAction as an integer; robust/degrade.hpp)
  kCheckpoint, ///< search snapshot written (value = framed bytes) or
               ///< restored (level = 1, value = frontier size)
};

/// Why a kPrune event fired (mirrors the engines' cut sites).
enum class FlightPruneRule : std::uint8_t {
  kNone,            ///< not a prune
  kBound,           ///< lb >= BR-relaxed threshold (E_U/DBAS, stop test)
  kCharacteristic,  ///< F hook rejected the partial solution
  kDominance,       ///< D hook: dominated by a sibling
  kTransposition,   ///< duplicate of an already-seen state
};

std::string to_string(FlightEventKind k);
std::string to_string(FlightPruneRule r);

struct FlightEvent {
  std::uint64_t seq = 0;  ///< per-channel event index (chronological)
  std::int64_t value = 0;
  FlightEventKind kind{};
  FlightPruneRule rule{};
  std::int16_t level = 0;  ///< tasks placed at the event's vertex (-1 n/a)
};

/// One worker's ring. record() is the hot path: two or three stores plus
/// a masked index increment.
class FlightChannel {
 public:
  explicit FlightChannel(std::size_t capacity);

  void record(FlightEventKind kind, FlightPruneRule rule, int level,
              std::int64_t value) noexcept {
    FlightEvent& e = ring_[next_ & mask_];
    e.seq = next_++;
    e.value = value;
    e.kind = kind;
    e.rule = rule;
    e.level = static_cast<std::int16_t>(level);
  }

  std::uint64_t total() const noexcept { return next_; }
  std::uint64_t dropped() const noexcept {
    return next_ > ring_.size() ? next_ - ring_.size() : 0;
  }
  std::size_t capacity() const noexcept { return ring_.size(); }

  /// Retained events, oldest first (seq strictly increasing).
  std::vector<FlightEvent> chronological() const;

 private:
  std::vector<FlightEvent> ring_;  // capacity rounded up to a power of two
  std::uint64_t mask_ = 0;
  std::uint64_t next_ = 0;
};

/// Channel factory + dump. channel(i) is called once per worker at search
/// start (mutex-guarded, cold); the returned reference stays valid for
/// the recorder's lifetime.
class FlightRecorder {
 public:
  /// `capacity` is per channel, rounded up to a power of two (min 8).
  explicit FlightRecorder(std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  FlightChannel& channel(std::size_t worker);
  std::size_t channel_count() const;

  /// {"capacity":N,"workers":[{"worker":i,"total":t,"dropped":d,
  ///   "events":[{"seq":s,"event":"expand","level":l,"value":v,
  ///              "rule":"lb"?},...]},...]}
  /// Events within a worker are chronological; workers are dumped in
  /// channel order. Must only be called with all writers quiescent.
  JsonValue dump_json() const;

  /// Human-readable dump (one line per event, sectioned per worker).
  std::string to_string() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<FlightChannel>> channels_;
};

}  // namespace parabb
