#include "parabb/sim/simulate.hpp"

#include <algorithm>
#include <cmath>

#include "parabb/support/assert.hpp"

namespace parabb {

Schedule replay_with_exec_times(const SchedContext& ctx,
                                const Schedule& planned,
                                std::span<const Time> actual_exec) {
  const int n = ctx.task_count();
  PARABB_REQUIRE(planned.task_count() == n, "schedule/context mismatch");
  PARABB_REQUIRE(static_cast<int>(actual_exec.size()) == n,
                 "one actual execution time per task required");
  for (TaskId t = 0; t < n; ++t) {
    const Time c = actual_exec[static_cast<std::size_t>(t)];
    PARABB_REQUIRE(c >= 1 && c <= Time{ctx.exec(t)},
                   "actual execution time must be in [1, WCET]");
  }

  // Work-conserving dispatch of the planned per-processor sequences.
  std::vector<std::vector<TaskId>> order(
      static_cast<std::size_t>(ctx.proc_count()));
  for (ProcId p = 0; p < ctx.proc_count(); ++p) {
    for (const ScheduledTask& e : planned.proc_sequence(p)) {
      order[static_cast<std::size_t>(p)].push_back(e.task);
    }
  }

  std::vector<Time> start(static_cast<std::size_t>(n), -1);
  std::vector<Time> finish(static_cast<std::size_t>(n), -1);
  std::vector<std::size_t> next(order.size(), 0);
  std::vector<Time> avail(order.size(), 0);

  int placed = 0;
  while (placed < n) {
    bool progressed = false;
    for (std::size_t p = 0; p < order.size(); ++p) {
      if (next[p] >= order[p].size()) continue;
      const TaskId t = order[p][next[p]];
      const auto preds = ctx.pred_ids(t);
      const auto comm = ctx.pred_comm(t);
      Time s = std::max(Time{ctx.arrival(t)}, avail[p]);
      bool ready = true;
      for (std::size_t k = 0; k < preds.size(); ++k) {
        const auto uj = static_cast<std::size_t>(preds[k]);
        if (finish[uj] < 0) {
          ready = false;
          break;
        }
        const ProcId pj = planned.entry(preds[k]).proc;
        s = std::max(s, finish[uj] +
                            Time{comm[k]} *
                                ctx.hop(pj, static_cast<ProcId>(p)));
      }
      if (!ready) continue;
      const auto ut = static_cast<std::size_t>(t);
      start[ut] = s;
      finish[ut] = s + actual_exec[ut];
      avail[p] = finish[ut];
      ++next[p];
      ++placed;
      progressed = true;
    }
    PARABB_ASSERT(progressed);  // planned orders are precedence-consistent
  }

  std::vector<ScheduledTask> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    entries.push_back(
        ScheduledTask{t, planned.entry(t).proc, start[ut], finish[ut]});
  }
  return Schedule::from_entries(n, std::move(entries));
}

SimulationReport simulate_schedule(const SchedContext& ctx,
                                   const Schedule& planned,
                                   const SimulationConfig& config) {
  PARABB_REQUIRE(config.lo_fraction > 0.0 &&
                     config.lo_fraction <= config.hi_fraction &&
                     config.hi_fraction <= 1.0,
                 "execution-time fractions must satisfy 0 < lo <= hi <= 1");
  PARABB_REQUIRE(config.runs >= 1, "at least one simulation run required");

  SimulationReport report;
  report.planned_lateness = max_lateness(planned, ctx.graph());

  Rng rng(config.seed);
  const int n = ctx.task_count();
  std::vector<Time> actual(static_cast<std::size_t>(n));
  for (int run = 0; run < config.runs; ++run) {
    for (TaskId t = 0; t < n; ++t) {
      const auto wcet = static_cast<double>(ctx.exec(t));
      const double sampled = rng.uniform_real(config.lo_fraction * wcet,
                                              config.hi_fraction * wcet);
      actual[static_cast<std::size_t>(t)] = std::clamp<Time>(
          static_cast<Time>(std::llround(sampled)), 1, Time{ctx.exec(t)});
    }
    const Schedule realized = replay_with_exec_times(ctx, planned, actual);
    SimulationRun sr;
    sr.max_lateness = max_lateness(realized, ctx.graph());
    sr.makespan = makespan(realized);
    report.lateness.add(static_cast<double>(sr.max_lateness));
    report.makespan.add(static_cast<double>(sr.makespan));
    if (sr.max_lateness > 0) ++report.deadline_miss_runs;
    report.runs.push_back(sr);
  }
  return report;
}

}  // namespace parabb
