// Runtime simulation of a planned schedule (extension; "FEAST-like"
// evaluation substrate, cf. the paper's footnote 1).
//
// The scheduler plans with worst-case execution times; at run time tasks
// usually finish early. This module replays a planned schedule under
// sampled actual execution times with the standard work-conserving
// time-driven dispatcher: each processor executes its planned task
// sequence in order, starting each task as soon as (a) the processor is
// free, (b) the task has arrived, and (c) all its messages are in
// (predecessor finish + nominal cross-processor delay).
//
// Because actual execution times never exceed the WCET and the dispatcher
// preserves the planned orders, every realized start is no later than
// planned — simulated lateness is a guaranteed upper bound check, and the
// distribution quantifies how much pessimism the WCET plan carries.
#pragma once

#include <vector>

#include "parabb/sched/schedule.hpp"
#include "parabb/support/rng.hpp"
#include "parabb/support/stats.hpp"

namespace parabb {

struct SimulationConfig {
  /// Actual execution time of task i is sampled uniformly from
  /// [lo_fraction * c_i, hi_fraction * c_i], rounded, clamped to [1, c_i]
  /// (fractions must satisfy 0 < lo <= hi <= 1).
  double lo_fraction = 0.5;
  double hi_fraction = 1.0;
  int runs = 100;
  std::uint64_t seed = 1;
};

struct SimulationRun {
  Time max_lateness = 0;
  Time makespan = 0;
};

struct SimulationReport {
  OnlineStats lateness;        ///< realized max lateness across runs
  OnlineStats makespan;        ///< realized makespan across runs
  Time planned_lateness = 0;   ///< WCET plan's lateness (upper envelope)
  int deadline_miss_runs = 0;  ///< runs with realized max lateness > 0
  std::vector<SimulationRun> runs;
};

/// Simulates `planned` on `ctx` under `config`. Throws precondition_error
/// on invalid fractions/run counts.
SimulationReport simulate_schedule(const SchedContext& ctx,
                                   const Schedule& planned,
                                   const SimulationConfig& config = {});

/// One run with explicit per-task actual execution times (each in
/// [1, c_i]); exposed for tests. Returns the realized schedule.
Schedule replay_with_exec_times(const SchedContext& ctx,
                                const Schedule& planned,
                                std::span<const Time> actual_exec);

}  // namespace parabb
