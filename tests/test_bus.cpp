#include "parabb/platform/bus.hpp"

#include <gtest/gtest.h>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

TEST(SharedBus, FirstReservationStartsAtEarliest) {
  SharedBus bus(1);
  EXPECT_EQ(bus.reserve(10, 5), 15);  // [10,15)
  EXPECT_EQ(bus.reservation_count(), 1u);
  EXPECT_EQ(bus.utilization(), 5);
}

TEST(SharedBus, OverlappingRequestsSerialize) {
  SharedBus bus(1);
  EXPECT_EQ(bus.reserve(0, 10), 10);   // [0,10)
  EXPECT_EQ(bus.reserve(5, 4), 14);    // pushed to [10,14)
  EXPECT_EQ(bus.reserve(0, 2), 16);    // pushed to [14,16)
  EXPECT_EQ(bus.utilization(), 16);
}

TEST(SharedBus, GapsAreFilled) {
  SharedBus bus(1);
  bus.reserve(0, 5);    // [0,5)
  bus.reserve(20, 5);   // [20,25)
  EXPECT_EQ(bus.reserve(6, 4), 10);  // fits in [6,10)
  EXPECT_EQ(bus.reserve(0, 10), 20); // fits in the [10,20) gap exactly
}

TEST(SharedBus, ExactGapFit) {
  SharedBus bus(1);
  bus.reserve(0, 5);   // [0,5)
  bus.reserve(10, 5);  // [10,15)
  EXPECT_EQ(bus.reserve(0, 5), 10);  // [5,10) exactly
}

TEST(SharedBus, ZeroItemsAreFree) {
  SharedBus bus(1);
  EXPECT_EQ(bus.reserve(7, 0), 7);
  EXPECT_EQ(bus.reservation_count(), 0u);
}

TEST(SharedBus, PerItemDelayScalesDuration) {
  SharedBus bus(3);
  EXPECT_EQ(bus.reserve(0, 4), 12);  // 4 items * 3 units
}

TEST(SharedBus, ZeroDelayBusIsTransparent) {
  SharedBus bus(0);
  EXPECT_EQ(bus.reserve(5, 100), 5);
  EXPECT_EQ(bus.reservation_count(), 0u);
}

TEST(SharedBus, ProbeDoesNotReserve) {
  SharedBus bus(1);
  bus.reserve(0, 5);
  EXPECT_EQ(bus.probe(0, 5), 5);
  EXPECT_EQ(bus.probe(0, 5), 5);  // unchanged
  EXPECT_EQ(bus.reservation_count(), 1u);
}

TEST(SharedBus, ClearResets) {
  SharedBus bus(1);
  bus.reserve(0, 5);
  bus.clear();
  EXPECT_EQ(bus.reservation_count(), 0u);
  EXPECT_EQ(bus.reserve(0, 5), 5);
}

TEST(SharedBus, RejectsNegativeInputs) {
  EXPECT_THROW(SharedBus(-1), precondition_error);
  SharedBus bus(1);
  EXPECT_THROW(bus.reserve(0, -3), precondition_error);
}

TEST(SharedBus, ManyReservationsStaySorted) {
  SharedBus bus(1);
  // Reserve in scrambled earliest order; total time must equal the sum
  // (full serialization when requests overlap at time 0).
  Time finish = 0;
  for (int i = 0; i < 50; ++i) finish = bus.reserve(0, 2);
  EXPECT_EQ(finish, 100);
  EXPECT_EQ(bus.utilization(), 100);
}

}  // namespace
}  // namespace parabb
