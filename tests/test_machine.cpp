#include "parabb/platform/machine.hpp"

#include <gtest/gtest.h>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

TEST(CommModel, ZeroCostsNothing) {
  const CommModel m = CommModel::zero();
  EXPECT_EQ(m.delay(0), 0);
  EXPECT_EQ(m.delay(1000), 0);
  EXPECT_EQ(m.per_item_delay(), 0);
}

TEST(CommModel, PerItemScalesLinearly) {
  const CommModel m = CommModel::per_item(3);
  EXPECT_EQ(m.delay(0), 0);
  EXPECT_EQ(m.delay(1), 3);
  EXPECT_EQ(m.delay(10), 30);
}

TEST(CommModel, PaperDefaultIsOneUnitPerItem) {
  const CommModel m = CommModel::per_item();
  EXPECT_EQ(m.delay(7), 7);
}

TEST(CommModel, Equality) {
  EXPECT_EQ(CommModel::per_item(1), CommModel::per_item(1));
  EXPECT_NE(CommModel::per_item(1), CommModel::per_item(2));
  EXPECT_EQ(CommModel::zero(), CommModel::per_item(0));
}

TEST(Machine, SharedBusFactory) {
  const Machine m = make_shared_bus_machine(3);
  EXPECT_EQ(m.procs, 3);
  EXPECT_EQ(m.comm.per_item_delay(), 1);
}

TEST(Machine, FactoryRejectsBadSizes) {
  EXPECT_THROW(make_shared_bus_machine(0), precondition_error);
  EXPECT_THROW(make_shared_bus_machine(kMaxProcs + 1), precondition_error);
}

TEST(Machine, DescribeMentionsSizeAndBus) {
  const Machine m = make_shared_bus_machine(4);
  const std::string d = m.describe();
  EXPECT_NE(d.find("4"), std::string::npos);
  EXPECT_NE(d.find("bus"), std::string::npos);
}

}  // namespace
}  // namespace parabb
