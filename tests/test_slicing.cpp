#include "parabb/deadline/slicing.hpp"

#include <gtest/gtest.h>

#include "parabb/support/assert.hpp"
#include "parabb/taskgraph/builder.hpp"
#include "parabb/taskgraph/topology.hpp"
#include "parabb/workload/generator.hpp"

namespace parabb {
namespace {

TaskGraph chain3() {
  return GraphBuilder()
      .task("a", 10)
      .task("b", 20)
      .task("c", 30)
      .chain({"a", "b", "c"})
      .build();
}

TEST(Slicing, PathWorkBaseScalesByLaxity) {
  TaskGraph g = chain3();
  SlicingConfig cfg;
  cfg.laxity = 2.0;
  cfg.base = LaxityBase::kPathWork;
  const SlicingReport r = assign_deadlines_slicing(g, cfg);
  EXPECT_DOUBLE_EQ(r.scale, 2.0);
  EXPECT_EQ(r.critical_path, 60);
  EXPECT_EQ(r.e2e_deadline, 120);
  // Windows: a [0,20], b [20,60], c [60,120].
  EXPECT_EQ(g.task(0).phase, 0);
  EXPECT_EQ(g.task(0).abs_deadline(), 20);
  EXPECT_EQ(g.task(1).phase, 20);
  EXPECT_EQ(g.task(1).abs_deadline(), 60);
  EXPECT_EQ(g.task(2).phase, 60);
  EXPECT_EQ(g.task(2).abs_deadline(), 120);
}

TEST(Slicing, TotalWorkBaseUsesAccumulatedWorkload) {
  TaskGraph g = GraphBuilder()
                    .task("a", 10)
                    .task("b", 10)
                    .task("p", 10)  // parallel, off the critical path
                    .arc("a", "b")
                    .arc("a", "p")
                    .build();
  SlicingConfig cfg;  // laxity 1.5, kTotalWork
  const SlicingReport r = assign_deadlines_slicing(g, cfg);
  EXPECT_EQ(r.total_work, 30);
  EXPECT_EQ(r.critical_path, 20);
  // Heaviest chain's e2e deadline = 1.5 * 30 = 45; scale = 45/20 = 2.25.
  EXPECT_DOUBLE_EQ(r.scale, 2.25);
  EXPECT_EQ(r.e2e_deadline, 45);
  EXPECT_EQ(g.task(1).abs_deadline(), 45);
}

TEST(Slicing, WindowsCoverExecutionTime) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    GeneratedGraph gen = generate_graph(paper_config(), seed);
    assign_deadlines_slicing(gen.graph);
    for (TaskId t = 0; t < gen.graph.task_count(); ++t) {
      const Task& task = gen.graph.task(t);
      EXPECT_GE(task.rel_deadline, task.exec) << "task " << task.name;
      EXPECT_GE(task.phase, 0);
    }
  }
}

TEST(Slicing, WindowsNonOverlappingAlongEveryArc) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    GeneratedGraph gen = generate_graph(paper_config(), seed);
    assign_deadlines_slicing(gen.graph);
    for (const Channel& c : gen.graph.arcs()) {
      // Successor's window starts no earlier than predecessor's window end.
      EXPECT_GE(gen.graph.task(c.to).phase,
                gen.graph.task(c.from).abs_deadline())
          << "arc " << gen.graph.task(c.from).name << " -> "
          << gen.graph.task(c.to).name << " seed " << seed;
    }
  }
}

TEST(Slicing, EqualSlicesAlsoNonOverlapping) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    GeneratedGraph gen = generate_graph(paper_config(), seed);
    assign_deadlines_equal_slices(gen.graph);
    for (const Channel& c : gen.graph.arcs()) {
      EXPECT_GE(gen.graph.task(c.to).phase,
                gen.graph.task(c.from).abs_deadline());
    }
    for (TaskId t = 0; t < gen.graph.task_count(); ++t) {
      EXPECT_GE(gen.graph.task(t).rel_deadline, gen.graph.task(t).exec);
    }
  }
}

TEST(Slicing, EqualSlicesIgnoreExecProportion) {
  TaskGraph g = chain3();
  SlicingConfig cfg;
  cfg.base = LaxityBase::kPathWork;
  assign_deadlines_equal_slices(g, cfg);
  // All three slices equal: 1.5*60/3 = 30 each.
  EXPECT_EQ(g.task(0).abs_deadline(), 30);
  EXPECT_EQ(g.task(1).phase, 30);
  EXPECT_EQ(g.task(1).abs_deadline(), 60);
}

TEST(Slicing, RejectsScaleBelowOne) {
  TaskGraph g = chain3();
  SlicingConfig cfg;
  cfg.laxity = 0.5;
  cfg.base = LaxityBase::kPathWork;
  EXPECT_THROW(assign_deadlines_slicing(g, cfg), precondition_error);
}

TEST(Slicing, RejectsZeroExecTasks) {
  TaskGraph g;
  Task t;
  t.name = "z";
  t.exec = 0;
  g.add_task(t);
  EXPECT_THROW(assign_deadlines_slicing(g), precondition_error);
}

TEST(Slicing, ClearDeadlinesResets) {
  TaskGraph g = chain3();
  assign_deadlines_slicing(g);
  clear_deadlines(g);
  for (TaskId t = 0; t < g.task_count(); ++t) {
    EXPECT_EQ(g.task(t).phase, 0);
    EXPECT_EQ(g.task(t).rel_deadline, 0);
  }
}

TEST(Slicing, LaxityControlsTightness) {
  TaskGraph loose = chain3();
  TaskGraph tight = chain3();
  SlicingConfig cfg;
  cfg.base = LaxityBase::kPathWork;
  cfg.laxity = 3.0;
  assign_deadlines_slicing(loose, cfg);
  cfg.laxity = 1.0;
  assign_deadlines_slicing(tight, cfg);
  EXPECT_GT(loose.task(2).abs_deadline(), tight.task(2).abs_deadline());
}

}  // namespace
}  // namespace parabb
