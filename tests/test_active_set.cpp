#include "parabb/bnb/active_set.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace parabb {
namespace {

VertexEntry entry(Time lb, std::uint32_t seq) {
  return VertexEntry{lb, seq, SlotRef{seq, 0}};
}

struct Harness {
  std::multiset<std::uint32_t> released;
  ActiveSet as;

  explicit Harness(SelectRule rule, bool llb_tie_newest = true)
      : as(rule, [this](SlotRef r) { released.insert(r.index); },
           llb_tie_newest) {}
};

TEST(ActiveSet, LifoPopsNewestFirst) {
  Harness h(SelectRule::kLIFO);
  h.as.push(entry(5, 0));
  h.as.push(entry(1, 1));
  h.as.push(entry(9, 2));
  EXPECT_EQ(h.as.pop().seq, 2u);
  EXPECT_EQ(h.as.pop().seq, 1u);
  EXPECT_EQ(h.as.pop().seq, 0u);
  EXPECT_TRUE(h.as.empty());
}

TEST(ActiveSet, FifoPopsOldestFirst) {
  Harness h(SelectRule::kFIFO);
  h.as.push(entry(5, 0));
  h.as.push(entry(1, 1));
  EXPECT_EQ(h.as.pop().seq, 0u);
  EXPECT_EQ(h.as.pop().seq, 1u);
}

TEST(ActiveSet, LlbPopsLeastBoundFirst) {
  Harness h(SelectRule::kLLB);
  h.as.push(entry(5, 0));
  h.as.push(entry(1, 1));
  h.as.push(entry(9, 2));
  h.as.push(entry(3, 3));
  EXPECT_EQ(h.as.pop().lb, 1);
  EXPECT_EQ(h.as.pop().lb, 3);
  EXPECT_EQ(h.as.pop().lb, 5);
  EXPECT_EQ(h.as.pop().lb, 9);
}

TEST(ActiveSet, LlbTiesBreakNewestFirstWhenConfigured) {
  Harness h(SelectRule::kLLB, /*llb_tie_newest=*/true);
  h.as.push(entry(4, 0));
  h.as.push(entry(4, 1));
  h.as.push(entry(4, 2));
  EXPECT_EQ(h.as.pop().seq, 2u);
  EXPECT_EQ(h.as.pop().seq, 1u);
  EXPECT_EQ(h.as.pop().seq, 0u);
}

TEST(ActiveSet, LlbTiesBreakOldestFirstByDefault) {
  Harness h(SelectRule::kLLB, /*llb_tie_newest=*/false);
  h.as.push(entry(4, 0));
  h.as.push(entry(4, 1));
  h.as.push(entry(4, 2));
  EXPECT_EQ(h.as.pop().seq, 0u);
  EXPECT_EQ(h.as.pop().seq, 1u);
  EXPECT_EQ(h.as.pop().seq, 2u);
}

TEST(ActiveSet, PeekMatchesPop) {
  for (const SelectRule rule :
       {SelectRule::kLIFO, SelectRule::kFIFO, SelectRule::kLLB}) {
    Harness h(rule);
    h.as.push(entry(5, 0));
    h.as.push(entry(1, 1));
    h.as.push(entry(7, 2));
    while (!h.as.empty()) {
      const std::uint32_t expected = h.as.peek().seq;
      EXPECT_EQ(h.as.pop().seq, expected);
    }
  }
}

TEST(ActiveSet, PruneWorseReleasesAndCompacts) {
  Harness h(SelectRule::kLIFO);
  h.as.push(entry(10, 0));
  h.as.push(entry(-5, 1));
  h.as.push(entry(3, 2));
  h.as.push(entry(3, 3));
  EXPECT_EQ(h.as.prune_worse(3), 3u);  // 10 and both 3s go
  EXPECT_EQ(h.as.size(), 1u);
  EXPECT_EQ(h.released, (std::multiset<std::uint32_t>{0, 2, 3}));
  EXPECT_EQ(h.as.pop().seq, 1u);
}

TEST(ActiveSet, PruneWorseKeepsHeapValid) {
  Harness h(SelectRule::kLLB);
  for (std::uint32_t i = 0; i < 20; ++i)
    h.as.push(entry(static_cast<Time>(20 - i), i));
  h.as.prune_worse(10);
  Time prev = kTimeNegInf;
  while (!h.as.empty()) {
    const Time lb = h.as.pop().lb;
    EXPECT_GE(lb, prev);
    EXPECT_LT(lb, 10);
    prev = lb;
  }
}

TEST(ActiveSet, DisposeWorstDropsLargestBounds) {
  Harness h(SelectRule::kLIFO);
  h.as.push(entry(1, 0));
  h.as.push(entry(8, 1));
  h.as.push(entry(5, 2));
  h.as.push(entry(9, 3));
  EXPECT_EQ(h.as.dispose_worst(2), 2u);
  EXPECT_EQ(h.as.size(), 2u);
  EXPECT_EQ(h.released, (std::multiset<std::uint32_t>{1, 3}));
}

TEST(ActiveSet, DisposeWorstHandlesTies) {
  Harness h(SelectRule::kFIFO);
  h.as.push(entry(5, 0));
  h.as.push(entry(5, 1));
  h.as.push(entry(5, 2));
  EXPECT_EQ(h.as.dispose_worst(2), 2u);
  EXPECT_EQ(h.as.size(), 1u);
}

TEST(ActiveSet, DisposeWorstClampedToSize) {
  Harness h(SelectRule::kLIFO);
  h.as.push(entry(1, 0));
  EXPECT_EQ(h.as.dispose_worst(10), 1u);
  EXPECT_TRUE(h.as.empty());
  EXPECT_EQ(h.as.dispose_worst(3), 0u);
}

TEST(ActiveSet, PruneEverything) {
  Harness h(SelectRule::kLLB);
  h.as.push(entry(4, 0));
  h.as.push(entry(6, 1));
  EXPECT_EQ(h.as.prune_worse(kTimeNegInf), 2u);
  EXPECT_TRUE(h.as.empty());
}

TEST(ActiveSet, RequiresReleaseCallback) {
  EXPECT_THROW(ActiveSet(SelectRule::kLIFO, nullptr), precondition_error);
}

}  // namespace
}  // namespace parabb
