#include "parabb/sched/context.hpp"

#include <gtest/gtest.h>

#include "parabb/support/assert.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

TEST(SchedContext, FlattensTaskData) {
  const TaskGraph g = test::small_diamond();
  const SchedContext ctx = test::make_ctx(g, 2);
  EXPECT_EQ(ctx.task_count(), 4);
  EXPECT_EQ(ctx.proc_count(), 2);
  EXPECT_EQ(ctx.exec(0), 10);
  EXPECT_EQ(ctx.arrival(0), 0);
  EXPECT_EQ(ctx.deadline(0), 15);
  EXPECT_EQ(ctx.arrival(1), 10);
  EXPECT_EQ(ctx.deadline(1), 50);
}

TEST(SchedContext, PredsCarryCommDelays) {
  const TaskGraph g = test::small_diamond();
  const SchedContext ctx = test::make_ctx(g, 2);
  // d (task 3) has preds b, c with 5 items each -> delay 5 on the 1u bus.
  ASSERT_EQ(ctx.pred_ids(3).size(), 2u);
  EXPECT_EQ(ctx.pred_comm(3)[0], 5);
  EXPECT_EQ(ctx.pred_comm(3)[1], 5);
  EXPECT_EQ(ctx.pred_count(0), 0);
  ASSERT_EQ(ctx.succ_ids(0).size(), 2u);
  EXPECT_EQ(ctx.succ_comm(0)[0], 5);
}

TEST(SchedContext, CommDelaysScaleWithModel) {
  const TaskGraph g = test::small_diamond();
  Machine m{2, CommModel::per_item(4), std::nullopt};
  const SchedContext ctx(g, m);
  EXPECT_EQ(ctx.pred_comm(3)[0], 20);
}

TEST(SchedContext, InitialReadyAreInputs) {
  const TaskGraph g = test::small_diamond();
  const SchedContext ctx = test::make_ctx(g, 2);
  EXPECT_EQ(ctx.initial_ready().size(), 1);
  EXPECT_TRUE(ctx.initial_ready().contains(0));
  EXPECT_EQ(ctx.all_tasks().size(), 4);
}

TEST(SchedContext, ExposesBranchingOrders) {
  const TaskGraph g = test::small_diamond();
  const SchedContext ctx = test::make_ctx(g, 2);
  EXPECT_EQ(ctx.topo_order().size(), 4u);
  EXPECT_EQ(ctx.dfs_order().size(), 4u);
  EXPECT_EQ(ctx.level_order().size(), 4u);
  EXPECT_EQ(ctx.dfs_order()[0], 0);
}

TEST(SchedContext, RejectsTooManyTasks) {
  GraphBuilder b;
  for (int i = 0; i <= kMaxTasks; ++i)
    b.task("t" + std::to_string(i), 1);
  const TaskGraph g = b.build();
  EXPECT_THROW(test::make_ctx(g, 2), precondition_error);
}

TEST(SchedContext, RejectsEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW(test::make_ctx(g, 2), precondition_error);
}

TEST(SchedContext, RejectsCyclicGraph) {
  TaskGraph g;
  Task t;
  t.exec = 1;
  t.name = "a";
  const TaskId a = g.add_task(t);
  t.name = "b";
  const TaskId b = g.add_task(t);
  g.add_arc(a, b);
  g.add_arc(b, a);
  EXPECT_THROW(test::make_ctx(g, 2), precondition_error);
}

TEST(SchedContext, RejectsHugeTimes) {
  TaskGraph g;
  Task t;
  t.name = "big";
  t.exec = kMaxCompactTime + 1;
  g.add_task(t);
  EXPECT_THROW(test::make_ctx(g, 1), precondition_error);
}

TEST(SchedContext, RejectsBadMachineSize) {
  const TaskGraph g = test::small_diamond();
  Machine m{0, CommModel::per_item(1), std::nullopt};
  EXPECT_THROW(SchedContext(g, m), precondition_error);
  m.procs = kMaxProcs + 1;
  EXPECT_THROW(SchedContext(g, m), precondition_error);
}

}  // namespace
}  // namespace parabb
