#include "parabb/sched/etf.hpp"

#include <gtest/gtest.h>

#include "parabb/sched/validator.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

TEST(Etf, SchedulesEverything) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  const EtfResult r = schedule_etf(ctx);
  EXPECT_EQ(r.schedule.task_count(), 4);
  EXPECT_EQ(r.max_lateness, max_lateness(r.schedule, ctx.graph()));
}

TEST(Etf, PicksGloballyEarliestStart) {
  // Task "late" arrives at t=5, "now" at t=0: ETF starts "now" first even
  // though "late" has the tighter deadline (ETF is deadline-blind).
  const TaskGraph g = GraphBuilder()
                          .task("late", 10, /*rel_deadline=*/11, /*phase=*/5)
                          .task("now", 10, 100, 0)
                          .build();
  const SchedContext ctx = test::make_ctx(g, 1);
  const EtfResult r = schedule_etf(ctx);
  EXPECT_EQ(r.schedule.entry(1).start, 0);
  EXPECT_EQ(r.schedule.entry(0).start, 10);
}

TEST(Etf, SpreadsAcrossProcessors) {
  const SchedContext ctx = test::make_ctx(test::independent_tasks(4), 2);
  const EtfResult r = schedule_etf(ctx);
  // Earliest-start placement alternates processors: makespan 20, not 40.
  EXPECT_EQ(makespan(r.schedule), 20);
}

TEST(Etf, Deterministic) {
  const TaskGraph g = test::paper_instance(42);
  const SchedContext ctx = test::make_ctx(g, 3);
  const EtfResult a = schedule_etf(ctx);
  const EtfResult b = schedule_etf(ctx);
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    EXPECT_EQ(a.schedule.entry(t).start, b.schedule.entry(t).start);
    EXPECT_EQ(a.schedule.entry(t).proc, b.schedule.entry(t).proc);
  }
}

class EtfSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EtfSweep, StructurallySoundOnRandomInstances) {
  const TaskGraph g = test::paper_instance(GetParam());
  for (int m = 2; m <= 4; ++m) {
    const Machine machine = make_shared_bus_machine(m);
    const SchedContext ctx(g, machine);
    const EtfResult r = schedule_etf(ctx);
    const ValidationReport rep = validate_schedule(r.schedule, g, machine);
    EXPECT_TRUE(rep.structurally_sound) << rep.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EtfSweep,
                         ::testing::Range<std::uint64_t>(400, 412));

}  // namespace
}  // namespace parabb
