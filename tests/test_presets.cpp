#include "parabb/workload/presets.hpp"

#include <gtest/gtest.h>

#include "parabb/support/assert.hpp"
#include "parabb/taskgraph/topology.hpp"

namespace parabb {
namespace {

TEST(Presets, Diamond) {
  const TaskGraph g = preset_diamond();
  EXPECT_EQ(g.task_count(), 4);
  EXPECT_EQ(g.arc_count(), 4);
  const Topology topo = analyze(g);
  EXPECT_EQ(topo.level_count, 3);
  EXPECT_EQ(topo.width, 2);
}

TEST(Presets, ChainShape) {
  const TaskGraph g = preset_chain(6, 10, 4);
  EXPECT_EQ(g.task_count(), 6);
  EXPECT_EQ(g.arc_count(), 5);
  const Topology topo = analyze(g);
  EXPECT_EQ(topo.level_count, 6);
  EXPECT_EQ(topo.width, 1);
  EXPECT_EQ(topo.critical_path, 60);
}

TEST(Presets, SingleStageChain) {
  const TaskGraph g = preset_chain(1);
  EXPECT_EQ(g.task_count(), 1);
  EXPECT_EQ(g.arc_count(), 0);
}

TEST(Presets, ForkJoinShape) {
  const TaskGraph g = preset_fork_join(5, 10, 2);
  EXPECT_EQ(g.task_count(), 7);
  EXPECT_EQ(g.arc_count(), 10);
  const Topology topo = analyze(g);
  EXPECT_EQ(topo.level_count, 3);
  EXPECT_EQ(topo.width, 5);
}

TEST(Presets, DspPipelineIsValid) {
  const TaskGraph g = preset_dsp_pipeline();
  EXPECT_EQ(g.task_count(), 9);
  EXPECT_EQ(g.validate(), "");
  const Topology topo = analyze(g);
  EXPECT_EQ(topo.inputs.size(), 2u);   // two sensors
  EXPECT_EQ(topo.outputs.size(), 1u);  // one actuator
}

TEST(Presets, GaussianEliminationShape) {
  const int k = 5;
  const TaskGraph g = preset_gaussian_elimination(k);
  EXPECT_EQ(g.task_count(), (k - 1) + k * (k - 1) / 2);
  EXPECT_EQ(g.validate(), "");
  const Topology topo = analyze(g);
  // Pivots form a dependency chain through updates: depth grows with k.
  EXPECT_GE(topo.level_count, k - 1);
}

TEST(Presets, GaussianRejectsTinyK) {
  EXPECT_THROW(preset_gaussian_elimination(1), precondition_error);
}

TEST(Presets, ForkJoinRejectsZeroBranches) {
  EXPECT_THROW(preset_fork_join(0), precondition_error);
}

}  // namespace
}  // namespace parabb
