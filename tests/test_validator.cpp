#include "parabb/sched/validator.hpp"

#include <gtest/gtest.h>

#include "parabb/sched/edf.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

// Failure-injection suite: start from a valid schedule, corrupt one aspect,
// and check the validator pinpoints it.

struct Fixture {
  TaskGraph g = test::small_diamond();
  Machine machine = make_shared_bus_machine(2);
  SchedContext ctx{g, machine};
  Schedule good;

  Fixture() {
    PartialSchedule ps = PartialSchedule::empty(ctx);
    ps.place(ctx, 0, 0);
    ps.place(ctx, 1, 0);
    ps.place(ctx, 2, 1);
    ps.place(ctx, 3, 0);
    good = Schedule::from_partial(ctx, ps);
  }

  Schedule mutate(TaskId t, auto fn) const {
    std::vector<ScheduledTask> entries;
    for (TaskId i = 0; i < good.task_count(); ++i)
      entries.push_back(good.entry(i));
    fn(entries[static_cast<std::size_t>(t)]);
    return Schedule::from_entries(good.task_count(), std::move(entries));
  }
};

TEST(Validator, AcceptsValidSchedule) {
  const Fixture f;
  const ValidationReport r = validate_schedule(f.good, f.g, f.machine);
  EXPECT_TRUE(r.structurally_sound) << r.error;
  EXPECT_TRUE(r.deadlines_met) << r.error;
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.error, "");
}

TEST(Validator, DetectsBadProcessor) {
  const Fixture f;
  const Schedule bad = f.mutate(0, [](ScheduledTask& e) { e.proc = 9; });
  const ValidationReport r = validate_schedule(bad, f.g, f.machine);
  EXPECT_FALSE(r.structurally_sound);
  EXPECT_NE(r.error.find("processor"), std::string::npos);
}

TEST(Validator, DetectsWrongDuration) {
  const Fixture f;
  const Schedule bad = f.mutate(1, [](ScheduledTask& e) { e.finish += 1; });
  const ValidationReport r = validate_schedule(bad, f.g, f.machine);
  EXPECT_FALSE(r.structurally_sound);
  EXPECT_NE(r.error.find("exec"), std::string::npos);
}

TEST(Validator, DetectsEarlyStart) {
  const Fixture f;
  // Task b arrives at 10; move it to 5.
  const Schedule bad = f.mutate(1, [](ScheduledTask& e) {
    e.start = 5;
    e.finish = 25;
  });
  const ValidationReport r = validate_schedule(bad, f.g, f.machine);
  EXPECT_FALSE(r.structurally_sound);
  EXPECT_NE(r.error.find("arrival"), std::string::npos);
}

TEST(Validator, DetectsProcessorOverlap) {
  const Fixture f;
  // Move b late enough that d (arrival 35) lands inside it on P0, keeping
  // every per-task structural property intact so the overlap check fires.
  std::vector<ScheduledTask> entries;
  for (TaskId i = 0; i < f.good.task_count(); ++i)
    entries.push_back(f.good.entry(i));
  entries[1].start = 30;
  entries[1].finish = 50;
  entries[3].start = 35;
  entries[3].finish = 45;
  const Schedule bad =
      Schedule::from_entries(f.good.task_count(), std::move(entries));
  const ValidationReport r = validate_schedule(bad, f.g, f.machine);
  EXPECT_FALSE(r.structurally_sound);
  EXPECT_NE(r.error.find("overlap"), std::string::npos) << r.error;
}

TEST(Validator, DetectsPrecedenceViolation) {
  const Fixture f;
  // d currently starts after c's message; yank c far later.
  const Schedule bad = f.mutate(2, [](ScheduledTask& e) {
    e.start = 500;
    e.finish = 515;
  });
  const ValidationReport r = validate_schedule(bad, f.g, f.machine);
  EXPECT_FALSE(r.structurally_sound);
  EXPECT_NE(r.error.find("starts before"), std::string::npos);
}

TEST(Validator, DetectsMissedCommDelay) {
  const Fixture f;
  // c is on P1, d on P0: d must wait for finish(c) + 5. Place d exactly at
  // finish(c) (too early by the comm delay).
  const Schedule bad = f.mutate(3, [&](ScheduledTask& e) {
    e.start = f.good.entry(2).finish;
    e.finish = e.start + f.g.task(3).exec;
  });
  // May also overlap b; accept either structural complaint.
  const ValidationReport r = validate_schedule(bad, f.g, f.machine);
  EXPECT_FALSE(r.structurally_sound);
}

TEST(Validator, SeparatesDeadlinesFromStructure) {
  // Tight deadline version: structure fine, deadline missed.
  TaskGraph g = test::small_diamond();
  g.task(3).rel_deadline = 1;  // impossible window
  const Machine machine = make_shared_bus_machine(2);
  const SchedContext ctx(g, machine);
  PartialSchedule ps = PartialSchedule::empty(ctx);
  ps.place(ctx, 0, 0);
  ps.place(ctx, 1, 0);
  ps.place(ctx, 2, 1);
  ps.place(ctx, 3, 0);
  const Schedule s = Schedule::from_partial(ctx, ps);
  const ValidationReport r = validate_schedule(s, g, machine);
  EXPECT_TRUE(r.structurally_sound);
  EXPECT_FALSE(r.deadlines_met);
  EXPECT_FALSE(r.valid());
  EXPECT_NE(r.error.find("deadline"), std::string::npos);
}

TEST(Validator, TaskCountMismatch) {
  const Fixture f;
  const Schedule wrong = Schedule::from_entries(1, {{0, 0, 0, 10}});
  const ValidationReport r = validate_schedule(wrong, f.g, f.machine);
  EXPECT_FALSE(r.structurally_sound);
  EXPECT_NE(r.error.find("mismatch"), std::string::npos);
}

// Property: every EDF schedule on random instances passes validation
// (structurally; deadlines may be missed on infeasible instances).
class ValidatorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValidatorSweep, EdfSchedulesAreStructurallySound) {
  const TaskGraph g = test::paper_instance(GetParam());
  for (int m = 2; m <= 4; ++m) {
    const Machine machine = make_shared_bus_machine(m);
    const SchedContext ctx(g, machine);
    const EdfResult r = schedule_edf(ctx);
    const ValidationReport report = validate_schedule(r.schedule, g, machine);
    EXPECT_TRUE(report.structurally_sound) << report.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidatorSweep,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace parabb
