// Robustness suite (docs/robustness.md): deterministic fault injection,
// the graceful-degradation ladder, the stagnation watchdog, and the
// service's admission control.
//
// The load-bearing contract: every injected fault resolves to a *defined*
// JobOutcome — never a crash, deadlock, or silent wrong answer. The
// seeded fault matrix sweeps 200 reproducible plans across the sequential
// engine and both parallel schedulers; tools/fault_sweep.sh re-runs this
// binary under ASan and TSan so "no silent corruption" is certified, not
// assumed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <thread>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/robust/degrade.hpp"
#include "parabb/robust/fault.hpp"
#include "parabb/robust/watchdog.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/service/backoff.hpp"
#include "parabb/service/protocol.hpp"
#include "parabb/service/service.hpp"
#include "parabb/support/json.hpp"
#include "parabb/verify/certificate.hpp"
#include "parabb/verify/certificate_io.hpp"
#include "parabb/verify/verifier.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

FaultPlan one_fault(FaultKind kind, std::uint64_t at, std::int64_t param = 0) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{kind, at, param});
  return plan;
}

/// A defined terminal state: a known reason, and any claimed schedule is
/// validator-clean. This is what "no silent wrong answer" means here.
void expect_defined(const TaskGraph& g, const Machine& m, bool found,
                    const Schedule& best, TerminationReason reason,
                    const std::string& what) {
  switch (reason) {
    case TerminationReason::kExhausted:
    case TerminationReason::kBoundStop:
    case TerminationReason::kTimeLimit:
    case TerminationReason::kBudget:
    case TerminationReason::kCancelled:
      break;
    default:
      FAIL() << what << ": undefined termination reason";
  }
  if (found) {
    const ValidationReport rep = validate_schedule(best, g, m);
    EXPECT_TRUE(rep.structurally_sound) << what;
  }
}

// ---------------------------------------------------------------------------
// Fault plans and injector hooks
// ---------------------------------------------------------------------------

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 987654321ull}) {
    const FaultPlan a = FaultPlan::random(seed);
    const FaultPlan b = FaultPlan::random(seed);
    ASSERT_EQ(a.faults.size(), b.faults.size()) << "seed " << seed;
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
    ASSERT_GE(a.faults.size(), 1u);
    ASSERT_LE(a.faults.size(), 3u);
  }
  EXPECT_NE(FaultPlan::random(1).describe(), FaultPlan::random(2).describe());
}

TEST(FaultInjector, AllocFailFiresExactlyOnce) {
  FaultInjector inj(one_fault(FaultKind::kAllocFail, 10));
  inj.on_alloc(5);  // below threshold: nothing
  EXPECT_EQ(inj.fired(), 0u);
  EXPECT_THROW(inj.on_alloc(10), std::bad_alloc);
  EXPECT_EQ(inj.fired(), 1u);
  inj.on_alloc(11);  // budget consumed: no second throw
  EXPECT_EQ(inj.fired(), 1u);
}

TEST(FaultInjector, CancelStormIsSticky) {
  const FaultInjector inj(one_fault(FaultKind::kCancelStorm, 100));
  EXPECT_FALSE(inj.cancel_requested(99));
  EXPECT_TRUE(inj.cancel_requested(100));
  EXPECT_TRUE(inj.cancel_requested(50));  // sticky once observed
}

TEST(FaultInjector, ClockSkewSumsTriggeredSpecs) {
  FaultPlan plan;
  plan.faults.push_back(FaultSpec{FaultKind::kClockSkew, 10, 2000});
  plan.faults.push_back(FaultSpec{FaultKind::kClockSkew, 100, -500});
  const FaultInjector inj(plan);
  EXPECT_DOUBLE_EQ(inj.clock_skew_s(5), 0.0);
  EXPECT_DOUBLE_EQ(inj.clock_skew_s(10), 2.0);
  EXPECT_DOUBLE_EQ(inj.clock_skew_s(100), 1.5);
}

TEST(FaultInjector, QueueFullConsumesRejectionBudget) {
  FaultInjector inj(one_fault(FaultKind::kQueueFull, 0, /*param=*/2));
  EXPECT_TRUE(inj.submit_rejected());
  EXPECT_TRUE(inj.submit_rejected());
  EXPECT_FALSE(inj.submit_rejected());
  EXPECT_EQ(inj.fired(), 2u);
}

// ---------------------------------------------------------------------------
// Degrade schedule
// ---------------------------------------------------------------------------

TEST(DegradeSchedule, DisabledConfigHasNoRungs) {
  const DegradeSchedule s = DegradeSchedule::from(DegradeConfig{});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.target_level(100, 100), 0);
}

TEST(DegradeSchedule, RungsSortedAndFiltered) {
  DegradeConfig cfg;
  cfg.enabled = true;
  cfg.bf1_frac = 0.3;  // out of order on purpose
  cfg.tighten_db_frac = -1.0;  // disabled rung
  const DegradeSchedule s = DegradeSchedule::from(cfg);
  ASSERT_EQ(s.count, 3);
  EXPECT_EQ(s.rungs[0].action, DegradeAction::kBF1);
  EXPECT_EQ(s.rungs[1].action, DegradeAction::kShedTT);
  EXPECT_EQ(s.rungs[2].action, DegradeAction::kDF);
  for (int i = 1; i < s.count; ++i) {
    EXPECT_LE(s.rungs[static_cast<std::size_t>(i - 1)].frac,
              s.rungs[static_cast<std::size_t>(i)].frac);
  }
}

TEST(DegradeSchedule, TargetLevelMonotone) {
  DegradeConfig cfg;
  cfg.enabled = true;
  const DegradeSchedule s = DegradeSchedule::from(cfg);
  ASSERT_EQ(s.count, 4);
  EXPECT_EQ(s.target_level(0, 1000), 0);
  EXPECT_EQ(s.target_level(550, 1000), 1);
  EXPECT_EQ(s.target_level(700, 1000), 2);
  EXPECT_EQ(s.target_level(850, 1000), 3);
  EXPECT_EQ(s.target_level(2000, 1000), 4);
  EXPECT_EQ(s.target_level(2000, 0), 0);  // unbounded budget: never
}

TEST(DegradeAction, StringRoundTrip) {
  for (const DegradeAction a :
       {DegradeAction::kShedTT, DegradeAction::kTightenDB, DegradeAction::kBF1,
        DegradeAction::kDF}) {
    DegradeAction parsed{};
    ASSERT_TRUE(parse_degrade_action(to_string(a), parsed));
    EXPECT_EQ(parsed, a);
  }
  DegradeAction parsed{};
  EXPECT_FALSE(parse_degrade_action("bogus", parsed));
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, FiresOnStagnationOnce) {
  Watchdog::Config cfg;
  cfg.interval_ms = 5;
  cfg.stall_ms = 30;
  Watchdog dog(cfg);
  std::atomic<std::uint64_t> progress{0};
  std::atomic<int> fired{0};
  const std::uint64_t id =
      dog.watch(&progress, [&fired] { fired.fetch_add(1); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (fired.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(dog.stalls_fired(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(fired.load(), 1);  // at most once per registration
  dog.unwatch(id);
}

TEST(WatchdogTest, AdvancingProgressNeverFires) {
  Watchdog::Config cfg;
  cfg.interval_ms = 5;
  cfg.stall_ms = 60;
  Watchdog dog(cfg);
  std::atomic<std::uint64_t> progress{0};
  std::atomic<int> fired{0};
  const std::uint64_t id =
      dog.watch(&progress, [&fired] { fired.fetch_add(1); });
  for (int i = 0; i < 20; ++i) {
    progress.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  dog.unwatch(id);
  EXPECT_EQ(fired.load(), 0);
}

TEST(WatchdogTest, ZeroThresholdsAreRejectedWithLineNumberedError) {
  // A zero cadence or stall threshold would make the scan thread spin (or
  // fire instantly on every job); both are configuration bugs and must be
  // rejected at construction, with the error naming the source line.
  for (const double bad : {0.0, -5.0}) {
    Watchdog::Config cfg;
    cfg.stall_ms = bad;
    try {
      Watchdog dog(cfg);
      FAIL() << "stall_ms=" << bad << " accepted";
    } catch (const precondition_error& e) {
      EXPECT_NE(std::string(e.what()).find("watchdog.cpp:"),
                std::string::npos)
          << e.what();
    }
    Watchdog::Config cfg2;
    cfg2.interval_ms = bad;
    EXPECT_THROW(Watchdog dog2(cfg2), precondition_error);
  }
  EXPECT_THROW(Watchdog(Watchdog::Config{}).watch(nullptr, {}),
               precondition_error);
}

TEST(WatchdogTest, StallFireOnAlreadyCancelledJobIsANoOp) {
  // The race the service lives with: a job is cancelled (client request,
  // shutdown) while the watchdog's scan already considers it stalled. The
  // stall action then lands on an already-tripped token — cancel() is
  // idempotent, so the fire must be a harmless no-op, not a double-cancel
  // crash or a second escalation.
  Watchdog::Config cfg;
  cfg.interval_ms = 5;
  cfg.stall_ms = 20;
  Watchdog dog(cfg);
  CancelToken token;
  token.cancel();  // the job is already cancelled...
  std::atomic<std::uint64_t> progress{0};
  const std::uint64_t id =
      dog.watch(&progress, [&token] { token.cancel(); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (dog.stalls_fired() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(dog.stalls_fired(), 1u);  // ...and the fire changed nothing
  EXPECT_TRUE(token.cancelled());
  dog.unwatch(id);
}

// ---------------------------------------------------------------------------
// Resubmit backoff (tools/parabb_serve --backoff-seed)
// ---------------------------------------------------------------------------

TEST(Backoff, DelayStaysWithinTheFullJitterEnvelope) {
  BackoffPolicy policy(42);
  for (int attempt = 0; attempt < 40; ++attempt) {
    const int exp = std::min(attempt, BackoffPolicy::kMaxExponent);
    const double cap = 50.0 * static_cast<double>(std::uint64_t{1} << exp);
    for (int i = 0; i < 20; ++i) {
      const double d = policy.delay_ms(50.0, attempt);
      EXPECT_GE(d, 0.0);
      EXPECT_LT(d, cap) << "attempt=" << attempt;
    }
  }
}

TEST(Backoff, SeededStreamsAreReproducible) {
  BackoffPolicy a(7);
  BackoffPolicy b(7);
  BackoffPolicy c(8);
  bool diverged = false;
  for (int i = 0; i < 64; ++i) {
    const double da = a.delay_ms(100.0, i % 8);
    EXPECT_EQ(da, b.delay_ms(100.0, i % 8));  // same seed: same delays
    if (da != c.delay_ms(100.0, i % 8)) diverged = true;
  }
  EXPECT_TRUE(diverged);  // different seed: a different schedule
}

TEST(Backoff, ExponentAndBaseAreClamped) {
  // Past kMaxExponent the cap freezes (no overflow into inf/negative)...
  BackoffPolicy policy(1);
  const double huge_cap =
      1.0 * static_cast<double>(std::uint64_t{1} << BackoffPolicy::kMaxExponent);
  for (const int attempt : {31, 100, 1000000}) {
    const double d = policy.delay_ms(1.0, attempt);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, huge_cap);
  }
  // ...a negative attempt behaves like the first (exponent 0)...
  EXPECT_LT(policy.delay_ms(10.0, -3), 10.0);
  // ...and a degenerate base is lifted to 1 ms so retries still spread.
  EXPECT_LT(policy.delay_ms(0.0, 0), 1.0);
  EXPECT_LT(policy.delay_ms(-100.0, 0), 1.0);
}

// ---------------------------------------------------------------------------
// Engine-level fault handling
// ---------------------------------------------------------------------------

TEST(EngineFaults, SequentialAllocFailResolvesToBudget) {
  const TaskGraph g = test::tight_instance(3);
  const Machine m = make_shared_bus_machine(3);
  const SchedContext ctx(g, m);
  FaultInjector inj(one_fault(FaultKind::kAllocFail, 50));
  Params params;
  params.faults = &inj;
  const SearchResult r = solve_bnb(ctx, params);
  EXPECT_EQ(r.reason, TerminationReason::kBudget);
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_TRUE(r.found_solution);  // the EDF seed survives the fault
  EXPECT_FALSE(r.proved);
  expect_defined(g, m, r.found_solution, r.best, r.reason, "seq alloc");
}

TEST(EngineFaults, SequentialCancelStormResolvesToCancelled) {
  // Seed 3 expands ~5600 vertices: the 256-iteration poll cadence fires
  // many times after the storm's threshold.
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);
  FaultInjector inj(one_fault(FaultKind::kCancelStorm, 300));
  Params params;
  params.faults = &inj;
  const SearchResult r = solve_bnb(ctx, params);
  EXPECT_EQ(r.reason, TerminationReason::kCancelled);
  EXPECT_EQ(outcome_of(r.reason, r.found_solution), JobOutcome::kCancelled);
}

TEST(EngineFaults, SequentialClockSkewTripsTimeLimit) {
  const SchedContext ctx = test::make_ctx(test::tight_instance(7), 3);
  // +1 hour of skew at vertex 300 against a 30 s limit: the time-limit
  // path must fire long before any real 30 s elapse.
  FaultInjector inj(one_fault(FaultKind::kClockSkew, 300, 3600 * 1000));
  Params params;
  params.faults = &inj;
  params.rb.time_limit_s = 30.0;
  const SearchResult r = solve_bnb(ctx, params);
  EXPECT_EQ(r.reason, TerminationReason::kTimeLimit);
  EXPECT_EQ(outcome_of(r.reason, r.found_solution),
            JobOutcome::kFeasibleTimeout);
}

TEST(EngineFaults, SequentialStallOnlyDelays) {
  const SchedContext ctx = test::make_ctx(test::tight_instance(11), 3);
  const SearchResult clean = solve_bnb(ctx, Params{});
  FaultInjector inj(one_fault(FaultKind::kStall, 300, /*ms=*/5));
  Params params;
  params.faults = &inj;
  const SearchResult r = solve_bnb(ctx, params);
  EXPECT_EQ(r.best_cost, clean.best_cost);
  EXPECT_EQ(r.proved, clean.proved);
}

TEST(EngineFaults, ParallelAllocFailResolvesToBudget) {
  const TaskGraph g = test::tight_instance(11);
  const Machine m = make_shared_bus_machine(3);
  const SchedContext ctx(g, m);
  for (const ParallelScheduler sched :
       {ParallelScheduler::kWorkStealing, ParallelScheduler::kCentralQueue}) {
    FaultInjector inj(one_fault(FaultKind::kAllocFail, 200));
    ParallelParams pp;
    pp.threads = 4;
    pp.scheduler = sched;
    pp.base.faults = &inj;
    const ParallelResult r = solve_bnb_parallel(ctx, pp);
    EXPECT_EQ(r.reason, TerminationReason::kBudget) << to_string(sched);
    EXPECT_FALSE(r.proved) << to_string(sched);
    expect_defined(g, m, r.found_solution, r.best, r.reason,
                   "parallel alloc " + to_string(sched));
  }
}

TEST(EngineFaults, ParallelCancelStormResolvesToCancelled) {
  const SchedContext ctx = test::make_ctx(test::tight_instance(7), 3);
  for (const ParallelScheduler sched :
       {ParallelScheduler::kWorkStealing, ParallelScheduler::kCentralQueue}) {
    FaultInjector inj(one_fault(FaultKind::kCancelStorm, 500));
    ParallelParams pp;
    pp.threads = 4;
    pp.scheduler = sched;
    pp.base.faults = &inj;
    const ParallelResult r = solve_bnb_parallel(ctx, pp);
    EXPECT_EQ(r.reason, TerminationReason::kCancelled) << to_string(sched);
  }
}

// The acceptance gate: >= 200 seeded plans, every one terminating with a
// defined outcome, across the sequential engine and both parallel
// schedulers (4- and 8-thread). fault_sweep.sh re-runs this under
// ASan/TSan.
TEST(FaultMatrix, TwoHundredSeededPlansAllResolve) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed);
    FaultInjector inj(plan);
    const TaskGraph g = test::tight_instance(seed % 17);
    const Machine m = make_shared_bus_machine(3);
    const SchedContext ctx(g, m);

    Params base;
    base.faults = &inj;
    base.rb.max_generated = 20000;  // bound the matrix's runtime
    base.rb.time_limit_s = 30.0;    // give clock-skew plans a limit to hit

    bool found = false;
    Schedule best;
    TerminationReason reason{};
    if (seed % 3 == 0) {
      const SearchResult r = solve_bnb(ctx, base);
      found = r.found_solution;
      best = r.best;
      reason = r.reason;
    } else {
      ParallelParams pp;
      pp.base = base;
      pp.threads = seed % 3 == 1 ? 4 : 8;
      pp.scheduler = seed % 2 == 0 ? ParallelScheduler::kWorkStealing
                                   : ParallelScheduler::kCentralQueue;
      const ParallelResult r = solve_bnb_parallel(ctx, pp);
      found = r.found_solution;
      best = r.best;
      reason = r.reason;
    }
    expect_defined(g, m, found, best, reason,
                   "matrix seed " + std::to_string(seed) + " plan " +
                       plan.describe());
  }
}

// ---------------------------------------------------------------------------
// Graceful-degradation ladder
// ---------------------------------------------------------------------------

struct CappedRun {
  bool found = false;
  Time cost = kTimeInf;
  TerminationReason reason{};
  SearchStats stats;
};

// LLB selection with no initial incumbent is the memory-hungry regime
// the ladder exists for: the best-first frontier balloons (LIFO keeps
// the active set at a few dozen vertices, so a memory cap never bites
// there), and until the search itself finds a goal there is nothing to
// fall back on when the budget cliff hits.
CappedRun run_capped(const SchedContext& ctx, std::size_t cap, bool ladder) {
  Params p;
  p.select = SelectRule::kLLB;
  p.ub = UpperBoundInit::kInfinite;  // incumbents must come from the search
  p.rb.max_generated = 60000;        // safety net
  if (cap != 0) p.rb.max_memory_bytes = cap;
  p.degrade.enabled = ladder;
  const SearchResult r = solve_bnb(ctx, p);
  return {r.found_solution, r.best_cost, r.reason, r.stats};
}

TEST(DegradeLadder, OffPathIsByteIdenticalToBaseline) {
  const SchedContext ctx = test::make_ctx(test::tight_instance(2), 3);
  // enabled without a memory budget, and a memory budget without enabled:
  // both must match the plain run vertex for vertex.
  const CappedRun plain = run_capped(ctx, 0, false);
  const CappedRun enabled_nocap = run_capped(ctx, 0, true);
  EXPECT_EQ(plain.cost, enabled_nocap.cost);
  EXPECT_EQ(plain.stats.generated, enabled_nocap.stats.generated);
  EXPECT_EQ(plain.stats.expanded, enabled_nocap.stats.expanded);
  EXPECT_EQ(plain.stats.degrade_steps, 0u);
  EXPECT_EQ(enabled_nocap.stats.degrade_steps, 0u);

  const std::size_t cap = plain.stats.peak_memory_bytes / 2;
  if (cap > 0) {
    const CappedRun off_a = run_capped(ctx, cap, false);
    const CappedRun off_b = run_capped(ctx, cap, false);
    EXPECT_EQ(off_a.cost, off_b.cost);
    EXPECT_EQ(off_a.stats.generated, off_b.stats.generated);
    EXPECT_EQ(off_a.stats.degrade_steps, 0u);
  }
}

TEST(DegradeLadder, RungsFireAndAreObservable) {
  // Find a seed whose memory-capped run actually climbs the ladder, then
  // check the full observability chain: stats counter, certificate
  // records, and the text round trip.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const TaskGraph g = test::tight_instance(seed);
    const Machine m = make_shared_bus_machine(3);
    const SchedContext ctx(g, m);
    const CappedRun probe = run_capped(ctx, 0, false);
    const std::size_t cap = probe.stats.peak_memory_bytes / 2;
    if (cap == 0) continue;

    Params p;
    p.select = SelectRule::kLLB;
    p.ub = UpperBoundInit::kInfinite;
    p.rb.max_generated = 60000;
    p.rb.max_memory_bytes = cap;
    p.degrade.enabled = true;
    CertificateBuilder builder;
    p.certify = &builder;
    const SearchResult r = solve_bnb(ctx, p);
    if (r.stats.degrade_steps == 0) continue;

    EXPECT_FALSE(r.proved);
    const Certificate cert = builder.take();
    ASSERT_EQ(cert.degrades.size(), r.stats.degrade_steps);
    for (std::size_t i = 0; i < cert.degrades.size(); ++i) {
      DegradeAction a{};
      EXPECT_TRUE(parse_degrade_action(cert.degrades[i].action, a));
      EXPECT_EQ(cert.degrades[i].level, static_cast<int>(i) + 1);
    }
    // Text round trip preserves the degrade audit trail.
    const std::string text = certificate_to_text(cert, g);
    const Certificate parsed = certificate_from_text(text, g);
    ASSERT_EQ(parsed.degrades.size(), cert.degrades.size());
    for (std::size_t i = 0; i < cert.degrades.size(); ++i) {
      EXPECT_EQ(parsed.degrades[i].action, cert.degrades[i].action);
      EXPECT_EQ(parsed.degrades[i].at_generated,
                cert.degrades[i].at_generated);
      EXPECT_EQ(parsed.degrades[i].level, cert.degrades[i].level);
    }
    return;  // one degrading seed is enough
  }
  FAIL() << "no seed in [0,30) climbed the ladder under a half-peak cap";
}

TEST(DegradeLadder, ParallelRungsFireUnderMemoryCap) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const SchedContext ctx = test::make_ctx(test::tight_instance(seed), 3);
    ParallelParams probe;
    probe.threads = 4;
    probe.base.ub = UpperBoundInit::kInfinite;
    probe.base.rb.max_generated = 400000;
    const ParallelResult pr = solve_bnb_parallel(ctx, probe);
    if (pr.stats.peak_memory_bytes < 4096) continue;

    ParallelParams pp = probe;
    pp.base.rb.max_memory_bytes = pr.stats.peak_memory_bytes / 2;
    pp.base.degrade.enabled = true;
    const ParallelResult r = solve_bnb_parallel(ctx, pp);
    if (r.stats.degrade_steps == 0) continue;
    EXPECT_GE(r.stats.degrade_steps, 1u);
    // A branch-rule or child-cap rung voids the proof.
    if (r.stats.degrade_steps > 1) {
      EXPECT_FALSE(r.proved);
    }
    return;
  }
  FAIL() << "no seed in [0,30) climbed the parallel ladder";
}

// Quality gate: on memory-capped instances the ladder must never lose to
// the dispose-only cliff in aggregate, and must strictly win on a decent
// fraction of the grid (the whole point of degrading before disposing).
TEST(DegradeLadder, QualityGridLadderBeatsDisposeOnly) {
  const Time kBig = 1'000'000;  // stands in for "found nothing"
  long long ladder_total = 0;
  long long dispose_total = 0;
  int wins = 0;
  int losses = 0;
  int contested = 0;  // seeds where the cap actually bit
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const SchedContext ctx = test::make_ctx(test::tight_instance(seed), 3);
    const CappedRun probe = run_capped(ctx, 0, false);
    const std::size_t cap = probe.stats.peak_memory_bytes / 2;
    if (cap == 0) continue;
    const CappedRun off = run_capped(ctx, cap, false);
    const CappedRun on = run_capped(ctx, cap, true);
    const Time off_cost = off.found ? off.cost : kBig;
    const Time on_cost = on.found ? on.cost : kBig;
    ladder_total += on_cost;
    dispose_total += off_cost;
    if (off.reason == TerminationReason::kBudget ||
        on.stats.degrade_steps > 0) {
      ++contested;
    }
    if (on_cost < off_cost) ++wins;
    if (on_cost > off_cost) ++losses;
  }
  EXPECT_LE(ladder_total, dispose_total);
  EXPECT_GE(contested, 20) << "grid too easy: caps rarely bit";
  EXPECT_GE(wins, losses);
  EXPECT_GE(wins, contested / 5)
      << "ladder strictly better on < 20% of contested seeds";
}

// ---------------------------------------------------------------------------
// Service outer ring
// ---------------------------------------------------------------------------

JobRequest make_request(const std::string& id, std::uint64_t seed = 3) {
  JobRequest req;
  req.id = id;
  req.graph = test::tight_instance(seed);
  req.machine = make_shared_bus_machine(3);
  return req;
}

TEST(ServiceRobust, QueueDepthOverloadSheds) {
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_queue_depth = 1;
  SolverService service(cfg);
  int overloaded = 0;
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    try {
      tickets.push_back(service.submit(make_request("q" + std::to_string(i))));
    } catch (const OverloadedError& e) {
      ++overloaded;
      EXPECT_GT(e.retry_after_ms, 0.0);
    }
  }
  service.wait_all();
  EXPECT_GT(overloaded, 0);
  EXPECT_EQ(service.counters().shed, static_cast<std::uint64_t>(overloaded));
  for (const JobTicket t : tickets) {
    const JobResult r = service.wait(t);
    EXPECT_TRUE(r.error.empty()) << r.error;
  }
}

TEST(ServiceRobust, InjectedQueueFullSheds) {
  FaultInjector inj(one_fault(FaultKind::kQueueFull, 0, /*param=*/2));
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.faults = &inj;
  SolverService service(cfg);
  EXPECT_THROW(service.submit(make_request("f1")), OverloadedError);
  EXPECT_THROW(service.submit(make_request("f2")), OverloadedError);
  const JobTicket t = service.submit(make_request("f3"));
  const JobResult r = service.wait(t);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(service.counters().shed, 2u);
  EXPECT_FALSE(r.cached);  // fault-afflicted services never cache
}

TEST(ServiceRobust, WatchdogCancelsStagnantJob) {
  // A 600 ms injected stall against a 100 ms stall threshold: the job's
  // progress feed freezes mid-search, the watchdog trips its token, and
  // the job unwinds into a defined kCancelled outcome.
  FaultInjector inj(one_fault(FaultKind::kStall, 400, /*ms=*/600));
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.watchdog_stall_ms = 100;
  cfg.faults = &inj;
  SolverService service(cfg);
  JobRequest req = make_request("stall", 7);
  req.params.ub = UpperBoundInit::kInfinite;  // keep the search long
  req.budget.max_generated = 4000000;
  const JobTicket t = service.submit(std::move(req));
  const JobResult r = service.wait(t);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.outcome, JobOutcome::kCancelled);
  EXPECT_GE(service.counters().watchdog_cancels, 1u);
}

TEST(ServiceRobust, WatchdogFireOnCancelledJobStaysCancelled) {
  // Client cancel and watchdog escalation race on the same stalled job:
  // whoever wins, the outcome is one defined kCancelled — the later fire
  // lands on an already-tripped token and changes nothing.
  FaultInjector inj(one_fault(FaultKind::kStall, 400, /*ms=*/600));
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.watchdog_stall_ms = 150;
  cfg.faults = &inj;
  SolverService service(cfg);
  JobRequest req = make_request("stall-cancel", 7);
  req.params.ub = UpperBoundInit::kInfinite;  // keep the search long
  req.budget.max_generated = 4000000;
  const JobTicket t = service.submit(std::move(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.cancel(t);  // beat the watchdog to the token (usually)
  const JobResult r = service.wait(t);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.outcome, JobOutcome::kCancelled);
  // Race-tolerant: the watchdog may or may not have fired too — what must
  // hold is a single defined cancelled outcome either way.
  EXPECT_EQ(service.counters().cancelled, 1u);
}

TEST(ServiceRobust, DegradeRequestFieldThreadsThrough) {
  const JobRequest req = request_from_json(
      R"({"id":"d1","graph":"task a exec=3","degrade":true,)"
      R"("budget":{"max_active_bytes":1000000}})");
  EXPECT_TRUE(req.params.degrade.enabled);
  EXPECT_THROW(request_from_json(R"({"id":"d2","graph":"task a exec=3",)"
                                 R"("degrade":1})"),
               std::runtime_error);
}

TEST(ServiceRobust, OverloadedResponseShape) {
  const JsonValue doc =
      JsonValue::parse(overloaded_response_json("r9", 37.5));
  EXPECT_EQ(doc.find("id")->as_string(), "r9");
  EXPECT_EQ(doc.find("outcome")->as_string(), "overloaded");
  EXPECT_DOUBLE_EQ(doc.find("retry_after_ms")->as_double(), 37.5);
}

TEST(ServiceRobust, ExitCodeTaxonomyIsStable) {
  EXPECT_EQ(exit_code_for(JobOutcome::kOptimal), 0);
  EXPECT_EQ(exit_code_for(JobOutcome::kFeasibleTimeout), 3);
  EXPECT_EQ(exit_code_for(JobOutcome::kCancelled), 4);
  EXPECT_EQ(exit_code_for(JobOutcome::kInfeasible), 5);
}

}  // namespace
}  // namespace parabb
