#include "parabb/support/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t;
  t.set_header({"k", "v"});
  t.add_row({"x", "5"});
  t.add_row({"y", "500"});
  std::istringstream in(t.to_string());
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);  // rule
  std::getline(in, line);  // row x: "5" right-aligned in width 3
  EXPECT_EQ(line, "x    5");
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(TextTable, RuleRendersAsLine) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // Two rules: one under the header, one explicit.
  std::size_t count = 0, pos = 0;
  while ((pos = out.find("-\n", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_GE(count, 2u);
}

TEST(TextTable, CsvEscaping) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, CsvSkipsRules) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a\n1\n2\n");
}

TEST(FmtDouble, TrimsTrailingZeros) {
  EXPECT_EQ(fmt_double(1.5, 3), "1.5");
  EXPECT_EQ(fmt_double(2.0, 2), "2");
  EXPECT_EQ(fmt_double(-0.0001, 2), "0");
  EXPECT_EQ(fmt_double(123.456, 1), "123.5");
}

TEST(FmtDouble, HandlesNonFinite) {
  EXPECT_EQ(fmt_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(fmt_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(fmt_double(std::nan("")), "nan");
}

TEST(FmtCi, Format) {
  EXPECT_EQ(fmt_ci(10.0, 1.25, 2), "10 ±1.25");
}

TEST(WriteTextFile, RoundTrips) {
  const std::string path = ::testing::TempDir() + "/parabb_table_test.txt";
  write_text_file(path, "hello\nworld\n");
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(WriteTextFile, ThrowsOnBadPath) {
  EXPECT_THROW(write_text_file("/nonexistent-dir-xyz/file.txt", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace parabb
