#include "parabb/taskgraph/transforms.hpp"

#include <gtest/gtest.h>

#include "parabb/taskgraph/builder.hpp"
#include "parabb/taskgraph/topology.hpp"
#include "parabb/workload/generator.hpp"
#include "parabb/workload/presets.hpp"

namespace parabb {
namespace {

TEST(TransitiveReduction, RemovesImpliedArc) {
  // a->b->c plus a redundant a->c (no message).
  const TaskGraph g = GraphBuilder()
                          .task("a", 1)
                          .task("b", 1)
                          .task("c", 1)
                          .arc("a", "b")
                          .arc("b", "c")
                          .arc("a", "c")
                          .build();
  const TaskGraph r = transitive_reduction(g);
  EXPECT_EQ(r.arc_count(), 2);
  EXPECT_EQ(r.items_on_arc(0, 2), kTimeNegInf);
  EXPECT_TRUE(same_precedence_closure(g, r));
}

TEST(TransitiveReduction, KeepsMessageCarryingArcs) {
  const TaskGraph g = GraphBuilder()
                          .task("a", 1)
                          .task("b", 1)
                          .task("c", 1)
                          .arc("a", "b")
                          .arc("b", "c")
                          .arc("a", "c", /*items=*/7)
                          .build();
  const TaskGraph r = transitive_reduction(g);
  EXPECT_EQ(r.arc_count(), 3);
  EXPECT_EQ(r.items_on_arc(0, 2), 7);
}

TEST(TransitiveReduction, IdempotentOnReducedGraphs) {
  const TaskGraph g = preset_diamond();
  const TaskGraph r = transitive_reduction(g);
  EXPECT_EQ(r.arc_count(), g.arc_count());  // diamond is already reduced
}

TEST(TransitiveReduction, PreservesClosureOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    GeneratorConfig cfg = paper_config();
    cfg.ccr = 0.0;  // all arcs removable
    const GeneratedGraph gen = generate_graph(cfg, seed);
    const TaskGraph r = transitive_reduction(gen.graph);
    EXPECT_LE(r.arc_count(), gen.graph.arc_count());
    EXPECT_TRUE(same_precedence_closure(gen.graph, r)) << "seed " << seed;
  }
}

TEST(ChainClustering, CollapsesPureChain) {
  const TaskGraph g = preset_chain(5, 10, /*items=*/0);
  const ChainClustering c = cluster_linear_chains(g);
  EXPECT_EQ(c.clustered.task_count(), 1);
  EXPECT_EQ(c.clustered.task(0).exec, 50);
  EXPECT_EQ(c.chains_collapsed, 4);
  for (const TaskId m : c.member_of) EXPECT_EQ(m, 0);
}

TEST(ChainClustering, MessagesBlockCollapsing) {
  const TaskGraph g = preset_chain(4, 10, /*items=*/3);
  const ChainClustering c = cluster_linear_chains(g);
  EXPECT_EQ(c.clustered.task_count(), 4);
  EXPECT_EQ(c.chains_collapsed, 0);
}

TEST(ChainClustering, ForkJoinKeepsBranches) {
  const TaskGraph g = preset_fork_join(3, 10, 0);
  const ChainClustering c = cluster_linear_chains(g);
  // fork and join have degree > 1; branches have 1-in/1-out but fork has 3
  // successors, so branch tasks cannot merge into it; likewise join.
  EXPECT_EQ(c.clustered.task_count(), g.task_count());
}

TEST(ChainClustering, MixedGraph) {
  // a -> b -> c -> d where b,c are a pure chain hanging off input a and
  // feeding output d; plus a parallel task p from a to d.
  const TaskGraph g = GraphBuilder()
                          .task("a", 5)
                          .task("b", 5)
                          .task("c", 5)
                          .task("d", 5)
                          .task("p", 5)
                          .chain({"a", "b", "c", "d"})
                          .arc("a", "p")
                          .arc("p", "d")
                          .build();
  const ChainClustering c = cluster_linear_chains(g);
  // b merges into... a has 2 successors (b, p) so b cannot merge into a;
  // c merges into b (b has 1 succ, c has 1 pred); d has 2 preds.
  EXPECT_EQ(c.clustered.task_count(), 4);
  EXPECT_EQ(c.chains_collapsed, 1);
  EXPECT_TRUE(c.clustered.is_acyclic());
}

TEST(ChainClustering, DeadlinesMergedConservatively) {
  const TaskGraph g = GraphBuilder()
                          .task("x", 10, /*rel_deadline=*/100, /*phase=*/0)
                          .task("y", 10, 25, 0)  // tight member
                          .arc("x", "y")
                          .build();
  const ChainClustering c = cluster_linear_chains(g);
  ASSERT_EQ(c.clustered.task_count(), 1);
  EXPECT_EQ(c.clustered.task(0).exec, 20);
  EXPECT_EQ(c.clustered.task(0).abs_deadline(), 25);  // tightest member
}

TEST(CriticalPath, ChainIsItsOwnCriticalPath) {
  const TaskGraph g = preset_chain(4);
  const auto path = critical_path_tasks(g);
  EXPECT_EQ(path, (std::vector<TaskId>{0, 1, 2, 3}));
}

TEST(CriticalPath, PicksHeaviestBranch) {
  const TaskGraph g = GraphBuilder()
                          .task("s", 5)
                          .task("light", 1)
                          .task("heavy", 50)
                          .task("t", 5)
                          .arc("s", "light")
                          .arc("s", "heavy")
                          .arc("light", "t")
                          .arc("heavy", "t")
                          .build();
  const auto path = critical_path_tasks(g);
  EXPECT_EQ(path, (std::vector<TaskId>{0, 2, 3}));
}

TEST(CriticalPath, WeightMatchesTopology) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const GeneratedGraph gen = generate_graph(paper_config(), seed);
    const Topology topo = analyze(gen.graph);
    const auto path = critical_path_tasks(gen.graph);
    Time weight = 0;
    for (const TaskId t : path) weight += gen.graph.task(t).exec;
    EXPECT_EQ(weight, topo.critical_path) << "seed " << seed;
    // Consecutive tasks must be connected.
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_NE(gen.graph.items_on_arc(path[i - 1], path[i]), kTimeNegInf);
    }
  }
}

}  // namespace
}  // namespace parabb
