#include "parabb/sched/list.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "parabb/sched/validator.hpp"
#include "parabb/support/assert.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

TEST(ListScheduler, FollowsPriorityAmongReady) {
  // Two independent tasks; priority list reverses id order.
  const SchedContext ctx = test::make_ctx(test::independent_tasks(2), 1);
  const std::vector<TaskId> prio{1, 0};
  const ListResult r = schedule_by_priority(ctx, prio);
  EXPECT_LT(r.schedule.entry(1).start, r.schedule.entry(0).start);
}

TEST(ListScheduler, SkipsNotReadyTasks) {
  // Chain a->b plus independent c; priority puts b first but it is not
  // ready until a runs.
  const TaskGraph g = GraphBuilder()
                          .task("a", 10, 100, 0)
                          .task("b", 10, 100, 0)
                          .task("c", 10, 100, 0)
                          .arc("a", "b")
                          .build();
  const SchedContext ctx = test::make_ctx(g, 1);
  const std::vector<TaskId> prio{1, 2, 0};
  const ListResult r = schedule_by_priority(ctx, prio);
  // c runs before a (b unavailable), then a, then b.
  EXPECT_EQ(r.schedule.entry(2).start, 0);
  EXPECT_EQ(r.schedule.entry(0).start, 10);
  EXPECT_EQ(r.schedule.entry(1).start, 20);
}

TEST(ListScheduler, RejectsIncompletePriorityList) {
  const SchedContext ctx = test::make_ctx(test::independent_tasks(3), 1);
  const std::vector<TaskId> prio{0, 1};
  EXPECT_THROW(schedule_by_priority(ctx, prio), precondition_error);
}

TEST(ListScheduler, HlfetPrefersCriticalPath) {
  // Chain x->y->z (long) plus a short independent task s; HLFET starts the
  // chain head first on one processor.
  const TaskGraph g = GraphBuilder()
                          .task("x", 20, 100, 0)
                          .task("y", 20, 100, 0)
                          .task("z", 20, 100, 0)
                          .task("s", 5, 100, 0)
                          .chain({"x", "y", "z"})
                          .build();
  const SchedContext ctx = test::make_ctx(g, 1);
  const ListResult r = schedule_hlfet(ctx);
  EXPECT_EQ(r.schedule.entry(0).start, 0);  // x has the largest bottom level
}

class ListSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListSweep, BothHeuristicsProduceSoundSchedules) {
  const TaskGraph g = test::paper_instance(GetParam());
  for (int m = 2; m <= 4; ++m) {
    const Machine machine = make_shared_bus_machine(m);
    const SchedContext ctx(g, machine);
    for (const ListResult& r :
         {schedule_hlfet(ctx), schedule_df_list(ctx)}) {
      const ValidationReport rep =
          validate_schedule(r.schedule, g, machine);
      EXPECT_TRUE(rep.structurally_sound) << rep.error;
      EXPECT_EQ(r.max_lateness, max_lateness(r.schedule, g));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListSweep,
                         ::testing::Range<std::uint64_t>(200, 215));

}  // namespace
}  // namespace parabb
