#include "parabb/bnb/params.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace parabb {
namespace {

TEST(ParamsToString, SelectRules) {
  EXPECT_EQ(to_string(SelectRule::kLLB), "LLB");
  EXPECT_EQ(to_string(SelectRule::kFIFO), "FIFO");
  EXPECT_EQ(to_string(SelectRule::kLIFO), "LIFO");
}

TEST(ParamsToString, BranchRules) {
  EXPECT_EQ(to_string(BranchRule::kBFn), "BFn");
  EXPECT_EQ(to_string(BranchRule::kBF1), "BF1");
  EXPECT_EQ(to_string(BranchRule::kDF), "DF");
}

TEST(ParamsToString, ElimRules) {
  EXPECT_EQ(to_string(ElimRule::kNone), "none");
  EXPECT_EQ(to_string(ElimRule::kUDBAS), "U/DBAS");
}

TEST(ParamsToString, LowerBounds) {
  EXPECT_EQ(to_string(LowerBound::kLB0), "LB0");
  EXPECT_EQ(to_string(LowerBound::kLB1), "LB1");
  EXPECT_EQ(to_string(LowerBound::kLB2), "LB2");
}

TEST(ParamsToString, UpperBoundInits) {
  EXPECT_EQ(to_string(UpperBoundInit::kInfinite), "inf");
  EXPECT_EQ(to_string(UpperBoundInit::kFromEDF), "EDF");
  EXPECT_EQ(to_string(UpperBoundInit::kExplicit), "explicit");
}

TEST(ParamsDescribe, DefaultsMatchThePaperBestConfig) {
  const std::string d = describe(Params{});
  EXPECT_EQ(d, "B=BFn S=LIFO E=U/DBAS L=LB1 U=EDF BR=0%");
}

TEST(ParamsDescribe, ReflectsOverrides) {
  Params p;
  p.select = SelectRule::kLLB;
  p.branch = BranchRule::kDF;
  p.lb = LowerBound::kLB0;
  p.ub = UpperBoundInit::kInfinite;
  p.br = 0.10;
  const std::string d = describe(p);
  EXPECT_NE(d.find("S=LLB"), std::string::npos);
  EXPECT_NE(d.find("B=DF"), std::string::npos);
  EXPECT_NE(d.find("L=LB0"), std::string::npos);
  EXPECT_NE(d.find("U=inf"), std::string::npos);
  EXPECT_NE(d.find("BR=10%"), std::string::npos);
}

TEST(ParamsDefaults, ResourceBoundsAreUnlimited) {
  const Params p;
  EXPECT_TRUE(std::isinf(p.rb.time_limit_s));
  EXPECT_EQ(p.rb.max_active, std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(p.rb.max_children, std::numeric_limits<int>::max());
  EXPECT_FALSE(static_cast<bool>(p.characteristic));
  EXPECT_FALSE(static_cast<bool>(p.dominance));
  EXPECT_EQ(p.trace, nullptr);
  EXPECT_TRUE(p.sort_children);
  EXPECT_FALSE(p.llb_tie_newest);
}

}  // namespace
}  // namespace parabb
