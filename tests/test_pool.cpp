#include "parabb/support/pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

namespace parabb {
namespace {

TEST(SlotPool, AllocateReleaseCycle) {
  SlotPool pool(16);
  const SlotRef a = pool.allocate();
  EXPECT_TRUE(pool.is_live(a));
  EXPECT_EQ(pool.live_count(), 1u);
  pool.release(a);
  EXPECT_FALSE(pool.is_live(a));
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(SlotPool, StaleHandleDetected) {
  SlotPool pool(16);
  const SlotRef a = pool.allocate();
  pool.release(a);
  const SlotRef b = pool.allocate();  // recycles the slot
  EXPECT_EQ(a.index, b.index);
  EXPECT_NE(a.generation, b.generation);
  EXPECT_FALSE(pool.is_live(a));
  EXPECT_TRUE(pool.is_live(b));
}

TEST(SlotPool, PayloadIsStableAndDistinct) {
  SlotPool pool(sizeof(int));
  std::vector<SlotRef> refs;
  for (int i = 0; i < 100; ++i) {
    refs.push_back(pool.allocate());
    *static_cast<int*>(pool.get(refs.back())) = i;
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*static_cast<const int*>(
                  pool.get(refs[static_cast<std::size_t>(i)])),
              i);
  }
}

TEST(SlotPool, GrowsAcrossChunks) {
  SlotPool pool(8, /*slots_per_chunk=*/4);
  std::vector<SlotRef> refs;
  for (int i = 0; i < 50; ++i) refs.push_back(pool.allocate());
  EXPECT_EQ(pool.live_count(), 50u);
  EXPECT_GE(pool.capacity(), 50u);
  for (const SlotRef r : refs) pool.release(r);
  EXPECT_EQ(pool.live_count(), 0u);
}

TEST(SlotPool, RecyclesFreedSlotsBeforeGrowing) {
  SlotPool pool(8, 4);
  std::vector<SlotRef> refs;
  for (int i = 0; i < 4; ++i) refs.push_back(pool.allocate());
  const std::size_t cap = pool.capacity();
  for (const SlotRef r : refs) pool.release(r);
  for (int i = 0; i < 4; ++i) pool.allocate();
  EXPECT_EQ(pool.capacity(), cap);  // no growth needed
}

TEST(SlotPool, HandlesSurviveGrowth) {
  SlotPool pool(sizeof(long), 2);
  const SlotRef first = pool.allocate();
  *static_cast<long*>(pool.get(first)) = 0x1234;
  for (int i = 0; i < 64; ++i) pool.allocate();  // force many chunk growths
  EXPECT_EQ(*static_cast<const long*>(pool.get(first)), 0x1234);
}

TEST(SlotPool, MemoryAccountingGrowsMonotonically) {
  SlotPool pool(64, 16);
  const std::size_t m0 = pool.memory_bytes();
  for (int i = 0; i < 100; ++i) pool.allocate();
  EXPECT_GT(pool.memory_bytes(), m0);
}

TEST(SlotPool, ResetInvalidatesEverything) {
  SlotPool pool(16);
  const SlotRef a = pool.allocate();
  const SlotRef b = pool.allocate();
  pool.reset();
  EXPECT_FALSE(pool.is_live(a));
  EXPECT_FALSE(pool.is_live(b));
  EXPECT_EQ(pool.live_count(), 0u);
  const SlotRef c = pool.allocate();
  EXPECT_TRUE(pool.is_live(c));
}

TEST(SlotPool, RejectsBadConfig) {
  EXPECT_THROW(SlotPool(0), precondition_error);
  EXPECT_THROW(SlotPool(8, 0), precondition_error);
}

TEST(SlotPool, SlotBytesAreAligned) {
  SlotPool pool(1);
  EXPECT_EQ(pool.slot_bytes() % alignof(std::max_align_t), 0u);
  EXPECT_GE(pool.slot_bytes(), 1u);
}

}  // namespace
}  // namespace parabb
