// Regression guards for the reproduced paper shapes (EXPERIMENTS.md).
//
// Each test re-derives one headline claim at small replication, as an
// aggregate over paired instances so instance noise cannot flip it. If a
// refactor breaks one of these, the benches' stories break with it.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/hooks.hpp"
#include "parabb/deadline/slicing.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/workload/generator.hpp"

namespace parabb {
namespace {

constexpr int kReps = 16;

/// Paper workload with the per-chain laxity reading, on the bench seed
/// stream (so these guards watch the same population EXPERIMENTS.md cites).
TaskGraph bench_instance(std::uint64_t rep) {
  GeneratedGraph gen =
      generate_graph(paper_config(), derive_seed(20250705, rep));
  SlicingConfig cfg;
  cfg.base = LaxityBase::kPathWork;
  cfg.laxity = 1.5;
  assign_deadlines_slicing(gen.graph, cfg);
  return std::move(gen.graph);
}

Params capped(Params p = {}) {
  p.rb.time_limit_s = 2.0;
  p.rb.max_active = 250'000;
  return p;
}

struct Totals {
  std::uint64_t vertices = 0;
  Time lateness = 0;
  std::size_t peak_as = 0;
  int runs = 0;
};

/// Runs every configuration on the same replication stream. A rep where
/// ANY configuration hits TIMELIMIT is dropped from ALL totals, so the
/// compared populations stay paired even when sanitizer instrumentation
/// or machine load pushes a marginal rep over the wall clock in only one
/// configuration.
std::vector<Totals> run_paired(const std::vector<Params>& configs, int m) {
  std::vector<Totals> totals(configs.size());
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const SchedContext ctx(bench_instance(rep), make_shared_bus_machine(m));
    std::vector<SearchResult> results;
    results.reserve(configs.size());
    bool timed_out = false;
    for (const Params& p : configs) {
      results.push_back(solve_bnb(ctx, p));
      timed_out = timed_out ||
                  results.back().reason == TerminationReason::kTimeLimit;
    }
    if (timed_out) continue;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      totals[i].vertices += results[i].stats.generated;
      totals[i].lateness += results[i].best_cost;
      totals[i].peak_as =
          std::max(totals[i].peak_as, results[i].stats.peak_active);
      ++totals[i].runs;
    }
  }
  return totals;
}

TEST(PaperShapes, Fig3a_LlbSearchesMoreAndBalloonsMemory) {
  Params lifo = capped();
  Params llb = capped();
  llb.select = SelectRule::kLLB;
  const std::vector<Totals> t = run_paired({lifo, llb}, 3);
  const Totals& a = t[0];
  const Totals& b = t[1];
  ASSERT_GT(a.runs, kReps / 2);
  // Same optimal lateness on the shared instances.
  EXPECT_EQ(a.lateness, b.lateness);
  // LLB searches at least as many vertices...
  EXPECT_GE(b.vertices, a.vertices);
  // ...and its peak active set is orders of magnitude larger.
  EXPECT_GT(b.peak_as, a.peak_as * 50);
}

TEST(PaperShapes, Fig3a_EdfLatenessTrailsOptimal) {
  Time edf_total = 0, opt_total = 0;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    const SchedContext ctx(bench_instance(rep), make_shared_bus_machine(2));
    const SearchResult r = solve_bnb(ctx, capped());
    if (!r.proved) continue;
    edf_total += schedule_edf(ctx).max_lateness;
    opt_total += r.best_cost;
  }
  EXPECT_GT(edf_total, opt_total);
}

TEST(PaperShapes, Fig3b_Lb0SearchesMoreThanLb1AtSmallM) {
  Params lb1 = capped();
  Params lb0 = capped();
  lb0.lb = LowerBound::kLB0;
  const std::vector<Totals> t = run_paired({lb1, lb0}, 2);
  const Totals& a = t[0];
  const Totals& b = t[1];
  EXPECT_EQ(a.lateness, b.lateness);
  EXPECT_GT(b.vertices, a.vertices);  // strict aggregate gap at m=2
}

TEST(PaperShapes, Fig3c_ApproximationsSearchFarLess) {
  Params df = capped();
  df.branch = BranchRule::kDF;
  Params bf1 = capped();
  bf1.branch = BranchRule::kBF1;
  const std::vector<Totals> t = run_paired({capped(), df, bf1}, 2);
  const Totals& bfn = t[0];
  const Totals& d = t[1];
  const Totals& b1 = t[2];
  EXPECT_LT(d.vertices * 5, bfn.vertices);
  EXPECT_LT(b1.vertices * 5, bfn.vertices);
  // Their lateness is worse than optimal in aggregate...
  EXPECT_GE(d.lateness, bfn.lateness);
  EXPECT_GE(b1.lateness, bfn.lateness);
}

TEST(PaperShapes, Fig3c_BrTenPercentSavesVerticesAtNearOptimalCost) {
  Params br = capped();
  br.br = 0.10;
  const std::vector<Totals> t = run_paired({capped(), br}, 2);
  const Totals& exact = t[0];
  const Totals& relaxed = t[1];
  EXPECT_LE(relaxed.vertices, exact.vertices);
  EXPECT_GE(relaxed.lateness, exact.lateness);
}

TEST(PaperShapes, Sec6_Lb1EdgeGrowsWithWidth) {
  // LB0/LB1 vertex ratio at width 3 exceeds the ratio at width 2.
  double ratio[2] = {0, 0};
  for (int wi = 0; wi < 2; ++wi) {
    const int width = 2 + wi;
    std::uint64_t v0 = 0, v1 = 0;
    for (std::uint64_t rep = 0; rep < 6; ++rep) {
      GeneratedGraph gen =
          generate_graph(width_config(5, width), derive_seed(88, rep));
      SlicingConfig cfg;
      cfg.base = LaxityBase::kPathWork;
      assign_deadlines_slicing(gen.graph, cfg);
      const SchedContext ctx(gen.graph, make_shared_bus_machine(2));
      Params lb1 = capped();
      Params lb0 = capped();
      lb0.lb = LowerBound::kLB0;
      const SearchResult a = solve_bnb(ctx, lb1);
      const SearchResult b = solve_bnb(ctx, lb0);
      if (!a.proved || !b.proved) continue;
      v1 += a.stats.generated;
      v0 += b.stats.generated;
    }
    ratio[wi] = v1 > 0 ? static_cast<double>(v0) / static_cast<double>(v1)
                       : 1.0;
  }
  EXPECT_GT(ratio[1], ratio[0]);
}

TEST(PaperShapes, LlbTieBreakingIsTheWholeStory) {
  // LLB with newest-first ties must search (nearly) the same vertex count
  // as LIFO; oldest-first must not search fewer.
  Params lifo = capped();
  Params newest = capped();
  newest.select = SelectRule::kLLB;
  newest.llb_tie_newest = true;
  Params oldest = newest;
  oldest.llb_tie_newest = false;
  const std::vector<Totals> t = run_paired({lifo, newest, oldest}, 2);
  const Totals& a = t[0];
  const Totals& n = t[1];
  const Totals& o = t[2];
  const auto near = [](std::uint64_t x, std::uint64_t y) {
    return x < y + y / 50 && y < x + x / 50;  // within 2%
  };
  EXPECT_TRUE(near(a.vertices, n.vertices))
      << a.vertices << " vs " << n.vertices;
  EXPECT_GE(o.vertices + o.vertices / 50, a.vertices);
}

TEST(PaperShapes, SymmetryDominancePaysMoreAtLargerM) {
  std::uint64_t with_m[2] = {0, 0}, without_m[2] = {0, 0};
  for (int mi = 0; mi < 2; ++mi) {
    const int m = 2 + mi;
    Params with = capped();
    with.dominance = make_processor_symmetry_dominance();
    const std::vector<Totals> t = run_paired({with, capped()}, m);
    const Totals& w = t[0];
    const Totals& wo = t[1];
    EXPECT_EQ(w.lateness, wo.lateness) << "m=" << m;
    with_m[mi] = w.vertices;
    without_m[mi] = wo.vertices;
    EXPECT_LE(w.vertices, wo.vertices) << "m=" << m;
  }
  const double saving2 = static_cast<double>(without_m[0]) /
                         static_cast<double>(std::max<std::uint64_t>(
                             1, with_m[0]));
  const double saving3 = static_cast<double>(without_m[1]) /
                         static_cast<double>(std::max<std::uint64_t>(
                             1, with_m[1]));
  EXPECT_GT(saving3, saving2);
}

}  // namespace
}  // namespace parabb
