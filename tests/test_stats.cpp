#include "parabb/support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "parabb/support/assert.hpp"
#include "parabb/support/rng.hpp"

namespace parabb {
namespace {

TEST(OnlineStats, EmptyState) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  for (const double v : {-10.0, -20.0, -30.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), -20.0);
  EXPECT_DOUBLE_EQ(s.min(), -30.0);
  EXPECT_DOUBLE_EQ(s.max(), -10.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats whole, left, right;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform_real(-100, 100);
    whole.add(v);
    (i < 200 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(TCritical, MatchesTableValues) {
  EXPECT_NEAR(t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical(0.95, 10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical(0.90, 5), 2.015, 1e-3);
  EXPECT_NEAR(t_critical(0.99, 30), 2.750, 1e-3);
}

TEST(TCritical, InterpolationIsMonotone) {
  // df between table rows: value must lie between the bracketing rows.
  const double t13 = t_critical(0.95, 13);
  EXPECT_LT(t13, t_critical(0.95, 12));
  EXPECT_GT(t13, t_critical(0.95, 15));
}

TEST(TCritical, LargeDfApproachesNormal) {
  EXPECT_NEAR(t_critical(0.95, 10000), 1.960, 1e-3);
  EXPECT_NEAR(t_critical(0.90, 10000), 1.645, 1e-3);
}

TEST(TCritical, RejectsUnsupportedConfidence) {
  EXPECT_THROW(t_critical(0.80, 10), precondition_error);
  EXPECT_THROW(t_critical(0.95, 0), precondition_error);
}

TEST(CiHalfwidth, InfiniteForTinySamples) {
  OnlineStats s;
  EXPECT_TRUE(std::isinf(ci_halfwidth(s, 0.95)));
  s.add(1.0);
  EXPECT_TRUE(std::isinf(ci_halfwidth(s, 0.95)));
}

TEST(CiHalfwidth, KnownValue) {
  OnlineStats s;
  for (const double v : {10.0, 12.0, 14.0}) s.add(v);
  // stddev = 2, sem = 2/sqrt(3), t(0.95, df=2) = 4.303
  EXPECT_NEAR(ci_halfwidth(s, 0.95), 4.303 * 2.0 / std::sqrt(3.0), 1e-3);
}

TEST(CiConverged, TightSamplesConverge) {
  OnlineStats s;
  for (int i = 0; i < 50; ++i) s.add(100.0 + (i % 2 ? 0.01 : -0.01));
  EXPECT_TRUE(ci_converged(s, 0.95, 0.005));
}

TEST(CiConverged, WideSamplesDoNot) {
  OnlineStats s;
  s.add(1.0);
  s.add(1000.0);
  s.add(-500.0);
  EXPECT_FALSE(ci_converged(s, 0.95, 0.005));
}

TEST(GeometricMean, KnownValue) {
  EXPECT_NEAR(geometric_mean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(GeometricMean, RejectsBadInput) {
  EXPECT_THROW(geometric_mean({}), precondition_error);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), precondition_error);
  EXPECT_THROW(geometric_mean({1.0, -2.0}), precondition_error);
}

TEST(Percentile, Endpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

// Statistical property: the CI produced by our machinery covers the true
// mean approximately at the nominal rate.
TEST(ConfidenceInterval, CoversTrueMeanAtNominalRate) {
  Rng rng(2024);
  const double true_mean = 50.0;
  int covered = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    OnlineStats s;
    for (int i = 0; i < 12; ++i)
      s.add(true_mean + rng.uniform_real(-10, 10));
    const double hw = ci_halfwidth(s, 0.95);
    if (std::abs(s.mean() - true_mean) <= hw) ++covered;
  }
  // 95% nominal; allow generous slack for the uniform distribution.
  EXPECT_GT(covered, trials * 90 / 100);
}

}  // namespace
}  // namespace parabb
