#include "parabb/taskgraph/graph.hpp"

#include <gtest/gtest.h>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

Task make_task(const char* name, Time exec) {
  Task t;
  t.name = name;
  t.exec = exec;
  return t;
}

TEST(TaskGraph, AddTasksAssignsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(make_task("a", 1)), 0);
  EXPECT_EQ(g.add_task(make_task("b", 2)), 1);
  EXPECT_EQ(g.task_count(), 2);
  EXPECT_EQ(g.task(1).name, "b");
}

TEST(TaskGraph, ArcsPopulateAdjacency) {
  TaskGraph g;
  const TaskId a = g.add_task(make_task("a", 1));
  const TaskId b = g.add_task(make_task("b", 1));
  const TaskId c = g.add_task(make_task("c", 1));
  g.add_arc(a, b, 10);
  g.add_arc(a, c, 20);
  EXPECT_EQ(g.arc_count(), 2);
  ASSERT_EQ(g.succs(a).size(), 2u);
  EXPECT_EQ(g.succs(a)[0].other, b);
  EXPECT_EQ(g.succs(a)[0].items, 10);
  ASSERT_EQ(g.preds(c).size(), 1u);
  EXPECT_EQ(g.preds(c)[0].other, a);
  EXPECT_EQ(g.preds(c)[0].items, 20);
}

TEST(TaskGraph, InputOutputClassification) {
  TaskGraph g;
  const TaskId a = g.add_task(make_task("a", 1));
  const TaskId b = g.add_task(make_task("b", 1));
  g.add_arc(a, b);
  EXPECT_TRUE(g.is_input(a));
  EXPECT_FALSE(g.is_output(a));
  EXPECT_FALSE(g.is_input(b));
  EXPECT_TRUE(g.is_output(b));
}

TEST(TaskGraph, ItemsOnArc) {
  TaskGraph g;
  const TaskId a = g.add_task(make_task("a", 1));
  const TaskId b = g.add_task(make_task("b", 1));
  g.add_arc(a, b, 7);
  EXPECT_EQ(g.items_on_arc(a, b), 7);
  EXPECT_EQ(g.items_on_arc(b, a), kTimeNegInf);
}

TEST(TaskGraph, TotalWork) {
  TaskGraph g;
  g.add_task(make_task("a", 10));
  g.add_task(make_task("b", 15));
  EXPECT_EQ(g.total_work(), 25);
}

TEST(TaskGraph, RejectsSelfLoop) {
  TaskGraph g;
  const TaskId a = g.add_task(make_task("a", 1));
  EXPECT_THROW(g.add_arc(a, a), precondition_error);
}

TEST(TaskGraph, RejectsDuplicateArc) {
  TaskGraph g;
  const TaskId a = g.add_task(make_task("a", 1));
  const TaskId b = g.add_task(make_task("b", 1));
  g.add_arc(a, b);
  EXPECT_THROW(g.add_arc(a, b), precondition_error);
}

TEST(TaskGraph, RejectsBadIds) {
  TaskGraph g;
  const TaskId a = g.add_task(make_task("a", 1));
  EXPECT_THROW(g.add_arc(a, 5), precondition_error);
  EXPECT_THROW(g.task(-1), precondition_error);
  EXPECT_THROW(g.preds(99), precondition_error);
}

TEST(TaskGraph, RejectsNegativeWeights) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(make_task("a", -1)), precondition_error);
  const TaskId a = g.add_task(make_task("a", 1));
  const TaskId b = g.add_task(make_task("b", 1));
  EXPECT_THROW(g.add_arc(a, b, -5), precondition_error);
}

TEST(TaskGraph, AcyclicDetection) {
  TaskGraph g;
  const TaskId a = g.add_task(make_task("a", 1));
  const TaskId b = g.add_task(make_task("b", 1));
  const TaskId c = g.add_task(make_task("c", 1));
  g.add_arc(a, b);
  g.add_arc(b, c);
  EXPECT_TRUE(g.is_acyclic());
  g.add_arc(c, a);  // closes a cycle
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_NE(g.validate(), "");
}

TEST(TaskGraph, ValidateChecksDeadlineVsPeriod) {
  TaskGraph g;
  Task t = make_task("p", 5);
  t.period = 10;
  t.rel_deadline = 12;  // d > T violates the window model
  g.add_task(t);
  EXPECT_NE(g.validate(), "");
}

TEST(TaskGraph, EmptyGraphIsValid) {
  TaskGraph g;
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.validate(), "");
}

TEST(TaskInvocations, ArrivalAndDeadline) {
  Task t;
  t.phase = 100;
  t.period = 50;
  t.rel_deadline = 30;
  EXPECT_EQ(t.arrival(1), 100);
  EXPECT_EQ(t.arrival(3), 200);
  EXPECT_EQ(t.abs_deadline(1), 130);
  EXPECT_EQ(t.abs_deadline(3), 230);
}

}  // namespace
}  // namespace parabb
