#include "parabb/support/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

ArgParser make_parser() {
  ArgParser p("prog", "test program");
  p.add_option("count", "an int", "5");
  p.add_option("ratio", "a double", "1.5");
  p.add_option("name", "a string", "default");
  p.add_option("sizes", "int list", "2,3,4");
  p.add_option("ccrs", "double list", "0.5,1.0");
  p.add_flag("verbose", "a flag");
  return p;
}

int parse(ArgParser& p, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return p.parse(static_cast<int>(argv.size()), argv.data()) ? 1 : 0;
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p = make_parser();
  parse(p, {});
  EXPECT_EQ(p.get_int("count"), 5);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 1.5);
  EXPECT_EQ(p.get_string("name"), "default");
  EXPECT_FALSE(p.has_flag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  ArgParser p = make_parser();
  parse(p, {"--count", "42", "--name", "bob"});
  EXPECT_EQ(p.get_int("count"), 42);
  EXPECT_EQ(p.get_string("name"), "bob");
}

TEST(ArgParser, EqualsSeparatedValues) {
  ArgParser p = make_parser();
  parse(p, {"--count=7", "--ratio=2.25"});
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 2.25);
}

TEST(ArgParser, Flags) {
  ArgParser p = make_parser();
  parse(p, {"--verbose"});
  EXPECT_TRUE(p.has_flag("verbose"));
}

TEST(ArgParser, IntList) {
  ArgParser p = make_parser();
  parse(p, {"--sizes", "1,5,9"});
  EXPECT_EQ(p.get_int_list("sizes"),
            (std::vector<std::int64_t>{1, 5, 9}));
}

TEST(ArgParser, DoubleList) {
  ArgParser p = make_parser();
  parse(p, {"--ccrs=0.1,2.5"});
  const auto v = p.get_double_list("ccrs");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.1);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
}

TEST(ArgParser, Positional) {
  ArgParser p = make_parser();
  parse(p, {"file1", "--count", "3", "file2"});
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"file1", "file2"}));
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"--bogus", "1"}), std::runtime_error);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"--count"}), std::runtime_error);
}

TEST(ArgParser, BadIntThrows) {
  ArgParser p = make_parser();
  parse(p, {"--count", "abc"});
  EXPECT_THROW(p.get_int("count"), std::runtime_error);
}

TEST(ArgParser, BadDoubleThrows) {
  ArgParser p = make_parser();
  parse(p, {"--ratio", "x1"});
  EXPECT_THROW(p.get_double("ratio"), std::runtime_error);
}

TEST(ArgParser, FlagWithValueThrows) {
  ArgParser p = make_parser();
  EXPECT_THROW(parse(p, {"--verbose=yes"}), std::runtime_error);
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser p = make_parser();
  EXPECT_EQ(parse(p, {"--help"}), 0);
}

TEST(ArgParser, HelpTextListsOptions) {
  ArgParser p = make_parser();
  const std::string h = p.help_text();
  EXPECT_NE(h.find("--count"), std::string::npos);
  EXPECT_NE(h.find("--verbose"), std::string::npos);
  EXPECT_NE(h.find("default: 5"), std::string::npos);
}

TEST(ArgParser, DuplicateDeclarationThrows) {
  ArgParser p("x", "y");
  p.add_option("a", "h", "1");
  EXPECT_THROW(p.add_option("a", "h", "2"), precondition_error);
  EXPECT_THROW(p.add_flag("a", "h"), precondition_error);
}

TEST(ArgParser, QueryingUndeclaredThrows) {
  ArgParser p("x", "y");
  EXPECT_THROW(p.get_string("nope"), precondition_error);
}

}  // namespace
}  // namespace parabb
