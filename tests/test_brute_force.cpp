#include "parabb/bnb/brute_force.hpp"

#include <gtest/gtest.h>

#include "parabb/sched/validator.hpp"
#include "parabb/support/assert.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

TEST(BruteForce, SingleTaskSingleProc) {
  TaskGraph g;
  Task t;
  t.name = "a";
  t.exec = 5;
  t.rel_deadline = 7;
  g.add_task(t);
  const SchedContext ctx = test::make_ctx(g, 1);
  const BruteForceResult r = brute_force(ctx);
  EXPECT_EQ(r.leaves, 1u);
  EXPECT_EQ(r.best_cost, -2);
}

TEST(BruteForce, LeafCountIndependentTasks) {
  // n independent tasks on m processors: n! * m^n goal vertices.
  const SchedContext ctx = test::make_ctx(test::independent_tasks(3), 2);
  const BruteForceResult r = brute_force(ctx);
  EXPECT_EQ(r.leaves, 6u * 8u);  // 3! * 2^3
}

TEST(BruteForce, LeafCountChain) {
  // A chain has exactly one task order: m^n goals.
  const TaskGraph g = GraphBuilder()
                          .task("a", 1, 10, 0)
                          .task("b", 1, 10, 0)
                          .task("c", 1, 10, 0)
                          .chain({"a", "b", "c"})
                          .build();
  const SchedContext ctx = test::make_ctx(g, 2);
  EXPECT_EQ(brute_force(ctx).leaves, 8u);  // 2^3
}

TEST(BruteForce, BestScheduleMatchesCost) {
  const TaskGraph g = test::tiny_random(3, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const BruteForceResult r = brute_force(ctx);
  EXPECT_EQ(max_lateness(r.best, g), r.best_cost);
  const ValidationReport rep =
      validate_schedule(r.best, g, make_shared_bus_machine(2));
  EXPECT_TRUE(rep.structurally_sound) << rep.error;
}

TEST(BruteForce, MoreProcessorsNeverIncreaseOptimum) {
  // The processor sets nest, so the optimal lateness is non-increasing
  // in m.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const TaskGraph g = test::tiny_random(seed, 6, 3);
    Time prev = kTimeInf;
    for (int m = 1; m <= 3; ++m) {
      const SchedContext ctx = test::make_ctx(g, m);
      const Time cost = brute_force(ctx).best_cost;
      EXPECT_LE(cost, prev) << "seed " << seed << " m " << m;
      prev = cost;
    }
  }
}

TEST(BruteForce, LeafBudgetEnforced) {
  const SchedContext ctx = test::make_ctx(test::independent_tasks(6), 3);
  EXPECT_THROW(brute_force(ctx, /*max_leaves=*/100), precondition_error);
}

}  // namespace
}  // namespace parabb
