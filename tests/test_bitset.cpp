#include "parabb/support/bitset64.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace parabb {
namespace {

TEST(TaskSet, StartsEmpty) {
  TaskSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_FALSE(s.contains(0));
}

TEST(TaskSet, InsertEraseContains) {
  TaskSet s;
  s.insert(3);
  s.insert(17);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(17));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 2);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
  s.erase(3);  // idempotent
  EXPECT_EQ(s.size(), 1);
}

TEST(TaskSet, FirstN) {
  const TaskSet s = TaskSet::first_n(5);
  EXPECT_EQ(s.size(), 5);
  for (TaskId t = 0; t < 5; ++t) EXPECT_TRUE(s.contains(t));
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(TaskSet::first_n(0).size(), 0);
  EXPECT_EQ(TaskSet::first_n(64).size(), 64);
}

TEST(TaskSet, SetOperations) {
  TaskSet a, b;
  a.insert(1);
  a.insert(2);
  b.insert(2);
  b.insert(3);
  EXPECT_EQ((a | b).size(), 3);
  EXPECT_EQ((a & b).size(), 1);
  EXPECT_TRUE((a & b).contains(2));
  EXPECT_EQ((a - b).size(), 1);
  EXPECT_TRUE((a - b).contains(1));
}

TEST(TaskSet, SubsetAndIntersects) {
  TaskSet a, b;
  a.insert(1);
  b.insert(1);
  b.insert(2);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  TaskSet c;
  c.insert(9);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(TaskSet().is_subset_of(a));
}

TEST(TaskSet, IterationInIncreasingOrder) {
  TaskSet s;
  s.insert(31);
  s.insert(0);
  s.insert(7);
  std::vector<TaskId> seen;
  for (const TaskId t : s) seen.push_back(t);
  EXPECT_EQ(seen, (std::vector<TaskId>{0, 7, 31}));
}

TEST(TaskSet, IterateEmpty) {
  int count = 0;
  for ([[maybe_unused]] const TaskId t : TaskSet()) ++count;
  EXPECT_EQ(count, 0);
}

TEST(TaskSet, Equality) {
  TaskSet a, b;
  a.insert(5);
  b.insert(5);
  EXPECT_EQ(a, b);
  b.insert(6);
  EXPECT_NE(a, b);
}

TEST(TaskSet, HighBits) {
  TaskSet s;
  s.insert(63);
  EXPECT_TRUE(s.contains(63));
  EXPECT_EQ(s.size(), 1);
  std::vector<TaskId> seen;
  for (const TaskId t : s) seen.push_back(t);
  EXPECT_EQ(seen, std::vector<TaskId>{63});
}

}  // namespace
}  // namespace parabb
