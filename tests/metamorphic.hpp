// Optimal-lateness-preserving transforms for the metamorphic suite
// (test_metamorphic.cpp). Each transform maps a scheduling instance to a
// new one whose optimal maximum lateness is *predictable* from the
// original's — so any solver configuration can be cross-checked against
// itself without an external oracle:
//
//   scaled_times(g, k)          opt' = k * opt    (every time quantity xk)
//   translated_deadlines(g, d)  opt' = opt - d    (slack +d on every task)
//   relabeled_tasks(g, perm)    opt' = opt        (vertex ids permuted)
//   renamed_procs(m, perm)      opt' = opt        (hop matrix permuted)
//   serialization to m=1        opt_1 >= opt_m    (processor sets nest)
//
// The last relation is an inequality, not an equality, so it lives in the
// test itself rather than here.
#pragma once

#include <utility>
#include <vector>

#include "parabb/platform/machine.hpp"
#include "parabb/platform/topology.hpp"
#include "parabb/support/assert.hpp"
#include "parabb/support/rng.hpp"
#include "parabb/taskgraph/graph.hpp"

namespace parabb::test {

/// Multiplies every time quantity (execution, phase, relative deadline,
/// period, message items) by `k` > 0. Any schedule of the original maps to
/// a schedule of the image with every start/finish multiplied by k, and
/// vice versa, so the optimal maximum lateness is exactly k times the
/// original's.
inline TaskGraph scaled_times(const TaskGraph& g, Time k) {
  PARABB_ASSERT(k > 0);
  TaskGraph out;
  for (TaskId t = 0; t < g.task_count(); ++t) {
    Task task = g.task(t);
    task.exec *= k;
    task.phase *= k;
    task.rel_deadline *= k;
    task.period *= k;
    out.add_task(std::move(task));
  }
  for (const Channel& c : g.arcs()) out.add_arc(c.from, c.to, c.items * k);
  return out;
}

/// Adds `d` to every relative deadline. The schedule space is untouched
/// (arrivals, executions and communication are unchanged), and every
/// task's lateness under every schedule drops by exactly d — so the
/// optimal maximum lateness drops by exactly d.
inline TaskGraph translated_deadlines(const TaskGraph& g, Time d) {
  TaskGraph out;
  for (TaskId t = 0; t < g.task_count(); ++t) {
    Task task = g.task(t);
    task.rel_deadline += d;
    out.add_task(std::move(task));
  }
  for (const Channel& c : g.arcs()) out.add_arc(c.from, c.to, c.items);
  return out;
}

/// Arc-preserving vertex relabeling: task `t` of the original becomes task
/// `perm[t]` of the image (names ride along, so schedules remain
/// comparable by name). A pure reindexing of the same instance — the
/// optimal maximum lateness is unchanged, whatever internal orderings
/// (topological ranks, tie-breaks, Zobrist keys) the solver derives from
/// the ids.
inline TaskGraph relabeled_tasks(const TaskGraph& g,
                                 const std::vector<TaskId>& perm) {
  PARABB_ASSERT(static_cast<int>(perm.size()) == g.task_count());
  std::vector<TaskId> inverse(perm.size(), kNoTask);
  for (TaskId t = 0; t < g.task_count(); ++t) {
    inverse[static_cast<std::size_t>(perm[static_cast<std::size_t>(t)])] = t;
  }
  TaskGraph out;
  for (std::size_t slot = 0; slot < inverse.size(); ++slot) {
    PARABB_ASSERT(inverse[slot] != kNoTask);
    out.add_task(g.task(inverse[slot]));
  }
  for (const Channel& c : g.arcs()) {
    out.add_arc(perm[static_cast<std::size_t>(c.from)],
                perm[static_cast<std::size_t>(c.to)], c.items);
  }
  return out;
}

/// Processor renaming: processor `p` of the original becomes `perm[p]` of
/// the image. Processors are identical, so only the interconnect's hop
/// matrix carries identity — the image gets a custom topology with
/// hops'(perm[p], perm[q]) = hops(p, q). Optimal maximum lateness is
/// unchanged; only the processor labels in the optimal schedule permute.
inline Machine renamed_procs(const Machine& m,
                             const std::vector<ProcId>& perm) {
  PARABB_ASSERT(static_cast<int>(perm.size()) == m.procs);
  const auto n = static_cast<std::size_t>(m.procs);
  std::vector<std::vector<int>> hops(n, std::vector<int>(n, 0));
  for (ProcId p = 0; p < m.procs; ++p) {
    for (ProcId q = 0; q < m.procs; ++q) {
      hops[static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])]
          [static_cast<std::size_t>(perm[static_cast<std::size_t>(q)])] =
              m.hops(p, q);
    }
  }
  Machine out;
  out.procs = m.procs;
  out.comm = m.comm;
  out.topology = NetworkTopology::custom(std::move(hops), "renamed");
  return out;
}

/// Uniformly random permutation of [0, n) as a vector of ids.
template <typename Id>
inline std::vector<Id> random_perm(int n, Rng& rng) {
  std::vector<Id> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = Id(i);
  rng.shuffle(std::span<Id>(perm));
  return perm;
}

}  // namespace parabb::test
