#include "parabb/experiments/plot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

PlotConfig small() {
  PlotConfig c;
  c.title = "test";
  c.y_label = "y";
  c.height = 6;
  c.width = 24;
  return c;
}

TEST(Plot, RendersMarksAndLegend) {
  const std::string out = render_plot(
      small(), {"2", "3", "4"},
      {{"alpha", {1.0, 2.0, 3.0}}, {"beta", {3.0, 2.0, 1.0}}});
  EXPECT_NE(out.find("a = alpha"), std::string::npos);
  EXPECT_NE(out.find("b = beta"), std::string::npos);
  // Both marks appear somewhere in the canvas.
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
  // X labels on the axis row.
  EXPECT_NE(out.find('2'), std::string::npos);
  EXPECT_NE(out.find('4'), std::string::npos);
}

TEST(Plot, LogScaleHandlesZeros) {
  PlotConfig c = small();
  c.log_y = true;
  const std::string out =
      render_plot(c, {"1", "2"}, {{"s", {0.0, 1000.0}}});
  EXPECT_NE(out.find("log scale"), std::string::npos);
}

TEST(Plot, MissingPointsSkipped) {
  const std::string out = render_plot(
      small(), {"1", "2"}, {{"s", {std::nan(""), 5.0}}});
  // Exactly one mark drawn on the canvas (canvas lines contain '|').
  std::size_t count = 0;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find('|') == std::string::npos) continue;
    for (const char ch : line) {
      if (ch == 'a') ++count;
    }
  }
  EXPECT_EQ(count, 1u);
}

TEST(Plot, AllMissingProducesNoDataMessage) {
  const std::string out = render_plot(
      small(), {"1"}, {{"s", {std::nan("")}}});
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(Plot, ConstantSeriesDoesNotDivideByZero) {
  const std::string out =
      render_plot(small(), {"1", "2"}, {{"s", {7.0, 7.0}}});
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(Plot, ValidatesInput) {
  EXPECT_THROW(render_plot(small(), {}, {{"s", {}}}), precondition_error);
  EXPECT_THROW(render_plot(small(), {"1"}, {}), precondition_error);
  EXPECT_THROW(render_plot(small(), {"1", "2"}, {{"s", {1.0}}}),
               precondition_error);
  PlotConfig tiny = small();
  tiny.height = 1;
  EXPECT_THROW(render_plot(tiny, {"1"}, {{"s", {1.0}}}),
               precondition_error);
}

TEST(Plot, SingleXPositionCenters) {
  const std::string out = render_plot(small(), {"4"}, {{"s", {2.0}}});
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(Plot, PaperFigureRendersBothPanels) {
  // Minimal experiment result shaped like the figure benches produce.
  ExperimentConfig cfg;
  cfg.machine_sizes = {2, 3, 4};
  AlgorithmVariant v1;
  v1.label = "LIFO";
  AlgorithmVariant v2;
  v2.label = "LLB";
  cfg.variants = {v1, v2};

  ExperimentResult result;
  result.cells.assign(2, std::vector<CellStats>(3));
  for (std::size_t v = 0; v < 2; ++v) {
    for (std::size_t mi = 0; mi < 3; ++mi) {
      for (int rep = 0; rep < 3; ++rep) {
        result.cells[v][mi].vertices.add(
            100.0 * static_cast<double>((v + 1) * (mi + 1)) + rep);
        result.cells[v][mi].lateness.add(-2.0 - static_cast<double>(mi));
      }
    }
  }

  const std::string fig = render_paper_figure(cfg, result, "Fig. X");
  EXPECT_NE(fig.find("searched vertices"), std::string::npos);
  EXPECT_NE(fig.find("max task lateness"), std::string::npos);
  EXPECT_NE(fig.find("log scale"), std::string::npos);
  EXPECT_NE(fig.find("a = LIFO"), std::string::npos);
  EXPECT_NE(fig.find("b = LLB"), std::string::npos);
}

}  // namespace
}  // namespace parabb
