#include "parabb/workload/generator.hpp"

#include <gtest/gtest.h>

#include "parabb/support/assert.hpp"
#include "parabb/taskgraph/io.hpp"
#include "parabb/taskgraph/topology.hpp"

namespace parabb {
namespace {

TEST(Generator, DeterministicFromSeed) {
  const GeneratedGraph a = generate_graph(paper_config(), 42);
  const GeneratedGraph b = generate_graph(paper_config(), 42);
  EXPECT_EQ(to_tgf(a.graph), to_tgf(b.graph));
}

TEST(Generator, DifferentSeedsDiffer) {
  const GeneratedGraph a = generate_graph(paper_config(), 1);
  const GeneratedGraph b = generate_graph(paper_config(), 2);
  EXPECT_NE(to_tgf(a.graph), to_tgf(b.graph));
}

TEST(Generator, RejectsBadConfigs) {
  GeneratorConfig c;
  c.n_min = 10;
  c.n_max = 5;
  EXPECT_THROW(generate_graph(c, 0), precondition_error);
  c = GeneratorConfig{};
  c.degree_max = 1;
  EXPECT_THROW(generate_graph(c, 0), precondition_error);
  c = GeneratorConfig{};
  c.depth_min = 20;
  c.depth_max = 25;
  c.n_min = c.n_max = 16;  // depth cannot exceed n
  EXPECT_THROW(generate_graph(c, 0), precondition_error);
  c = GeneratorConfig{};
  c.ccr = -1;
  EXPECT_THROW(generate_graph(c, 0), precondition_error);
}

TEST(Generator, WidthConfigProducesExactGrid) {
  const GeneratorConfig c = width_config(5, 3);
  const GeneratedGraph g = generate_graph(c, 7);
  EXPECT_EQ(g.graph.task_count(), 15);
  EXPECT_EQ(g.depth, 5);
  EXPECT_EQ(g.width, 3);
  const Topology topo = analyze(g.graph);
  EXPECT_EQ(topo.level_count, 5);
  for (const auto& lvl : topo.levels) EXPECT_EQ(lvl.size(), 3u);
}

// Paper §4.1 invariants, swept over many seeds.
class GeneratorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSweep, PaperWorkloadInvariants) {
  const GeneratorConfig cfg = paper_config();
  const GeneratedGraph gen = generate_graph(cfg, GetParam());
  const TaskGraph& g = gen.graph;

  // 12..16 tasks.
  EXPECT_GE(g.task_count(), 12);
  EXPECT_LE(g.task_count(), 16);

  // Depth 8..12 levels (realized).
  const Topology topo = analyze(g);
  EXPECT_GE(topo.level_count, 8);
  EXPECT_LE(topo.level_count, 12);
  EXPECT_EQ(topo.level_count, gen.depth);

  // Executions within mean*(1±dev) and >= 1.
  const auto lo = static_cast<Time>(1);
  const auto hi = static_cast<Time>(40);  // 20 * 1.99 rounded
  for (TaskId t = 0; t < g.task_count(); ++t) {
    EXPECT_GE(g.task(t).exec, lo);
    EXPECT_LE(g.task(t).exec, hi);
  }

  // Degree bounds: non-inputs have 1..3 preds, non-outputs 1..3 succs.
  for (TaskId t = 0; t < g.task_count(); ++t) {
    const auto ins = static_cast<int>(g.preds(t).size());
    const auto outs = static_cast<int>(g.succs(t).size());
    EXPECT_LE(ins, cfg.degree_max);
    EXPECT_LE(outs, cfg.degree_max);
    if (!g.is_input(t)) {
      EXPECT_GE(ins, 1);
    }
    if (!g.is_output(t)) {
      EXPECT_GE(outs, 1);
    }
  }

  // Acyclic, message sizes non-negative.
  EXPECT_TRUE(g.is_acyclic());
  for (const Channel& c : g.arcs()) EXPECT_GE(c.items, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Range<std::uint64_t>(0, 80));

TEST(Generator, CcrIsApproximatelyAchievedOnAverage) {
  // Across many instances, realized CCR should straddle the target.
  double total = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    const GeneratedGraph g =
        generate_graph(paper_config(), static_cast<std::uint64_t>(i));
    total += g.achieved_ccr;
  }
  EXPECT_NEAR(total / trials, 1.0, 0.15);
}

TEST(Generator, CcrZeroMeansNoCommunication) {
  GeneratorConfig c = paper_config();
  c.ccr = 0.0;
  const GeneratedGraph g = generate_graph(c, 3);
  for (const Channel& ch : g.graph.arcs()) EXPECT_EQ(ch.items, 0);
  EXPECT_EQ(g.achieved_ccr, 0.0);
}

TEST(Generator, HighCcrScalesMessages) {
  GeneratorConfig c = paper_config();
  c.ccr = 4.0;
  double total = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    total += generate_graph(c, static_cast<std::uint64_t>(i)).achieved_ccr;
  }
  EXPECT_NEAR(total / trials, 4.0, 0.6);
}

TEST(Generator, AvgExecNearMean) {
  double total = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    total +=
        generate_graph(paper_config(), static_cast<std::uint64_t>(i)).avg_exec;
  }
  EXPECT_NEAR(total / trials, 20.0, 2.5);
}

}  // namespace
}  // namespace parabb
