// Cross-rule consistency and approximation-guarantee tests for the
// parametrized B&B (the heart of the paper's claims).
#include <gtest/gtest.h>

#include <cmath>

#include "parabb/bnb/brute_force.hpp"
#include "parabb/bnb/engine.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

struct RuleCase {
  std::uint64_t seed;
  int procs;
};

class RuleConsistency : public ::testing::TestWithParam<RuleCase> {};

// Every complete configuration (BFn with any selection rule and any lower
// bound, with or without U/DBAS) must find the same optimal cost, equal to
// brute force.
TEST_P(RuleConsistency, AllOptimalConfigsAgreeWithBruteForce) {
  const TaskGraph g = test::tiny_random(GetParam().seed, 6, 3);
  const SchedContext ctx = test::make_ctx(g, GetParam().procs);
  const Time opt = brute_force(ctx).best_cost;

  for (const SelectRule s :
       {SelectRule::kLIFO, SelectRule::kLLB, SelectRule::kFIFO}) {
    for (const LowerBound lb :
         {LowerBound::kLB0, LowerBound::kLB1, LowerBound::kLB2}) {
      for (const UpperBoundInit ub :
           {UpperBoundInit::kFromEDF, UpperBoundInit::kInfinite}) {
        Params p;
        p.select = s;
        p.lb = lb;
        p.ub = ub;
        const SearchResult r = solve_bnb(ctx, p);
        ASSERT_TRUE(r.found_solution)
            << to_string(s) << "/" << to_string(lb) << "/" << to_string(ub);
        EXPECT_EQ(r.best_cost, opt)
            << to_string(s) << "/" << to_string(lb) << "/" << to_string(ub)
            << " seed=" << GetParam().seed << " m=" << GetParam().procs;
        EXPECT_TRUE(r.proved);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RuleConsistency,
    ::testing::Values(RuleCase{0, 2}, RuleCase{1, 2}, RuleCase{2, 3},
                      RuleCase{3, 2}, RuleCase{4, 3}, RuleCase{5, 2},
                      RuleCase{6, 1}, RuleCase{7, 3}, RuleCase{8, 2},
                      RuleCase{9, 3}));

TEST(RuleConsistency, ElimNoneAlsoOptimal) {
  const TaskGraph g = test::tiny_random(1, 5, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p;
  p.elim = ElimRule::kNone;
  p.select = SelectRule::kLIFO;
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_EQ(r.best_cost, brute_force(ctx).best_cost);
}

TEST(RuleConsistency, ElimNoneGeneratesAtLeastAsMany) {
  const TaskGraph g = test::tiny_random(1, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params with;
  Params without;
  without.elim = ElimRule::kNone;
  const SearchResult a = solve_bnb(ctx, with);
  const SearchResult b = solve_bnb(ctx, without);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_LE(a.stats.generated, b.stats.generated);
}

TEST(RuleConsistency, UnsortedChildrenStillOptimal) {
  const TaskGraph g = test::tiny_random(12, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p;
  p.sort_children = false;
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_EQ(r.best_cost, brute_force(ctx).best_cost);
}

// Approximate branching rules: valid schedules, cost >= optimal.
class ApproxRules : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxRules, DfAndBf1AreFeasibleAndNoBetterThanOptimal) {
  const TaskGraph g = test::tiny_random(GetParam(), 7, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const Time opt = brute_force(ctx).best_cost;
  for (const BranchRule b : {BranchRule::kDF, BranchRule::kBF1}) {
    Params p;
    p.branch = b;
    const SearchResult r = solve_bnb(ctx, p);
    ASSERT_TRUE(r.found_solution) << to_string(b);
    EXPECT_GE(r.best_cost, opt) << to_string(b);
    EXPECT_FALSE(r.proved);  // no guarantee without BFn
    EXPECT_EQ(max_lateness(r.best, g), r.best_cost);
  }
}

TEST_P(ApproxRules, BrBoundedSearchHonorsGuarantee) {
  const TaskGraph g = test::tiny_random(GetParam(), 7, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const Time opt = brute_force(ctx).best_cost;
  Params p;
  p.br = 0.10;
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_TRUE(r.found_solution);
  EXPECT_TRUE(r.proved);
  EXPECT_GE(r.best_cost, opt);
  // |L_acc| within (1+BR)|L_opt| (plus 1 for integer margins).
  const double allowed =
      p.br * std::max(std::abs(static_cast<double>(r.best_cost)),
                      std::abs(static_cast<double>(opt))) +
      1.0;
  EXPECT_LE(static_cast<double>(r.best_cost - opt), allowed);
}

TEST_P(ApproxRules, BrZeroIsExact) {
  const TaskGraph g = test::tiny_random(GetParam() + 100, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p;
  p.br = 0.0;
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_EQ(r.best_cost, brute_force(ctx).best_cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxRules,
                         ::testing::Range<std::uint64_t>(0, 24));

// The paper's headline orderings, checked as weak inequalities on small
// batches (robust to instance noise; the full effect is shown in the
// benches).
TEST(RuleOrdering, BrRelaxationNeverSearchesMore) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const TaskGraph g = test::paper_instance(seed);
    const SchedContext ctx = test::make_ctx(g, 2);
    Params exact;
    Params relaxed;
    relaxed.br = 0.10;
    const SearchResult a = solve_bnb(ctx, exact);
    const SearchResult b = solve_bnb(ctx, relaxed);
    EXPECT_LE(b.stats.generated, a.stats.generated) << "seed " << seed;
  }
}

TEST(RuleOrdering, ApproximateBranchingSearchesFarLess) {
  std::uint64_t bfn_total = 0;
  std::uint64_t df_total = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const TaskGraph g = test::tight_instance(seed);
    const SchedContext ctx = test::make_ctx(g, 2);
    Params bfn;
    Params df;
    df.branch = BranchRule::kDF;
    const SearchResult a = solve_bnb(ctx, bfn);
    const SearchResult b = solve_bnb(ctx, df);
    EXPECT_LE(b.stats.generated, a.stats.generated) << "seed " << seed;
    bfn_total += a.stats.generated;
    df_total += b.stats.generated;
  }
  // Aggregate effect: DF explores far less than the complete rule.
  EXPECT_LT(df_total * 2, bfn_total);
}

}  // namespace
}  // namespace parabb
