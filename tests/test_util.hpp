// Shared fixtures and helpers for the ParaBB test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "parabb/deadline/slicing.hpp"
#include "parabb/platform/machine.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/taskgraph/builder.hpp"
#include "parabb/taskgraph/graph.hpp"
#include "parabb/workload/generator.hpp"

namespace parabb::test {

/// Small diamond with explicit per-task windows; feasible on 2 processors.
///   a(10) -> b(20), c(15) -> d(10), comm 5 items on every arc.
inline TaskGraph small_diamond() {
  return GraphBuilder()
      .task("a", 10, /*rel_deadline=*/15, /*phase=*/0)
      .task("b", 20, 40, 10)
      .task("c", 15, 40, 10)
      .task("d", 10, 30, 35)
      .arc("a", "b", 5)
      .arc("a", "c", 5)
      .arc("b", "d", 5)
      .arc("c", "d", 5)
      .build();
}

/// Independent tasks (no arcs) with staggered windows.
inline TaskGraph independent_tasks(int n, Time exec = 10, Time window = 25) {
  GraphBuilder b;
  for (int i = 0; i < n; ++i)
    b.task("i" + std::to_string(i), exec, window + 5 * i, 0);
  return b.build();
}

/// Random paper-style instance scaled down to `n_max` tasks for exhaustive
/// cross-checks, with deadlines assigned by slicing.
inline TaskGraph tiny_random(std::uint64_t seed, int n = 6, int depth = 3) {
  GeneratorConfig cfg;
  cfg.n_min = cfg.n_max = n;
  cfg.depth_min = cfg.depth_max = depth;
  GeneratedGraph g = generate_graph(cfg, seed);
  assign_deadlines_slicing(g.graph);
  return std::move(g.graph);
}

/// Paper-sized instance (12-16 tasks, depth 8-12) with sliced deadlines.
inline TaskGraph paper_instance(std::uint64_t seed) {
  GeneratedGraph g = generate_graph(paper_config(), seed);
  assign_deadlines_slicing(g.graph);
  return std::move(g.graph);
}

/// Paper-sized instance with *tight* deadlines (per-path laxity 1.1):
/// EDF is rarely optimal here, so the B&B search is nontrivial. Used by
/// tests that need expansions/pruning to actually happen.
inline TaskGraph tight_instance(std::uint64_t seed) {
  GeneratedGraph g = generate_graph(paper_config(), seed);
  SlicingConfig cfg;
  cfg.base = LaxityBase::kPathWork;
  cfg.laxity = 1.1;
  assign_deadlines_slicing(g.graph, cfg);
  return std::move(g.graph);
}

inline SchedContext make_ctx(const TaskGraph& g, int procs) {
  return SchedContext(g, make_shared_bus_machine(procs));
}

}  // namespace parabb::test
