#include "parabb/bnb/trace.hpp"

#include <gtest/gtest.h>

#include "parabb/bnb/engine.hpp"
#include "parabb/support/assert.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

TEST(SearchTrace, RecordsInOrder) {
  SearchTrace trace(16);
  trace.record(TraceEvent::kExpand, 0, 5);
  trace.record(TraceEvent::kGoal, 4, -3);
  const auto log = trace.chronological();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].event, TraceEvent::kExpand);
  EXPECT_EQ(log[0].value, 5);
  EXPECT_EQ(log[1].event, TraceEvent::kGoal);
  EXPECT_EQ(log[1].index, 1u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(SearchTrace, RingDropsOldest) {
  SearchTrace trace(4);
  for (int i = 0; i < 10; ++i)
    trace.record(TraceEvent::kActivate, i, i);
  EXPECT_EQ(trace.total_events(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto log = trace.chronological();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.front().value, 6);
  EXPECT_EQ(log.back().value, 9);
}

TEST(SearchTrace, ClearResets) {
  SearchTrace trace(4);
  trace.record(TraceEvent::kExpand, 0, 0);
  trace.clear();
  EXPECT_EQ(trace.total_events(), 0u);
  EXPECT_TRUE(trace.chronological().empty());
}

TEST(SearchTrace, ToStringMentionsEventsAndDrops) {
  SearchTrace trace(2);
  for (int i = 0; i < 3; ++i) trace.record(TraceEvent::kIncumbent, 5, -i);
  const std::string s = trace.to_string();
  EXPECT_NE(s.find("incumbent"), std::string::npos);
  EXPECT_NE(s.find("dropped"), std::string::npos);
}

TEST(SearchTrace, RejectsZeroCapacity) {
  EXPECT_THROW(SearchTrace(0), precondition_error);
}

TEST(SearchTrace, EventNames) {
  EXPECT_EQ(to_string(TraceEvent::kExpand), "expand");
  EXPECT_EQ(to_string(TraceEvent::kDispose), "dispose");
  EXPECT_EQ(to_string(TraceEvent::kPruneChild), "prune-child");
}

TEST(SearchTrace, EngineEmitsCoherentEventStream) {
  const TaskGraph g = test::tight_instance(2);
  const SchedContext ctx = test::make_ctx(g, 2);
  SearchTrace trace(1u << 22);
  Params p;
  p.trace = &trace;
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_GT(trace.total_events(), 0u);

  std::uint64_t expands = 0, goals = 0, incumbents = 0, activations = 0;
  Time last_incumbent = kTimeInf;
  for (const TraceRecord& rec : trace.chronological()) {
    switch (rec.event) {
      case TraceEvent::kExpand: ++expands; break;
      case TraceEvent::kGoal:
        ++goals;
        EXPECT_EQ(rec.level, ctx.task_count());
        break;
      case TraceEvent::kIncumbent:
        ++incumbents;
        // The incumbent strictly improves over time.
        EXPECT_LT(rec.value, last_incumbent);
        last_incumbent = rec.value;
        break;
      case TraceEvent::kActivate: ++activations; break;
      default: break;
    }
  }
  if (trace.dropped() == 0) {
    EXPECT_EQ(expands, r.stats.expanded);
    EXPECT_EQ(goals, r.stats.goals);
    EXPECT_EQ(incumbents, r.stats.goal_updates);
    EXPECT_EQ(activations, r.stats.activated);
    if (incumbents > 0) {
      // The last recorded incumbent is the returned cost. (When the EDF
      // seed is already optimal there are no incumbent events at all.)
      EXPECT_EQ(last_incumbent, r.best_cost);
    }
  }
}

TEST(SearchTrace, NoTraceMeansNoEvents) {
  const TaskGraph g = test::tiny_random(1, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const SearchResult r = solve_bnb(ctx, Params{});  // trace == nullptr
  EXPECT_TRUE(r.found_solution);
}

}  // namespace
}  // namespace parabb
