// Tests for the observability subsystem (src/parabb/obs): metrics
// registry correctness under concurrency, histogram bucket-edge
// semantics, flight-recorder ring behaviour, span logging, the shared
// merge kernel, and the contract that matters most — observation on vs
// off leaves every solver output byte-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/bnb/search_obs.hpp"
#include "parabb/obs/metrics.hpp"
#include "parabb/obs/observe.hpp"
#include "parabb/obs/recorder.hpp"
#include "parabb/obs/span.hpp"
#include "parabb/sched/schedule_io.hpp"
#include "parabb/support/json.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

// ---------------------------------------------------------------------
// accumulate(): the one merge kernel.

TEST(Accumulate, SumsElementwise) {
  std::vector<std::uint64_t> dst{1, 2, 3};
  const std::vector<std::uint64_t> src{10, 20, 30};
  accumulate(dst, src);
  EXPECT_EQ(dst, (std::vector<std::uint64_t>{11, 22, 33}));
}

// ---------------------------------------------------------------------
// Counter under 1 / 4 / 8 threads: the snapshot must equal the exact
// number of add() calls regardless of how writers sharded.

class CounterThreads : public ::testing::TestWithParam<int> {};

TEST_P(CounterThreads, ExactTotalAcrossThreads) {
  const int threads = GetParam();
  constexpr std::uint64_t kPerThread = 50'000;
  MetricsRegistry reg;
  Counter* c = reg.counter("parabb_test_ops_total");
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c->add(1);
    });
  }
  for (auto& th : pool) th.join();
  const MetricsSnapshot snap = reg.snapshot();
  const auto* sample = snap.find_counter("parabb_test_ops_total");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value,
            kPerThread * static_cast<std::uint64_t>(threads));
}

INSTANTIATE_TEST_SUITE_P(Obs, CounterThreads, ::testing::Values(1, 4, 8));

TEST(Registry, SameNameSameHandle) {
  MetricsRegistry reg;
  Counter* a = reg.counter("dup");
  Counter* b = reg.counter("dup");
  EXPECT_EQ(a, b);
  a->add(2);
  b->add(3);
  EXPECT_EQ(a->value(), 5u);
}

TEST(Registry, KindConflictThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_ANY_THROW(reg.gauge("x"));
  EXPECT_ANY_THROW(reg.histogram("x", {1.0}));
}

TEST(Registry, CollectorRunsAtSnapshotAndStopsAfterRemoval) {
  MetricsRegistry reg;
  int runs = 0;
  const auto id = reg.add_collector([&runs](MetricsRegistry& r) {
    ++runs;
    r.gauge("live_depth")->set(runs);
  });
  const MetricsSnapshot s1 = reg.snapshot();
  ASSERT_NE(s1.find_gauge("live_depth"), nullptr);
  EXPECT_EQ(s1.find_gauge("live_depth")->value, 1);
  reg.snapshot();
  EXPECT_EQ(runs, 2);
  reg.remove_collector(id);
  reg.snapshot();
  EXPECT_EQ(runs, 2);
}

TEST(Gauge, SetAddAndMonotoneMax) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.set_max(10);
  EXPECT_EQ(g.value(), 10);
  g.set_max(2);  // lower values never win
  EXPECT_EQ(g.value(), 10);
}

// ---------------------------------------------------------------------
// Histogram bucket edges: Prometheus `le` semantics — a sample equal to
// a bound lands in that bound's bucket, not the next one.

TEST(Histogram, BucketEdgesAreLessOrEqual) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // <= 1.0          -> bucket 0
  h.observe(1.0);   // == 1.0 boundary -> bucket 0
  h.observe(1.01);  // <= 2.0          -> bucket 1
  h.observe(2.0);   // == 2.0 boundary -> bucket 1
  h.observe(5.0);   // == 5.0 boundary -> bucket 2
  h.observe(5.5);   // above all       -> overflow
  const std::vector<std::uint64_t> want{2, 2, 1, 1};
  EXPECT_EQ(h.buckets(), want);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.01 + 2.0 + 5.0 + 5.5);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_ANY_THROW(Histogram({2.0, 1.0}));
  EXPECT_ANY_THROW(Histogram({1.0, 1.0}));
  EXPECT_ANY_THROW(Histogram(std::vector<double>{}));
}

TEST(Histogram, RegistryRejectsBoundMismatch) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(reg.histogram("h", {1.0, 2.0}),
            reg.histogram("h", {1.0, 2.0}));
  EXPECT_ANY_THROW(reg.histogram("h", {1.0, 3.0}));
}

// ---------------------------------------------------------------------
// Snapshot: JSON escaping, merge, Prometheus exposition.

TEST(Snapshot, MetricNamesEscapeThroughJson) {
  MetricsRegistry reg;
  const std::string weird = "with \"quotes\"\\back\nnewline";
  reg.counter(weird)->add(42);
  const std::string json = reg.snapshot().to_json().dump();
  // Round-trip: the exact name must come back as a key.
  const JsonValue doc = JsonValue::parse(json);
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* v = counters->find(weird);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->as_int(), 42);
}

TEST(Snapshot, MergeSumsAndUnions) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("shared")->add(5);
  b.counter("shared")->add(7);
  a.counter("only_a")->add(1);
  b.counter("only_b")->add(2);
  a.gauge("g")->set(3);
  b.gauge("g")->set(4);
  a.histogram("h", {1.0})->observe(0.5);
  b.histogram("h", {1.0})->observe(2.0);
  MetricsSnapshot snap = a.snapshot();
  snap.merge(b.snapshot());
  EXPECT_EQ(snap.find_counter("shared")->value, 12u);
  EXPECT_EQ(snap.find_counter("only_a")->value, 1u);
  EXPECT_EQ(snap.find_counter("only_b")->value, 2u);
  EXPECT_EQ(snap.find_gauge("g")->value, 7);
  const auto* h = snap.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->buckets, (std::vector<std::uint64_t>{1, 1}));
  EXPECT_DOUBLE_EQ(h->sum, 2.5);
  EXPECT_EQ(h->count(), 2u);
}

TEST(Snapshot, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("jobs_total")->add(3);
  reg.histogram("secs", {0.5, 1.0})->observe(0.25);
  const std::string prom = reg.snapshot().to_prometheus();
  EXPECT_NE(prom.find("# TYPE jobs_total counter\njobs_total 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("secs_bucket{le=\"0.5\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("secs_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("secs_count 1"), std::string::npos);
}

TEST(Snapshot, PrometheusSanitizesExoticNames) {
  MetricsRegistry reg;
  reg.counter("weird name-1")->add(1);
  const std::string prom = reg.snapshot().to_prometheus();
  EXPECT_NE(prom.find("weird_name_1 1\n"), std::string::npos);
}

// ---------------------------------------------------------------------
// Flight recorder: ring wraparound and dump ordering.

TEST(FlightChannel, WraparoundKeepsLastCapacityEvents) {
  FlightChannel ch(8);
  for (int i = 0; i < 20; ++i) {
    ch.record(FlightEventKind::kExpand, FlightPruneRule::kNone, i, 100 + i);
  }
  EXPECT_EQ(ch.capacity(), 8u);
  EXPECT_EQ(ch.total(), 20u);
  EXPECT_EQ(ch.dropped(), 12u);
  const std::vector<FlightEvent> events = ch.chronological();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);  // oldest retained is seq 12
    EXPECT_EQ(events[i].value, 112 + static_cast<std::int64_t>(i));
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
}

TEST(FlightChannel, PartialFillIsChronologicalFromZero) {
  FlightChannel ch(8);
  ch.record(FlightEventKind::kIncumbent, FlightPruneRule::kNone, 3, 42);
  ch.record(FlightEventKind::kPrune, FlightPruneRule::kBound, 4, 50);
  EXPECT_EQ(ch.dropped(), 0u);
  const auto events = ch.chronological();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kIncumbent);
  EXPECT_EQ(events[1].rule, FlightPruneRule::kBound);
}

TEST(FlightRecorder, DumpJsonShapeAndOrdering) {
  FlightRecorder rec(8);
  FlightChannel& w0 = rec.channel(0);
  FlightChannel& w1 = rec.channel(1);
  for (int i = 0; i < 12; ++i) {
    w0.record(FlightEventKind::kExpand, FlightPruneRule::kNone, i, i);
  }
  w1.record(FlightEventKind::kPrune, FlightPruneRule::kTransposition, 2, 9);
  const JsonValue dump = rec.dump_json();
  EXPECT_EQ(dump.find("capacity")->as_int(), 8);
  const JsonValue* workers = dump.find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->items().size(), 2u);
  const JsonValue& first = workers->items()[0];
  EXPECT_EQ(first.find("worker")->as_int(), 0);
  EXPECT_EQ(first.find("total")->as_int(), 12);
  EXPECT_EQ(first.find("dropped")->as_int(), 4);
  const JsonValue* events = first.find("events");
  ASSERT_EQ(events->items().size(), 8u);
  std::int64_t prev = -1;
  for (const JsonValue& e : events->items()) {
    const std::int64_t seq = e.find("seq")->as_int();
    EXPECT_LT(prev, seq);
    prev = seq;
  }
  const JsonValue& second = workers->items()[1];
  const JsonValue& ev = second.find("events")->items()[0];
  EXPECT_EQ(ev.find("event")->as_string(), "prune");
  EXPECT_EQ(ev.find("rule")->as_string(), "transposition");
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(5);
  EXPECT_EQ(rec.channel(0).capacity(), 8u);  // min 8
  FlightRecorder rec2(100);
  EXPECT_EQ(rec2.channel(0).capacity(), 128u);
}

// ---------------------------------------------------------------------
// Span log.

TEST(SpanLog, RecordsAndSerializes) {
  SpanLog log;
  {
    ScopedSpan span(&log, "search", "job-1");
  }
  log.record("certify", "", 1.0, 0.5);
  const auto spans = log.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "search");
  EXPECT_EQ(spans[0].tag, "job-1");
  EXPECT_GE(spans[0].dur_s, 0.0);
  const std::string jsonl = log.to_jsonl();
  // One parseable object per line; tag omitted when empty.
  std::size_t lines = 0;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const std::size_t nl = jsonl.find('\n', pos);
    const JsonValue doc = JsonValue::parse(jsonl.substr(pos, nl - pos));
    EXPECT_NE(doc.find("span"), nullptr);
    pos = nl + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"tag\":\"job-1\""), std::string::npos);
}

TEST(SpanLog, NullLogAndEarlyFinishAreSafe) {
  ScopedSpan none(nullptr, "noop");
  none.finish();  // no-op twice
  SpanLog log;
  ScopedSpan s(&log, "phase");
  s.finish();
  s.finish();  // idempotent: still exactly one record
  EXPECT_EQ(log.spans().size(), 1u);
}

TEST(SpanLog, BoundedWithDropCount) {
  SpanLog log(2);
  log.record("a", "", 0, 1);
  log.record("b", "", 0, 1);
  log.record("c", "", 0, 1);
  EXPECT_EQ(log.spans().size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
}

// ---------------------------------------------------------------------
// merge_search_stats: the single reduction used by the parallel engine.

TEST(MergeSearchStats, SumsCountersAndPeaksLeavesSeconds) {
  SearchStats a;
  a.expanded = 10;
  a.tt_hits = 3;
  a.peak_active = 7;
  a.seconds = 1.5;
  SearchStats b;
  b.expanded = 5;
  b.generated = 8;
  b.tt_hits = 2;
  b.peak_active = 4;
  b.peak_memory_bytes = 100;
  b.seconds = 9.0;
  merge_search_stats(a, b);
  EXPECT_EQ(a.expanded, 15u);
  EXPECT_EQ(a.generated, 8u);
  EXPECT_EQ(a.tt_hits, 5u);
  EXPECT_EQ(a.peak_active, 11u);
  EXPECT_EQ(a.peak_memory_bytes, 100u);
  EXPECT_DOUBLE_EQ(a.seconds, 1.5);  // untouched by design
}

TEST(SearchObs, FlushPublishesDeltas) {
  MetricsRegistry reg;
  Observation ob;
  ob.metrics = &reg;
  SearchObs so;
  so.bind(&ob, /*channel=*/0, /*with_flight=*/false);
  ASSERT_TRUE(so.metrics_bound());
  SearchStats s;
  s.expanded = 10;
  s.peak_active = 5;
  so.flush(s);
  s.expanded = 25;
  s.peak_active = 3;  // peaks publish via set_max: high-water stays 5
  so.flush(s);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("parabb_search_expanded_total")->value, 25u);
  EXPECT_EQ(snap.find_gauge("parabb_search_peak_active")->value, 5);
}

TEST(SearchObs, UnboundCallsAreNoOps) {
  SearchObs so;
  so.bind(nullptr, 0);
  EXPECT_FALSE(so.metrics_bound());
  SearchStats s;
  s.expanded = 99;
  so.flush(s);  // must not crash or publish anywhere
  so.expand(1, 2);
  so.prune(FlightPruneRule::kBound, 1, 2);
  so.incumbent(1, 2);
  so.budget_checkpoint(3);
  so.dispose(4);
}

// ---------------------------------------------------------------------
// The central contract: observation must never perturb the search.
// Solver outputs with observe on and off must be byte-identical.

void expect_stats_equal(const SearchStats& a, const SearchStats& b) {
  for (const SearchStatsField& f : kSearchStatsFields) {
    EXPECT_EQ(a.*(f.member), b.*(f.member)) << "field " << f.name;
  }
  EXPECT_EQ(a.peak_active, b.peak_active);
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes);
}

TEST(ObserveDifferential, SequentialEngineByteIdentical) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const TaskGraph g = test::tight_instance(seed);
    const SchedContext ctx = test::make_ctx(g, 3);
    Params p;
    p.transposition.enabled = true;

    const SearchResult off = solve_bnb(ctx, p);

    MetricsRegistry reg;
    FlightRecorder rec(64);
    Observation ob;
    ob.metrics = &reg;
    ob.recorder = &rec;
    Params p_on = p;
    p_on.observe = &ob;
    const SearchResult on = solve_bnb(ctx, p_on);

    EXPECT_EQ(on.found_solution, off.found_solution);
    EXPECT_EQ(on.best_cost, off.best_cost);
    EXPECT_EQ(on.proved, off.proved);
    EXPECT_EQ(on.certified_lower_bound, off.certified_lower_bound);
    EXPECT_EQ(on.reason, off.reason);
    expect_stats_equal(on.stats, off.stats);
    ASSERT_TRUE(on.found_solution);
    EXPECT_EQ(schedule_to_text(on.best, g), schedule_to_text(off.best, g));

    // And the observed run actually observed something.
    const MetricsSnapshot snap = reg.snapshot();
    const auto* expanded = snap.find_counter("parabb_search_expanded_total");
    ASSERT_NE(expanded, nullptr);
    EXPECT_EQ(expanded->value, off.stats.expanded);
    EXPECT_GT(rec.channel(0).total(), 0u);
  }
}

TEST(ObserveDifferential, ParallelEngineSingleThreadByteIdentical) {
  const TaskGraph g = test::tight_instance(11);
  const SchedContext ctx = test::make_ctx(g, 3);
  ParallelParams pp;
  pp.threads = 1;
  pp.base.transposition.enabled = true;

  const ParallelResult off = solve_bnb_parallel(ctx, pp);

  MetricsRegistry reg;
  FlightRecorder rec(128);
  Observation ob;
  ob.metrics = &reg;
  ob.recorder = &rec;
  ParallelParams pp_on = pp;
  pp_on.base.observe = &ob;
  const ParallelResult on = solve_bnb_parallel(ctx, pp_on);

  EXPECT_EQ(on.found_solution, off.found_solution);
  EXPECT_EQ(on.best_cost, off.best_cost);
  EXPECT_EQ(on.proved, off.proved);
  expect_stats_equal(on.stats, off.stats);
  ASSERT_TRUE(on.found_solution);
  EXPECT_EQ(schedule_to_text(on.best, g), schedule_to_text(off.best, g));

  // Registry totals match the engine's merged stats.
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("parabb_search_expanded_total")->value,
            off.stats.expanded);
  EXPECT_EQ(snap.find_counter("parabb_search_generated_total")->value,
            off.stats.generated);
}

TEST(ObserveDifferential, ParallelEngineMultiThreadSameOptimum) {
  const TaskGraph g = test::tight_instance(3);
  const SchedContext ctx = test::make_ctx(g, 3);
  ParallelParams pp;
  pp.threads = 4;

  const ParallelResult off = solve_bnb_parallel(ctx, pp);

  MetricsRegistry reg;
  Observation ob;
  ob.metrics = &reg;
  ParallelParams pp_on = pp;
  pp_on.base.observe = &ob;
  const ParallelResult on = solve_bnb_parallel(ctx, pp_on);

  // Thread interleaving is nondeterministic, but the proved optimum is
  // not — and observation must not change it.
  ASSERT_TRUE(off.proved);
  ASSERT_TRUE(on.proved);
  EXPECT_EQ(on.best_cost, off.best_cost);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find_counter("parabb_search_expanded_total")->value,
            on.stats.expanded);
}

// The central-queue scheduler (kept as the benchmark baseline) must hold
// the same observe-off/on byte-identical contract as the work-stealing
// default (exercised by ParallelEngineSingleThreadByteIdentical above).
TEST(ObserveDifferential, CentralQueueSingleThreadByteIdentical) {
  const TaskGraph g = test::tight_instance(11);
  const SchedContext ctx = test::make_ctx(g, 3);
  ParallelParams pp;
  pp.threads = 1;
  pp.scheduler = ParallelScheduler::kCentralQueue;

  const ParallelResult off = solve_bnb_parallel(ctx, pp);

  MetricsRegistry reg;
  Observation ob;
  ob.metrics = &reg;
  ParallelParams pp_on = pp;
  pp_on.base.observe = &ob;
  const ParallelResult on = solve_bnb_parallel(ctx, pp_on);

  EXPECT_EQ(on.best_cost, off.best_cost);
  EXPECT_EQ(on.proved, off.proved);
  expect_stats_equal(on.stats, off.stats);
  ASSERT_TRUE(on.found_solution);
  EXPECT_EQ(schedule_to_text(on.best, g), schedule_to_text(off.best, g));
}

// Work-stealing observability surface (ISSUE 8): an observed multi-thread
// run publishes the steal counters and one deque-depth gauge per worker,
// and the counter totals equal the engine's merged stats.
TEST(ObserveParallel, WorkStealingPublishesStealMetricsAndDequeGauges) {
  const TaskGraph g = test::tight_instance(7);
  const SchedContext ctx = test::make_ctx(g, 3);
  MetricsRegistry reg;
  FlightRecorder rec(256);
  Observation ob;
  ob.metrics = &reg;
  ob.recorder = &rec;
  ParallelParams pp;
  pp.threads = 4;
  pp.steal_batch = 1;  // maximize steal traffic
  pp.base.observe = &ob;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  ASSERT_TRUE(r.proved);

  const MetricsSnapshot snap = reg.snapshot();
  const auto* attempted = snap.find_counter("parabb_steals_attempted_total");
  const auto* succeeded = snap.find_counter("parabb_steals_succeeded_total");
  ASSERT_NE(attempted, nullptr);
  ASSERT_NE(succeeded, nullptr);
  EXPECT_EQ(attempted->value, r.stats.steals_attempted);
  EXPECT_EQ(succeeded->value, r.stats.steals_succeeded);
  EXPECT_LE(succeeded->value, attempted->value);
  // One depth gauge per worker, flushed to 0 on worker exit.
  for (int w = 0; w < 4; ++w) {
    const auto* gauge =
        snap.find_gauge("parabb_deque_depth_w" + std::to_string(w));
    ASSERT_NE(gauge, nullptr) << "worker " << w;
    EXPECT_EQ(gauge->value, 0);
  }
}

}  // namespace
}  // namespace parabb
