#include "parabb/experiments/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace parabb {
namespace {

TEST(Spec, ParsesFullDocument) {
  const ExperimentConfig cfg = parse_experiment_spec(R"(
# a comment
workload n=10..14 depth=5..6 degree=2 exec-mean=30 exec-dev=0.5 ccr=2.0
slicing laxity=1.2 base=total
machines 2,4
reps min=4 batch=2 max=10
seed 99
threads 3
limit time=0.5 max-active=1000 max-children=16
variant edf
variant bnb label=mine select=llb branch=bf1 lb=lb2 ub=inf br=0.1 sort=0 llb-ties=newest
)");
  EXPECT_EQ(cfg.workload.n_min, 10);
  EXPECT_EQ(cfg.workload.n_max, 14);
  EXPECT_EQ(cfg.workload.depth_min, 5);
  EXPECT_EQ(cfg.workload.degree_max, 2);
  EXPECT_DOUBLE_EQ(cfg.workload.exec_mean, 30.0);
  EXPECT_DOUBLE_EQ(cfg.workload.ccr, 2.0);
  EXPECT_DOUBLE_EQ(cfg.slicing.laxity, 1.2);
  EXPECT_EQ(cfg.slicing.base, LaxityBase::kTotalWork);
  EXPECT_EQ(cfg.machine_sizes, (std::vector<int>{2, 4}));
  EXPECT_EQ(cfg.min_reps, 4);
  EXPECT_EQ(cfg.batch_reps, 2);
  EXPECT_EQ(cfg.max_reps, 10);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.threads, 3u);

  ASSERT_EQ(cfg.variants.size(), 2u);
  EXPECT_EQ(cfg.variants[0].kind, AlgorithmVariant::Kind::kEdf);
  const AlgorithmVariant& v = cfg.variants[1];
  EXPECT_EQ(v.label, "mine");
  EXPECT_EQ(v.params.select, SelectRule::kLLB);
  EXPECT_EQ(v.params.branch, BranchRule::kBF1);
  EXPECT_EQ(v.params.lb, LowerBound::kLB2);
  EXPECT_EQ(v.params.ub, UpperBoundInit::kInfinite);
  EXPECT_DOUBLE_EQ(v.params.br, 0.1);
  EXPECT_FALSE(v.params.sort_children);
  EXPECT_TRUE(v.params.llb_tie_newest);
  EXPECT_DOUBLE_EQ(v.params.rb.time_limit_s, 0.5);
  EXPECT_EQ(v.params.rb.max_active, 1000u);
  EXPECT_EQ(v.params.rb.max_children, 16);
}

TEST(Spec, SingleValueRanges) {
  const ExperimentConfig cfg = parse_experiment_spec(
      "workload n=8 depth=3\nvariant edf\n");
  EXPECT_EQ(cfg.workload.n_min, 8);
  EXPECT_EQ(cfg.workload.n_max, 8);
  EXPECT_EQ(cfg.workload.depth_min, 3);
}

TEST(Spec, DefaultsMatchThePaper) {
  const ExperimentConfig cfg = parse_experiment_spec("variant edf\n");
  EXPECT_EQ(cfg.workload.n_min, 12);
  EXPECT_EQ(cfg.workload.n_max, 16);
  EXPECT_DOUBLE_EQ(cfg.slicing.laxity, 1.5);
  EXPECT_EQ(cfg.machine_sizes, (std::vector<int>{2, 3, 4}));
}

TEST(Spec, ExplicitUpperBound) {
  const ExperimentConfig cfg =
      parse_experiment_spec("variant bnb ub=500\n");
  EXPECT_EQ(cfg.variants[0].params.ub, UpperBoundInit::kExplicit);
  EXPECT_EQ(cfg.variants[0].params.explicit_ub, 500);
}

TEST(Spec, ErrorsCarryLineNumbers) {
  try {
    parse_experiment_spec("variant edf\nbogus directive\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Spec, RejectsBadInput) {
  EXPECT_THROW(parse_experiment_spec(""), std::runtime_error);  // no variant
  EXPECT_THROW(parse_experiment_spec("variant teleport\n"),
               std::runtime_error);
  EXPECT_THROW(parse_experiment_spec("variant bnb select=quantum\n"),
               std::runtime_error);
  EXPECT_THROW(parse_experiment_spec("workload n=abc\nvariant edf\n"),
               std::runtime_error);
  EXPECT_THROW(parse_experiment_spec("machines\nvariant edf\n"),
               std::runtime_error);
  EXPECT_THROW(
      parse_experiment_spec("workload n=8 n=9\nvariant edf\n"),
      std::runtime_error);  // duplicate attribute
  EXPECT_THROW(parse_experiment_spec("variant edf\nseed\n"),
               std::runtime_error);
}

TEST(Spec, LimitsApplyToEveryBnbVariant) {
  const ExperimentConfig cfg = parse_experiment_spec(
      "limit time=2.5\nvariant bnb label=a\nvariant bnb label=b\n");
  for (const AlgorithmVariant& v : cfg.variants) {
    EXPECT_DOUBLE_EQ(v.params.rb.time_limit_s, 2.5);
  }
}

TEST(Spec, ParsedSpecActuallyRuns) {
  const ExperimentConfig cfg = parse_experiment_spec(R"(
workload n=6..7 depth=3
machines 2
reps min=2 batch=2 max=4
seed 5
variant edf
variant bnb label=opt
)");
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_EQ(r.cells.size(), 2u);
  EXPECT_GT(r.cells[1][0].vertices.count(), 0u);
  EXPECT_LE(r.cells[1][0].lateness.mean(),
            r.cells[0][0].lateness.mean() + 1e-9);
}

TEST(Spec, LoadMissingFileThrows) {
  EXPECT_THROW(load_experiment_spec("/no/such.spec"), std::runtime_error);
}

}  // namespace
}  // namespace parabb
