#include "parabb/support/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

TEST(ThreadPool, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleWithNoJobsReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, JobsActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  pool.parallel_for(8, [&](std::size_t) {
    const int now = inside.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    inside.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, SubmittingEmptyJobThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), precondition_error);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ShutdownDrainRunsEveryAcceptedJob) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  EXPECT_EQ(pool.shutdown(ThreadPool::DrainPolicy::kDrain), 0u);
  EXPECT_EQ(count.load(), 50);
  EXPECT_TRUE(pool.stopped());
}

TEST(ThreadPool, ShutdownDiscardDropsQueuedButFinishesRunning) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  // shutdown() joins, and the blocker only finishes once released — so
  // the release must come from a second thread, after stop is observed.
  std::size_t discarded = 0;
  std::thread shut([&] {
    discarded = pool.shutdown(ThreadPool::DrainPolicy::kDiscard);
  });
  while (!pool.stopped()) std::this_thread::yield();
  release.store(true);
  shut.join();
  EXPECT_EQ(discarded, 20u);  // nothing queued ran...
  EXPECT_EQ(ran.load(), 1);   // ...but the running job finished
}

TEST(ThreadPool, ShutdownIsIdempotentAndBlocksSubmit) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  EXPECT_EQ(pool.shutdown(), 0u);
  EXPECT_EQ(pool.shutdown(ThreadPool::DrainPolicy::kDiscard), 0u);
  EXPECT_THROW(pool.submit([] {}), precondition_error);
  pool.wait_idle();  // must not hang after shutdown
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, DestructorDrains) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 30; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 30);
}

}  // namespace
}  // namespace parabb
