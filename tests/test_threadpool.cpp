#include "parabb/support/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <vector>

#include "parabb/support/assert.hpp"

namespace parabb {
namespace {

TEST(ThreadPool, RunsAllSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleWithNoJobsReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, JobsActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  pool.parallel_for(8, [&](std::size_t) {
    const int now = inside.fetch_add(1) + 1;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    inside.fetch_sub(1);
  });
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, SubmittingEmptyJobThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), precondition_error);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace parabb
