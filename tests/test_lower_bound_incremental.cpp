// Differential/property suite for IncrementalLB (bnb/lower_bound.hpp).
//
// The incremental evaluator must agree with the from-scratch
// lower_bound_cost on every reachable state, for every bound function, or
// the engines silently change their pruning decisions. The tests here pin
// the two implementations to each other over randomized graphs and
// place/unplace walks (the fingerprint_from_scratch oracle pattern), check
// the cutoff contract, and then verify the engines end-to-end: with
// incremental bounding on and off they must return bit-identical results.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/lower_bound.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/sched/validator.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

constexpr LowerBound kAllBounds[] = {LowerBound::kLB0, LowerBound::kLB1,
                                     LowerBound::kLB2};

/// One random place/unplace walk over `ctx`, asserting at every step that
/// the maintained incremental evaluator and a freshly attached one both
/// agree with lower_bound_cost for all three bound functions.
void run_walk(const SchedContext& ctx, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  PartialSchedule ps = PartialSchedule::empty(ctx);
  IncrementalLB inc(ctx);
  inc.attach(ps);
  std::vector<TaskId> placed;  // LIFO discipline, as unplace requires

  const auto check_all = [&] {
    for (const LowerBound kind : kAllBounds) {
      const Time expect = lower_bound_cost(ctx, ps, kind);
      ASSERT_EQ(inc.evaluate(ps, kind), expect)
          << "maintained scratch diverged, kind="
          << static_cast<int>(kind) << " depth=" << ps.count();
      IncrementalLB fresh(ctx);
      fresh.attach(ps);
      ASSERT_EQ(fresh.evaluate(ps, kind), expect)
          << "fresh attach diverged, kind=" << static_cast<int>(kind)
          << " depth=" << ps.count();
    }
  };

  check_all();
  for (int step = 0; step < 4 * ctx.task_count(); ++step) {
    const TaskSet ready = ps.ready();
    const bool can_place = !ready.empty();
    const bool can_unplace = !placed.empty();
    if (!can_place && !can_unplace) break;
    const bool do_place =
        can_place && (!can_unplace || (rng() & 3u) != 0);  // bias forward
    if (do_place) {
      std::vector<TaskId> candidates;
      for (const TaskId t : ready) candidates.push_back(t);
      const TaskId t = candidates[rng() % candidates.size()];
      const ProcId p =
          static_cast<ProcId>(rng() % static_cast<unsigned>(ctx.proc_count()));
      inc.place(ps, t, p);
      placed.push_back(t);
    } else {
      inc.unplace(ps, placed.back());
      placed.pop_back();
    }
    check_all();
  }
}

TEST(IncrementalLB, MatchesScratchOnRandomWalks) {
  // 70 seeds x 3 sizes = 210 distinct random graphs (>= the 200 the issue
  // asks for), each exercised by a full place/unplace walk.
  for (std::uint64_t seed = 0; seed < 70; ++seed) {
    for (const int n : {6, 9, 12}) {
      const TaskGraph g = test::tiny_random(seed, n, 3 + n / 4);
      const int procs = 2 + static_cast<int>(seed % 3);
      const SchedContext ctx = test::make_ctx(g, procs);
      run_walk(ctx, seed * 1000 + static_cast<std::uint64_t>(n));
      if (HasFatalFailure()) return;
    }
  }
}

TEST(IncrementalLB, MatchesScratchOnHandBuiltGraphs) {
  for (const TaskGraph& g :
       {test::small_diamond(), test::independent_tasks(7)}) {
    for (const int procs : {1, 2, 4}) {
      const SchedContext ctx = test::make_ctx(g, procs);
      run_walk(ctx, 99);
      if (HasFatalFailure()) return;
    }
  }
}

// The cutoff contract: when the returned value is < cutoff it equals the
// exact bound; otherwise it is some value in [cutoff, exact]. Either way
// the `bound >= cutoff` prune decision matches the exact evaluation.
TEST(IncrementalLB, CutoffIsSound) {
  std::mt19937_64 rng(7);
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const TaskGraph g = test::tiny_random(seed, 10, 4);
    const SchedContext ctx = test::make_ctx(g, 3);
    PartialSchedule ps = PartialSchedule::empty(ctx);
    IncrementalLB inc(ctx);
    inc.attach(ps);
    // Walk to a random interior depth.
    const int depth = static_cast<int>(rng() % 8);
    for (int i = 0; i < depth && !ps.ready().empty(); ++i) {
      std::vector<TaskId> candidates;
      for (const TaskId t : ps.ready()) candidates.push_back(t);
      inc.place(ps, candidates[rng() % candidates.size()],
                static_cast<ProcId>(rng() % 3u));
    }
    for (const LowerBound kind : kAllBounds) {
      const Time exact = lower_bound_cost(ctx, ps, kind);
      for (const Time cutoff : {exact - 3, exact - 1, exact, exact + 1,
                                exact + 5, kTimeInf}) {
        const Time v = inc.evaluate(ps, kind, cutoff);
        if (v < cutoff) {
          EXPECT_EQ(v, exact) << "below-cutoff result must be exact";
        } else {
          EXPECT_LE(cutoff, v);
          EXPECT_LE(v, exact) << "result must stay a valid lower bound";
        }
        EXPECT_EQ(v >= cutoff, exact >= cutoff)
            << "prune decision diverged at cutoff " << cutoff;
      }
    }
  }
}

/// Asserts two search results are bit-identical: same incumbent, same
/// certificate, same termination, same per-counter stats, same schedule
/// entries down to every (task, proc, start, finish).
void expect_identical(const SearchResult& a, const SearchResult& b,
                      int task_count) {
  EXPECT_EQ(a.found_solution, b.found_solution);
  EXPECT_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.proved, b.proved);
  EXPECT_EQ(a.certified_lower_bound, b.certified_lower_bound);
  EXPECT_EQ(a.reason, b.reason);
  EXPECT_EQ(a.stats.expanded, b.stats.expanded);
  EXPECT_EQ(a.stats.generated, b.stats.generated);
  EXPECT_EQ(a.stats.activated, b.stats.activated);
  EXPECT_EQ(a.stats.goals, b.stats.goals);
  EXPECT_EQ(a.stats.goal_updates, b.stats.goal_updates);
  EXPECT_EQ(a.stats.pruned_children, b.stats.pruned_children);
  EXPECT_EQ(a.stats.pruned_active, b.stats.pruned_active);
  EXPECT_EQ(a.stats.disposed, b.stats.disposed);
  EXPECT_EQ(a.stats.peak_active, b.stats.peak_active);
  if (!a.found_solution || !b.found_solution) return;
  for (TaskId t = 0; t < task_count; ++t) {
    const ScheduledTask& ea = a.best.entry(t);
    const ScheduledTask& eb = b.best.entry(t);
    EXPECT_EQ(ea.proc, eb.proc) << "task " << t;
    EXPECT_EQ(ea.start, eb.start) << "task " << t;
    EXPECT_EQ(ea.finish, eb.finish) << "task " << t;
  }
}

// Whole-engine differential: the incremental path (short-circuit and all)
// must reproduce the from-scratch path decision for decision.
TEST(IncrementalLB, SequentialEngineBitIdentical) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    for (const int procs : {2, 3}) {
      const TaskGraph g = seed % 2 == 0 ? test::paper_instance(seed)
                                        : test::tight_instance(seed);
      const SchedContext ctx = test::make_ctx(g, procs);
      for (const LowerBound lb : {LowerBound::kLB1, LowerBound::kLB2}) {
        for (const SelectRule sel : {SelectRule::kLIFO, SelectRule::kLLB}) {
          Params on;
          on.lb = lb;
          on.select = sel;
          on.incremental_lb = true;
          Params off = on;
          off.incremental_lb = false;
          expect_identical(solve_bnb(ctx, on), solve_bnb(ctx, off),
                           ctx.task_count());
        }
      }
    }
  }
}

TEST(IncrementalLB, SequentialEngineBitIdenticalUnderBrAndNoElim) {
  const TaskGraph g = test::tight_instance(11);
  const SchedContext ctx = test::make_ctx(g, 2);
  for (const double br : {0.0, 0.1}) {
    for (const ElimRule elim : {ElimRule::kUDBAS, ElimRule::kNone}) {
      Params on;
      on.lb = LowerBound::kLB2;
      on.br = br;
      on.elim = elim;
      on.rb.max_generated = 200000;  // keep E=none runs bounded
      on.incremental_lb = true;
      Params off = on;
      off.incremental_lb = false;
      expect_identical(solve_bnb(ctx, on), solve_bnb(ctx, off),
                       ctx.task_count());
    }
  }
}

// Refactored-engine determinism on the §4.1 workload: 1/4/8 threads with
// incremental bounding on and off all land on the sequential engine's
// incumbent, and the single-worker run (which is fully deterministic)
// returns a byte-identical schedule in both modes.
TEST(IncrementalLB, ParallelEnginesAgreeAcrossThreadCounts) {
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    const TaskGraph g = test::paper_instance(seed);
    const Machine machine = make_shared_bus_machine(3);
    const SchedContext ctx(g, machine);
    const SearchResult seq = solve_bnb(ctx, Params{});

    Schedule one_thread_on;
    for (const bool incremental : {true, false}) {
      for (const int threads : {1, 4, 8}) {
        ParallelParams pp;
        pp.threads = threads;
        pp.base.incremental_lb = incremental;
        const ParallelResult r = solve_bnb_parallel(ctx, pp);
        ASSERT_TRUE(r.found_solution);
        EXPECT_TRUE(r.proved);
        EXPECT_EQ(r.best_cost, seq.best_cost)
            << "seed " << seed << " threads " << threads << " incremental "
            << incremental;
        const ValidationReport rep = validate_schedule(r.best, g, machine);
        EXPECT_TRUE(rep.structurally_sound) << rep.error;
        EXPECT_EQ(max_lateness(r.best, g), r.best_cost);
        if (threads == 1) {
          if (incremental) {
            one_thread_on = r.best;
          } else {
            for (TaskId t = 0; t < ctx.task_count(); ++t) {
              EXPECT_EQ(one_thread_on.entry(t).proc, r.best.entry(t).proc);
              EXPECT_EQ(one_thread_on.entry(t).start, r.best.entry(t).start);
              EXPECT_EQ(one_thread_on.entry(t).finish,
                        r.best.entry(t).finish);
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace parabb
