// Cross-feature integration: extensions composed with each other — the
// combinations a downstream user will actually hit.
#include <gtest/gtest.h>

#include "parabb/bnb/brute_force.hpp"
#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/hooks.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/bnb/trace.hpp"
#include "parabb/platform/topology.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/sched/improve.hpp"
#include "parabb/sched/schedule_io.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/sim/simulate.hpp"
#include "parabb/taskgraph/periodic.hpp"
#include "parabb/taskgraph/transforms.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

TEST(CrossFeatures, ImproveRespectsTopologyDelays) {
  // The improver's re-timing must charge hop-scaled delays: on a line,
  // relocating a heavy-message consumer far from its producer must never
  // be accepted as an "improvement".
  for (std::uint64_t seed = 800; seed < 806; ++seed) {
    const TaskGraph g = test::tight_instance(seed);
    const Machine machine = make_network_machine(NetworkTopology::line(3));
    const SchedContext ctx(g, machine);
    const EdfResult edf = schedule_edf(ctx);
    const ImproveResult imp = improve_schedule(ctx, edf.schedule);
    EXPECT_LE(imp.max_lateness, edf.max_lateness);
    const ValidationReport rep =
        validate_schedule(imp.schedule, g, machine);
    EXPECT_TRUE(rep.structurally_sound) << rep.error << " seed " << seed;
  }
}

TEST(CrossFeatures, SimulationOnTopologySchedules) {
  const TaskGraph g = test::paper_instance(31);
  const Machine machine = make_network_machine(NetworkTopology::ring(4));
  const SchedContext ctx(g, machine);
  const EdfResult edf = schedule_edf(ctx);
  SimulationConfig cfg;
  cfg.runs = 25;
  const SimulationReport rep = simulate_schedule(ctx, edf.schedule, cfg);
  EXPECT_LE(rep.lateness.max(),
            static_cast<double>(rep.planned_lateness));
}

TEST(CrossFeatures, ScheduleIoRoundTripsTopologyPlans) {
  const TaskGraph g = test::paper_instance(32);
  const Machine machine = make_network_machine(NetworkTopology::line(4));
  const SchedContext ctx(g, machine);
  Params p;
  p.rb.time_limit_s = 5.0;
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_TRUE(r.found_solution);
  const Schedule restored =
      schedule_from_text(schedule_to_text(r.best, g), g);
  const ValidationReport rep = validate_schedule(restored, g, machine);
  EXPECT_TRUE(rep.structurally_sound) << rep.error;
  EXPECT_EQ(max_lateness(restored, g), r.best_cost);
}

TEST(CrossFeatures, TransitiveReductionPreservesOptimalCost) {
  // Removing precedence-implied arcs must not change the optimal
  // schedule cost when the arcs carry no messages.
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    GeneratorConfig cfg;
    cfg.n_min = cfg.n_max = 7;
    cfg.depth_min = cfg.depth_max = 3;
    cfg.ccr = 0.0;  // all arcs removable
    GeneratedGraph gen = generate_graph(cfg, seed);
    assign_deadlines_slicing(gen.graph);
    const TaskGraph reduced = transitive_reduction(gen.graph);

    const SchedContext a = test::make_ctx(gen.graph, 2);
    const SchedContext b = test::make_ctx(reduced, 2);
    EXPECT_EQ(brute_force(a).best_cost, brute_force(b).best_cost)
        << "seed " << seed;
  }
}

TEST(CrossFeatures, ChainClusteringNeverBeatsTheOriginalOptimum) {
  // Clustering forces chain members onto one processor back to back, so
  // its optimum is a restriction of the original solution space.
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    GeneratorConfig cfg;
    cfg.n_min = cfg.n_max = 7;
    cfg.depth_min = cfg.depth_max = 4;
    cfg.ccr = 0.0;
    GeneratedGraph gen = generate_graph(cfg, seed);
    assign_deadlines_slicing(gen.graph);
    const ChainClustering cc = cluster_linear_chains(gen.graph);
    if (cc.chains_collapsed == 0) continue;

    const SchedContext orig = test::make_ctx(gen.graph, 2);
    const SchedContext clustered = test::make_ctx(cc.clustered, 2);
    EXPECT_LE(brute_force(orig).best_cost,
              brute_force(clustered).best_cost)
        << "seed " << seed;
  }
}

TEST(CrossFeatures, TraceWithBrAndDominance) {
  const TaskGraph g = test::tight_instance(33);
  const SchedContext ctx = test::make_ctx(g, 2);
  SearchTrace trace(1u << 20);
  Params p;
  p.br = 0.15;
  p.dominance = make_processor_symmetry_dominance();
  p.trace = &trace;
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_TRUE(r.found_solution);
  EXPECT_GT(trace.total_events(), 0u);
  // Pruned-children events include dominance kills; counters must agree
  // when nothing was dropped from the ring.
  if (trace.dropped() == 0) {
    std::uint64_t prunes = 0;
    for (const TraceRecord& rec : trace.chronological()) {
      if (rec.event == TraceEvent::kPruneChild) ++prunes;
    }
    EXPECT_EQ(prunes, r.stats.pruned_children);
  }
}

TEST(CrossFeatures, ParallelEngineOnTopologies) {
  const TaskGraph g = test::paper_instance(34);
  const Machine machine = make_network_machine(NetworkTopology::ring(3));
  const SchedContext ctx(g, machine);
  const SearchResult seq = solve_bnb(ctx, Params{});
  ParallelParams pp;
  pp.threads = 3;
  const ParallelResult par = solve_bnb_parallel(ctx, pp);
  EXPECT_EQ(par.best_cost, seq.best_cost);
}

TEST(CrossFeatures, FeasibilitySearchOnPeriodicExpansion) {
  // Hyperperiod job graphs flow through the feasibility query unchanged.
  const TaskGraph periodic = GraphBuilder()
                                 .task("p", 4, 9, 0, 10)
                                 .task("q", 3, 8, 0, 20)
                                 .build();
  const HyperperiodExpansion expansion = expand_hyperperiod(periodic);
  const SchedContext ctx = test::make_ctx(expansion.jobs, 1);
  const SearchResult r = solve_bnb(ctx, feasibility_params());
  // p needs [0,9] and [10,19]; q needs 3 units by t=8: P0 can do
  // p#1 [0,4], q#1 [4,7], p#2 [10,14] — feasible on one processor.
  ASSERT_TRUE(r.found_solution);
  EXPECT_LE(r.best_cost, 0);
  const ValidationReport rep = validate_schedule(
      r.best, expansion.jobs, make_shared_bus_machine(1));
  EXPECT_TRUE(rep.valid()) << rep.error;
}

}  // namespace
}  // namespace parabb
