#include "parabb/sched/partial_schedule.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace parabb {
namespace {

TEST(PartialSchedule, EmptyState) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  const PartialSchedule ps = PartialSchedule::empty(ctx);
  EXPECT_EQ(ps.count(), 0);
  EXPECT_FALSE(ps.complete(ctx));
  EXPECT_TRUE(ps.scheduled().empty());
  EXPECT_TRUE(ps.ready().contains(0));
  EXPECT_EQ(ps.ready().size(), 1);
  EXPECT_EQ(ps.proc_avail(0), 0);
  EXPECT_EQ(ps.min_proc_avail(ctx), 0);
  EXPECT_EQ(ps.max_lateness_scheduled(ctx), kTimeNegInf);
}

TEST(PartialSchedule, PlaceRespectsArrival) {
  // Task b arrives at t=10 even though P0 is free at 0.
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  PartialSchedule ps = PartialSchedule::empty(ctx);
  EXPECT_EQ(ps.place(ctx, 0, 0), 0);  // a on P0: [0,10)
  // b arrives at 10, pred a finishes at 10 (same proc, no comm).
  EXPECT_EQ(ps.earliest_start(ctx, 1, 0), 10);
  // On P1 the cross-proc message (5 items) delays data to t=15.
  EXPECT_EQ(ps.earliest_start(ctx, 1, 1), 15);
}

TEST(PartialSchedule, PlaceAppendsAfterProcessorTail) {
  const SchedContext ctx = test::make_ctx(test::independent_tasks(3), 1);
  PartialSchedule ps = PartialSchedule::empty(ctx);
  EXPECT_EQ(ps.place(ctx, 0, 0), 0);
  EXPECT_EQ(ps.place(ctx, 1, 0), 10);  // appended after task 0
  EXPECT_EQ(ps.place(ctx, 2, 0), 20);
  EXPECT_EQ(ps.proc_avail(0), 30);
  EXPECT_TRUE(ps.complete(ctx));
}

TEST(PartialSchedule, ReadySetEvolves) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  PartialSchedule ps = PartialSchedule::empty(ctx);
  ps.place(ctx, 0, 0);
  EXPECT_TRUE(ps.ready().contains(1));
  EXPECT_TRUE(ps.ready().contains(2));
  EXPECT_FALSE(ps.ready().contains(3));
  ps.place(ctx, 1, 0);
  EXPECT_FALSE(ps.ready().contains(3));  // c still missing
  ps.place(ctx, 2, 1);
  EXPECT_TRUE(ps.ready().contains(3));
}

TEST(PartialSchedule, CommChargedOnlyAcrossProcessors) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  PartialSchedule same = PartialSchedule::empty(ctx);
  same.place(ctx, 0, 0);
  same.place(ctx, 1, 0);  // a,b co-located: b starts at 10
  EXPECT_EQ(same.start(1), 10);

  PartialSchedule cross = PartialSchedule::empty(ctx);
  cross.place(ctx, 0, 0);
  cross.place(ctx, 1, 1);  // b remote: data arrives 10+5
  EXPECT_EQ(cross.start(1), 15);
}

TEST(PartialSchedule, FinishIsStartPlusExec) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  PartialSchedule ps = PartialSchedule::empty(ctx);
  ps.place(ctx, 0, 1);
  EXPECT_EQ(ps.finish(ctx, 0), ps.start(0) + 10);
  EXPECT_EQ(ps.proc(0), 1);
}

TEST(PartialSchedule, MaxLatenessTracksScheduledPrefix) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  PartialSchedule ps = PartialSchedule::empty(ctx);
  ps.place(ctx, 0, 0);  // finish 10, deadline 15 -> lateness -5
  EXPECT_EQ(ps.max_lateness_scheduled(ctx), -5);
  ps.place(ctx, 1, 0);  // [10,30), deadline 50 -> -20; max stays -5
  EXPECT_EQ(ps.max_lateness_scheduled(ctx), -5);
}

TEST(PartialSchedule, MinProcAvailIsAdaptive) {
  const SchedContext ctx = test::make_ctx(test::independent_tasks(4), 3);
  PartialSchedule ps = PartialSchedule::empty(ctx);
  ps.place(ctx, 0, 0);
  ps.place(ctx, 1, 1);
  EXPECT_EQ(ps.min_proc_avail(ctx), 0);  // P2 untouched
  ps.place(ctx, 2, 2);
  EXPECT_EQ(ps.min_proc_avail(ctx), 10);
}

TEST(PartialSchedule, EqualityComparesPlacementsOnly) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  PartialSchedule a = PartialSchedule::empty(ctx);
  PartialSchedule b = PartialSchedule::empty(ctx);
  EXPECT_EQ(a, b);
  a.place(ctx, 0, 0);
  EXPECT_NE(a, b);
  b.place(ctx, 0, 0);
  EXPECT_EQ(a, b);
  // Same task on a different processor differs.
  PartialSchedule c = PartialSchedule::empty(ctx);
  c.place(ctx, 0, 1);
  EXPECT_NE(a, c);
}

TEST(PartialSchedule, CopyIsIndependent) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  PartialSchedule a = PartialSchedule::empty(ctx);
  a.place(ctx, 0, 0);
  PartialSchedule b = a;
  b.place(ctx, 1, 0);
  EXPECT_EQ(a.count(), 1);
  EXPECT_EQ(b.count(), 2);
}

}  // namespace
}  // namespace parabb
