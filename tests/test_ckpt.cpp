// Crash-safe checkpoint/resume suite (docs/robustness.md, "Recovery").
//
// The load-bearing contracts:
//  * a resumed run reaches the same optimal cost — and a CERTIFIED
//    certificate — as the uninterrupted run, for the sequential engine
//    and both parallel schedulers;
//  * a truncated or bit-flipped snapshot is rejected with SnapshotError
//    (CRC / framing), never a crash and never a silently wrong state;
//  * checkpointing off (Params::ckpt == nullptr) and armed-but-never-due
//    are byte-identical to the baseline search;
//  * the service's job journal replays to the correct pending/completed
//    split, and a journal-armed service resumes a job from its per-job
//    snapshot and removes it once the job is terminal.
//
// tools/crash_sweep.sh exercises the same properties through real
// SIGKILLs of the CLI; this suite covers the in-process layer.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/ckpt/checkpoint.hpp"
#include "parabb/ckpt/journal.hpp"
#include "parabb/ckpt/snapshot.hpp"
#include "parabb/obs/metrics.hpp"
#include "parabb/service/service.hpp"
#include "parabb/support/assert.hpp"
#include "parabb/verify/certificate.hpp"
#include "parabb/verify/verifier.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

/// Unique scratch path under the system temp dir, removed on destruction.
struct ScratchDir {
  std::filesystem::path dir;
  explicit ScratchDir(const std::string& tag) {
    dir = std::filesystem::temp_directory_path() /
          ("parabb_ckpt_test_" + tag + "_" +
           std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  std::string file(const std::string& name) const {
    return (dir / name).string();
  }
};

/// The crash-sweep workload (tests/data/crash.tgf is this same graph):
/// paper-config generator widened to 20-24 tasks at CCR 2 — a ~1 s
/// 3-processor solve, long enough that a time-limited partial run stops
/// genuinely mid-search.
TaskGraph crash_graph() {
  GeneratorConfig cfg = paper_config();
  cfg.n_min = 20;
  cfg.n_max = 24;
  cfg.depth_min = 8;
  cfg.depth_max = 10;
  cfg.ccr = 2.0;
  return generate_graph(cfg, 1017).graph;
}

/// Runs a budget-stopped partial search that writes one snapshot at the
/// first poll point, then returns the loaded snapshot.
SearchSnapshot partial_snapshot(const SchedContext& ctx,
                                const std::string& path,
                                std::uint64_t budget = 20000) {
  CheckpointController ckpt(path, /*every_ms=*/0);
  ckpt.request_now();
  Params params;
  params.ckpt = &ckpt;
  params.rb.max_generated = budget;
  const SearchResult r = solve_bnb(ctx, params);
  (void)r;
  EXPECT_GE(ckpt.writes(), 1u);
  return load_snapshot(path);
}

// ---------------------------------------------------------------------------
// Snapshot format: round trip, corruption rejection
// ---------------------------------------------------------------------------

TEST(Snapshot, RoundTripPreservesEveryField) {
  const ScratchDir tmp("roundtrip");
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);
  const SearchSnapshot snap =
      partial_snapshot(ctx, tmp.file("seq.ckpt"));

  EXPECT_EQ(snap.engine, SnapshotEngine::kSequential);
  EXPECT_FALSE(snap.frontier.empty());
  EXPECT_GT(snap.stats.generated, 0u);

  // Every stored frontier state must replay through the scheduling
  // operation (states are paths, not memory dumps).
  for (const SnapshotVertex& v : snap.frontier) {
    EXPECT_NO_THROW(replay_path(ctx, v.path));
  }

  // decode(encode(s)) == s, byte-for-byte on re-encode.
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  const SearchSnapshot back = decode_snapshot(bytes);
  EXPECT_EQ(encode_snapshot(back), bytes);
  EXPECT_EQ(back.instance, snap.instance);
  EXPECT_EQ(back.found, snap.found);
  EXPECT_EQ(back.incumbent_cost, snap.incumbent_cost);
  EXPECT_EQ(back.frontier.size(), snap.frontier.size());
  EXPECT_EQ(back.stats.generated, snap.stats.generated);
}

TEST(Snapshot, CorruptionIsRejectedNeverACrash) {
  const ScratchDir tmp("corrupt");
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);
  const std::string path = tmp.file("seq.ckpt");
  partial_snapshot(ctx, path);

  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 64u);

  // Truncation at every framing boundary and mid-payload.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{7}, std::size_t{15},
        bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep));
    EXPECT_THROW(decode_snapshot(cut), SnapshotError) << "keep=" << keep;
  }
  // A single flipped payload bit must trip the CRC.
  for (const std::size_t at : {std::size_t{21}, bytes.size() / 2,
                               bytes.size() - 2}) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[at] ^= 0x40u;
    EXPECT_THROW(decode_snapshot(flipped), SnapshotError) << "at=" << at;
  }
  // Bad magic.
  std::vector<std::uint8_t> bad = bytes;
  bad[0] = 'X';
  EXPECT_THROW(decode_snapshot(bad), SnapshotError);
  // Missing file.
  EXPECT_THROW(load_snapshot(tmp.file("nonexistent.ckpt")), SnapshotError);
}

TEST(Snapshot, ResumeRefusesForeignInstance) {
  const ScratchDir tmp("foreign");
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);
  const SearchSnapshot snap =
      partial_snapshot(ctx, tmp.file("seq.ckpt"));

  // Same instance, different 9-tuple member: not a match.
  Params other;
  other.lb = LowerBound::kLB0;
  EXPECT_FALSE(snapshot_matches(snap, ctx, other));
  EXPECT_TRUE(snapshot_matches(snap, ctx, Params{}));

  // The engine enforces the same check as a precondition.
  Params resume_params;
  resume_params.lb = LowerBound::kLB0;
  resume_params.resume = &snap;
  EXPECT_THROW(solve_bnb(ctx, resume_params), precondition_error);
}

// ---------------------------------------------------------------------------
// Resume reaches the uninterrupted result (all engines)
// ---------------------------------------------------------------------------

TEST(Resume, InterruptedRunsReachUninterruptedOptimum) {
  const ScratchDir tmp("grid");
  const TaskGraph g = crash_graph();
  const Machine m = make_shared_bus_machine(3);
  const SchedContext ctx(g, m);

  Params base;
  const SearchResult clean = solve_bnb(ctx, base);
  ASSERT_TRUE(clean.proved);

  struct EngineCase {
    const char* name;
    int threads;  // 0 = sequential
    ParallelScheduler scheduler;
  };
  const EngineCase cases[] = {
      {"sequential", 0, ParallelScheduler::kWorkStealing},
      {"ws4", 4, ParallelScheduler::kWorkStealing},
      {"central4", 4, ParallelScheduler::kCentralQueue},
  };
  for (const EngineCase& c : cases) {
    const std::string path = tmp.file(std::string(c.name) + ".ckpt");
    // Partial run: periodic snapshots, stopped by a short time limit.
    // Certification is armed here too, so the resumed builder inherits
    // the pre-crash cut log (certificate continuity).
    CheckpointController ckpt(path, /*every_ms=*/75);
    CertificateBuilder partial_builder;
    Params partial = base;
    partial.ckpt = &ckpt;
    partial.certify = &partial_builder;
    partial.rb.time_limit_s = 0.4;
    if (c.threads == 0) {
      solve_bnb(ctx, partial);
    } else {
      ParallelParams pp;
      pp.base = partial;
      pp.threads = c.threads;
      pp.scheduler = c.scheduler;
      solve_bnb_parallel(ctx, pp);
    }
    ASSERT_GE(ckpt.writes(), 1u) << c.name;

    // Resume to completion, with a certificate.
    const SearchSnapshot snap = load_snapshot(path);
    ASSERT_TRUE(snapshot_matches(snap, ctx, base)) << c.name;
    CertificateBuilder builder;
    Params resume = base;
    resume.resume = &snap;
    resume.certify = &builder;
    bool proved = false;
    Time cost = kTimeInf;
    if (c.threads == 0) {
      const SearchResult r = solve_bnb(ctx, resume);
      proved = r.proved;
      cost = r.best_cost;
    } else {
      ParallelParams pp;
      pp.base = resume;
      pp.threads = c.threads;
      pp.scheduler = c.scheduler;
      const ParallelResult r = solve_bnb_parallel(ctx, pp);
      proved = r.proved;
      cost = r.best_cost;
    }
    EXPECT_TRUE(proved) << c.name;
    EXPECT_EQ(cost, clean.best_cost) << c.name;
    const Certificate cert = builder.take();
    EXPECT_TRUE(verify_certificate(g, m, cert).certified) << c.name;
  }
}

TEST(Resume, AccumulatesStatsAcrossRestart) {
  const ScratchDir tmp("stats");
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);
  const SearchSnapshot snap =
      partial_snapshot(ctx, tmp.file("seq.ckpt"));

  Params resume;
  resume.resume = &snap;
  const SearchResult r = solve_bnb(ctx, resume);
  EXPECT_TRUE(r.proved);
  // Totals fold the pre-crash run in: the resumed run alone could not
  // have generated fewer vertices than the snapshot already recorded.
  EXPECT_GE(r.stats.generated, snap.stats.generated);
}

// ---------------------------------------------------------------------------
// Off path and armed-but-idle path change nothing
// ---------------------------------------------------------------------------

TEST(Checkpoint, ArmedButNeverDueIsByteIdenticalToOff) {
  const ScratchDir tmp("armed");
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);

  const SearchResult off = solve_bnb(ctx, Params{});

  CheckpointController idle(tmp.file("idle.ckpt"), /*every_ms=*/1e12);
  Params armed;
  armed.ckpt = &idle;
  const SearchResult on = solve_bnb(ctx, armed);

  EXPECT_EQ(idle.writes(), 0u);
  EXPECT_EQ(on.best_cost, off.best_cost);
  EXPECT_EQ(on.proved, off.proved);
  EXPECT_EQ(on.stats.generated, off.stats.generated);
  EXPECT_EQ(on.stats.expanded, off.stats.expanded);
  EXPECT_EQ(on.stats.pruned_children, off.stats.pruned_children);
}

TEST(Checkpoint, MidSearchWriteDoesNotAlterTheSearch) {
  const ScratchDir tmp("write");
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);

  const SearchResult off = solve_bnb(ctx, Params{});

  CheckpointController ckpt(tmp.file("mid.ckpt"), /*every_ms=*/0);
  ckpt.request_now();
  Params armed;
  armed.ckpt = &ckpt;
  const SearchResult on = solve_bnb(ctx, armed);

  EXPECT_GE(ckpt.writes(), 1u);
  EXPECT_GT(ckpt.bytes_written(), 0u);
  EXPECT_EQ(on.best_cost, off.best_cost);
  EXPECT_EQ(on.stats.generated, off.stats.generated);
  EXPECT_EQ(on.stats.expanded, off.stats.expanded);
}

TEST(Checkpoint, FailedWriteIsSurvivedAndCounted) {
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);
  // A directory that does not exist: every save attempt fails; the
  // search must still complete (and prove) as if checkpointing were off.
  CheckpointController ckpt("/nonexistent_dir_parabb/x.ckpt",
                            /*every_ms=*/0);
  ckpt.request_now();
  Params params;
  params.ckpt = &ckpt;
  const SearchResult r = solve_bnb(ctx, params);
  EXPECT_TRUE(r.proved);
  EXPECT_EQ(ckpt.writes(), 0u);
  EXPECT_GE(ckpt.failures(), 1u);
}

// ---------------------------------------------------------------------------
// Job journal
// ---------------------------------------------------------------------------

TEST(Journal, ReplaySplitsPendingAndCompleted) {
  const ScratchDir tmp("replay");
  const std::string dir = tmp.file("wal");
  {
    JobJournal j(dir);
    j.record_accept("a", R"({"id":"a"})");
    j.record_accept("b", R"({"id":"b"})");
    j.record_accept("c", R"({"id":"c"})");
    j.record_complete("a", R"({"id":"a","outcome":"optimal"})");
    j.record_cancel("c");
  }
  const JobJournal::Replay r = JobJournal::replay(dir);
  ASSERT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.pending[0].id, "b");
  ASSERT_EQ(r.completed.size(), 1u);
  EXPECT_EQ(r.completed.count("a"), 1u);
  EXPECT_EQ(r.malformed, 0u);
}

TEST(Journal, TornTailAndGarbageAreCountedNotFatal) {
  const ScratchDir tmp("torn");
  const std::string dir = tmp.file("wal");
  {
    JobJournal j(dir);
    j.record_accept("a", R"({"id":"a"})");
  }
  {
    // Simulate a torn final write plus stray garbage.
    std::ofstream out(dir + "/journal.log", std::ios::app);
    out << "{\"t\":\"complete\",\"id\":\"a\",\"resp\":{\"trunc\n";
    out << "not json at all\n";
    out << "{\"t\":\"frobnicate\",\"id\":\"a\"}\n";
  }
  const JobJournal::Replay r = JobJournal::replay(dir);
  // The torn complete never took effect: "a" is still pending.
  ASSERT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.pending[0].id, "a");
  EXPECT_EQ(r.completed.size(), 0u);
  EXPECT_EQ(r.malformed, 3u);
}

TEST(Journal, DuplicateAcceptFirstOneWins) {
  const ScratchDir tmp("dup");
  const std::string dir = tmp.file("wal");
  {
    JobJournal j(dir);
    j.record_accept("a", R"({"id":"a","v":1})");
    j.record_accept("a", R"({"id":"a","v":2})");
    j.record_complete("a", R"({"id":"a"})");
    j.record_accept("a", R"({"id":"a","v":3})");  // after complete: stale
  }
  const JobJournal::Replay r = JobJournal::replay(dir);
  EXPECT_TRUE(r.pending.empty());
  EXPECT_EQ(r.completed.size(), 1u);
}

TEST(Journal, CheckpointPathIsStableAndSafe) {
  const ScratchDir tmp("paths");
  JobJournal j(tmp.file("wal"));
  const std::string p1 = j.job_checkpoint_path("job-1");
  EXPECT_EQ(p1, j.job_checkpoint_path("job-1"));
  EXPECT_NE(p1, j.job_checkpoint_path("job-2"));
  // Client-chosen ids must not become path traversal.
  const std::string evil = j.job_checkpoint_path("../../etc/passwd");
  EXPECT_EQ(evil.find(".."), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service integration: per-job checkpoints
// ---------------------------------------------------------------------------

TEST(ServiceCkpt, TerminalJobRemovesItsCheckpoint) {
  const ScratchDir tmp("svc_done");
  JobJournal journal(tmp.file("wal"));
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.journal = &journal;
  cfg.checkpoint_interval_ms = 10;
  SolverService service(cfg);

  JobRequest req;
  req.id = "done-1";
  req.graph = test::tight_instance(3);
  req.machine = make_shared_bus_machine(3);
  const JobResult r = service.wait(service.submit(std::move(req)));
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.outcome, JobOutcome::kOptimal);
  EXPECT_FALSE(std::filesystem::exists(
      journal.job_checkpoint_path("done-1")));
}

TEST(ServiceCkpt, ResumesFromMatchingJobSnapshot) {
  const ScratchDir tmp("svc_resume");
  JobJournal journal(tmp.file("wal"));

  // A "crashed predecessor": a budget-stopped run left a snapshot at the
  // job's checkpoint path.
  const TaskGraph g = test::tight_instance(3);
  const Machine m = make_shared_bus_machine(3);
  const SchedContext ctx(g, m);
  const std::string path = journal.job_checkpoint_path("resume-1");
  partial_snapshot(ctx, path);
  ASSERT_TRUE(std::filesystem::exists(path));

  MetricsRegistry registry;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.journal = &journal;
  cfg.metrics = &registry;
  SolverService service(cfg);

  JobRequest req;
  req.id = "resume-1";
  req.graph = g;
  req.machine = m;
  const JobResult r = service.wait(service.submit(std::move(req)));
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.outcome, JobOutcome::kOptimal);

  // The engine restored the snapshot (visible through the registry) and
  // the terminal job removed the spent file.
  const auto* restores =
      registry.snapshot().find_counter("parabb_ckpt_restores_total");
  ASSERT_NE(restores, nullptr);
  EXPECT_GE(restores->value, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(ServiceCkpt, MismatchedSnapshotIsIgnoredNotFatal) {
  const ScratchDir tmp("svc_mismatch");
  JobJournal journal(tmp.file("wal"));

  // A well-formed snapshot whose fingerprint is not this job's (as if the
  // journal directory were reused across a config change), parked at the
  // job's checkpoint path.
  const SchedContext ctx = test::make_ctx(test::tight_instance(3), 3);
  const std::string path = journal.job_checkpoint_path("mm-1");
  SearchSnapshot donor = partial_snapshot(ctx, tmp.file("donor.ckpt"));
  donor.instance ^= 0x1;  // foreign instance/param fingerprint
  save_snapshot(path, donor);

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.journal = &journal;
  SolverService service(cfg);

  JobRequest req;
  req.id = "mm-1";
  req.graph = test::tight_instance(3);
  req.machine = make_shared_bus_machine(3);
  const JobResult r = service.wait(service.submit(std::move(req)));
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.outcome, JobOutcome::kOptimal);  // fresh search, correct
}

}  // namespace
}  // namespace parabb
