#include "parabb/bnb/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "parabb/bnb/brute_force.hpp"
#include "parabb/bnb/cancel.hpp"
#include "parabb/sched/validator.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

TEST(ParallelEngine, MatchesBruteForceOnTinyInstances) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const TaskGraph g = test::tiny_random(seed, 6, 3);
    const SchedContext ctx = test::make_ctx(g, 2);
    ParallelParams pp;
    pp.threads = 4;
    const ParallelResult r = solve_bnb_parallel(ctx, pp);
    ASSERT_TRUE(r.found_solution);
    EXPECT_TRUE(r.proved);
    EXPECT_EQ(r.best_cost, brute_force(ctx).best_cost) << "seed " << seed;
  }
}

TEST(ParallelEngine, MatchesSequentialOnPaperInstances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const TaskGraph g = test::paper_instance(seed);
    const SchedContext ctx = test::make_ctx(g, 3);
    const SearchResult seq = solve_bnb(ctx, Params{});
    ParallelParams pp;
    pp.threads = 4;
    const ParallelResult par = solve_bnb_parallel(ctx, pp);
    EXPECT_EQ(par.best_cost, seq.best_cost) << "seed " << seed;
    EXPECT_TRUE(par.proved);
  }
}

TEST(ParallelEngine, SingleThreadWorks) {
  const TaskGraph g = test::paper_instance(21);
  const SchedContext ctx = test::make_ctx(g, 2);
  ParallelParams pp;
  pp.threads = 1;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_EQ(r.threads_used, 1);
  EXPECT_EQ(r.best_cost, solve_bnb(ctx, Params{}).best_cost);
}

TEST(ParallelEngine, BestScheduleIsSound) {
  const TaskGraph g = test::paper_instance(23);
  const Machine machine = make_shared_bus_machine(3);
  const SchedContext ctx(g, machine);
  ParallelParams pp;
  pp.threads = 3;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  ASSERT_TRUE(r.found_solution);
  const ValidationReport rep = validate_schedule(r.best, g, machine);
  EXPECT_TRUE(rep.structurally_sound) << rep.error;
  EXPECT_EQ(max_lateness(r.best, g), r.best_cost);
}

TEST(ParallelEngine, TimeLimitTerminates) {
  const TaskGraph g = test::paper_instance(25);
  const SchedContext ctx = test::make_ctx(g, 4);
  ParallelParams pp;
  pp.threads = 4;
  pp.base.rb.time_limit_s = 0.0;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_TRUE(r.found_solution);  // EDF seed
  // Either it finished instantly (tiny search) or the limit tripped.
  if (r.reason == TerminationReason::kTimeLimit) {
    EXPECT_FALSE(r.proved);
  }
}

TEST(ParallelEngine, GeneratedBudgetTerminates) {
  const TaskGraph g = test::paper_instance(25);
  const SchedContext ctx = test::make_ctx(g, 4);
  ParallelParams pp;
  pp.threads = 4;
  pp.base.rb.max_generated = 100;  // summed across workers
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_TRUE(r.found_solution);  // EDF seed
  if (r.reason == TerminationReason::kBudget) {
    EXPECT_FALSE(r.proved);
  } else {
    EXPECT_EQ(r.reason, TerminationReason::kExhausted);
  }
}

TEST(ParallelEngine, CancelTokenStopsAllWorkers) {
  const TaskGraph g = test::paper_instance(27);
  const SchedContext ctx = test::make_ctx(g, 4);
  ParallelParams pp;
  pp.threads = 4;
  CancelToken token;
  token.cancel();
  pp.base.cancel = &token;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_TRUE(r.found_solution);
  if (r.reason == TerminationReason::kCancelled) {
    EXPECT_FALSE(r.proved);
  }
}

TEST(ParallelEngine, InfiniteUpperBoundFindsOptimum) {
  const TaskGraph g = test::tiny_random(30, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  ParallelParams pp;
  pp.threads = 2;
  pp.base.ub = UpperBoundInit::kInfinite;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  ASSERT_TRUE(r.found_solution);
  EXPECT_EQ(r.best_cost, brute_force(ctx).best_cost);
}

TEST(ParallelEngine, BrGuaranteeHolds) {
  const TaskGraph g = test::tiny_random(31, 7, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const Time opt = brute_force(ctx).best_cost;
  ParallelParams pp;
  pp.threads = 4;
  pp.base.br = 0.10;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_GE(r.best_cost, opt);
  const double allowed =
      0.10 * std::max(std::abs(static_cast<double>(r.best_cost)),
                      std::abs(static_cast<double>(opt))) +
      1.0;
  EXPECT_LE(static_cast<double>(r.best_cost - opt), allowed);
}

// The shared lock-striped transposition table must not perturb the result:
// whatever the thread count (and thus probe interleaving / eviction order),
// the engine returns the same optimal lateness and a validator-clean
// incumbent. Run under PARABB_SANITIZE=thread in CI to also certify the
// table and work-queue synchronization race-free.
TEST(ParallelEngine, TranspositionDeterministicAcrossThreadCounts) {
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const TaskGraph g = test::tight_instance(seed);
    const Machine machine = make_shared_bus_machine(3);
    const SchedContext ctx(g, machine);

    // Reference: sequential solve without the table.
    const Time reference = solve_bnb(ctx, Params{}).best_cost;

    for (const int threads : {1, 2, 8}) {
      ParallelParams pp;
      pp.threads = threads;
      pp.base.transposition.enabled = true;
      pp.base.transposition.shards = 4;  // < threads at 8: real contention
      const ParallelResult r = solve_bnb_parallel(ctx, pp);
      ASSERT_TRUE(r.found_solution);
      EXPECT_TRUE(r.proved);
      EXPECT_EQ(r.best_cost, reference)
          << "seed " << seed << " threads " << threads;
      const ValidationReport rep = validate_schedule(r.best, g, machine);
      EXPECT_TRUE(rep.structurally_sound) << rep.error;
      EXPECT_EQ(max_lateness(r.best, g), r.best_cost);
      EXPECT_GT(r.stats.tt_hits + r.stats.tt_misses, 0u);
    }
  }
}

TEST(ParallelEngine, StatsAreMerged) {
  const TaskGraph g = test::tight_instance(27);
  const SchedContext ctx = test::make_ctx(g, 2);
  ParallelParams pp;
  pp.threads = 4;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_GT(r.stats.expanded, 0u);
  EXPECT_GT(r.stats.generated, r.stats.expanded);
  EXPECT_GE(r.stats.seconds, 0.0);
  // Workers report their dive-stack footprint; merged it must be nonzero
  // for any search that expanded at least one vertex.
  EXPECT_GT(r.stats.peak_memory_bytes, 0u);
}

TEST(ParallelEngine, DisposedCountsWorkAbandonedByCancel) {
  const TaskGraph g = test::tight_instance(31);
  const SchedContext ctx = test::make_ctx(g, 2);
  CancelToken token;
  token.cancel();  // trip before the search starts: everything is abandoned
  ParallelParams pp;
  pp.threads = 2;
  pp.base.cancel = &token;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_EQ(r.reason, TerminationReason::kCancelled);
  // The seed frontier was built before the first poll, so the queue holds
  // work that the stop discarded; it must be accounted, not silently zero.
  EXPECT_GT(r.stats.disposed, 0u);
}

// Regression for the missed-wakeup race in Shared::request_stop: a stop
// flag stored without holding queue_mutex can slip between a worker's wait
// predicate and its block, leaving the worker asleep forever. Cancel under
// load from a racing thread, at staggered delays, and require every run to
// join promptly. Runs against both schedulers: the central queue's condvar
// protocol and the work-stealing timed-park protocol each have their own
// lost-wakeup surface.
TEST(ParallelEngine, CancelUnderLoadStress) {
  const TaskGraph g = test::tight_instance(29);
  const SchedContext ctx = test::make_ctx(g, 2);
  for (const ParallelScheduler sched :
       {ParallelScheduler::kWorkStealing, ParallelScheduler::kCentralQueue}) {
    for (int rep = 0; rep < 12; ++rep) {
      CancelToken token;
      ParallelParams pp;
      pp.threads = 8;
      pp.scheduler = sched;
      pp.base.lb = LowerBound::kLB0;  // weak bound: plenty of live work
      pp.base.cancel = &token;
      std::thread canceller([&token, rep] {
        std::this_thread::sleep_for(std::chrono::microseconds(rep * 300));
        token.cancel();
      });
      const ParallelResult r = solve_bnb_parallel(ctx, pp);
      canceller.join();
      EXPECT_TRUE(r.found_solution);  // the EDF seed at minimum
      EXPECT_TRUE(r.reason == TerminationReason::kCancelled ||
                  r.reason == TerminationReason::kExhausted);
    }
  }
}

// Idle-accounting regression (ISSUE 8 satellite): a wake -> queue-empty ->
// re-sleep cycle must not double-decrement `idle`, or termination declares
// early and the engine returns a wrong (unproved-but-marked-proved)
// answer. Searches with very uneven subtree sizes at high thread counts
// maximize wake/re-sleep churn; both engines assert their idle invariant
// post-join (PARABB_ASSERT fires in debug builds), and here every run must
// also prove the same optimum. 25 reps x 8 threads gives the race a real
// chance to land if the accounting regresses.
TEST(ParallelEngine, IdleAccountingStress) {
  const TaskGraph g = test::tight_instance(33);
  const SchedContext ctx = test::make_ctx(g, 2);
  const Time reference = solve_bnb(ctx, Params{}).best_cost;
  for (const ParallelScheduler sched :
       {ParallelScheduler::kWorkStealing, ParallelScheduler::kCentralQueue}) {
    for (int rep = 0; rep < 25; ++rep) {
      ParallelParams pp;
      pp.threads = 8;
      pp.scheduler = sched;
      const ParallelResult r = solve_bnb_parallel(ctx, pp);
      ASSERT_TRUE(r.proved) << to_string(sched) << " rep " << rep;
      ASSERT_EQ(r.best_cost, reference) << to_string(sched) << " rep " << rep;
    }
  }
}

// The two schedulers must be observationally identical: same optimum, same
// proof, on the same instances.
TEST(ParallelEngine, SchedulersAgree) {
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    const TaskGraph g = test::tight_instance(seed);
    const SchedContext ctx = test::make_ctx(g, 3);
    ParallelParams ws;
    ws.threads = 4;
    ws.scheduler = ParallelScheduler::kWorkStealing;
    ParallelParams central;
    central.threads = 4;
    central.scheduler = ParallelScheduler::kCentralQueue;
    const ParallelResult a = solve_bnb_parallel(ctx, ws);
    const ParallelResult b = solve_bnb_parallel(ctx, central);
    ASSERT_TRUE(a.proved);
    ASSERT_TRUE(b.proved);
    EXPECT_EQ(a.best_cost, b.best_cost) << "seed " << seed;
  }
}

// The steal-batch cap is a performance knob, never a correctness one: any
// setting returns the same proved optimum. steal_batch = 1 maximizes steal
// traffic (every steal moves one vertex), which also makes this the test
// most likely to observe nonzero steal counters.
TEST(ParallelEngine, StealBatchKnobDoesNotChangeResults) {
  const TaskGraph g = test::tight_instance(37);
  const SchedContext ctx = test::make_ctx(g, 2);
  const Time reference = solve_bnb(ctx, Params{}).best_cost;
  for (const int batch : {0, 1, 2, 16}) {
    ParallelParams pp;
    pp.threads = 8;
    pp.steal_batch = batch;
    const ParallelResult r = solve_bnb_parallel(ctx, pp);
    ASSERT_TRUE(r.proved) << "steal_batch " << batch;
    EXPECT_EQ(r.best_cost, reference) << "steal_batch " << batch;
    // Steal accounting is monotone: successes never exceed attempts.
    EXPECT_LE(r.stats.steals_succeeded, r.stats.steals_attempted);
  }
}

// A single-threaded work-stealing run never steals; its counters must be
// exactly zero (the sequential differential in test_obs relies on this).
TEST(ParallelEngine, SingleThreadNeverSteals) {
  const TaskGraph g = test::tight_instance(41);
  const SchedContext ctx = test::make_ctx(g, 2);
  ParallelParams pp;
  pp.threads = 1;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_EQ(r.stats.steals_attempted, 0u);
  EXPECT_EQ(r.stats.steals_succeeded, 0u);
}

}  // namespace
}  // namespace parabb
