#include "parabb/sched/bus_aware.hpp"

#include <gtest/gtest.h>

#include "parabb/sched/edf.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/workload/presets.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

TEST(BusAware, NoCrossTrafficMeansNoChange) {
  // Single processor: all messages are local, re-timing is identity.
  const TaskGraph g = test::small_diamond();
  const SchedContext ctx = test::make_ctx(g, 1);
  const EdfResult edf = schedule_edf(ctx);
  const BusAwareResult r = retime_with_bus(ctx, edf.schedule);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_EQ(r.bus_busy, 0);
  EXPECT_EQ(r.max_lateness, edf.max_lateness);
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    EXPECT_EQ(r.schedule.entry(t).start, edf.schedule.entry(t).start);
  }
}

TEST(BusAware, ContentionCanOnlyDelay) {
  // Fork-join with heavy messages saturates the bus.
  TaskGraph g = preset_fork_join(4, 10, 30);
  assign_deadlines_slicing(g);
  const SchedContext ctx = test::make_ctx(g, 4);
  const EdfResult edf = schedule_edf(ctx);
  const BusAwareResult r = retime_with_bus(ctx, edf.schedule);
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    EXPECT_GE(r.schedule.entry(t).start, edf.schedule.entry(t).start);
  }
  EXPECT_GE(r.max_lateness, edf.max_lateness);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.bus_busy, 0);
}

TEST(BusAware, PreservesAssignmentAndOrder) {
  const TaskGraph g = test::paper_instance(17);
  const SchedContext ctx = test::make_ctx(g, 3);
  const EdfResult edf = schedule_edf(ctx);
  const BusAwareResult r = retime_with_bus(ctx, edf.schedule);
  for (TaskId t = 0; t < ctx.task_count(); ++t) {
    EXPECT_EQ(r.schedule.entry(t).proc, edf.schedule.entry(t).proc);
  }
  for (ProcId p = 0; p < 3; ++p) {
    const auto before = edf.schedule.proc_sequence(p);
    const auto after = r.schedule.proc_sequence(p);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i].task, after[i].task);
    }
  }
}

class BusAwareSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BusAwareSweep, RetimedScheduleRespectsPrecedenceAndArrivals) {
  const TaskGraph g = test::paper_instance(GetParam());
  const Machine machine = make_shared_bus_machine(3);
  const SchedContext ctx(g, machine);
  const EdfResult edf = schedule_edf(ctx);
  const BusAwareResult r = retime_with_bus(ctx, edf.schedule);
  // The retimed schedule still satisfies the *nominal* model's constraints
  // (bus serialization only adds delay beyond nominal).
  const ValidationReport rep = validate_schedule(r.schedule, g, machine);
  EXPECT_TRUE(rep.structurally_sound) << rep.error;
  EXPECT_EQ(r.max_lateness, max_lateness(r.schedule, g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusAwareSweep,
                         ::testing::Range<std::uint64_t>(300, 312));

}  // namespace
}  // namespace parabb
