// Differential suite for the optimality-certificate verifier: genuine
// certificates from both engines across the rule grid must certify (and
// match the brute-force optimum), deliberately corrupted certificates
// must be rejected, and the verifier's verdict on approximate /
// interrupted runs must track ground truth — the replay layer upgrades an
// unproved-but-optimal incumbent and refutes a sub-optimal one.
#include "parabb/verify/verifier.hpp"

#include <gtest/gtest.h>

#include <string>

#include "parabb/bnb/brute_force.hpp"
#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/verify/certificate.hpp"
#include "parabb/verify/certificate_io.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

/// Runs a certified solve and returns the certificate.
Certificate certified_solve(const TaskGraph& g, const Machine& m,
                            Params params, int threads = 0) {
  const SchedContext ctx(g, m);
  CertificateBuilder builder;
  params.certify = &builder;
  if (threads == 0) {
    solve_bnb(ctx, params);
  } else {
    ParallelParams pp;
    pp.base = params;
    pp.threads = threads;
    solve_bnb_parallel(ctx, pp);
  }
  return builder.take();
}

/// A small instance whose full goal space the replay can sweep.
TaskGraph small_instance(std::uint64_t seed) {
  return test::tiny_random(seed, 5, 3);
}

TEST(Verify, SequentialGridCertifiedAndMatchesBruteForce) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const TaskGraph g = small_instance(seed);
    const Machine machine = make_shared_bus_machine(2);
    const Time opt = brute_force(SchedContext(g, machine)).best_cost;
    for (const SelectRule select :
         {SelectRule::kLIFO, SelectRule::kLLB, SelectRule::kFIFO}) {
      for (const LowerBound lb :
           {LowerBound::kLB0, LowerBound::kLB1, LowerBound::kLB2}) {
        Params params;
        params.select = select;
        params.lb = lb;
        params.transposition.enabled = seed % 2 == 0;
        const Certificate cert = certified_solve(g, machine, params);
        EXPECT_EQ(cert.cost, opt) << "seed " << seed;
        const VerifyReport report = verify_certificate(g, machine, cert);
        EXPECT_TRUE(report.certified)
            << "seed " << seed << " S=" << to_string(select)
            << " L=" << to_string(lb) << "\n"
            << report.summary();
      }
    }
  }
}

TEST(Verify, ParallelCertifiedAcrossThreadCounts) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const TaskGraph g = small_instance(seed);
    const Machine machine = make_shared_bus_machine(2);
    const Time opt = brute_force(SchedContext(g, machine)).best_cost;
    for (const int threads : {1, 4, 8}) {
      Params params;
      params.lb = LowerBound::kLB1;
      const Certificate cert =
          certified_solve(g, machine, params, threads);
      EXPECT_EQ(cert.cost, opt) << "seed " << seed;
      const VerifyReport report = verify_certificate(g, machine, cert);
      EXPECT_TRUE(report.certified)
          << "seed " << seed << " threads " << threads << "\n"
          << report.summary();
    }
  }
}

TEST(Verify, TextRoundTripPreservesTheVerdict) {
  const TaskGraph g = small_instance(1);
  const Machine machine = make_shared_bus_machine(2);
  const Certificate cert = certified_solve(g, machine, Params{});

  const std::string text = certificate_to_text(cert, g);
  const Certificate parsed = certificate_from_text(text, g);
  EXPECT_EQ(parsed.task_count, cert.task_count);
  EXPECT_EQ(parsed.procs, cert.procs);
  EXPECT_EQ(parsed.lb_kind, cert.lb_kind);
  EXPECT_EQ(parsed.cost, cert.cost);
  EXPECT_EQ(parsed.cuts.size(), cert.cuts.size());
  // Re-serializing the parse must be byte-identical: the format has one
  // spelling per certificate.
  EXPECT_EQ(certificate_to_text(parsed, g), text);
  EXPECT_TRUE(verify_certificate(g, machine, parsed).certified);
}

/// Index of the first cut carrying a bound-rule claim, or npos.
std::size_t first_bound_cut(const Certificate& cert) {
  for (std::size_t i = 0; i < cert.cuts.size(); ++i) {
    switch (cert.cuts[i].rule) {
      case CutRule::kLB0:
      case CutRule::kLB1:
      case CutRule::kLB2:
      case CutRule::kPackingSuffix: return i;
      default: break;
    }
  }
  return std::string::npos;
}

TEST(Verify, TamperedBoundRejected) {
  const TaskGraph g = small_instance(2);
  const Machine machine = make_shared_bus_machine(2);
  Params params;
  Certificate cert = certified_solve(g, machine, params);
  ASSERT_TRUE(verify_certificate(g, machine, cert).certified);
  const std::size_t i = first_bound_cut(cert);
  ASSERT_NE(i, std::string::npos) << "run produced no bound cuts";

  // Inflated claim: above what the reference bound can justify.
  const Time genuine = cert.cuts[i].claimed_bound;
  cert.cuts[i].claimed_bound = genuine + 1000;
  VerifyReport report = verify_certificate(g, machine, cert);
  EXPECT_FALSE(report.cuts_sound) << report.summary();
  EXPECT_FALSE(report.certified);
  EXPECT_EQ(report.cuts_rejected, 1u);

  // Deflated claim: honest but no longer dominating the incumbent.
  cert.cuts[i].claimed_bound = cert.cost - 1000;
  report = verify_certificate(g, machine, cert);
  EXPECT_FALSE(report.cuts_sound) << report.summary();
  EXPECT_FALSE(report.certified);

  cert.cuts[i].claimed_bound = genuine;
  EXPECT_TRUE(verify_certificate(g, machine, cert).certified);
}

TEST(Verify, TamperedFingerprintRejected) {
  const TaskGraph g = small_instance(3);
  const Machine machine = make_shared_bus_machine(2);
  Certificate cert = certified_solve(g, machine, Params{});
  ASSERT_FALSE(cert.cuts.empty());
  cert.cuts[0].fingerprint ^= 1;
  const VerifyReport report = verify_certificate(g, machine, cert);
  EXPECT_FALSE(report.cuts_sound) << report.summary();
  EXPECT_FALSE(report.certified);
}

TEST(Verify, TamperedPathRejected) {
  // Scan seeds for a run whose log has a cut below the root (nonempty
  // placement path) — not every tiny instance prunes past depth 0.
  const Machine machine = make_shared_bus_machine(2);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const TaskGraph g = small_instance(seed);
    Certificate cert = certified_solve(g, machine, Params{});
    std::size_t i = 0;
    while (i < cert.cuts.size() && cert.cuts[i].path.empty()) ++i;
    if (i == cert.cuts.size()) continue;
    // Rehome the first placement: the rebuilt state no longer matches the
    // recorded fingerprint (or its start time no longer replays).
    CutPlacement& pl = cert.cuts[i].path.front();
    pl.proc = pl.proc == 0 ? 1 : 0;
    const VerifyReport report = verify_certificate(g, machine, cert);
    EXPECT_FALSE(report.cuts_sound) << report.summary();
    EXPECT_FALSE(report.certified);
    return;
  }
  FAIL() << "no seed produced a cut with a nonempty path";
}

TEST(Verify, TamperedCostRejected) {
  const TaskGraph g = small_instance(5);
  const Machine machine = make_shared_bus_machine(2);
  Certificate cert = certified_solve(g, machine, Params{});

  // A cost *above* the incumbent's true lateness is a plain mismatch.
  cert.cost += 1;
  EXPECT_FALSE(verify_certificate(g, machine, cert).cost_matches);
  EXPECT_FALSE(verify_certificate(g, machine, cert).certified);

  // A cost *below* it — the classic "sub-optimal optimum" lie — fails the
  // same check before the replay even has to refute it.
  cert.cost -= 2;
  const VerifyReport report = verify_certificate(g, machine, cert);
  EXPECT_FALSE(report.cost_matches);
  EXPECT_FALSE(report.certified);
}

TEST(Verify, TamperedScheduleTextRejected) {
  const TaskGraph g = small_instance(6);
  const Machine machine = make_shared_bus_machine(2);
  const Certificate cert = certified_solve(g, machine, Params{});
  std::string text = certificate_to_text(cert, g);
  // Corrupt the first schedule line's start time the same way
  // certify_smoke.sh does: finish no longer equals start + exec.
  const std::size_t pos = text.find("start=");
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos + 6, "9");
  const Certificate tampered = certificate_from_text(text, g);
  const VerifyReport report = verify_certificate(g, machine, tampered);
  EXPECT_FALSE(report.incumbent_valid) << report.summary();
  EXPECT_FALSE(report.certified);
}

TEST(Verify, ApproximateRunUpgradedOrRefutedByReplay) {
  // BF1 runs cannot prove optimality, but the replay can settle the
  // question either way: certified exactly when the incumbent really is
  // optimal.
  int upgraded = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const TaskGraph g = small_instance(seed);
    const Machine machine = make_shared_bus_machine(2);
    const Time opt = brute_force(SchedContext(g, machine)).best_cost;
    Params params;
    params.branch = BranchRule::kBF1;
    const Certificate cert = certified_solve(g, machine, params);
    EXPECT_FALSE(cert.complete) << "seed " << seed;
    const VerifyReport report = verify_certificate(g, machine, cert);
    EXPECT_EQ(report.certified, cert.cost == opt)
        << "seed " << seed << "\n" << report.summary();
    if (report.certified) ++upgraded;
  }
  // BF1 is a good heuristic on tiny instances: the upgrade path must
  // actually exercise, not vacuously pass on all-refuted runs.
  EXPECT_GT(upgraded, 0);
}

TEST(Verify, InterruptedRunStillAuditsSound) {
  const TaskGraph g = test::tight_instance(7);
  const Machine machine = make_shared_bus_machine(2);
  Params params;
  params.rb.max_generated = 50;  // stop long before exhaustion
  const Certificate cert = certified_solve(g, machine, params);
  ASSERT_TRUE(cert.found);
  EXPECT_FALSE(cert.complete);
  // Whatever the replay concludes about optimality, every cut the
  // interrupted run *did* make must audit sound.
  VerifyOptions options;
  options.audit_only = true;
  const VerifyReport report = verify_certificate(g, machine, cert, options);
  EXPECT_TRUE(report.cuts_sound) << report.summary();
  EXPECT_FALSE(report.certified);  // audit-only never certifies
}

TEST(Verify, WrongInstanceRejected) {
  const TaskGraph g = small_instance(8);
  const Machine machine = make_shared_bus_machine(2);
  const Certificate cert = certified_solve(g, machine, Params{});
  const VerifyReport report =
      verify_certificate(g, make_shared_bus_machine(3), cert);
  EXPECT_FALSE(report.certified);
  EXPECT_FALSE(report.error.empty());
}

TEST(Verify, NoIncumbentRejected) {
  const TaskGraph g = small_instance(9);
  const Machine machine = make_shared_bus_machine(2);
  Params params;
  params.ub = UpperBoundInit::kInfinite;
  params.rb.max_generated = 1;  // stop before any goal is reached
  const Certificate cert = certified_solve(g, machine, params);
  ASSERT_FALSE(cert.found);
  const VerifyReport report = verify_certificate(g, machine, cert);
  EXPECT_FALSE(report.certified);
  EXPECT_FALSE(report.error.empty());
}

TEST(Verify, ReplayBudgetReportsExhaustion) {
  // Scan seeds for an instance whose replay genuinely needs more than one
  // expansion (when the reference LB closes the root immediately, a
  // 1-state budget is never felt).
  const Machine machine = make_shared_bus_machine(2);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const TaskGraph g = small_instance(seed);
    const Certificate cert = certified_solve(g, machine, Params{});
    if (verify_certificate(g, machine, cert).replayed <= 1) continue;
    VerifyOptions options;
    options.max_replayed = 1;
    const VerifyReport report =
        verify_certificate(g, machine, cert, options);
    EXPECT_TRUE(report.exhausted);
    EXPECT_FALSE(report.certified);
    EXPECT_TRUE(report.error.empty()) << "exhaustion is not a refutation";
    return;
  }
  FAIL() << "no seed produced a replay deeper than one expansion";
}

TEST(Verify, BrTolerantCertificateChecksAgainstRelaxedThreshold) {
  // A BR > 0 run may cut against the relaxed threshold; its certificate
  // still certifies (the verifier reimplements the same relaxation), and
  // the cost is within BR of the true optimum.
  const TaskGraph g = test::tight_instance(12);
  const Machine machine = make_shared_bus_machine(2);
  Params params;
  params.br = 0.2;
  const Certificate cert = certified_solve(g, machine, params);
  ASSERT_TRUE(cert.found);
  VerifyOptions options;
  options.audit_only = true;  // paper-sized: the cut audit is the point
  const VerifyReport report = verify_certificate(g, machine, cert, options);
  EXPECT_TRUE(report.cuts_sound) << report.summary();
}

}  // namespace
}  // namespace parabb
