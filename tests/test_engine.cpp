#include "parabb/bnb/engine.hpp"

#include <gtest/gtest.h>

#include "parabb/bnb/brute_force.hpp"
#include "parabb/bnb/cancel.hpp"
#include "parabb/bnb/hooks.hpp"
#include "parabb/sched/edf.hpp"
#include "parabb/sched/validator.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

Params optimal_params() {
  Params p;  // BFn / LIFO / U-DBAS / LB1 / EDF / BR=0 by default
  return p;
}

TEST(PruneThreshold, Semantics) {
  EXPECT_EQ(prune_threshold(kTimeInf, 0.0), kTimeInf);
  EXPECT_EQ(prune_threshold(100, 0.0), 100);
  EXPECT_EQ(prune_threshold(100, 0.10), 90);
  EXPECT_EQ(prune_threshold(-100, 0.10), -110);
  EXPECT_EQ(prune_threshold(0, 0.10), 0);
  EXPECT_EQ(prune_threshold(105, 0.10), 95);  // floor(10.5) = 10
}

TEST(Engine, SolvesDiamondOptimally) {
  const TaskGraph g = test::small_diamond();
  const SchedContext ctx = test::make_ctx(g, 2);
  const SearchResult r = solve_bnb(ctx, optimal_params());
  ASSERT_TRUE(r.found_solution);
  EXPECT_TRUE(r.proved);
  const BruteForceResult opt = brute_force(ctx);
  EXPECT_EQ(r.best_cost, opt.best_cost);
  EXPECT_EQ(max_lateness(r.best, g), r.best_cost);
}

TEST(Engine, NeverWorseThanEdf) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const TaskGraph g = test::tiny_random(seed, 8, 4);
    const SchedContext ctx = test::make_ctx(g, 2);
    const EdfResult edf = schedule_edf(ctx);
    const SearchResult r = solve_bnb(ctx, optimal_params());
    EXPECT_LE(r.best_cost, edf.max_lateness);
  }
}

TEST(Engine, BestScheduleIsStructurallySound) {
  const TaskGraph g = test::paper_instance(5);
  const Machine machine = make_shared_bus_machine(3);
  const SchedContext ctx(g, machine);
  const SearchResult r = solve_bnb(ctx, optimal_params());
  ASSERT_TRUE(r.found_solution);
  const ValidationReport rep = validate_schedule(r.best, g, machine);
  EXPECT_TRUE(rep.structurally_sound) << rep.error;
  EXPECT_EQ(max_lateness(r.best, g), r.best_cost);
}

TEST(Engine, InfiniteUpperBoundStillFindsOptimum) {
  const TaskGraph g = test::tiny_random(2, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p = optimal_params();
  p.ub = UpperBoundInit::kInfinite;
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_TRUE(r.found_solution);
  EXPECT_EQ(r.best_cost, brute_force(ctx).best_cost);
}

TEST(Engine, ExplicitUpperBoundBelowOptimumFails) {
  const TaskGraph g = test::tiny_random(2, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const Time opt = brute_force(ctx).best_cost;
  Params p = optimal_params();
  p.ub = UpperBoundInit::kExplicit;
  p.explicit_ub = opt;  // only strictly-better solutions are accepted
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_FALSE(r.found_solution);
  EXPECT_EQ(r.best_cost, opt);
}

TEST(Engine, ExplicitUpperBoundAboveOptimumSucceeds) {
  const TaskGraph g = test::tiny_random(2, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const Time opt = brute_force(ctx).best_cost;
  Params p = optimal_params();
  p.ub = UpperBoundInit::kExplicit;
  p.explicit_ub = opt + 1;
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_TRUE(r.found_solution);
  EXPECT_EQ(r.best_cost, opt);
}

TEST(Engine, EdfSeedNeverSearchedWorse) {
  // With U = EDF, even a search that disposes of almost everything returns
  // a schedule no worse than EDF's — and loses the optimality guarantee.
  const TaskGraph g = test::tight_instance(0);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p = optimal_params();
  p.rb.max_active = 1;  // cripple the search
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_TRUE(r.found_solution);
  EXPECT_LE(r.best_cost, schedule_edf(ctx).max_lateness);
  ASSERT_GT(r.stats.generated, 0u);  // the instance is nontrivial
  EXPECT_GT(r.stats.disposed, 0u);
  EXPECT_FALSE(r.proved);  // disposal compromised the guarantee
}

TEST(Engine, TimeLimitTerminatesGracefully) {
  const TaskGraph g = test::paper_instance(7);
  const SchedContext ctx = test::make_ctx(g, 4);
  Params p = optimal_params();
  p.rb.time_limit_s = 0.0;  // trip immediately
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_EQ(r.reason, TerminationReason::kTimeLimit);
  EXPECT_FALSE(r.proved);
  EXPECT_TRUE(r.found_solution);  // EDF seed survives
}

TEST(Engine, GeneratedBudgetIsExactAndDeterministic) {
  const TaskGraph g = test::paper_instance(7);
  const SchedContext ctx = test::make_ctx(g, 4);
  Params p = optimal_params();
  p.rb.max_generated = 50;
  const SearchResult a = solve_bnb(ctx, p);
  EXPECT_EQ(a.reason, TerminationReason::kBudget);
  EXPECT_FALSE(a.proved);
  EXPECT_TRUE(a.found_solution);  // EDF seed survives
  // The cap is checked before every expansion, so two runs stop at the
  // same vertex — the service golden tests depend on this.
  const SearchResult b = solve_bnb(ctx, p);
  EXPECT_EQ(b.stats.generated, a.stats.generated);
  EXPECT_EQ(b.best_cost, a.best_cost);
}

TEST(Engine, MemoryBudgetTerminatesGracefully) {
  const TaskGraph g = test::paper_instance(9);
  const SchedContext ctx = test::make_ctx(g, 4);
  Params p = optimal_params();
  p.rb.max_memory_bytes = 1;  // trips at the first poll
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_EQ(r.reason, TerminationReason::kBudget);
  EXPECT_TRUE(r.found_solution);
  EXPECT_FALSE(r.proved);
}

TEST(Engine, CancelTokenStopsTheSearch) {
  const TaskGraph g = test::paper_instance(11);
  const SchedContext ctx = test::make_ctx(g, 4);
  Params p = optimal_params();
  CancelToken token;
  token.cancel();  // pre-tripped: the first poll window ends the search
  p.cancel = &token;
  const SearchResult r = solve_bnb(ctx, p);
  if (r.reason == TerminationReason::kCancelled) {
    EXPECT_FALSE(r.proved);
    EXPECT_TRUE(r.found_solution);  // EDF seed
  } else {
    // The search finished inside the first 256-expansion poll window.
    EXPECT_EQ(r.reason, TerminationReason::kExhausted);
  }
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(Engine, MaxChildrenTruncatesAndUnproves) {
  const TaskGraph g = test::tight_instance(0);
  const SchedContext ctx = test::make_ctx(g, 3);
  Params p = optimal_params();
  p.rb.max_children = 2;
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_GT(r.stats.expanded, 0u);
  EXPECT_FALSE(r.proved);
  EXPECT_TRUE(r.found_solution);
}

TEST(Engine, StatsAreConsistent) {
  const TaskGraph g = test::tight_instance(11);
  const SchedContext ctx = test::make_ctx(g, 2);
  const SearchResult r = solve_bnb(ctx, optimal_params());
  const SearchStats& s = r.stats;
  EXPECT_GT(s.expanded, 0u);
  EXPECT_GT(s.generated, 0u);
  // Every generated child is activated, pruned, or a goal.
  EXPECT_EQ(s.generated, s.activated + s.pruned_children + s.goals);
  EXPECT_GT(s.peak_active, 0u);
  EXPECT_GT(s.peak_memory_bytes, 0u);
  EXPECT_GE(s.seconds, 0.0);
}

TEST(Engine, GoalUpdatesImproveMonotonically) {
  const TaskGraph g = test::paper_instance(13);
  const SchedContext ctx = test::make_ctx(g, 2);
  const SearchResult r = solve_bnb(ctx, optimal_params());
  // At least the EDF seed; goal updates only happen on strict improvement,
  // so best_cost <= EDF cost.
  EXPECT_LE(r.best_cost, schedule_edf(ctx).max_lateness);
}

TEST(Engine, CharacteristicHookPrunes) {
  const TaskGraph g = test::tight_instance(6);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p = optimal_params();
  int calls = 0;
  p.characteristic = [&calls](const SchedContext&, const PartialSchedule&) {
    ++calls;
    return true;  // never actually prune: result must stay optimal
  };
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_GT(calls, 0);
  EXPECT_EQ(r.best_cost, solve_bnb(ctx, optimal_params()).best_cost);
}

TEST(Engine, CharacteristicRejectAllDegeneratesToSeed) {
  const TaskGraph g = test::tiny_random(6, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p = optimal_params();
  p.characteristic = [](const SchedContext&, const PartialSchedule&) {
    return false;
  };
  const SearchResult r = solve_bnb(ctx, p);
  // All intermediate vertices rejected; goals at level n can only be
  // reached for n==1, so EDF's solution (or better goals from level-n-1
  // expansions) remains.
  EXPECT_TRUE(r.found_solution);
  EXPECT_LE(r.best_cost, schedule_edf(ctx).max_lateness);
}

TEST(Engine, DominanceHookCanPruneSiblings) {
  const TaskGraph g = test::tiny_random(8, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p = optimal_params();
  // Shipped processor-symmetry dominance (bnb/hooks.hpp): siblings that
  // are the same schedule up to renaming of identical processors collapse
  // to one representative.
  p.dominance = make_processor_symmetry_dominance();
  const SearchResult r = solve_bnb(ctx, p);
  const SearchResult plain = solve_bnb(ctx, optimal_params());
  EXPECT_EQ(r.best_cost, plain.best_cost);
  EXPECT_LE(r.stats.generated, plain.stats.generated);
}

TEST(Engine, RejectsBadParams) {
  const SchedContext ctx = test::make_ctx(test::small_diamond(), 2);
  Params p = optimal_params();
  p.br = -0.5;
  EXPECT_THROW(solve_bnb(ctx, p), precondition_error);
  p = optimal_params();
  p.rb.max_children = 0;
  EXPECT_THROW(solve_bnb(ctx, p), precondition_error);
}

TEST(Engine, CertificateEqualsCostWhenProved) {
  const TaskGraph g = test::tiny_random(5, 7, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const SearchResult r = solve_bnb(ctx, optimal_params());
  ASSERT_TRUE(r.proved);
  EXPECT_EQ(r.certified_lower_bound, r.best_cost);
}

TEST(Engine, CertificateBoundsTimeLimitedRuns) {
  const TaskGraph g = test::tight_instance(0);
  const SchedContext ctx = test::make_ctx(g, 3);
  // Reference: the true optimum.
  Params full = optimal_params();
  full.rb.time_limit_s = 30.0;
  const SearchResult exact = solve_bnb(ctx, full);
  ASSERT_TRUE(exact.proved);

  Params capped = optimal_params();
  capped.rb.time_limit_s = 0.0;
  const SearchResult r = solve_bnb(ctx, capped);
  // The certificate must be a true lower bound and not exceed the cost.
  EXPECT_LE(r.certified_lower_bound, exact.best_cost);
  EXPECT_LE(r.certified_lower_bound, r.best_cost);
  EXPECT_GT(r.certified_lower_bound, kTimeNegInf);
}

TEST(Engine, CertificateSurvivesDisposal) {
  const TaskGraph g = test::tight_instance(1);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params full = optimal_params();
  const SearchResult exact = solve_bnb(ctx, full);
  ASSERT_TRUE(exact.proved);

  Params crippled = optimal_params();
  crippled.rb.max_active = 4;
  const SearchResult r = solve_bnb(ctx, crippled);
  EXPECT_LE(r.certified_lower_bound, exact.best_cost);
  EXPECT_LE(r.certified_lower_bound, r.best_cost);
}

TEST(Engine, CertificateRespectsBrMargin) {
  const TaskGraph g = test::tiny_random(9, 7, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  const Time opt = brute_force(ctx).best_cost;
  Params p = optimal_params();
  p.br = 0.25;
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_LE(r.certified_lower_bound, opt);
  EXPECT_GE(r.best_cost, opt);
}

TEST(Engine, NoCertificateForApproximateBranching) {
  const TaskGraph g = test::tiny_random(4, 6, 3);
  const SchedContext ctx = test::make_ctx(g, 2);
  Params p = optimal_params();
  p.branch = BranchRule::kDF;
  const SearchResult r = solve_bnb(ctx, p);
  EXPECT_EQ(r.certified_lower_bound, kTimeNegInf);
}

TEST(Engine, SingleTaskGraph) {
  TaskGraph g;
  Task t;
  t.name = "only";
  t.exec = 10;
  t.rel_deadline = 8;  // unavoidably 2 late
  g.add_task(t);
  const SchedContext ctx = test::make_ctx(g, 2);
  const SearchResult r = solve_bnb(ctx, optimal_params());
  ASSERT_TRUE(r.found_solution);
  EXPECT_EQ(r.best_cost, 2);
  EXPECT_TRUE(r.proved);
}

TEST(Engine, IndependentTasksUseAllProcessors) {
  const SchedContext ctx = test::make_ctx(test::independent_tasks(4), 2);
  const SearchResult r = solve_bnb(ctx, optimal_params());
  ASSERT_TRUE(r.found_solution);
  // Optimal packs two per processor: makespan 20.
  EXPECT_EQ(makespan(r.best), 20);
}

}  // namespace
}  // namespace parabb
