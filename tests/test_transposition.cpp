// Transposition-table suite: unit tests of the concurrent table itself,
// property tests of the incremental state fingerprint, and the
// differential harness — B&B with the table, B&B without it, and the
// exhaustive oracle must agree on the optimal maximum lateness on every
// seeded random instance.
#include "parabb/bnb/transposition.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parabb/bnb/brute_force.hpp"
#include "parabb/bnb/engine.hpp"
#include "parabb/sched/validator.hpp"
#include "parabb/support/rng.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

// ---------------------------------------------------------------------------
// Incremental fingerprint properties.
// ---------------------------------------------------------------------------

/// Random full placement walk; returns the (task, proc) decisions made.
std::vector<std::pair<TaskId, ProcId>> random_walk(const SchedContext& ctx,
                                                   PartialSchedule& ps,
                                                   Rng& rng) {
  std::vector<std::pair<TaskId, ProcId>> moves;
  while (!ps.complete(ctx)) {
    const TaskSet ready = ps.ready();
    auto pick = static_cast<int>(rng.index(
        static_cast<std::size_t>(ready.size())));
    TaskId t = kNoTask;
    for (const TaskId cand : ready) {
      if (pick-- == 0) {
        t = cand;
        break;
      }
    }
    const auto p = static_cast<ProcId>(rng.index(
        static_cast<std::size_t>(ctx.proc_count())));
    ps.place(ctx, t, p);
    moves.emplace_back(t, p);
  }
  return moves;
}

TEST(Fingerprint, IncrementalMatchesScratchAfterEveryExtendAndUndo) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const TaskGraph g = test::tiny_random(seed, 7, 3);
    const SchedContext ctx = test::make_ctx(g, 3);
    Rng rng(derive_seed(0x7a11, seed));

    PartialSchedule ps = PartialSchedule::empty(ctx);
    EXPECT_EQ(ps.fingerprint(), 0u);
    EXPECT_EQ(ps.fingerprint(), ps.fingerprint_from_scratch());

    std::vector<std::pair<TaskId, ProcId>> moves = random_walk(ctx, ps, rng);
    // Re-play to check after every extension (random_walk already placed).
    PartialSchedule replay = PartialSchedule::empty(ctx);
    for (const auto& [t, p] : moves) {
      replay.place(ctx, t, p);
      EXPECT_EQ(replay.fingerprint(), replay.fingerprint_from_scratch());
      EXPECT_NE(replay.fingerprint(), 0u);
    }
    EXPECT_EQ(replay.fingerprint(), ps.fingerprint());

    // Undo in reverse order; the incremental hash must track exactly.
    for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
      ps.unplace(ctx, it->first);
      EXPECT_EQ(ps.fingerprint(), ps.fingerprint_from_scratch());
    }
    EXPECT_EQ(ps.fingerprint(), 0u);
    EXPECT_TRUE(ps == PartialSchedule::empty(ctx));
  }
}

TEST(Fingerprint, CommutingPlacementsCollapseToOneState) {
  const TaskGraph g = test::independent_tasks(4);
  const SchedContext ctx = test::make_ctx(g, 2);

  PartialSchedule ab = PartialSchedule::empty(ctx);
  ab.place(ctx, 0, 0);
  ab.place(ctx, 1, 1);
  PartialSchedule ba = PartialSchedule::empty(ctx);
  ba.place(ctx, 1, 1);
  ba.place(ctx, 0, 0);

  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());

  // Same tasks, same processors, opposite assignment: different state,
  // and (with overwhelming probability) a different fingerprint.
  PartialSchedule swapped = PartialSchedule::empty(ctx);
  swapped.place(ctx, 0, 1);
  swapped.place(ctx, 1, 0);
  EXPECT_FALSE(ab == swapped);
  EXPECT_NE(ab.fingerprint(), swapped.fingerprint());
}

TEST(Fingerprint, UnplaceRestoresReadySetAndFrontier) {
  const TaskGraph g = test::small_diamond();
  const SchedContext ctx = test::make_ctx(g, 2);

  PartialSchedule ps = PartialSchedule::empty(ctx);
  const PartialSchedule before = ps;
  ps.place(ctx, 0, 0);  // "a" unlocks b and c
  EXPECT_NE(ps.ready().bits(), before.ready().bits());
  ps.unplace(ctx, 0);
  EXPECT_TRUE(ps == before);
  EXPECT_EQ(ps.ready().bits(), before.ready().bits());
  EXPECT_EQ(ps.fingerprint(), 0u);
}

// ---------------------------------------------------------------------------
// Table unit tests.
// ---------------------------------------------------------------------------

TranspositionConfig tiny_config(std::size_t cap_bytes = 1 << 16,
                                int shards = 2) {
  TranspositionConfig cfg;
  cfg.enabled = true;
  cfg.memory_cap_bytes = cap_bytes;
  cfg.shards = shards;
  return cfg;
}

PartialSchedule one_move_state(const SchedContext& ctx, TaskId t, ProcId p) {
  PartialSchedule ps = PartialSchedule::empty(ctx);
  ps.place(ctx, t, p);
  return ps;
}

TEST(TranspositionTable, SecondVisitOfEqualStateIsAHit) {
  const TaskGraph g = test::independent_tasks(4);
  const SchedContext ctx = test::make_ctx(g, 2);
  TranspositionTable tt(tiny_config());

  const PartialSchedule s = one_move_state(ctx, 0, 0);
  EXPECT_FALSE(tt.seen_or_insert(s, 10));
  EXPECT_TRUE(tt.seen_or_insert(s, 10));   // equal bound: prune
  EXPECT_TRUE(tt.seen_or_insert(s, 12));   // worse bound: prune
  EXPECT_FALSE(tt.seen_or_insert(s, 7));   // better bound: re-admit once
  EXPECT_TRUE(tt.seen_or_insert(s, 7));    // now recorded at 7

  const TranspositionCounters c = tt.counters();
  EXPECT_EQ(c.hits, 3u);
  EXPECT_EQ(c.probes, 5u);
  EXPECT_EQ(c.hits + c.misses, c.probes);
  EXPECT_EQ(tt.size(), 1u);
}

TEST(TranspositionTable, EqualFingerprintUnequalStateFallsBackToEquality) {
  const TaskGraph g = test::independent_tasks(4);
  const SchedContext ctx = test::make_ctx(g, 2);
  TranspositionTable tt(tiny_config());

  const PartialSchedule a = one_move_state(ctx, 0, 0);
  const PartialSchedule b = one_move_state(ctx, 1, 1);
  ASSERT_FALSE(a == b);

  // Force both states onto the same fingerprint (and thus shard+bucket).
  const std::uint64_t fp = 0xdeadbeefcafef00dULL;
  EXPECT_FALSE(tt.seen_or_insert(fp, a, 5));
  // b collides but is not equal to a: must NOT be treated as a duplicate.
  EXPECT_FALSE(tt.seen_or_insert(fp, b, 5));
  EXPECT_GE(tt.counters().collisions, 1u);
  // Both are now recorded; re-probes hit their own entries.
  EXPECT_TRUE(tt.seen_or_insert(fp, a, 5));
  EXPECT_TRUE(tt.seen_or_insert(fp, b, 5));
  EXPECT_EQ(tt.size(), 2u);
}

TEST(TranspositionTable, ZeroFingerprintIsHandled) {
  const TaskGraph g = test::independent_tasks(2);
  const SchedContext ctx = test::make_ctx(g, 2);
  TranspositionTable tt(tiny_config());
  const PartialSchedule s = one_move_state(ctx, 0, 0);
  EXPECT_FALSE(tt.seen_or_insert(std::uint64_t{0}, s, 1));
  EXPECT_TRUE(tt.seen_or_insert(std::uint64_t{0}, s, 1));
}

TEST(TranspositionTable, MemoryStaysBoundedUnderEvictionPressure) {
  const TaskGraph g = test::independent_tasks(8);
  const SchedContext ctx = test::make_ctx(g, 2);
  // Smallest possible table: one shard, one bucket of 8 slots.
  TranspositionTable tt(tiny_config(/*cap_bytes=*/1, /*shards=*/1));
  ASSERT_EQ(tt.capacity(), 8u);

  Rng rng(0xca9);
  int admitted = 0;
  for (int round = 0; round < 64; ++round) {
    PartialSchedule ps = PartialSchedule::empty(ctx);
    random_walk(ctx, ps, rng);
    // Decreasing bounds so replace-if-better keeps firing.
    if (!tt.seen_or_insert(ps, 1000 - round)) ++admitted;
  }
  EXPECT_LE(tt.size(), tt.capacity());
  const TranspositionCounters c = tt.counters();
  EXPECT_GT(c.evictions + c.rejected, 0u);
  EXPECT_EQ(c.inserts, tt.size());
  EXPECT_GT(admitted, 8);  // eviction kept admitting better-bound states
}

TEST(TranspositionTable, ClearDropsEntriesButKeepsCounters) {
  const TaskGraph g = test::independent_tasks(4);
  const SchedContext ctx = test::make_ctx(g, 2);
  TranspositionTable tt(tiny_config());
  const PartialSchedule s = one_move_state(ctx, 0, 0);
  EXPECT_FALSE(tt.seen_or_insert(s, 1));
  tt.clear();
  EXPECT_EQ(tt.size(), 0u);
  EXPECT_FALSE(tt.seen_or_insert(s, 1));  // re-inserted, not a hit
  EXPECT_EQ(tt.counters().probes, 2u);
}

TEST(TranspositionTable, ConcurrentProbesAreConsistent) {
  const TaskGraph g = test::independent_tasks(6);
  const SchedContext ctx = test::make_ctx(g, 3);
  TranspositionTable tt(tiny_config(/*cap_bytes=*/1 << 20, /*shards=*/8));

  // Pre-generate a pool of states (every prefix of a few random walks);
  // all threads then offer the whole pool at the same bound, so every
  // probe after the first for a given state must be a hit.
  std::vector<PartialSchedule> states;
  Rng rng(0xc0ffee);
  for (int w = 0; w < 12; ++w) {
    PartialSchedule ps = PartialSchedule::empty(ctx);
    const auto moves = random_walk(ctx, ps, rng);
    PartialSchedule prefix = PartialSchedule::empty(ctx);
    for (const auto& [t, p] : moves) {
      prefix.place(ctx, t, p);
      states.push_back(prefix);
    }
  }

  constexpr int kThreads = 8;
  std::atomic<std::uint64_t> pruned{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    pool.emplace_back([&tt, &states, &pruned] {
      std::uint64_t mine = 0;
      for (int round = 0; round < 50; ++round) {
        for (const PartialSchedule& s : states) {
          if (tt.seen_or_insert(s, 0)) ++mine;
        }
      }
      pruned.fetch_add(mine);
    });
  }
  for (auto& th : pool) th.join();

  const TranspositionCounters c = tt.counters();
  EXPECT_EQ(c.probes, static_cast<std::uint64_t>(kThreads) * 50 *
                          states.size());
  EXPECT_EQ(c.hits + c.misses, c.probes);
  EXPECT_EQ(c.hits, pruned.load());
  // Each distinct state is admitted exactly once across all threads.
  EXPECT_EQ(c.inserts, tt.size());
}

// ---------------------------------------------------------------------------
// Differential harness: B&B ± table vs the exhaustive oracle.
// ---------------------------------------------------------------------------

class TranspositionDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TranspositionDifferential, TableOnTableOffAndOracleAgree) {
  // 8 shards × 25 instances = 200 seeded random graphs (≤10 tasks so the
  // oracle stays exhaustive; 2–3 processors).
  const std::uint64_t shard = GetParam();
  for (std::uint64_t i = 0; i < 25; ++i) {
    const std::uint64_t seed = shard * 25 + i;
    Rng rng(derive_seed(0xd1ff, seed));
    const int procs = rng.chance(0.5) ? 2 : 3;
    // Keep the oracle's permutation count tractable at 3 processors.
    const int n = procs == 2 ? static_cast<int>(rng.uniform_int(5, 7))
                             : static_cast<int>(rng.uniform_int(4, 6));
    const int depth =
        static_cast<int>(rng.uniform_int(2, std::min(4, n - 1)));
    const TaskGraph g = test::tiny_random(seed, n, depth);
    const SchedContext ctx = test::make_ctx(g, procs);

    const BruteForceResult oracle = brute_force(ctx);

    Params off;  // paper defaults, no table
    off.select = static_cast<SelectRule>(rng.uniform_int(0, 2));
    Params on = off;
    on.transposition.enabled = true;
    // Small random caps so eviction paths run inside the differential too.
    on.transposition.memory_cap_bytes =
        std::size_t{1} << rng.uniform_int(10, 22);
    on.transposition.shards = static_cast<int>(rng.uniform_int(1, 8));

    const SearchResult r_off = solve_bnb(ctx, off);
    const SearchResult r_on = solve_bnb(ctx, on);

    ASSERT_TRUE(r_off.found_solution);
    ASSERT_TRUE(r_on.found_solution);
    EXPECT_EQ(r_off.best_cost, oracle.best_cost)
        << "seed " << seed << " n " << n << " m " << procs;
    EXPECT_EQ(r_on.best_cost, oracle.best_cost)
        << "seed " << seed << " n " << n << " m " << procs << " "
        << describe(on);
    EXPECT_TRUE(r_on.proved);
    EXPECT_EQ(max_lateness(r_on.best, g), r_on.best_cost);
    const ValidationReport rep =
        validate_schedule(r_on.best, g, make_shared_bus_machine(procs));
    EXPECT_TRUE(rep.structurally_sound) << rep.error;
    // The table only ever removes work.
    EXPECT_LE(r_on.stats.generated, r_off.stats.generated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranspositionDifferential,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(TranspositionEngine, CountersAreExported) {
  const TaskGraph g = test::tight_instance(5);
  const SchedContext ctx = test::make_ctx(g, 3);
  Params p;
  p.transposition.enabled = true;
  const SearchResult r = solve_bnb(ctx, p);
  ASSERT_TRUE(r.found_solution);
  EXPECT_GT(r.stats.tt_misses, 0u);
  EXPECT_GT(r.stats.tt_hits, 0u);  // BFn duplicates exist on any real graph

  Params off;
  const SearchResult r_off = solve_bnb(ctx, off);
  EXPECT_EQ(r.best_cost, r_off.best_cost);
  EXPECT_LT(r.stats.generated, r_off.stats.generated);
  EXPECT_EQ(r_off.stats.tt_hits, 0u);
  EXPECT_EQ(r_off.stats.tt_misses, 0u);
}

}  // namespace
}  // namespace parabb
