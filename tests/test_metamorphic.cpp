// Metamorphic correctness suite: solves each generated instance and a set
// of optimal-lateness-preserving transforms of it (metamorphic.hpp), and
// asserts the proved optimum moves exactly as the transform predicts.
// Because prediction needs no oracle, the suite runs the full rotation of
// selection rules x lower bounds x engines over hundreds of instances —
// far past what brute-force differential tests can afford — and any
// engine bug that shifts the optimum on *some* configuration trips it.
#include "metamorphic.hpp"

#include <gtest/gtest.h>

#include <string>

#include "parabb/bnb/brute_force.hpp"
#include "parabb/bnb/engine.hpp"
#include "parabb/bnb/parallel_engine.hpp"
#include "parabb/sched/context.hpp"
#include "parabb/support/rng.hpp"
#include "test_util.hpp"

namespace parabb {
namespace {

struct Config {
  SelectRule select = SelectRule::kLIFO;
  LowerBound lb = LowerBound::kLB1;
  int threads = 0;  ///< 0 = sequential engine; >=1 = parallel engine
};

std::string describe(const Config& c) {
  return "S=" + to_string(c.select) + " L=" + to_string(c.lb) +
         (c.threads == 0 ? " seq" : " par" + std::to_string(c.threads));
}

/// Solves to proved optimality with the complete branching rule and
/// returns the optimum. Fails the current test if the run does not prove.
Time proved_optimum(const TaskGraph& g, const Machine& m, const Config& c,
                    const std::string& what) {
  const SchedContext ctx(g, m);
  Params params;
  params.branch = BranchRule::kBFn;
  params.select = c.select;
  params.lb = c.lb;
  if (c.threads == 0) {
    const SearchResult r = solve_bnb(ctx, params);
    EXPECT_TRUE(r.found_solution && r.proved) << what << " " << describe(c);
    return r.best_cost;
  }
  ParallelParams pp;
  pp.base = params;
  pp.threads = c.threads;
  const ParallelResult r = solve_bnb_parallel(ctx, pp);
  EXPECT_TRUE(r.found_solution && r.proved) << what << " " << describe(c);
  return r.best_cost;
}

/// The rotation: 3 selection rules x 3 lower bounds x 4 engine shapes = 36
/// configurations, cycled across seeds so every configuration sees many
/// instances without solving every instance 36 times.
Config rotated_config(std::uint64_t seed) {
  static constexpr SelectRule kSelects[] = {SelectRule::kLIFO,
                                            SelectRule::kLLB,
                                            SelectRule::kFIFO};
  static constexpr LowerBound kBounds[] = {LowerBound::kLB0,
                                           LowerBound::kLB1,
                                           LowerBound::kLB2};
  static constexpr int kThreads[] = {0, 1, 4, 8};
  Config c;
  c.select = kSelects[seed % 3];
  c.lb = kBounds[(seed / 3) % 3];
  c.threads = kThreads[(seed / 9) % 4];
  return c;
}

TEST(Metamorphic, TransformsPreserveOptimumAcrossTwoHundredSeeds) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Config cfg = rotated_config(seed);
    // FIFO sweeps breadth-first; keep its instances at the small end so
    // the full rotation stays fast.
    const int n = cfg.select == SelectRule::kFIFO
                      ? 5
                      : 5 + static_cast<int>(seed % 3);
    const TaskGraph g = test::tiny_random(seed, n, 3);
    const int procs = 2 + static_cast<int>(seed % 2);
    // A line interconnect gives the processors distinct positions, so the
    // renaming transform permutes something observable.
    const Machine machine =
        make_network_machine(NetworkTopology::line(procs));
    const std::string what = "seed " + std::to_string(seed);

    const Time base = proved_optimum(g, machine, cfg, what);

    EXPECT_EQ(proved_optimum(test::scaled_times(g, 3), machine, cfg, what),
              3 * base)
        << what << ": scaling every time quantity x3 must scale the "
        << "optimum x3";

    EXPECT_EQ(
        proved_optimum(test::translated_deadlines(g, 7), machine, cfg, what),
        base - 7)
        << what << ": +7 deadline slack must shift the optimum by -7";

    Rng rng(seed);
    const auto tperm = test::random_perm<TaskId>(g.task_count(), rng);
    EXPECT_EQ(
        proved_optimum(test::relabeled_tasks(g, tperm), machine, cfg, what),
        base)
        << what << ": relabeling vertices must not move the optimum";

    const auto pperm = test::random_perm<ProcId>(procs, rng);
    EXPECT_EQ(proved_optimum(g, test::renamed_procs(machine, pperm), cfg,
                             what),
              base)
        << what << ": renaming processors must not move the optimum";
  }
}

TEST(Metamorphic, SerializationNeverBeatsParallelMachine) {
  // Scheduling on one processor is scheduling on m with m-1 processors
  // forbidden: the feasible sets nest, so opt_1 >= opt_m for every
  // configuration.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Config cfg = rotated_config(seed);
    const TaskGraph g = test::tiny_random(seed, 6, 3);
    const std::string what = "seed " + std::to_string(seed);
    const Time opt_m =
        proved_optimum(g, make_shared_bus_machine(3), cfg, what);
    const Time opt_1 =
        proved_optimum(g, make_shared_bus_machine(1), cfg, what);
    EXPECT_GE(opt_1, opt_m) << what;
  }
}

TEST(Metamorphic, FullRuleMatrixAgreesWithBruteForce) {
  // The exhaustive cross-check on a handful of instances: every S x B x L
  // combination on both engines. Complete branching must hit the
  // brute-force optimum exactly; the approximate rules (BF1/DF) must stay
  // at or above it.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const TaskGraph g = test::tiny_random(seed, 5, 3);
    const Machine machine = make_shared_bus_machine(2);
    const SchedContext ctx(g, machine);
    const Time opt = brute_force(ctx).best_cost;
    for (const SelectRule select :
         {SelectRule::kLIFO, SelectRule::kLLB, SelectRule::kFIFO}) {
      for (const BranchRule branch :
           {BranchRule::kBFn, BranchRule::kBF1, BranchRule::kDF}) {
        for (const LowerBound lb :
             {LowerBound::kLB0, LowerBound::kLB1, LowerBound::kLB2}) {
          Params params;
          params.select = select;
          params.branch = branch;
          params.lb = lb;
          const std::string what = "seed " + std::to_string(seed) + " " +
                                   describe(params);

          const SearchResult seq = solve_bnb(ctx, params);
          ASSERT_TRUE(seq.found_solution) << what;
          ParallelParams pp;
          pp.base = params;
          pp.threads = 4;
          const ParallelResult par = solve_bnb_parallel(ctx, pp);
          ASSERT_TRUE(par.found_solution) << what;

          if (branch == BranchRule::kBFn) {
            EXPECT_TRUE(seq.proved) << what;
            EXPECT_EQ(seq.best_cost, opt) << what;
            EXPECT_TRUE(par.proved) << what;
            EXPECT_EQ(par.best_cost, opt) << what;
          } else {
            EXPECT_GE(seq.best_cost, opt) << what;
            EXPECT_GE(par.best_cost, opt) << what;
          }
        }
      }
    }
  }
}

TEST(Metamorphic, TransformsComposeOnPaperInstance) {
  // One paper-sized instance through a composed transform chain
  // (relabel, then scale, then translate) — the predictions compose too.
  const TaskGraph g = test::paper_instance(11);
  const Machine machine = make_shared_bus_machine(4);
  Config cfg;
  cfg.select = SelectRule::kLIFO;
  cfg.lb = LowerBound::kLB1;
  const Time base = proved_optimum(g, machine, cfg, "paper");

  Rng rng(11);
  const auto perm = test::random_perm<TaskId>(g.task_count(), rng);
  const TaskGraph chained = test::translated_deadlines(
      test::scaled_times(test::relabeled_tasks(g, perm), 2), 5);
  EXPECT_EQ(proved_optimum(chained, machine, cfg, "paper-chained"),
            2 * base - 5);
}

}  // namespace
}  // namespace parabb
