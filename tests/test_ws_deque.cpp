// Chase–Lev deque unit and stress tests (ISSUE 8).
//
// The single-threaded tests pin the order contract the scheduler relies on
// (owner pops LIFO from the bottom, thieves take FIFO from the top, growth
// preserves both), and the stress tests drive a real owner + several
// thieves and require every pushed value to be claimed exactly once — the
// property the work-stealing engine's correctness rests on (a lost vertex
// is a wrong answer; a duplicated vertex is double-expansion). Run under
// PARABB_SANITIZE=thread to certify the memory orders.
#include "parabb/support/ws_deque.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace parabb {
namespace {

TEST(WsDeque, OwnerPopsLifo) {
  WsDeque<std::int64_t> d;
  for (std::int64_t i = 0; i < 10; ++i) d.push_bottom(i);
  EXPECT_EQ(d.size_hint(), 10u);
  for (std::int64_t i = 9; i >= 0; --i) {
    std::int64_t v = -1;
    ASSERT_TRUE(d.pop_bottom(v));
    EXPECT_EQ(v, i);
  }
  std::int64_t v = -1;
  EXPECT_FALSE(d.pop_bottom(v));
  EXPECT_TRUE(d.empty_hint());
}

TEST(WsDeque, ThievesStealFifo) {
  WsDeque<std::int64_t> d;
  for (std::int64_t i = 0; i < 10; ++i) d.push_bottom(i);
  for (std::int64_t i = 0; i < 10; ++i) {
    std::int64_t v = -1;
    ASSERT_TRUE(d.steal_top(v));
    EXPECT_EQ(v, i);  // oldest (shallowest) first
  }
  std::int64_t v = -1;
  EXPECT_FALSE(d.steal_top(v));
}

TEST(WsDeque, OppositeEndsMeetInTheMiddle) {
  WsDeque<std::int64_t> d;
  for (std::int64_t i = 0; i < 6; ++i) d.push_bottom(i);
  std::int64_t v = -1;
  ASSERT_TRUE(d.steal_top(v));
  EXPECT_EQ(v, 0);
  ASSERT_TRUE(d.pop_bottom(v));
  EXPECT_EQ(v, 5);
  ASSERT_TRUE(d.steal_top(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(d.pop_bottom(v));
  EXPECT_EQ(v, 4);
  EXPECT_EQ(d.size_hint(), 2u);
}

TEST(WsDeque, GrowthPreservesContentsAndOrder) {
  WsDeque<std::int64_t> d(8);
  const std::size_t initial = d.capacity();
  const std::int64_t n = static_cast<std::int64_t>(initial) * 4;
  for (std::int64_t i = 0; i < n; ++i) d.push_bottom(i);
  EXPECT_GT(d.capacity(), initial);
  EXPECT_EQ(d.size_hint(), static_cast<std::size_t>(n));
  for (std::int64_t i = n - 1; i >= 0; --i) {
    std::int64_t v = -1;
    ASSERT_TRUE(d.pop_bottom(v));
    ASSERT_EQ(v, i);
  }
}

TEST(WsDeque, StealBatchTakesOldestFirstUpToCap) {
  WsDeque<std::int64_t> d;
  for (std::int64_t i = 0; i < 10; ++i) d.push_bottom(i);
  std::int64_t buf[4] = {-1, -1, -1, -1};
  EXPECT_EQ(d.steal_batch(buf, 4), 4u);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(buf[i], i);
  EXPECT_EQ(d.size_hint(), 6u);
  // Asking for more than remains yields exactly what remains.
  std::int64_t rest[16];
  EXPECT_EQ(d.steal_batch(rest, 16), 6u);
  EXPECT_EQ(rest[0], 4);
  EXPECT_EQ(rest[5], 9);
  EXPECT_EQ(d.steal_batch(rest, 16), 0u);
}

TEST(WsDeque, ReusableAfterDraining) {
  WsDeque<std::int64_t> d(8);
  for (int round = 0; round < 50; ++round) {
    for (std::int64_t i = 0; i < 20; ++i) d.push_bottom(i);
    std::int64_t v = -1;
    std::size_t got = 0;
    while (d.pop_bottom(v)) ++got;
    EXPECT_EQ(got, 20u);
  }
}

// Exactly-once delivery under a real owner and several concurrent thieves.
// The owner pushes `kItems` distinct values while interleaving pops; the
// thieves hammer steal_batch. Afterwards the union of everything the owner
// popped and everything the thieves stole must be exactly {0, ...,
// kItems-1} — no value lost, none duplicated.
TEST(WsDeque, ConcurrentOwnerAndThievesClaimExactlyOnce) {
  constexpr std::int64_t kItems = 200000;
  constexpr int kThieves = 3;
  WsDeque<std::int64_t> d(64);
  std::atomic<bool> open{true};
  std::vector<std::int64_t> owner_got;
  std::vector<std::vector<std::int64_t>> thief_got(kThieves);

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&d, &open, &thief_got, t] {
      std::int64_t buf[8];
      for (;;) {
        const std::size_t got = d.steal_batch(buf, 8);
        for (std::size_t i = 0; i < got; ++i)
          thief_got[static_cast<std::size_t>(t)].push_back(buf[i]);
        if (got == 0 && !open.load(std::memory_order_acquire)) {
          // Owner is done pushing; one final sweep below, then quit.
          if (d.steal_batch(buf, 8) == 0) return;
          continue;
        }
      }
    });
  }

  // Owner: push in bursts, pop a few between bursts (mimicking a dive).
  std::int64_t next = 0;
  while (next < kItems) {
    for (int burst = 0; burst < 7 && next < kItems; ++burst)
      d.push_bottom(next++);
    std::int64_t v = -1;
    for (int pops = 0; pops < 3; ++pops)
      if (d.pop_bottom(v)) owner_got.push_back(v);
  }
  // Drain what the thieves leave behind.
  std::int64_t v = -1;
  while (d.pop_bottom(v)) owner_got.push_back(v);
  open.store(false, std::memory_order_release);
  for (std::thread& th : thieves) th.join();
  while (d.pop_bottom(v)) owner_got.push_back(v);  // stragglers

  std::vector<std::int64_t> all = owner_got;
  for (const auto& tg : thief_got) all.insert(all.end(), tg.begin(), tg.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems));
  std::sort(all.begin(), all.end());
  for (std::int64_t i = 0; i < kItems; ++i) ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
}

// Same exactly-once property while the deque is forced through repeated
// growth (tiny initial capacity, deep bursts), so the grow() publication
// path is exercised while thieves race it.
TEST(WsDeque, ConcurrentStealsSurviveGrowth) {
  constexpr std::int64_t kItems = 50000;
  WsDeque<std::int64_t> d(8);
  std::atomic<bool> open{true};
  std::vector<std::int64_t> stolen;
  std::thread thief([&d, &open, &stolen] {
    std::int64_t v = -1;
    for (;;) {
      if (d.steal_top(v)) {
        stolen.push_back(v);
      } else if (!open.load(std::memory_order_acquire)) {
        if (!d.steal_top(v)) return;
        stolen.push_back(v);
      }
    }
  });
  std::vector<std::int64_t> owner_got;
  std::int64_t next = 0;
  while (next < kItems) {
    for (int burst = 0; burst < 100 && next < kItems; ++burst)
      d.push_bottom(next++);  // bursts far beyond the initial capacity
    std::int64_t v = -1;
    for (int pops = 0; pops < 40; ++pops)
      if (d.pop_bottom(v)) owner_got.push_back(v);
  }
  std::int64_t v = -1;
  while (d.pop_bottom(v)) owner_got.push_back(v);
  open.store(false, std::memory_order_release);
  thief.join();
  while (d.pop_bottom(v)) owner_got.push_back(v);

  std::vector<std::int64_t> all = owner_got;
  all.insert(all.end(), stolen.begin(), stolen.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kItems));
  std::sort(all.begin(), all.end());
  for (std::int64_t i = 0; i < kItems; ++i) ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace parabb
